//! Test-time accounting (§6.1 of the paper).
//!
//! One *test cycle* drives one group of rows (or columns) and reads all
//! opposite-side ports concurrently. For a `Cr × Cc` crossbar with groups of
//! `Tr` rows and `Tc` columns, a full all-cells pass costs
//! `T = ⌈Cr/Tr⌉ + ⌈Cc/Tc⌉` cycles; selected-cell testing only drives groups
//! that contain candidate cells, reducing this to `⌈Er/Tr⌉ + ⌈Ec/Tc⌉`.

/// Splits `0..n` into contiguous groups of at most `size` indices.
///
/// # Panics
///
/// Panics if `size` is zero.
pub fn groups(n: usize, size: usize) -> Vec<std::ops::Range<usize>> {
    assert!(size > 0, "group size must be non-zero");
    (0..n.div_ceil(size))
        .map(|g| g * size..((g + 1) * size).min(n))
        .collect()
}

/// The paper's all-cells test-time formula `⌈Cr/Tr⌉ + ⌈Cc/Tc⌉`, in cycles.
///
/// # Panics
///
/// Panics if either group size is zero.
pub fn full_test_cycles(rows: usize, cols: usize, tr: usize, tc: usize) -> u64 {
    assert!(tr > 0 && tc > 0, "test sizes must be non-zero");
    (rows.div_ceil(tr) + cols.div_ceil(tc)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_cover_everything_without_overlap() {
        let gs = groups(10, 3);
        assert_eq!(gs, vec![0..3, 3..6, 6..9, 9..10]);
        let total: usize = gs.iter().map(|g| g.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn groups_exact_division() {
        assert_eq!(groups(8, 4), vec![0..4, 4..8]);
        assert_eq!(groups(4, 8), vec![0..4]);
    }

    #[test]
    fn paper_formula() {
        // The Fig. 4 example: a 10x10 crossbar with test size 5 needs
        // 2 row cycles + 2 column cycles.
        assert_eq!(full_test_cycles(10, 10, 5, 5), 4);
        // A 1024x1024 crossbar at test size 2 costs 1024 cycles (the far
        // right of the Fig. 6 x-axis).
        assert_eq!(full_test_cycles(1024, 1024, 2, 2), 1024);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_group_size_panics() {
        let _ = groups(4, 0);
    }
}

//! **S1 — unsafe audit.**
//!
//! Any `unsafe` keyword outside the allowlisted paths (the vendored
//! `crates/shims` subtree) must carry a `// SAFETY: <reason>` comment on
//! the same line or within the lookback window above. This applies to
//! blocks, functions, impls, and trait declarations alike — if the word
//! appears in checked code, the proof obligation must be written down.

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::model::SourceFile;

use super::panic_policy::marker_has_text;
use super::{lookback, path_allowed, Check};

const MARKER: &str = "SAFETY:";

/// Unsafe-audit check (see module docs).
pub struct UnsafeAudit;

impl Check for UnsafeAudit {
    fn id(&self) -> &'static str {
        "S1"
    }

    fn description(&self) -> &'static str {
        "every `unsafe` outside crates/shims requires a // SAFETY: justification"
    }

    fn check_file(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        if path_allowed(cfg, self.id(), &file.rel_path) {
            return;
        }
        let lb = lookback(cfg, self.id());
        for tok in &file.scan.tokens {
            if tok.kind != TokenKind::Ident || tok.text != "unsafe" {
                continue;
            }
            if file.scan.has_marker_near(tok.line, lb, MARKER)
                && marker_has_text(file, tok.line, lb, MARKER)
            {
                continue;
            }
            out.push(Finding {
                check: self.id(),
                file: file.rel_path.clone(),
                line: tok.line,
                message: "`unsafe` without a // SAFETY: <reason> comment".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::lib_file;

    fn run(src: &str) -> Vec<Finding> {
        let cfg = Config::parse("[checks.S1]\n").expect("cfg");
        let file = lib_file("crates/demo/src/lib.rs", "demo", src);
        let mut out = Vec::new();
        UnsafeAudit.check_file(&file, &cfg, &mut out);
        out
    }

    #[test]
    fn flags_unjustified_unsafe_block() {
        let out = run("fn f(p: *const u8) -> u8 { unsafe { *p } }");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn safety_comment_justifies() {
        let out = run("fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn bare_safety_marker_is_not_enough() {
        let out = run("fn f(p: *const u8) -> u8 {\n    // SAFETY:\n    unsafe { *p }\n}");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn the_word_in_comments_or_strings_is_fine() {
        let out = run("// unsafe is banned here\nfn f() -> &'static str { \"unsafe\" }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allowlisted_shims_are_exempt() {
        let cfg = Config::parse("[checks.S1]\nallow = [\"crates/shims\"]\n").expect("cfg");
        let file = lib_file(
            "crates/shims/rand/src/lib.rs",
            "rand",
            "fn f(p: *const u8) -> u8 { unsafe { *p } }",
        );
        let mut out = Vec::new();
        UnsafeAudit.check_file(&file, &cfg, &mut out);
        assert!(out.is_empty());
    }
}

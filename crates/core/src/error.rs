//! Error type for the fault-tolerant training flow.

use std::error::Error;
use std::fmt;

use nn::NnError;
use rram::RramError;

/// Errors produced while mapping, detecting, re-mapping, or training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FttError {
    /// An error bubbled up from the RRAM simulator.
    Rram(RramError),
    /// An error bubbled up from the neural network substrate.
    Nn(NnError),
    /// A flow or mapping configuration was invalid.
    InvalidConfig(String),
    /// The training data stream ended before the flow finished.
    ///
    /// `Dataset::try_train_batches` yields a cycling (infinite) iterator, so
    /// this is unreachable with the in-tree dataset — but the flow no longer
    /// *assumes* that invariant and surfaces a typed error instead of
    /// panicking if a future data source is finite.
    DataExhausted,
}

impl fmt::Display for FttError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FttError::Rram(e) => write!(f, "rram: {e}"),
            FttError::Nn(e) => write!(f, "nn: {e}"),
            FttError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FttError::DataExhausted => write!(f, "training data exhausted"),
        }
    }
}

impl Error for FttError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FttError::Rram(e) => Some(e),
            FttError::Nn(e) => Some(e),
            FttError::InvalidConfig(_) | FttError::DataExhausted => None,
        }
    }
}

impl From<RramError> for FttError {
    fn from(e: RramError) -> Self {
        FttError::Rram(e)
    }
}

impl From<NnError> for FttError {
    fn from(e: NnError) -> Self {
        FttError::Nn(e)
    }
}

impl From<ftt_tile::TileError> for FttError {
    fn from(e: ftt_tile::TileError) -> Self {
        match e {
            ftt_tile::TileError::Rram(e) => FttError::Rram(e),
            other => FttError::InvalidConfig(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FttError::from(RramError::InvalidConfig("x".into()));
        assert!(e.to_string().contains("rram"));
        assert!(Error::source(&e).is_some());
        let e = FttError::InvalidConfig("bad scope".into());
        assert!(e.to_string().contains("bad scope"));
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FttError>();
    }
}

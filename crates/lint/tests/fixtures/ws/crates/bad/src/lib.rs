//! The violation crate: one *positive* (failing) case per check.

use std::collections::HashMap; // D1: unordered collection
use std::time::Instant; // D1: wall clock

/// P1: bare unwrap, no justification.
pub fn p1_unwrap(x: Option<u8>) -> u8 {
    x.unwrap()
}

/// P1: panic-lint allow without a PANIC-OK reason.
#[allow(clippy::expect_used)]
pub fn p1_allow(x: Option<u8>) -> u8 {
    x.expect("boom")
}

/// D1: unscoped spawn; also exercises the banned imports above.
pub fn d1_spawn(map: HashMap<u8, u8>) -> usize {
    let t = Instant::now();
    std::thread::spawn(move || map.len());
    t.elapsed().as_nanos() as usize
}

/// F1: equality against a non-zero float literal, and a NaN compare.
pub fn f1_eq(x: f64) -> bool {
    x == 1.0 || x != f64::NAN
}

/// F1: unannotated narrowing cast on a cast_path file.
pub fn f1_cast(g: f64) -> f32 {
    g as f32
}

/// S1: unsafe without a SAFETY comment.
pub fn s1_unsafe(p: *const u8) -> u8 {
    unsafe { *p }
}

/// O1: registry name violating the snake_case grammar.
pub fn o1_name(r: &dyn Registrar) {
    r.counter("Bad-Name__total");
}

/// Minimal registrar shape so the fixture stays self-contained.
pub trait Registrar {
    /// Register a counter.
    fn counter(&self, name: &str);
}

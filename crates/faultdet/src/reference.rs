//! The off-chip value store and reference computation.
//!
//! The first step of the test procedure reads the whole crossbar and stores
//! the levels off-chip. During the comparison steps the controller knows, for
//! every cell, what level it *should* be at — the stored level plus the test
//! increment, saturating at the level range boundaries — so it can select the
//! correct reference voltage for any tested group of rows or columns.

use rram::crossbar::Crossbar;

/// Snapshot of crossbar levels taken at the start of a test campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OffChipStore {
    rows: usize,
    cols: usize,
    levels: u16,
    stored: Vec<u16>,
}

impl OffChipStore {
    /// Reads the crossbar ("Read RRAM Values, Store Off-Chip" in Fig. 3).
    pub fn read_from(xbar: &Crossbar) -> Self {
        Self {
            rows: xbar.rows(),
            cols: xbar.cols(),
            levels: xbar.levels(),
            stored: xbar.read_all_levels(),
        }
    }

    /// Number of snapshot rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of snapshot columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The stored (pre-test) level of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn stored_level(&self, row: usize, col: usize) -> u16 {
        assert!(row < self.rows && col < self.cols, "({row}, {col}) out of bounds");
        self.stored[row * self.cols + col]
    }

    /// The level a cell is *expected* to read after a `delta`-level test
    /// write, saturating at the range boundaries — `delta = 0` means the
    /// cell was not written (not a test candidate).
    pub fn expected_level(&self, row: usize, col: usize, delta: i32) -> u16 {
        let stored = i64::from(self.stored_level(row, col));
        (stored + i64::from(delta)).clamp(0, i64::from(self.levels - 1)) as u16
    }

    /// Expected digital level sum over a slice of rows on one column, given
    /// the per-cell test deltas (`deltas[row * cols + col]`).
    ///
    /// # Panics
    ///
    /// Panics if the range or column is out of bounds.
    pub fn expected_column_group_sum(
        &self,
        rows: std::ops::Range<usize>,
        col: usize,
        deltas: &[i32],
    ) -> u64 {
        assert!(rows.end <= self.rows && col < self.cols, "range out of bounds");
        rows.map(|r| u64::from(self.expected_level(r, col, deltas[r * self.cols + col])))
            .sum()
    }

    /// Expected digital level sum over a slice of columns on one row.
    ///
    /// # Panics
    ///
    /// Panics if the range or row is out of bounds.
    pub fn expected_row_group_sum(
        &self,
        row: usize,
        cols: std::ops::Range<usize>,
        deltas: &[i32],
    ) -> u64 {
        assert!(cols.end <= self.cols && row < self.rows, "range out of bounds");
        cols.map(|c| u64::from(self.expected_level(row, c, deltas[row * self.cols + c])))
            .sum()
    }

    /// Batched form of [`expected_column_group_sum`]: the expected sum over
    /// the row slice for *every* column at once, as one dense row-major
    /// sweep over the snapshot. Entry `col` equals
    /// `expected_column_group_sum(rows, col, deltas)` exactly (same
    /// clamped-level accumulation, ascending row order), so callers that
    /// sweep whole detection groups avoid `cols` separate strided walks.
    ///
    /// [`expected_column_group_sum`]: Self::expected_column_group_sum
    ///
    /// # Panics
    ///
    /// Panics if the row range is out of bounds.
    pub fn expected_column_group_sums(
        &self,
        rows: std::ops::Range<usize>,
        deltas: &[i32],
    ) -> Vec<u64> {
        assert!(rows.end <= self.rows, "row range out of bounds");
        let top = i64::from(self.levels - 1);
        let mut sums = vec![0u64; self.cols];
        for r in rows {
            let base = r * self.cols;
            let stored = &self.stored[base..base + self.cols];
            let row_deltas = &deltas[base..base + self.cols];
            for (s, (&lvl, &d)) in sums.iter_mut().zip(stored.iter().zip(row_deltas)) {
                *s += (i64::from(lvl) + i64::from(d)).clamp(0, top) as u64;
            }
        }
        sums
    }

    /// Batched form of [`expected_row_group_sum`]: the expected sum over the
    /// column slice for *every* row at once. Entry `row` equals
    /// `expected_row_group_sum(row, cols, deltas)` exactly.
    ///
    /// [`expected_row_group_sum`]: Self::expected_row_group_sum
    ///
    /// # Panics
    ///
    /// Panics if the column range is out of bounds.
    pub fn expected_row_group_sums(
        &self,
        cols: std::ops::Range<usize>,
        deltas: &[i32],
    ) -> Vec<u64> {
        assert!(cols.end <= self.cols, "column range out of bounds");
        let top = i64::from(self.levels - 1);
        let mut sums = vec![0u64; self.rows];
        for (r, s) in sums.iter_mut().enumerate() {
            let base = r * self.cols;
            let stored = &self.stored[base + cols.start..base + cols.end];
            let row_deltas = &deltas[base + cols.start..base + cols.end];
            for (&lvl, &d) in stored.iter().zip(row_deltas) {
                *s += (i64::from(lvl) + i64::from(d)).clamp(0, top) as u64;
            }
        }
        sums
    }

    /// Restores every cell whose level differs from the snapshot back to the
    /// stored value (the "recover the training weights" step). Returns the
    /// number of restore writes issued.
    ///
    /// # Errors
    ///
    /// Propagates crossbar write errors (only possible on dimension
    /// mismatch, which would be a bug).
    pub fn restore(&self, xbar: &mut Crossbar) -> Result<u64, rram::RramError> {
        let mut writes = 0u64;
        for r in 0..self.rows {
            for c in 0..self.cols {
                let target = self.stored[r * self.cols + c];
                if xbar.read_level(r, c)? != target {
                    let outcome = xbar.write_level(r, c, target)?;
                    if outcome.changed() {
                        writes += 1;
                    }
                }
            }
        }
        Ok(writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rram::crossbar::CrossbarBuilder;
    use rram::fault::{FaultKind, FaultMap};

    fn programmed_xbar() -> Crossbar {
        let mut x = CrossbarBuilder::new(4, 4).seed(1).build().unwrap();
        for r in 0..4 {
            for c in 0..4 {
                x.write_level(r, c, ((r * 2 + c) % 8) as u16).unwrap();
            }
        }
        x
    }

    #[test]
    fn snapshot_matches_crossbar() {
        let x = programmed_xbar();
        let store = OffChipStore::read_from(&x);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(store.stored_level(r, c), x.read_level(r, c).unwrap());
            }
        }
        assert_eq!(store.rows(), 4);
        assert_eq!(store.cols(), 4);
    }

    #[test]
    fn expected_level_saturates() {
        let mut x = programmed_xbar();
        x.write_level(0, 0, 7).unwrap();
        x.write_level(0, 1, 0).unwrap();
        let store = OffChipStore::read_from(&x);
        assert_eq!(store.expected_level(0, 0, 1), 7, "saturates at the top");
        assert_eq!(store.expected_level(0, 1, -1), 0, "saturates at the bottom");
        assert_eq!(store.expected_level(0, 0, 0), 7, "delta 0 = not written");
    }

    #[test]
    fn group_sums_accumulate_expected_levels() {
        let x = programmed_xbar();
        let store = OffChipStore::read_from(&x);
        let deltas = vec![1i32; 16];
        let sum = store.expected_column_group_sum(0..4, 1, &deltas);
        // Stored col 1: levels 1, 3, 5, 7; +1 saturating: 2, 4, 6, 7 = 19.
        assert_eq!(sum, 19);
        let sum = store.expected_row_group_sum(1, 0..4, &deltas);
        // Stored row 1: 2, 3, 4, 5; +1: 3, 4, 5, 6 = 18.
        assert_eq!(sum, 18);
    }

    #[test]
    fn batched_group_sums_match_scalar_sums() {
        let x = programmed_xbar();
        let store = OffChipStore::read_from(&x);
        // Mixed deltas, including saturating ones.
        let deltas: Vec<i32> = (0..16).map(|i| [1, -1, 0, 2][i % 4]).collect();
        for lo in 0..4 {
            for hi in lo..=4 {
                let cols = store.expected_column_group_sums(lo..hi, &deltas);
                for (c, &sum) in cols.iter().enumerate() {
                    assert_eq!(sum, store.expected_column_group_sum(lo..hi, c, &deltas));
                }
                let rows = store.expected_row_group_sums(lo..hi, &deltas);
                for (r, &sum) in rows.iter().enumerate() {
                    assert_eq!(sum, store.expected_row_group_sum(r, lo..hi, &deltas));
                }
            }
        }
    }

    #[test]
    fn restore_returns_crossbar_to_snapshot() {
        let mut x = programmed_xbar();
        let store = OffChipStore::read_from(&x);
        // Perturb.
        x.nudge(0, 0, 1).unwrap();
        x.nudge(2, 3, -1).unwrap();
        let writes = store.restore(&mut x).unwrap();
        assert_eq!(writes, 2);
        assert_eq!(x.read_all_levels(), {
            let mut expected = Vec::new();
            for r in 0..4 {
                for c in 0..4 {
                    expected.push(store.stored_level(r, c));
                }
            }
            expected
        });
        // A second restore is free.
        assert_eq!(store.restore(&mut x).unwrap(), 0);
    }

    #[test]
    fn restore_skips_stuck_cells() {
        let mut x = programmed_xbar();
        let store = OffChipStore::read_from(&x);
        let mut map = FaultMap::healthy(4, 4);
        map.set(1, 1, Some(FaultKind::StuckAt0));
        x.apply_fault_map(&map);
        // Stuck cell reads 0 but stored 3; restore attempts a write that the
        // cell ignores; no effective write is counted.
        let writes = store.restore(&mut x).unwrap();
        assert_eq!(writes, 0);
        assert_eq!(x.read_level(1, 1).unwrap(), 0);
    }
}

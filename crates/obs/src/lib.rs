//! # obs — structured telemetry for the rram-ftt closed loop
//!
//! Zero-dependency observability: typed events on a logical clock, a
//! metrics registry (counters / gauges / fixed-bucket histograms),
//! lightweight hierarchical spans, and pluggable sinks. Every runtime
//! crate in the workspace links against `obs`, so it sits at the bottom
//! of the dependency graph and builds from `std` alone.
//!
//! ## The three planes
//!
//! | plane   | carrier                  | determinism                        |
//! |---------|--------------------------|------------------------------------|
//! | events  | [`Event`] → sinks        | byte-identical at any thread count |
//! | metrics | [`Registry`] atomics     | value-identical (commutative ops)  |
//! | spans   | [`SpanGuard`] histograms | wall time; logical clock in tests  |
//!
//! **Events** are emitted only from the sequential spine of the flow and
//! are stamped with a [`LogicalTime`] (iteration, cumulative write
//! pulses, sequence number) — never wall time — so a seeded run writes a
//! byte-identical JSONL trace at any `RRAM_FTT_THREADS`. **Metrics** may
//! be updated from worker threads because counter adds commute.
//! **Spans** measure real durations and therefore live only in
//! histograms, never in the event stream.
//!
//! ## Getting a trace
//!
//! ```
//! use obs::{Event, JsonlSink, Recorder};
//!
//! let recorder = Recorder::deterministic();
//! let sink = JsonlSink::new();
//! let view = sink.view();
//! recorder.add_sink(Box::new(sink));
//!
//! recorder.set_iteration(1);
//! recorder.emit(Event::DetectionCampaignStart { campaign: 1 });
//!
//! assert!(view.contents().contains("\"kind\":\"detection_campaign_start\""));
//! ```
//!
//! ## The global recorder
//!
//! Code that has no natural place to thread a [`Recorder`] through (the
//! `par` helpers) uses the process-wide [`global()`] recorder, gated by
//! [`enabled()`] — a single relaxed atomic load that defaults to `false`
//! so un-instrumented hot loops pay (nearly) nothing. Flows that *do*
//! have a recorder parameter should take one explicitly; the global is
//! the fallback, not the front door.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod clock;
pub mod event;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod sink;
pub mod span;

pub use clock::{Clock, LogicalClock, WallClock};
pub use event::{Confusion, Event, EventKind, LogicalTime, TimedEvent, WritePhase};
pub use json::JsonObject;
pub use metrics::{Counter, Gauge, Histogram, Registry, DURATION_BOUNDS_NS};
pub use recorder::{ClockState, Recorder};
pub use sink::{EventSink, JsonlSink, JsonlView, RingSink, RingView};
pub use span::SpanGuard;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Whether *global* (implicitly-wired) instrumentation is on.
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns global instrumentation on or off. Off by default so hot loops
/// that consult [`enabled()`] pay only a relaxed load.
pub fn set_enabled(on: bool) {
    GLOBAL_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether global instrumentation is on (one relaxed atomic load).
#[inline]
pub fn enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed)
}

/// The process-wide recorder, created on first use (wall-clock spans).
///
/// Used by code with no recorder parameter of its own (e.g. the `par`
/// worker-span instrumentation). Explicitly-wired recorders are
/// preferred wherever a parameter can be threaded.
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_toggle_defaults_off() {
        // Note: other tests must not rely on the flag staying off; this
        // test restores the default it observes.
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(was);
    }

    #[test]
    fn global_recorder_is_a_singleton() {
        let a = global();
        a.counter("obs_selftest_total").inc();
        let b = global();
        assert_eq!(b.registry().counter_value("obs_selftest_total"), Some(1));
    }
}

//! Threshold training (§5.1, Algorithm 1 of the paper).
//!
//! In every iteration, ~90 % of the back-propagated weight updates `δw` are
//! tiny — below 1 % of the iteration's largest update — yet each one costs a
//! full RRAM write. Threshold training zeroes every `δw` below
//! `fraction · max|δw|`, suppressing the write entirely. The skipped
//! magnitude is not accumulated: the next large-enough gradient for that
//! weight carries the information instead, which is why the paper observes
//! only a ~1.2× increase in iterations-to-accuracy while extending mean
//! cell lifetime ~15×.
//!
//! Algorithm 1 passes each cell's accumulated `WriteAmount` to
//! `CalculateThreshold`, enabling wear-aware policies; both the paper's
//! fixed fraction and a wear-aware variant are provided.

use nn::network::Network;

use crate::error::FttError;
use crate::mapping::MappedNetwork;

/// When to suppress a weight write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// Original training: every non-zero update is written.
    None,
    /// The paper's policy: suppress `|δw| < fraction · max|δw|` (global max
    /// over all mapped weights in the iteration). The paper uses 0.01.
    Fixed {
        /// Threshold as a fraction of the iteration's max `|δw|`.
        fraction: f64,
    },
    /// Wear-aware variant of `CalculateThreshold(WriteAmount)`: a cell that
    /// has been written `n` times uses threshold
    /// `fraction · (1 + growth · n) · max|δw|`, spreading wear away from
    /// hot cells.
    WearAware {
        /// Base threshold fraction.
        fraction: f64,
        /// Per-write threshold growth.
        growth: f64,
    },
}

impl ThresholdPolicy {
    /// The paper's configuration: threshold at 1 % of the iteration max.
    pub fn paper_default() -> Self {
        ThresholdPolicy::Fixed { fraction: 0.01 }
    }

    /// The threshold for a cell with the given write count, given the
    /// iteration's max update magnitude.
    fn threshold(&self, max_abs_dw: f64, write_amount: u32) -> f64 {
        match *self {
            ThresholdPolicy::None => 0.0,
            ThresholdPolicy::Fixed { fraction } => fraction * max_abs_dw,
            ThresholdPolicy::WearAware { fraction, growth } => {
                fraction * (1.0 + growth * f64::from(write_amount)) * max_abs_dw
            }
        }
    }
}

/// Statistics of one [`ThresholdTrainer::apply`] call.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UpdateReport {
    /// Mapped-weight writes actually issued to the hardware.
    pub writes_issued: u64,
    /// Mapped-weight updates suppressed by the threshold.
    pub writes_skipped: u64,
    /// Cells that wore out (new endurance faults) during this update.
    pub new_faults: u64,
    /// The iteration's `max|δw|` over the mapped layers.
    pub max_abs_dw: f64,
    /// Updates whose gradient was NaN/infinite, skipped deterministically.
    /// A NaN `δw` fails every threshold comparison, so without this guard
    /// it would silently pass through and poison the hardware weights.
    pub nan_updates_skipped: u64,
}

impl UpdateReport {
    /// Fraction of candidate updates that fell below the threshold.
    pub fn skipped_fraction(&self) -> f64 {
        let total = self.writes_issued + self.writes_skipped;
        if total == 0 {
            0.0
        } else {
            self.writes_skipped as f64 / total as f64
        }
    }
}

/// Applies Algorithm 1: decides which updates to write through to the
/// crossbars and keeps per-cell write ledgers.
#[derive(Debug, Clone)]
pub struct ThresholdTrainer {
    policy: ThresholdPolicy,
    /// Per mapped-layer position, per weight: accumulated write count.
    write_amounts: Vec<Vec<u32>>,
}

impl ThresholdTrainer {
    /// Creates a trainer with zeroed write ledgers matching the mapping.
    pub fn new(policy: ThresholdPolicy, mapped: &MappedNetwork) -> Self {
        let write_amounts = mapped
            .layers()
            .iter()
            .map(|l| vec![0u32; l.rows * l.cols])
            .collect();
        Self {
            policy,
            write_amounts,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> ThresholdPolicy {
        self.policy
    }

    /// Per-cell write counts of one mapped layer.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    pub fn write_amounts(&self, position: usize) -> &[u32] {
        &self.write_amounts[position]
    }

    /// One training-iteration update (lines 4–13 of Algorithm 1).
    ///
    /// Expects `net.backward` to have filled the gradients. Mapped layers:
    /// updates above the threshold are written to the crossbars (`Next_w =
    /// Current_w + LR·δw`, clamped by the hardware); the rest are dropped.
    /// Unmapped weight layers and all biases take a plain software SGD step
    /// (biases live in the digital periphery).
    ///
    /// # Errors
    ///
    /// Propagates crossbar write errors.
    pub fn apply(
        &mut self,
        mapped: &mut MappedNetwork,
        net: &mut Network,
        lr: f32,
    ) -> Result<UpdateReport, FttError> {
        self.apply_with_mask(mapped, net, lr, None)
    }

    /// Like [`ThresholdTrainer::apply`], but weights marked pruned in
    /// `frozen` are never updated — after a re-mapping phase the pruned
    /// zeros must stay parked on their (possibly faulty) cells.
    ///
    /// # Errors
    ///
    /// Propagates crossbar write errors.
    pub fn apply_with_mask(
        &mut self,
        mapped: &mut MappedNetwork,
        net: &mut Network,
        lr: f32,
        frozen: Option<&nn::pruning::PruneMask>,
    ) -> Result<UpdateReport, FttError> {
        let mapped_positions: Vec<(usize, usize)> = mapped
            .layers()
            .iter()
            .enumerate()
            .map(|(pos, l)| (pos, l.layer_index))
            .collect();

        // Pass 1: the iteration's max |δw| over mapped layers (δw ∝ grad,
        // the LR is a shared constant). NaN gradients are excluded: a NaN
        // fails every `>` comparison, so without the finiteness guard the
        // max would silently stay 0 and zero every threshold.
        let mut max_abs_dw = 0.0f64;
        for &(_, layer_index) in &mapped_positions {
            let params = net.layer_params_mut(layer_index).ok_or_else(|| {
                FttError::InvalidConfig(format!(
                    "mapped layer {layer_index} has no parameters in this network"
                ))
            })?;
            for &g in params.weight_grad {
                let dw = f64::from(g.abs()) * f64::from(lr);
                if dw.is_finite() && dw > max_abs_dw {
                    max_abs_dw = dw;
                }
            }
        }

        // Pass 2: collect the surviving updates per mapped layer. Updates
        // anchor on the *software* weight (Algorithm 1's `Current_w`), not
        // on the corrupted effective value the forward pass used — stuck
        // cells silently refuse the write, they do not drag the software
        // state with them.
        let mut report = UpdateReport {
            max_abs_dw,
            ..Default::default()
        };
        // A degenerate iteration — every finite update is exactly zero while
        // a thresholding policy is active — carries no information: skip the
        // whole pass deterministically instead of pulsing every cell with a
        // zero update (the None policy keeps the original method's
        // pulse-everything behaviour).
        let degenerate = max_abs_dw == 0.0 && !matches!(self.policy, ThresholdPolicy::None);
        let mut pending: Vec<(usize, Vec<(usize, f32)>)> = Vec::new();
        for &(pos, layer_index) in &mapped_positions {
            let frozen_layer =
                frozen.and_then(|m| m.layers().iter().find(|l| l.layer_index == layer_index));
            let targets = mapped.layers()[pos].targets().to_vec();
            let params = net.layer_params_mut(layer_index).ok_or_else(|| {
                FttError::InvalidConfig(format!(
                    "mapped layer {layer_index} has no parameters in this network"
                ))
            })?;
            let mut updates = Vec::new();
            for (idx, &g) in params.weight_grad.iter().enumerate() {
                if let Some(fl) = frozen_layer {
                    if fl.pruned[idx] {
                        continue; // pruned weights stay parked at zero
                    }
                }
                // Every weight is either pulsed or suppressed each
                // iteration: the original method has no write-verify, so
                // even a zero update costs a pulse (None's threshold is 0,
                // which suppresses nothing).
                let dw = f64::from(g) * f64::from(lr);
                if !dw.is_finite() {
                    // A NaN/∞ gradient fails every `<` comparison below and
                    // would write NaN into the hardware; skip and count it.
                    report.nan_updates_skipped += 1;
                    continue;
                }
                if degenerate {
                    report.writes_skipped += 1;
                    continue;
                }
                let thr = self
                    .policy
                    .threshold(max_abs_dw, self.write_amounts[pos][idx]);
                if dw.abs() < thr {
                    report.writes_skipped += 1;
                } else {
                    updates.push((idx, targets[idx] - lr * g));
                }
            }
            pending.push((pos, updates));
        }

        // Pass 3: write through to the hardware and update the ledgers.
        for (pos, updates) in pending {
            for (idx, value) in updates {
                let outcome = mapped.write_weight(pos, idx, value)?;
                if outcome.changed() {
                    report.writes_issued += 1;
                    self.write_amounts[pos][idx] += 1;
                }
                if outcome.new_fault().is_some() {
                    report.new_faults += 1;
                }
            }
        }

        // Pass 4: software SGD for unmapped weight layers and all biases.
        let mapped_layer_indices: Vec<usize> = mapped_positions.iter().map(|&(_, li)| li).collect();
        for (layer_index, params) in net.param_layers_mut() {
            if !mapped_layer_indices.contains(&layer_index) {
                for (w, &g) in params.weights.iter_mut().zip(params.weight_grad) {
                    if g.is_finite() {
                        *w -= lr * g;
                    } else {
                        report.nan_updates_skipped += 1;
                    }
                }
            }
            if let (Some(bias), Some(bias_grad)) = (params.bias, params.bias_grad) {
                for (b, &g) in bias.iter_mut().zip(bias_grad) {
                    if g.is_finite() {
                        *b -= lr * g;
                    } else {
                        report.nan_updates_skipped += 1;
                    }
                }
            }
        }
        Ok(report)
    }

    /// Captures the per-cell write ledgers (checkpoint). The policy is
    /// configuration, not state — pass it back to
    /// [`ThresholdTrainer::restore_ledgers`] via a fresh trainer.
    pub fn export_ledgers(&self) -> Vec<Vec<u32>> {
        self.write_amounts.clone()
    }

    /// Replaces the ledgers with previously captured ones.
    ///
    /// # Errors
    ///
    /// Returns [`FttError::InvalidConfig`] when the ledger shapes do not
    /// match the current mapping.
    pub fn restore_ledgers(
        &mut self,
        ledgers: Vec<Vec<u32>>,
        mapped: &MappedNetwork,
    ) -> Result<(), FttError> {
        let layers = mapped.layers();
        if ledgers.len() != layers.len() {
            return Err(FttError::InvalidConfig(format!(
                "{} ledgers for {} mapped layers",
                ledgers.len(),
                layers.len()
            )));
        }
        for (pos, (ledger, layer)) in ledgers.iter().zip(layers).enumerate() {
            if ledger.len() != layer.rows * layer.cols {
                return Err(FttError::InvalidConfig(format!(
                    "ledger {pos} holds {} counts for a {}x{} layer",
                    ledger.len(),
                    layer.rows,
                    layer.cols
                )));
            }
        }
        self.write_amounts = ledgers;
        Ok(())
    }

    /// Resets the ledgers to match a (re-built) mapping.
    pub fn reset(&mut self, mapped: &MappedNetwork) {
        self.write_amounts = mapped
            .layers()
            .iter()
            .map(|l| vec![0u32; l.rows * l.cols])
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MappingConfig, MappingScope};
    use nn::init::init_rng;
    use nn::layers::Dense;
    use nn::loss::softmax_cross_entropy;
    use nn::tensor::Tensor;

    fn setup() -> (Network, MappedNetwork) {
        let mut rng = init_rng(2);
        let mut net = Network::new();
        net.push(Dense::new(8, 4, &mut rng));
        let mapped =
            MappedNetwork::from_network(&mut net, MappingConfig::new(MappingScope::EntireNetwork))
                .unwrap();
        (net, mapped)
    }

    fn one_backward(net: &mut Network) {
        let x = Tensor::from_vec(
            vec![4, 8],
            (0..32).map(|i| (i as f32 * 0.4).sin()).collect(),
        );
        let logits = net.forward_train(&x);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        net.backward(&grad);
    }

    #[test]
    fn none_policy_writes_everything() {
        let (mut net, mut mapped) = setup();
        mapped.load_effective_weights(&mut net).unwrap();
        one_backward(&mut net);
        let mut trainer = ThresholdTrainer::new(ThresholdPolicy::None, &mapped);
        let report = trainer.apply(&mut mapped, &mut net, 0.1).unwrap();
        assert_eq!(report.writes_skipped, 0);
        assert!(report.writes_issued > 0);
        assert_eq!(report.skipped_fraction(), 0.0);
    }

    #[test]
    fn fixed_policy_suppresses_small_updates() {
        let (mut net, mut mapped) = setup();
        mapped.load_effective_weights(&mut net).unwrap();
        one_backward(&mut net);
        let mut trainer = ThresholdTrainer::new(ThresholdPolicy::Fixed { fraction: 0.5 }, &mapped);
        let report = trainer.apply(&mut mapped, &mut net, 0.1).unwrap();
        assert!(
            report.writes_skipped > 0,
            "an aggressive threshold must skip writes"
        );
        assert!(
            report.writes_issued > 0,
            "the largest update always survives"
        );
        assert!(report.skipped_fraction() > 0.0);
        assert!(report.max_abs_dw > 0.0);
    }

    #[test]
    fn paper_default_skips_zero_and_tiny_updates() {
        let (mut net, mut mapped) = setup();
        mapped.load_effective_weights(&mut net).unwrap();
        // Sparse input (like MNIST strokes): zero features produce
        // exactly-zero first-layer gradients, which the threshold suppresses
        // but the original method still pulses.
        let x = Tensor::from_vec(vec![1, 8], vec![0.9, 0.0, 0.0, 0.4, 0.0, 0.0, 0.0, 0.1]);
        let logits = net.forward_train(&x);
        let (_, grad) = softmax_cross_entropy(&logits, &[2]);
        net.backward(&grad);
        let mut trainer = ThresholdTrainer::new(ThresholdPolicy::paper_default(), &mapped);
        let report = trainer.apply(&mut mapped, &mut net, 0.1).unwrap();
        // 5 of 8 input features are zero → at least 5×4 of the 32 weights
        // skip their write.
        assert!(
            report.writes_skipped >= 20,
            "skipped {}",
            report.writes_skipped
        );
        assert_eq!(report.writes_issued + report.writes_skipped, 32);
    }

    #[test]
    fn writes_update_hardware_weights() {
        let (mut net, mut mapped) = setup();
        mapped.load_effective_weights(&mut net).unwrap();
        let before: Vec<f32> = net.layer_params_mut(0).unwrap().weights.to_vec();
        one_backward(&mut net);
        let mut trainer = ThresholdTrainer::new(ThresholdPolicy::None, &mapped);
        trainer.apply(&mut mapped, &mut net, 0.5).unwrap();
        mapped.load_effective_weights(&mut net).unwrap();
        let after: Vec<f32> = net.layer_params_mut(0).unwrap().weights.to_vec();
        assert_ne!(before, after, "hardware weights must move");
    }

    #[test]
    fn ledger_counts_writes_per_cell() {
        let (mut net, mut mapped) = setup();
        mapped.load_effective_weights(&mut net).unwrap();
        one_backward(&mut net);
        let mut trainer = ThresholdTrainer::new(ThresholdPolicy::None, &mapped);
        let report = trainer.apply(&mut mapped, &mut net, 0.1).unwrap();
        let ledger_total: u64 = trainer.write_amounts(0).iter().map(|&n| u64::from(n)).sum();
        assert_eq!(ledger_total, report.writes_issued);
    }

    #[test]
    fn wear_aware_raises_thresholds_for_hot_cells() {
        let policy = ThresholdPolicy::WearAware {
            fraction: 0.01,
            growth: 1.0,
        };
        let cold = policy.threshold(1.0, 0);
        let hot = policy.threshold(1.0, 100);
        assert!(hot > cold * 50.0);
    }

    #[test]
    fn nan_gradients_are_skipped_and_counted() {
        let (mut net, mut mapped) = setup();
        mapped.load_effective_weights(&mut net).unwrap();
        // Back-propagate a diverged loss gradient: NaN and ∞ entries in the
        // output gradient poison the corresponding weight-gradient columns
        // (0·NaN = NaN, so every row of those columns is non-finite).
        let x = Tensor::from_vec(vec![1, 8], vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        net.forward_train(&x);
        let g = Tensor::from_vec(vec![1, 4], vec![f32::NAN, f32::INFINITY, 0.5, -0.25]);
        net.backward(&g);
        let mut trainer = ThresholdTrainer::new(ThresholdPolicy::paper_default(), &mapped);
        let report = trainer.apply(&mut mapped, &mut net, 0.1).unwrap();
        // Two poisoned weight gradients (row 0, columns 0 and 1) plus two
        // poisoned bias entries: all skipped, none written.
        assert_eq!(report.nan_updates_skipped, 2 + 2);
        assert!(report.max_abs_dw.is_finite());
        assert!(report.max_abs_dw > 0.0, "finite columns still contribute");
        // No NaN reached the hardware or the off-chip biases.
        mapped.load_effective_weights(&mut net).unwrap();
        let params = net.layer_params_mut(0).unwrap();
        assert!(params.weights.iter().all(|w| w.is_finite()));
        assert!(params.bias.unwrap().iter().all(|b| b.is_finite()));
    }

    #[test]
    fn all_zero_gradient_iteration_skips_deterministically() {
        let (mut net, mut mapped) = setup();
        mapped.load_effective_weights(&mut net).unwrap();
        // An all-zero output gradient makes every weight/bias gradient zero.
        let x = Tensor::from_vec(
            vec![4, 8],
            (0..32).map(|i| (i as f32 * 0.4).sin()).collect(),
        );
        net.forward_train(&x);
        let g = Tensor::from_vec(vec![4, 4], vec![0.0; 16]);
        net.backward(&g);
        let mut trainer = ThresholdTrainer::new(ThresholdPolicy::paper_default(), &mapped);
        let before = trainer.write_amounts(0).to_vec();
        let report = trainer.apply(&mut mapped, &mut net, 0.1).unwrap();
        assert_eq!(report.max_abs_dw, 0.0);
        assert_eq!(
            report.writes_issued, 0,
            "a zero iteration must not pulse cells"
        );
        assert_eq!(report.writes_skipped, 32);
        assert_eq!(trainer.write_amounts(0), before.as_slice());
        // Running it twice is bit-identical (deterministic skip).
        let report2 = trainer.apply(&mut mapped, &mut net, 0.1).unwrap();
        assert_eq!(report.writes_skipped, report2.writes_skipped);
    }

    #[test]
    fn mismatched_network_surfaces_typed_error() {
        let (mut net, mut mapped) = setup();
        mapped.load_effective_weights(&mut net).unwrap();
        one_backward(&mut net);
        let mut trainer = ThresholdTrainer::new(ThresholdPolicy::None, &mapped);
        // A network whose mapped layer index points at nothing: empty net.
        let mut other = Network::new();
        let err = trainer.apply(&mut mapped, &mut other, 0.1);
        assert!(err.is_err(), "foreign network must error, not panic");
    }

    #[test]
    fn bias_updates_always_apply() {
        let (mut net, mut mapped) = setup();
        mapped.load_effective_weights(&mut net).unwrap();
        one_backward(&mut net);
        let bias_before: Vec<f32> = net.layer_params_mut(0).unwrap().bias.unwrap().to_vec();
        let mut trainer = ThresholdTrainer::new(
            ThresholdPolicy::Fixed { fraction: 10.0 }, // suppress every weight write
            &mapped,
        );
        let report = trainer.apply(&mut mapped, &mut net, 0.1).unwrap();
        assert_eq!(report.writes_issued, 0);
        let bias_after: Vec<f32> = net.layer_params_mut(0).unwrap().bias.unwrap().to_vec();
        assert_ne!(
            bias_before, bias_after,
            "biases live off-chip and always update"
        );
    }
}

//! Pluggable time sources for span timing.
//!
//! Spans (and only spans) need a notion of *duration*; the event stream is
//! stamped with the [`crate::event::LogicalTime`] logical clock instead, so
//! it stays bit-identical across runs and thread counts. A [`Recorder`]
//! therefore carries a `Box<dyn Clock>`:
//!
//! * [`WallClock`] — monotonic wall time ([`std::time::Instant`]) for
//!   release binaries and benchmarks;
//! * [`LogicalClock`] — a deterministic tick counter for tests, so span
//!   histograms are reproducible byte-for-byte.
//!
//! [`Recorder`]: crate::recorder::Recorder

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
///
/// Implementations must be cheap (called twice per span) and monotonic per
/// clock instance; they need not be monotonic *across* instances.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Nanoseconds elapsed on this clock's own timeline.
    fn now_ns(&self) -> u64;
}

/// Monotonic wall time, anchored at clock construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock starting at zero now.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        // Saturating: an Instant elapsed of > 584 years is unrepresentable
        // anyway; `as u64` of the u128 is effectively exact.
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

/// A deterministic clock: every reading advances the timeline by a fixed
/// step, so two identical instrumented runs produce identical span
/// durations regardless of host speed.
#[derive(Debug)]
pub struct LogicalClock {
    ticks: AtomicU64,
    step: u64,
}

impl LogicalClock {
    /// A logical clock advancing `step` "nanoseconds" per reading.
    pub fn new(step: u64) -> Self {
        Self {
            ticks: AtomicU64::new(0),
            step,
        }
    }

    /// Manually advances the timeline (e.g. to model a long phase).
    pub fn advance(&self, ns: u64) {
        self.ticks.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Default for LogicalClock {
    fn default() -> Self {
        Self::new(1)
    }
}

impl Clock for LogicalClock {
    fn now_ns(&self) -> u64 {
        self.ticks.fetch_add(self.step, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn logical_clock_is_deterministic() {
        let clock = LogicalClock::new(3);
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.now_ns(), 3);
        clock.advance(100);
        assert_eq!(clock.now_ns(), 106);
    }
}

//! End-to-end training tests: the substrate must actually learn.

use nn::loss::softmax_cross_entropy;
use nn::metrics::accuracy;
use nn::models::{mlp_784_100_10, vgg11_cifar};
use nn::optimizer::{LrSchedule, Sgd};
use nn::pruning::{apply_mask, magnitude_prune};
use nn::synth::SyntheticDataset;

#[test]
fn mlp_learns_synthetic_mnist() {
    // The synthetic task is deliberately hard (distractor blending, see
    // DESIGN.md); its accuracy ceiling sits in the mid-80s like the
    // paper's benchmarks, so "learns" means clearly beating chance and
    // approaching that ceiling.
    let data = SyntheticDataset::mnist_like(512, 128, 7);
    let mut net = mlp_784_100_10(7);
    let mut sgd = Sgd::new(LrSchedule::step_decay(0.1, 0.6, 400));
    for (x, y) in data.train_batches(32).take(1200) {
        let logits = net.forward_train(&x);
        let (_, grad) = softmax_cross_entropy(&logits, &y);
        net.backward(&grad);
        sgd.step(&mut net);
    }
    let (tx, ty) = data.test_set();
    let acc = accuracy(&net.forward(&tx), &ty);
    assert!(
        acc > 0.72,
        "MLP should approach the task ceiling, got {acc}"
    );
}

#[test]
fn scaled_vgg11_learns_synthetic_cifar() {
    let data = SyntheticDataset::cifar_like(256, 64, 3);
    let mut net = vgg11_cifar(16, 3);
    let mut sgd = Sgd::new(LrSchedule::constant(0.02));
    for (x, y) in data.train_batches(16).take(400) {
        let logits = net.forward_train(&x);
        let (_, grad) = softmax_cross_entropy(&logits, &y);
        net.backward(&grad);
        sgd.step(&mut net);
    }
    let (tx, ty) = data.test_set();
    let acc = accuracy(&net.forward(&tx), &ty);
    assert!(
        acc > 0.3,
        "scaled VGG-11 should beat chance clearly, got {acc}"
    );
}

#[test]
fn pruned_mlp_still_learns() {
    // The re-mapping step relies on ≥50% sparsity costing little accuracy.
    let data = SyntheticDataset::mnist_like(512, 128, 11);
    let mut net = mlp_784_100_10(11);
    let mut sgd = Sgd::new(LrSchedule::constant(0.1));
    for (x, y) in data.train_batches(32).take(1000) {
        let logits = net.forward_train(&x);
        let (_, grad) = softmax_cross_entropy(&logits, &y);
        net.backward(&grad);
        sgd.step(&mut net);
    }
    let mask = magnitude_prune(&mut net, 0.5);
    apply_mask(&mut net, &mask);
    // Brief fine-tune with the mask re-applied after each step.
    for (x, y) in data.train_batches(32).take(300) {
        let logits = net.forward_train(&x);
        let (_, grad) = softmax_cross_entropy(&logits, &y);
        net.backward(&grad);
        sgd.step(&mut net);
        apply_mask(&mut net, &mask);
    }
    let (tx, ty) = data.test_set();
    let acc = accuracy(&net.forward(&tx), &ty);
    assert!(acc > 0.7, "50%-pruned MLP should stay accurate, got {acc}");
}

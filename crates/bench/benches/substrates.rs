//! Criterion benches for the simulator substrates: crossbar MVM scaling,
//! detection campaign cost, re-mapping search throughput, and the
//! threshold-training iteration overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faultdet::detector::{DetectorConfig, OnlineFaultDetector};
use ftt_core::config::{FlowConfig, MappingConfig, MappingScope, RemapConfig};
use ftt_core::flow::FaultTolerantTrainer;
use ftt_core::remap::{CostModel, RemapAlgorithm, RemapProblem};
use nn::models::mlp_784_100_10;
use nn::optimizer::LrSchedule;
use nn::pruning::magnitude_prune;
use nn::synth::SyntheticDataset;
use rand::Rng;
use rram::crossbar::{Crossbar, CrossbarBuilder};
use rram::spatial::SpatialDistribution;
use std::hint::black_box;

fn programmed(size: usize, seed: u64) -> Crossbar {
    let mut xbar = CrossbarBuilder::new(size, size)
        .initial_faults(SpatialDistribution::Uniform, 0.1)
        .seed(seed)
        .build()
        .expect("valid crossbar");
    let mut rng = rram::rng::sim_rng(seed);
    for r in 0..size {
        for c in 0..size {
            let _ = xbar.write_level(r, c, rng.gen_range(0..8)).expect("in range");
        }
    }
    xbar
}

fn bench_mvm(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_mvm");
    for size in [64usize, 128, 256, 512] {
        let xbar = programmed(size, 1);
        let input = vec![0.5f32; size];
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(xbar.mvm(black_box(&input)).expect("mvm")));
        });
    }
    group.finish();
}

fn bench_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection_campaign");
    group.sample_size(10);
    for size in [64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter_batched(
                || programmed(size, 2),
                |mut xbar| {
                    let detector =
                        OnlineFaultDetector::new(DetectorConfig::new(8).expect("size"));
                    black_box(detector.run(&mut xbar).expect("campaign"));
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_remap(c: &mut Criterion) {
    let mut group = c.benchmark_group("remap_search");
    group.sample_size(10);
    let mut net = mlp_784_100_10(1);
    let mapped = ftt_core::mapping::MappedNetwork::from_network(
        &mut net,
        MappingConfig::new(MappingScope::EntireNetwork)
            .with_initial_fault_fraction(0.3)
            .with_seed(5),
    )
    .expect("mapping");
    let mask = magnitude_prune(&mut net, 0.5);
    let problem =
        RemapProblem::with_ground_truth(&mapped, &mask, CostModel::PaperDist).expect("problem");
    for budget in [1000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, &budget| {
            b.iter(|| {
                black_box(problem.solve(
                    &mapped,
                    &RemapConfig {
                        algorithm: RemapAlgorithm::SwapHillClimb,
                        cost: CostModel::PaperDist,
                        iterations: budget,
                        seed: 3,
                    },
                ))
            });
        });
    }
    group.finish();
}

fn bench_training_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_iteration");
    group.sample_size(10);
    let data = SyntheticDataset::mnist_like(128, 32, 3);
    for (label, flow) in [
        ("original", FlowConfig::original().with_lr(LrSchedule::constant(0.1))),
        ("threshold", FlowConfig::threshold_only().with_lr(LrSchedule::constant(0.1))),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    FaultTolerantTrainer::new(
                        mlp_784_100_10(1),
                        MappingConfig::new(MappingScope::EntireNetwork).with_seed(1),
                        flow.clone(),
                    )
                    .expect("trainer")
                },
                |mut trainer| {
                    trainer.train(&data, 10).expect("train");
                    black_box(trainer.iteration());
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mvm,
    bench_detection,
    bench_remap,
    bench_training_iteration
);
criterion_main!(benches);

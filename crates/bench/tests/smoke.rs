//! Miniature versions of the paper's experiments, asserting the orderings
//! that `EXPERIMENTS.md` reports — a regression net over the full pipeline.

use faultdet::adaptive::AdaptiveDetector;
use faultdet::detector::{DetectorConfig, OnlineFaultDetector, TestMode};
use faultdet::march::MarchTest;
use faultdet::metrics::DetectionReport;
use ftt_bench::{run_flow, CurveRun};
use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use nn::init::init_rng;
use nn::layers::{Dense, Relu};
use nn::network::Network;
use nn::optimizer::LrSchedule;
use nn::synth::SyntheticDataset;
use rand::Rng;
use rram::crossbar::{Crossbar, CrossbarBuilder};
use rram::endurance::EnduranceModel;
use rram::spatial::SpatialDistribution;

fn small_net(seed: u64) -> Network {
    let mut rng = init_rng(seed);
    let mut net = Network::new();
    net.push(Dense::new(784, 24, &mut rng));
    net.push(Relu::new());
    net.push(Dense::new(24, 10, &mut rng));
    net
}

fn programmed(n: usize, fraction: f64, seed: u64) -> Crossbar {
    let mut xbar = CrossbarBuilder::new(n, n)
        .initial_faults(SpatialDistribution::Uniform, fraction)
        .seed(seed)
        .build()
        .unwrap();
    let mut rng = rram::rng::sim_rng(seed + 1);
    for r in 0..n {
        for c in 0..n {
            let _ = xbar.write_level(r, c, rng.gen_range(0..8)).unwrap();
        }
    }
    xbar
}

/// Fig. 6 miniature: precision rises as the test size shrinks.
#[test]
fn fig6_precision_trend_holds() {
    let mut precisions = Vec::new();
    for test_size in [32usize, 8, 2] {
        let mut total = 0.0;
        for seed in 0..3u64 {
            let mut xbar = programmed(64, 0.1, seed);
            let truth = xbar.fault_map();
            let outcome = OnlineFaultDetector::new(DetectorConfig::new(test_size).unwrap())
                .run(&mut xbar)
                .unwrap();
            total += DetectionReport::evaluate(&truth, &outcome.predicted).precision();
        }
        precisions.push(total / 3.0);
    }
    assert!(
        precisions[0] < precisions[1] && precisions[1] < precisions[2],
        "{precisions:?}"
    );
}

/// §6.3 miniature: selected-cell testing beats all-cells precision.
#[test]
fn selected_cells_beat_all_cells() {
    let (mut a, mut b) = (programmed(64, 0.1, 4), programmed(64, 0.1, 4));
    let truth = a.fault_map();
    let all = OnlineFaultDetector::new(DetectorConfig::new(16).unwrap())
        .run(&mut a)
        .unwrap();
    let sel = OnlineFaultDetector::new(
        DetectorConfig::new(16)
            .unwrap()
            .with_mode(TestMode::default_selected()),
    )
    .run(&mut b)
    .unwrap();
    let ap = DetectionReport::evaluate(&truth, &all.predicted).precision();
    let sp = DetectionReport::evaluate(&truth, &sel.predicted).precision();
    assert!(sp > ap, "selected {sp} vs all {ap}");
    assert!(sel.write_pulses < all.write_pulses);
}

/// §1 miniature: March is exact but orders of magnitude slower.
#[test]
fn march_is_exact_but_slow() {
    let mut a = programmed(64, 0.1, 5);
    let truth = a.fault_map();
    let march = MarchTest::new().run(&mut a).unwrap();
    assert_eq!(&march.predicted, &truth);
    let mut b = programmed(64, 0.1, 5);
    let quiescent = OnlineFaultDetector::new(DetectorConfig::new(8).unwrap())
        .run(&mut b)
        .unwrap();
    assert!(march.cycles > 100 * quiescent.cycles());
}

/// Extension miniature: adaptive testing wins in the sparse regime.
#[test]
fn adaptive_wins_when_sparse() {
    let mut a = programmed(128, 0.001, 6);
    let adaptive = AdaptiveDetector::new(DetectorConfig::new(128).unwrap())
        .run(&mut a)
        .unwrap();
    let mut b = programmed(128, 0.001, 6);
    let fixed = OnlineFaultDetector::new(DetectorConfig::new(1).unwrap())
        .run(&mut b)
        .unwrap();
    assert!(adaptive.cycles < fixed.sa0_cycles + fixed.sa1_cycles);
    assert_eq!(&adaptive.predicted, &fixed.predicted);
}

/// Fig. 7 miniature: under wear, threshold and the full flow beat the
/// original method, and the original method loses most of its cells.
#[test]
fn fig7_ordering_holds() {
    let data = SyntheticDataset::mnist_like(240, 60, 5);
    let iters = 700u64;
    let mapping = || {
        MappingConfig::new(MappingScope::EntireNetwork)
            .with_initial_fault_fraction(0.1)
            .with_endurance(EnduranceModel::new(iters as f64, 0.3 * iters as f64))
            .with_seed(13)
    };
    let lr = LrSchedule::constant(0.1);
    let runs: Vec<CurveRun> = vec![
        run_flow(
            "original",
            small_net(1),
            mapping(),
            FlowConfig::original().with_lr(lr),
            &data,
            iters,
        ),
        run_flow(
            "threshold",
            small_net(1),
            mapping(),
            FlowConfig::threshold_only().with_lr(lr),
            &data,
            iters,
        ),
        run_flow(
            "fault_tolerant",
            small_net(1),
            mapping(),
            FlowConfig::fault_tolerant()
                .with_lr(lr)
                .with_detection_interval(200)
                .with_detection_warmup(350),
            &data,
            iters,
        ),
    ];
    let orig = &runs[0];
    let thr = &runs[1];
    let ft = &runs[2];
    assert!(
        orig.final_faulty > 3.0 * thr.final_faulty,
        "original wears the chip: {} vs {}",
        orig.final_faulty,
        thr.final_faulty
    );
    assert!(
        thr.curve.final_accuracy() > orig.curve.final_accuracy(),
        "threshold {} vs original {}",
        thr.curve.final_accuracy(),
        orig.curve.final_accuracy()
    );
    assert!(
        ft.curve.final_accuracy() > orig.curve.final_accuracy(),
        "fault-tolerant {} vs original {}",
        ft.curve.final_accuracy(),
        orig.curve.final_accuracy()
    );
}

/// §5.1 miniature: threshold training's write ratio implies a lifetime
/// factor of at least 5x on the sparse task.
#[test]
fn threshold_lifetime_factor() {
    let data = SyntheticDataset::mnist_like(240, 60, 5);
    let mapping = MappingConfig::new(MappingScope::EntireNetwork).with_seed(2);
    let orig = run_flow(
        "original",
        small_net(3),
        mapping.clone(),
        FlowConfig::original().with_lr(LrSchedule::constant(0.1)),
        &data,
        300,
    );
    let thr = run_flow(
        "threshold",
        small_net(3),
        mapping,
        FlowConfig::threshold_only().with_lr(LrSchedule::constant(0.1)),
        &data,
        300,
    );
    let ratio = thr.stats.writes_issued as f64 / orig.stats.writes_issued as f64;
    assert!(ratio < 0.2, "write ratio {ratio}");
}

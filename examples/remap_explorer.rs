//! Re-mapping search comparison (§5.2 of the paper).
//!
//! Builds an MLP on faulty crossbars, prunes it to 60 % sparsity, and runs
//! every re-mapping algorithm against the same `Dist(P, F)` instance —
//! showing how much of the fault set each search manages to park under
//! pruned zeros, and the difference between the paper's cost model and the
//! extended (SA1-aware) one.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example remap_explorer
//! ```

use ftt_core::config::{MappingConfig, MappingScope, RemapConfig};
use ftt_core::mapping::MappedNetwork;
use ftt_core::remap::{CostModel, RemapAlgorithm, RemapProblem};
use nn::init::init_rng;
use nn::layers::{Dense, Relu};
use nn::network::Network;
use nn::pruning::magnitude_prune;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-layer MLP: two permutable hidden-neuron groups.
    let mut rng = init_rng(1);
    let mut net = Network::new();
    net.push(Dense::new(64, 96, &mut rng));
    net.push(Relu::new());
    net.push(Dense::new(96, 48, &mut rng));
    net.push(Relu::new());
    net.push(Dense::new(48, 10, &mut rng));

    let mapped = MappedNetwork::from_network(
        &mut net,
        MappingConfig::new(MappingScope::EntireNetwork)
            .with_initial_fault_fraction(0.15)
            .with_seed(5),
    )?;
    let mask = magnitude_prune(&mut net, 0.6);
    println!(
        "network: 64-96-48-10, 15% faults, 60% pruned; {} cells total",
        64 * 96 + 96 * 48 + 48 * 10
    );

    for cost_model in [CostModel::PaperDist, CostModel::Extended] {
        let problem = RemapProblem::with_ground_truth(&mapped, &mask, cost_model)?;
        println!();
        println!(
            "== cost model {cost_model:?} (baseline Dist = {}) ==",
            problem.baseline_cost()
        );
        println!("algorithm, search budget, Dist after search");
        for (label, algorithm, iterations) in [
            ("identity", RemapAlgorithm::Identity, 0usize),
            ("random shuffle", RemapAlgorithm::RandomShuffle, 0),
            (
                "swap hill-climb (paper)",
                RemapAlgorithm::SwapHillClimb,
                20_000,
            ),
            (
                "genetic (pop 16, 4 islands)",
                RemapAlgorithm::Genetic {
                    population: 16,
                    islands: 4,
                },
                20_000,
            ),
        ] {
            let plan = problem.solve(
                &mapped,
                &RemapConfig {
                    algorithm,
                    cost: cost_model,
                    iterations,
                    seed: 9,
                },
            );
            println!("{label}, {iterations}, {}", plan.final_cost);
        }
    }
    println!();
    println!("note: SA1 cost is permutation-invariant, so the Extended model's");
    println!("floor is the SA1 count; only SA0 errors can be re-mapped away.");
    Ok(())
}

//! Weight ↔ conductance codecs.
//!
//! RCS designs store a weight matrix on cell conductances. Two schemes are
//! provided:
//!
//! * [`UnipolarCodec`] — one cell per weight, encoding the magnitude of a
//!   non-negative weight. This is the *logical* granularity the paper's
//!   re-mapping reasons at (a pruned zero weight ↔ a minimum-conductance
//!   cell, which is what lets a zero "reuse" an SA0 cell).
//! * [`DifferentialCodec`] — the common physical scheme with a positive and
//!   a negative crossbar (`w ∝ g⁺ − g⁻`), supporting signed weights.

use crate::error::RramError;

/// Quantizes a normalized value in `[0, 1]` to the nearest of `L` levels.
///
/// # Example
///
/// ```
/// use rram::quantize::LevelQuantizer;
///
/// # fn main() -> Result<(), rram::RramError> {
/// let q = LevelQuantizer::new(8)?;
/// assert_eq!(q.quantize(0.0), 0);
/// assert_eq!(q.quantize(1.0), 7);
/// assert_eq!(q.quantize(0.5), 4); // 3.5 rounds half-up to 4
/// assert!((q.dequantize(4) - 4.0 / 7.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelQuantizer {
    levels: u16,
}

impl LevelQuantizer {
    /// Creates a quantizer with `levels` levels.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::InvalidConfig`] if `levels < 2`.
    pub fn new(levels: u16) -> Result<Self, RramError> {
        if levels < 2 {
            return Err(RramError::InvalidConfig(format!(
                "quantizer needs >= 2 levels, got {levels}"
            )));
        }
        Ok(Self { levels })
    }

    /// Number of levels.
    pub fn levels(&self) -> u16 {
        self.levels
    }

    /// Nearest level for a normalized value (values are clamped to `[0, 1]`).
    pub fn quantize(&self, normalized: f64) -> u16 {
        let clamped = normalized.clamp(0.0, 1.0);
        (clamped * f64::from(self.levels - 1)).round() as u16
    }

    /// Normalized value of a level.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels`.
    pub fn dequantize(&self, level: u16) -> f64 {
        assert!(level < self.levels, "level {level} out of range");
        f64::from(level) / f64::from(self.levels - 1)
    }

    /// The quantization step size (distance between adjacent levels).
    pub fn step(&self) -> f64 {
        1.0 / f64::from(self.levels - 1)
    }
}

/// One-cell-per-weight codec for non-negative weights in `[0, w_max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnipolarCodec {
    w_max: f64,
    quantizer: LevelQuantizer,
}

impl UnipolarCodec {
    /// Creates a codec for weights in `[0, w_max]` on `levels`-level cells.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::InvalidConfig`] if `w_max <= 0` or `levels < 2`.
    pub fn new(w_max: f64, levels: u16) -> Result<Self, RramError> {
        if !(w_max.is_finite() && w_max > 0.0) {
            return Err(RramError::InvalidConfig(format!(
                "w_max must be positive, got {w_max}"
            )));
        }
        Ok(Self {
            w_max,
            quantizer: LevelQuantizer::new(levels)?,
        })
    }

    /// The full-scale weight.
    pub fn w_max(&self) -> f64 {
        self.w_max
    }

    /// Encodes a weight to a level (clamping to the representable range).
    pub fn encode(&self, weight: f64) -> u16 {
        self.quantizer.quantize(weight / self.w_max)
    }

    /// Decodes a conductance (normalized `[0, 1]`) back to a weight.
    pub fn decode(&self, conductance: f64) -> f64 {
        conductance * self.w_max
    }

    /// Decodes a level back to a weight.
    pub fn decode_level(&self, level: u16) -> f64 {
        self.quantizer.dequantize(level) * self.w_max
    }
}

/// Differential-pair codec: a signed weight `w ∈ [-w_max, w_max]` is stored
/// as conductances on a positive and a negative array with `w ∝ g⁺ − g⁻`.
///
/// Encoding is one-sided (the inactive polarity is driven to level 0), which
/// maximizes the representable range and means a *pruned zero weight maps
/// both cells to the minimum conductance* — the property the re-mapping step
/// exploits for SA0 faults in either array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DifferentialCodec {
    w_max: f64,
    quantizer: LevelQuantizer,
}

impl DifferentialCodec {
    /// Creates a codec for weights in `[-w_max, w_max]`.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::InvalidConfig`] if `w_max <= 0` or `levels < 2`.
    pub fn new(w_max: f64, levels: u16) -> Result<Self, RramError> {
        if !(w_max.is_finite() && w_max > 0.0) {
            return Err(RramError::InvalidConfig(format!(
                "w_max must be positive, got {w_max}"
            )));
        }
        Ok(Self {
            w_max,
            quantizer: LevelQuantizer::new(levels)?,
        })
    }

    /// The full-scale weight magnitude.
    pub fn w_max(&self) -> f64 {
        self.w_max
    }

    /// Encodes a signed weight as `(positive_level, negative_level)`.
    pub fn encode(&self, weight: f64) -> (u16, u16) {
        if weight >= 0.0 {
            (self.quantizer.quantize(weight / self.w_max), 0)
        } else {
            (0, self.quantizer.quantize(-weight / self.w_max))
        }
    }

    /// Decodes a pair of normalized conductances back to a signed weight.
    pub fn decode(&self, g_pos: f64, g_neg: f64) -> f64 {
        (g_pos - g_neg) * self.w_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantizer_roundtrips_levels() {
        let q = LevelQuantizer::new(8).unwrap();
        for level in 0..8u16 {
            assert_eq!(q.quantize(q.dequantize(level)), level);
        }
        assert!((q.step() - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn quantizer_clamps() {
        let q = LevelQuantizer::new(8).unwrap();
        assert_eq!(q.quantize(-0.5), 0);
        assert_eq!(q.quantize(1.5), 7);
    }

    #[test]
    fn unipolar_roundtrip_error_bounded_by_half_step() {
        let codec = UnipolarCodec::new(2.0, 8).unwrap();
        let half_step_weight = 0.5 * (1.0 / 7.0) * 2.0;
        for i in 0..=20 {
            let w = 2.0 * f64::from(i) / 20.0;
            let decoded = codec.decode_level(codec.encode(w));
            assert!(
                (decoded - w).abs() <= half_step_weight + 1e-12,
                "w={w} decoded={decoded}"
            );
        }
    }

    #[test]
    fn differential_encodes_sign_one_sided() {
        let codec = DifferentialCodec::new(1.0, 8).unwrap();
        let (p, n) = codec.encode(0.5);
        assert!(p > 0 && n == 0);
        let (p, n) = codec.encode(-0.5);
        assert!(p == 0 && n > 0);
        let (p, n) = codec.encode(0.0);
        assert_eq!((p, n), (0, 0));
    }

    #[test]
    fn differential_roundtrip() {
        let codec = DifferentialCodec::new(1.0, 8).unwrap();
        let q = LevelQuantizer::new(8).unwrap();
        for i in -10..=10 {
            let w = f64::from(i) / 10.0;
            let (p, n) = codec.encode(w);
            let decoded = codec.decode(q.dequantize(p), q.dequantize(n));
            assert!((decoded - w).abs() <= 0.5 * q.step() + 1e-12);
        }
    }

    #[test]
    fn codecs_reject_bad_w_max() {
        assert!(UnipolarCodec::new(0.0, 8).is_err());
        assert!(UnipolarCodec::new(-1.0, 8).is_err());
        assert!(DifferentialCodec::new(f64::NAN, 8).is_err());
        assert!(LevelQuantizer::new(1).is_err());
    }
}

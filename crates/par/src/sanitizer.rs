//! Runtime determinism sanitizer for the `par` fork-join helpers.
//!
//! The crate's determinism contract (DESIGN.md §6/§9) is structural:
//! every helper assigns work by index and composes results in ascending
//! chunk order, so outputs are bit-identical to the sequential schedule
//! at any thread budget. The sanitizer turns that structural argument
//! into a *checked* one: when enabled, every parallel fan-out records
//! its chunk boundaries and the order in which per-chunk results were
//! composed, and cross-checks both against the single-thread reference
//! schedule (ascending, disjoint, exact cover of `0..n`). A mismatch is
//! recorded as a [`Violation`] — it never panics, so the sanitizer can
//! run under the chaos harness and report through it.
//!
//! Enablement, in precedence order:
//!
//! 1. [`set_enabled`]`(Some(true|false))` — programmatic override used
//!    by tests and the chaos `sanitize` family;
//! 2. the `RRAM_FTT_SANITIZE=1` environment variable (read once);
//! 3. off (the default — the cost on hot paths is then a single relaxed
//!    atomic load per fan-out).
//!
//! Sequential fallback paths record nothing: they *are* the reference
//! schedule. Reports accumulate process-globally and are drained with
//! [`take_report`] at the end of a run.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// One detected divergence from the single-thread schedule.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The helper that recorded the schedule (`"par_map"`, …).
    pub helper: &'static str,
    /// Problem size the schedule was recorded for.
    pub n: usize,
    /// What diverged (coverage hole, overlap, or composition-order
    /// fingerprint mismatch, with both fingerprints).
    pub detail: String,
}

/// Drained sanitizer state: what was checked and what diverged.
#[derive(Debug, Clone)]
pub struct SanitizerReport {
    /// Parallel fan-outs whose schedules were cross-checked.
    pub calls_checked: u64,
    /// Divergences found (empty on a healthy run).
    pub violations: Vec<Violation>,
}

impl SanitizerReport {
    /// Whether every checked schedule matched the sequential reference.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Programmatic override: 0 = unset (fall back to env), 1 = on, 2 = off.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static CALLS_CHECKED: AtomicU64 = AtomicU64::new(0);
static VIOLATIONS: Mutex<Vec<Violation>> = Mutex::new(Vec::new());

/// Whether the sanitizer is recording schedules.
#[inline]
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            static FROM_ENV: OnceLock<bool> = OnceLock::new();
            *FROM_ENV.get_or_init(|| {
                std::env::var("RRAM_FTT_SANITIZE").map(|v| v.trim() == "1") == Ok(true)
            })
        }
    }
}

/// Forces the sanitizer on or off for this process; `None` restores the
/// `RRAM_FTT_SANITIZE` env behaviour. Used by tests and the chaos
/// `sanitize` family so coverage does not depend on the environment.
pub fn set_enabled(on: Option<bool>) {
    let v = match on {
        Some(true) => 1,
        Some(false) => 2,
        None => 0,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// FNV-1a 64-bit over a `usize` sequence — the schedule fingerprint.
fn fingerprint(seq: impl Iterator<Item = usize>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in seq {
        for b in (v as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn push_violation(helper: &'static str, n: usize, detail: String) {
    let mut g = VIOLATIONS.lock().unwrap_or_else(|e| e.into_inner());
    // Bound the log: a systematically broken schedule would otherwise
    // grow without limit inside a long chaos run.
    if g.len() < 1024 {
        g.push(Violation { helper, n, detail });
    }
}

/// Records one parallel call's schedule and cross-checks it against the
/// single-thread reference: `boundaries` are the `(start, len)` chunk
/// spans in ascending index order, `combine_order` is the chunk order
/// in which results were actually composed (written back / reduced).
///
/// The reference schedule visits `0..n` ascending exactly once, so the
/// invariants are: boundaries tile `0..n` with no holes or overlaps,
/// and the composition-order fingerprint equals the ascending-order
/// fingerprint. Divergences are recorded, never panicked on.
///
/// Public so tests and the chaos harness can plant deliberate
/// out-of-order schedules and assert they are caught.
pub fn record_schedule(
    helper: &'static str,
    n: usize,
    boundaries: &[(usize, usize)],
    combine_order: &[usize],
) {
    CALLS_CHECKED.fetch_add(1, Ordering::Relaxed);

    // Coverage: ascending, contiguous, exact tile of 0..n.
    let mut next = 0usize;
    for &(start, len) in boundaries {
        if start != next || len == 0 {
            push_violation(
                helper,
                n,
                format!(
                    "chunk boundaries do not tile 0..{n}: got (start={start}, len={len}) \
                     where start {next} was expected"
                ),
            );
            return;
        }
        next += len;
    }
    if next != n {
        push_violation(
            helper,
            n,
            format!("chunk boundaries cover 0..{next} but the problem size is {n}"),
        );
        return;
    }

    // Composition order: must equal the sequential (ascending) schedule.
    if combine_order.len() != boundaries.len() {
        push_violation(
            helper,
            n,
            format!(
                "composed {} partials but recorded {} chunks",
                combine_order.len(),
                boundaries.len()
            ),
        );
        return;
    }
    let actual = fingerprint(combine_order.iter().copied());
    let expected = fingerprint(0..boundaries.len());
    if actual != expected {
        push_violation(
            helper,
            n,
            format!(
                "composition order diverges from the single-thread schedule: \
                 fingerprint {actual:#018x}, expected {expected:#018x} \
                 (order {combine_order:?})"
            ),
        );
    }
}

/// Drains the accumulated report (violations and the checked-call
/// counter reset to empty/zero).
pub fn take_report() -> SanitizerReport {
    let violations = {
        let mut g = VIOLATIONS.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *g)
    };
    SanitizerReport {
        calls_checked: CALLS_CHECKED.swap(0, Ordering::Relaxed),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sanitizer state is process-global; tests share it through the
    // same lock discipline the chaos harness uses.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn conforming_schedule_is_clean() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _ = take_report();
        record_schedule("t", 10, &[(0, 4), (4, 4), (8, 2)], &[0, 1, 2]);
        let rep = take_report();
        assert_eq!(rep.calls_checked, 1);
        assert!(rep.is_clean(), "{:?}", rep.violations);
    }

    #[test]
    fn planted_out_of_order_reduction_is_detected() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _ = take_report();
        // Chunks tile 0..8 correctly, but the partials were combined in
        // reversed order — exactly the class of bug a racy reduction
        // would introduce.
        record_schedule("t", 8, &[(0, 4), (4, 4)], &[1, 0]);
        let rep = take_report();
        assert_eq!(rep.violations.len(), 1, "{:?}", rep.violations);
        assert!(rep.violations[0].detail.contains("composition order"));
        assert!(rep.violations[0].detail.contains("fingerprint"));
    }

    #[test]
    fn coverage_holes_and_overlaps_are_detected() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _ = take_report();
        record_schedule("t", 8, &[(0, 4), (5, 3)], &[0, 1]); // hole at 4
        record_schedule("t", 8, &[(0, 4), (3, 5)], &[0, 1]); // overlap at 3
        record_schedule("t", 8, &[(0, 4)], &[0]); // short cover
        let rep = take_report();
        assert_eq!(rep.violations.len(), 3, "{:?}", rep.violations);
    }

    #[test]
    fn override_controls_enablement() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(Some(true));
        assert!(enabled());
        set_enabled(Some(false));
        assert!(!enabled());
        set_enabled(None);
    }
}

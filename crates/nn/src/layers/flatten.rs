//! Flattening between convolutional and dense stages.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Reshapes `[B, C, H, W]` (or any `[B, ...]`) activations to `[B, features]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    in_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self { in_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let s = input.shape();
        assert!(s.len() >= 2, "flatten expects a batch dimension, got {s:?}");
        let batch = s[0];
        let features: usize = s[1..].iter().product();
        if train {
            self.in_shape = Some(s.to_vec());
        }
        input.clone().reshape(vec![batch, features])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        #[allow(clippy::expect_used)]
        // PANIC-OK: documented `Layer::backward` contract — a training-mode
        // forward must precede backward (see the trait's `# Panics` section).
        let shape = self
            .in_shape
            .take()
            .expect("backward called without a training-mode forward");
        grad_out.clone().reshape(shape)
    }

    fn kind(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_and_restores_shape() {
        let mut flat = Flatten::new();
        let x = Tensor::zeros(vec![2, 3, 4, 4]);
        let y = flat.forward(&x, true);
        assert_eq!(y.shape(), &[2, 48]);
        let g = Tensor::zeros(vec![2, 48]);
        let dx = flat.backward(&g);
        assert_eq!(dx.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn already_flat_input_is_passthrough() {
        let mut flat = Flatten::new();
        let x = Tensor::from_vec(vec![2, 5], vec![1.0; 10]);
        let y = flat.forward(&x, false);
        assert_eq!(y.shape(), &[2, 5]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    #[should_panic(expected = "without a training-mode forward")]
    fn backward_requires_forward() {
        let mut flat = Flatten::new();
        let _ = flat.backward(&Tensor::zeros(vec![1, 1]));
    }
}

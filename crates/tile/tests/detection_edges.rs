//! Tile-edge detection regressions (DESIGN.md §11.3).
//!
//! Campaigns are tile-local: comparison groups (Tr/Tc) never span shard
//! edges, and the mod-16 ADC reference grid restarts at each shard
//! origin. These tests pin the two consequences that matter:
//!
//! 1. **Remainder shards sweep remainder groups.** A test size that
//!    divides neither the shard rows nor the shard columns must still
//!    sweep `ceil(rows/t) + ceil(cols/t)` groups per pass *per shard*,
//!    and a fault parked in the trailing corner of the trailing remainder
//!    shard must be localized.
//! 2. **Aliasing is shard-local.** The §4.2 mod-16 false negative (group
//!    deviations summing to 0 mod 16) happens inside one shard's group;
//!    the same run of faulty cells split across a tile edge lands in two
//!    half-full groups whose deviations no longer alias — tile edges
//!    *break up* aliasing runs.

use faultdet::detector::{DetectorConfig, OnlineFaultDetector};
use ftt_tile::{ChipConfig, TiledChip, TiledMapping};
use rram::fault::{FaultKind, FaultMap};

/// A chip + mapping with every cell programmed to `level` (of 8),
/// variation-free — the deterministic substrate the faultdet regressions
/// use, sharded.
fn uniform_tiled(
    rows: usize,
    cols: usize,
    tile_size: usize,
    level: u16,
) -> (TiledChip, TiledMapping) {
    let mut chip = TiledChip::new(ChipConfig::new(tile_size, 8, 99)).unwrap();
    let tiled = TiledMapping::allocate(&mut chip, rows, cols).unwrap();
    let g = f64::from(level) / 7.0;
    tiled.program(&mut chip, &vec![g; rows * cols]).unwrap();
    (chip, tiled)
}

#[test]
fn remainder_groups_sweep_at_shard_boundaries() {
    // 10×7 on 4×4 tiles: a 3×2 shard grid with 4×4, 4×3, 2×4, and 2×3
    // shards. Tr = 3 divides none of the edge-shard dimensions.
    let (rows, cols, ts, t) = (10usize, 7usize, 4usize, 3usize);
    let (mut chip, tiled) = uniform_tiled(rows, cols, ts, 3);

    // One fault in the logical far corner — the trailing 2×3 remainder
    // shard's trailing remainder group in both directions.
    let mut injected = FaultMap::healthy(rows, cols);
    injected.set(rows - 1, cols - 1, Some(FaultKind::StuckAt0));
    tiled.apply_fault_map(&mut chip, &injected).unwrap();

    let detector = OnlineFaultDetector::new(DetectorConfig::new(t).unwrap());
    let stats = chip.run_campaigns(&detector, tiled.tile_ids());
    assert_eq!(stats.campaigns_run as usize, tiled.tile_ids().len());
    assert_eq!(
        stats.untested_groups, 0,
        "every remainder group must be swept"
    );
    assert_eq!(stats.flagged_cells, 1, "exactly the injected fault");

    // Per-shard cycle accounting: groups never span tile edges, so each
    // shard's SA0 pass sweeps ceil(sr/t) + ceil(sc/t) groups of its own.
    for (shard, &id) in tiled.grid().iter().zip(tiled.tile_ids()) {
        let outcome = chip.last_detection(id).unwrap().expect("campaign ran");
        let expected = (shard.rows.div_ceil(t) + shard.cols.div_ceil(t)) as u64;
        assert_eq!(
            outcome.sa0_cycles, expected,
            "shard at ({},{}) [{}x{}]: a remainder group was dropped",
            shard.row0, shard.col0, shard.rows, shard.cols
        );
    }

    // The composed logical prediction localizes the corner fault exactly.
    let corner_tile = *tiled.tile_ids().last().unwrap();
    let outcome = chip.last_detection(corner_tile).unwrap().unwrap();
    // The trailing shard is 2×3; the fault sits at its local corner.
    assert_eq!(outcome.predicted.get(1, 2), Some(FaultKind::StuckAt0));
    assert_eq!(outcome.predicted.count_faulty(), 1);
}

#[test]
fn mod16_aliasing_is_shard_local() {
    // 32×16 on 16×16 tiles: two stacked shards, each a single 16-row
    // group at Tr = 16. 16 SA0 cells at level 3 lose 48 levels on the
    // column sum — 48 ≡ 0 (mod 16), the §4.2 aliasing escape.
    let run = |fault_rows: std::ops::Range<usize>| {
        let (mut chip, tiled) = uniform_tiled(32, 16, 16, 3);
        let mut injected = FaultMap::healthy(32, 16);
        for r in fault_rows {
            injected.set(r, 5, Some(FaultKind::StuckAt0));
        }
        tiled.apply_fault_map(&mut chip, &injected).unwrap();
        let detector =
            OnlineFaultDetector::new(DetectorConfig::new(16).unwrap().with_modulo_divisor(16));
        let stats = chip.run_campaigns(&detector, tiled.tile_ids());
        assert_eq!(stats.campaigns_run, 2);
        stats.flagged_cells
    };

    // All 16 faults inside one shard's group: the deviation aliases to
    // 0 mod 16 and every fault escapes — the paper's recall ceiling,
    // unchanged by tiling when the run fits in a shard.
    assert_eq!(
        run(0..16),
        0,
        "the documented in-shard mod-16 false negative disappeared"
    );

    // The same 16 faults crossing the tile edge: 8 land in each shard's
    // group, each deviating 24 ≡ 8 (mod 16) — visible in both shards, so
    // the tile edge breaks the aliasing run and all 16 are localized.
    assert_eq!(
        run(8..24),
        16,
        "a tile-edge-split aliasing run must be fully localized"
    );
}

#[test]
fn shard_local_adc_grid_restarts_at_tile_origin() {
    // A control for the aliasing case: with divisor 32 the in-shard run
    // is visible too, and the composed logical fault map equals the
    // injected ground truth on both geometries.
    for fault_rows in [0usize..16, 8..24] {
        let (mut chip, tiled) = uniform_tiled(32, 16, 16, 3);
        let mut injected = FaultMap::healthy(32, 16);
        for r in fault_rows.clone() {
            injected.set(r, 5, Some(FaultKind::StuckAt0));
        }
        tiled.apply_fault_map(&mut chip, &injected).unwrap();
        let detector =
            OnlineFaultDetector::new(DetectorConfig::new(16).unwrap().with_modulo_divisor(32));
        let stats = chip.run_campaigns(&detector, tiled.tile_ids());
        assert_eq!(stats.flagged_cells, 16, "rows {fault_rows:?}");
        // Compose per-shard predictions into logical coordinates and
        // compare against the injected map.
        let mut composed = FaultMap::healthy(32, 16);
        for (shard, &id) in tiled.grid().iter().zip(tiled.tile_ids()) {
            let outcome = chip.last_detection(id).unwrap().unwrap();
            for (r, c, kind) in outcome.predicted.iter_faulty() {
                composed.set(shard.row0 + r, shard.col0 + c, Some(kind));
            }
        }
        assert_eq!(composed, injected, "rows {fault_rows:?}");
    }
}

//! Fault localization from two-direction test flags.
//!
//! A row-direction test cycle drives one *group* of rows and compares every
//! column output; a mismatch flags `(row-group, column)` — "at least one
//! cell in these rows of this column failed to update". The column-direction
//! pass symmetrically flags `(column-group, row)`. A cell is predicted
//! faulty when it sits at the intersection of a flagged column and a flagged
//! row (Fig. 4 of the paper), restricted to the candidate cells under test.

use std::collections::BTreeSet;

use rram::fault::{FaultKind, FaultMap};

use crate::selected::CandidateMask;

/// Mismatch flags collected by one fault-kind pass.
#[derive(Debug, Clone, Default)]
pub struct FlagSet {
    /// Flags from row-direction tests: `(row_group_index, column)`.
    ///
    /// A `BTreeSet` (not `HashSet`) so that any future iteration over
    /// the flags is deterministic — the D1 lint bans unordered
    /// collections in the detection path.
    row_test: BTreeSet<(usize, usize)>,
    /// Flags from column-direction tests: `(column_group_index, row)`.
    col_test: BTreeSet<(usize, usize)>,
}

impl FlagSet {
    /// Creates an empty flag set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a mismatch seen while driving row group `group` on column
    /// output `col`.
    pub fn flag_row_test(&mut self, group: usize, col: usize) {
        self.row_test.insert((group, col));
    }

    /// Records a mismatch seen while driving column group `group` on row
    /// output `row`.
    pub fn flag_col_test(&mut self, group: usize, row: usize) {
        self.col_test.insert((group, row));
    }

    /// Number of row-direction flags.
    pub fn row_test_flags(&self) -> usize {
        self.row_test.len()
    }

    /// Number of column-direction flags.
    pub fn col_test_flags(&self) -> usize {
        self.col_test.len()
    }

    /// Whether the row-direction pass flagged `(group, col)`.
    pub fn has_row_flag(&self, group: usize, col: usize) -> bool {
        self.row_test.contains(&(group, col))
    }

    /// Whether the column-direction pass flagged `(group, row)`.
    pub fn has_col_flag(&self, group: usize, row: usize) -> bool {
        self.col_test.contains(&(group, row))
    }

    /// Predicts the fault map: a candidate cell `(r, c)` is predicted to
    /// carry `kind` iff its row group flagged column `c` **and** its column
    /// group flagged row `r`.
    ///
    /// `test_size` must be the group size used while collecting the flags.
    ///
    /// # Panics
    ///
    /// Panics if `test_size` is zero.
    pub fn predict(
        &self,
        candidates: &CandidateMask,
        kind: FaultKind,
        test_size: usize,
    ) -> FaultMap {
        assert!(test_size > 0, "test size must be non-zero");
        let (rows, cols) = (candidates.rows(), candidates.cols());
        let mut map = FaultMap::healthy(rows, cols);
        // An intersection needs flags from both directions.
        if self.row_test.is_empty() || self.col_test.is_empty() {
            return map;
        }
        // Dense lookup tables instead of per-candidate set queries: candidate
        // coordinates are bounded by the array, so flags outside it (callers
        // may record them) can never join an intersection and are skipped.
        let row_groups = rows.div_ceil(test_size);
        let col_groups = cols.div_ceil(test_size);
        let mut row_lut = vec![false; row_groups * cols];
        for &(group, col) in &self.row_test {
            if group < row_groups && col < cols {
                row_lut[group * cols + col] = true;
            }
        }
        let mut col_lut = vec![false; col_groups * rows];
        for &(group, row) in &self.col_test {
            if group < col_groups && row < rows {
                col_lut[group * rows + row] = true;
            }
        }
        for (r, c) in candidates.iter() {
            if row_lut[(r / test_size) * cols + c] && col_lut[(c / test_size) * rows + r] {
                map.set(r, c, Some(kind));
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fault_is_localized_exactly() {
        // 10x10, test size 5, fault at (2, 7): row test flags (group 0, col 7),
        // column test flags (group 1, row 2).
        let mut flags = FlagSet::new();
        flags.flag_row_test(0, 7);
        flags.flag_col_test(1, 2);
        let candidates = CandidateMask::all(10, 10);
        let map = flags.predict(&candidates, FaultKind::StuckAt0, 5);
        assert_eq!(map.count_faulty(), 1);
        assert_eq!(map.get(2, 7), Some(FaultKind::StuckAt0));
    }

    #[test]
    fn cross_product_false_positives_emerge() {
        // Faults at (0, 0) and (1, 1) share both the row group and the
        // column group (test size 5), so the intersections (0,1) and (1,0)
        // are also predicted — the Fig. 4(a) false-positive pattern.
        let mut flags = FlagSet::new();
        flags.flag_row_test(0, 0);
        flags.flag_row_test(0, 1);
        flags.flag_col_test(0, 0);
        flags.flag_col_test(0, 1);
        let candidates = CandidateMask::all(10, 10);
        let map = flags.predict(&candidates, FaultKind::StuckAt0, 5);
        assert_eq!(map.count_faulty(), 4);
        for (r, c) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            assert!(map.get(r, c).is_some());
        }
    }

    #[test]
    fn candidates_limit_predictions() {
        // Same flags as above, but only (0,0) is a candidate: the selected-
        // cell improvement removes the other three predictions.
        let mut flags = FlagSet::new();
        flags.flag_row_test(0, 0);
        flags.flag_row_test(0, 1);
        flags.flag_col_test(0, 0);
        flags.flag_col_test(0, 1);
        let mut xbar = rram::crossbar::CrossbarBuilder::new(10, 10)
            .seed(0)
            .build()
            .unwrap();
        // Mark every cell except (0,0) as high level → not SA0 candidates.
        for r in 0..10 {
            for c in 0..10 {
                if (r, c) != (0, 0) {
                    xbar.write_level(r, c, 7).unwrap();
                }
            }
        }
        let store = crate::reference::OffChipStore::read_from(&xbar);
        let candidates = CandidateMask::sa0_candidates(&store, 0);
        let map = flags.predict(&candidates, FaultKind::StuckAt0, 5);
        assert_eq!(map.count_faulty(), 1);
        assert_eq!(map.get(0, 0), Some(FaultKind::StuckAt0));
    }

    #[test]
    fn one_direction_alone_is_not_enough() {
        let mut flags = FlagSet::new();
        flags.flag_row_test(0, 3);
        let candidates = CandidateMask::all(8, 8);
        let map = flags.predict(&candidates, FaultKind::StuckAt1, 4);
        assert_eq!(map.count_faulty(), 0);
        assert_eq!(flags.row_test_flags(), 1);
        assert_eq!(flags.col_test_flags(), 0);
    }
}

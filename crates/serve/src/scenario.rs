//! The seeded reference scenario.
//!
//! One function, [`run_reference_scenario`], builds the acceptance
//! deployment — two chip nodes, two training tenants, one inference
//! tenant — and drives it through a scripted day of traffic: steady
//! load, one overflow burst (sheds), one quiet window (lull campaigns),
//! and one spare-pool exhaustion (migration). It returns everything the
//! determinism gates byte-compare: the JSONL event trace, the Prometheus
//! rendering, and the output/parameter fingerprints.
//!
//! The demo binary, the chaos `serve` family, and the unit tests all
//! run *this* function, so "the demo is deterministic" and "the tests
//! pass" are the same statement.

use obs::JsonlSink;

use crate::config::{ChipNodeConfig, ServiceConfig};
use crate::error::ServeError;
use crate::queue::Admission;
use crate::service::Service;
use crate::tenant::{InferenceSpec, TenantSpec, TrainingSpec};
use crate::workload::{WorkloadGen, WorkloadSpec};
use ftt_tile::LullConfig;

/// Ticks of scripted traffic (drain ticks come on top).
const SCRIPT_TICKS: u64 = 28;
/// Bound on extra drain ticks after the script ends.
const DRAIN_TICKS: u64 = 50;

/// Everything a determinism gate needs to byte-compare two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioReport {
    /// JSONL event trace (one object per line).
    pub trace: String,
    /// Prometheus text rendering of the final registry.
    pub prometheus: String,
    /// Running FNV-1a fingerprint of the inference tenant's outputs.
    pub output_fingerprint: u64,
    /// `(tenant, fingerprint)` of each training tenant's parameters.
    pub param_fingerprints: Vec<(String, u64)>,
    /// Requests shed (hard + soft backpressure).
    pub sheds: u64,
    /// Lull-gated campaign passes run on the fleet.
    pub lull_campaigns: u64,
    /// Tenant migrations completed.
    pub migrations: u64,
    /// Total ticks run (script + drain).
    pub ticks: u64,
}

/// The scenario's service configuration.
pub fn reference_config(seed: u64) -> ServiceConfig {
    ServiceConfig {
        seed,
        nodes: vec![
            ChipNodeConfig::new(8, 8, 48).with_spare_tiles(2),
            ChipNodeConfig::new(8, 8, 48).with_spare_tiles(2),
        ],
        queue_capacity: 6,
        queue_high_water: 4,
        max_batch: 4,
        campaign_interval: 4,
        detector_test_size: 4,
        lull: LullConfig {
            idle_threshold: 2,
            max_defer: 3,
        },
    }
}

/// The migrating training tenant: one spare, a dense fault map, and an
/// aggressive retirement threshold, so the first detection campaigns
/// burn the spare pool and trigger a snapshot-backed migration.
fn train_a(seed: u64) -> TrainingSpec {
    TrainingSpec {
        name: "train-a".into(),
        inputs: 36,
        hidden: 10,
        classes: 3,
        train_n: 48,
        test_n: 12,
        seed: seed ^ 0xA1,
        tile_quota: 12,
        fault_fraction: 0.3,
        spare_tiles: 1,
        retire_fault_density: 0.02,
        detection_interval: 4,
        detection_warmup: 2,
    }
}

/// The benign training tenant: few faults, a tolerant retirement
/// threshold, and a slow campaign cadence — it should finish the run on
/// the chip it started on.
fn train_b(seed: u64) -> TrainingSpec {
    TrainingSpec {
        name: "train-b".into(),
        inputs: 36,
        hidden: 8,
        classes: 3,
        train_n: 48,
        test_n: 12,
        seed: seed ^ 0xB2,
        tile_quota: 10,
        fault_fraction: 0.05,
        spare_tiles: 1,
        retire_fault_density: 0.5,
        detection_interval: 8,
        detection_warmup: 4,
    }
}

/// The inference tenant sharing the fleet.
fn infer_c(seed: u64) -> InferenceSpec {
    InferenceSpec {
        name: "infer-c".into(),
        rows: 48,
        cols: 12,
        weight_seed: seed ^ 0xC3,
        tile_quota: 12,
    }
}

/// The scripted arrival process for `infer-c`.
fn reference_workload() -> WorkloadSpec {
    WorkloadSpec {
        base_rate: 3,
        lull_start: 10,
        lull_end: 14,
        burst_tick: Some(5),
        burst_size: 12,
    }
}

/// Build the reference deployment, run the scripted traffic, drain, and
/// report. Pure function of `seed` (plus the thread budget, which must
/// not matter — that is the invariant the gates check).
pub fn run_reference_scenario(seed: u64) -> Result<ScenarioReport, ServeError> {
    let mut service = Service::new(reference_config(seed))?;
    let trace_sink = JsonlSink::new();
    let trace_view = trace_sink.view();
    service.recorder().add_sink(Box::new(trace_sink));

    service.register(TenantSpec::Training(train_a(seed)))?;
    service.register(TenantSpec::Training(train_b(seed)))?;
    service.register(TenantSpec::Inference(infer_c(seed)))?;

    let infer_name = infer_c(seed).name;
    let rows = infer_c(seed).rows;
    let mut workload = WorkloadGen::new(seed ^ 0x77, reference_workload());
    for tick in 0..SCRIPT_TICKS {
        for input in workload.requests_for_tick(tick, rows) {
            // Sheds and backpressure are expected scenario traffic, not
            // errors; the service records them.
            let _admission: Admission = service.submit(&infer_name, input);
        }
        service.tick()?;
    }
    let drained = service.drain(DRAIN_TICKS)?;

    let mut param_fingerprints = Vec::new();
    for name in ["train-a", "train-b"] {
        if let Some(fp) = service.tenant_params_fingerprint(name) {
            param_fingerprints.push((name.to_string(), fp));
        }
    }
    service.recorder().flush();
    Ok(ScenarioReport {
        trace: trace_view.contents(),
        prometheus: service.recorder().render_prometheus(),
        output_fingerprint: service.output_fingerprint(&infer_name).unwrap_or(0),
        param_fingerprints,
        sheds: service.sheds(),
        lull_campaigns: service.lull_campaigns(),
        migrations: service.migrations(),
        ticks: SCRIPT_TICKS + drained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_scenario_hits_every_acceptance_event() {
        let report = run_reference_scenario(42).expect("scenario");
        assert!(report.sheds > 0, "burst should shed: {report:?}");
        assert!(
            report.lull_campaigns > 0,
            "quiet window should run campaigns"
        );
        assert!(report.migrations >= 1, "train-a should migrate");
        assert_eq!(report.param_fingerprints.len(), 2);
        assert!(report.trace.contains("\"serve_shed\""));
        assert!(report.trace.contains("\"serve_batch_executed\""));
        assert!(report.trace.contains("\"serve_lull_campaign\""));
        assert!(report.trace.contains("\"serve_migration_start\""));
        assert!(report.trace.contains("\"serve_migration_end\""));
        assert!(report.prometheus.contains("serve_requests_admitted_total"));
        assert!(report.prometheus.contains("tenant=\"infer-c\""));
    }

    #[test]
    fn same_seed_is_byte_identical_across_runs() {
        let a = run_reference_scenario(7).expect("scenario");
        let b = run_reference_scenario(7).expect("scenario");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_reference_scenario(1).expect("scenario");
        let b = run_reference_scenario(2).expect("scenario");
        assert_ne!(a.output_fingerprint, b.output_fingerprint);
    }
}

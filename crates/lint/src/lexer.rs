//! A small, line-oriented Rust token scanner.
//!
//! This is *not* a parser: it classifies the character stream into just
//! enough token kinds for policy checks — identifiers, punctuation,
//! numeric literals (with float/int distinction), string/char literals,
//! attributes, and comments — while tracking line numbers. Its one hard
//! job is never to report a token from inside a string, char literal, or
//! comment, and never to lose a comment's text (annotation markers such
//! as `PANIC-OK:` live there).
//!
//! Supported syntax: line + nested block comments, `"…"` strings with
//! escapes, raw strings `r#"…"#` (any hash depth, plus `b`/`br`
//! prefixes), char literals vs. lifetimes, numeric literals with `_`
//! separators / exponents / type suffixes, and outer (`#[…]`) and inner
//! (`#![…]`) attributes captured as single balanced tokens.

/// Classification of a scanned token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `fn`, …).
    Ident,
    /// Punctuation; multi-char operators `==`, `!=`, `::`, `..`, `->`,
    /// `=>` are combined into one token.
    Punct,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Floating literal (`1.0`, `0.`, `1e-3`, `2f32`).
    Float,
    /// String literal (regular, raw, or byte), quotes included.
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// A whole attribute, `#[…]` or `#![…]`, captured balanced.
    Attr,
}

/// One scanned token: kind, 1-based line of its first character, and its
/// source text.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token classification.
    pub kind: TokenKind,
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// The token's source text.
    pub text: String,
}

/// A comment captured during scanning (tokens never include comments;
/// checks consult this side channel for annotation markers).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// Comment text including the `//` / `/*` introducer.
    pub text: String,
}

/// Result of scanning one source file.
#[derive(Debug, Default)]
pub struct Scan {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order (line and block).
    pub comments: Vec<Comment>,
}

impl Scan {
    /// True when any comment *starting* on `line` (or a block comment
    /// covering it) contains `marker`.
    pub fn comment_on_line_contains(&self, line: usize, marker: &str) -> bool {
        self.comments.iter().any(|c| {
            let span = c.text.matches('\n').count();
            line >= c.line && line <= c.line + span && c.text.contains(marker)
        })
    }

    /// True when `marker` appears in a comment on `line` or on any of
    /// the `lookback` lines before it. This is the annotation rule used
    /// by `PANIC-OK:` / `CAST-OK:` / `SAFETY:`.
    pub fn has_marker_near(&self, line: usize, lookback: usize, marker: &str) -> bool {
        let lo = line.saturating_sub(lookback);
        (lo..=line).any(|l| self.comment_on_line_contains(l, marker))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scanner state over a char vector (we index chars, not bytes, so
/// multi-byte characters in comments/strings cannot split tokens).
struct Scanner {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Scan,
}

impl Scanner {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push_token(&mut self, kind: TokenKind, line: usize, text: String) {
        self.out.tokens.push(Token { kind, line, text });
    }

    /// Consume a `//…` comment (to end of line, newline not consumed).
    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.pos += 1; // never a newline, so no line bump needed
        }
        self.out.comments.push(Comment { line, text });
    }

    /// Consume a `/* … */` comment, honoring nesting.
    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '/' && self.peek(0) == Some('*') {
                text.push('*');
                self.bump();
                depth += 1;
            } else if c == '*' && self.peek(0) == Some('/') {
                text.push('/');
                self.bump();
                if depth == 1 {
                    break;
                }
                depth = depth.saturating_sub(1);
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// Consume a regular `"…"` string (opening quote already pending at
    /// `pos`); returns its text including quotes.
    fn quoted_string(&mut self) -> String {
        let mut text = String::new();
        // Opening quote.
        if let Some(c) = self.bump() {
            text.push(c);
        }
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    // Skip the escaped character (handles \" and \\).
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        text
    }

    /// Consume a raw string `r#*"…"#*` whose `r` has already been
    /// consumed; `hashes` is the number of `#` after `r`.
    fn raw_string(&mut self, mut text: String, hashes: usize) -> String {
        // Opening quote.
        if let Some(c) = self.bump() {
            text.push(c);
        }
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    text.push('"');
                    let mut seen = 0;
                    while seen < hashes && self.peek(0) == Some('#') {
                        text.push('#');
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(c) => text.push(c),
            }
        }
        text
    }

    /// Consume an attribute starting at `#` (optionally `#!`), capturing
    /// balanced `[…]` while respecting strings and comments inside.
    fn attribute(&mut self) {
        let line = self.line;
        let mut text = String::new();
        text.push('#');
        self.bump();
        if self.peek(0) == Some('!') {
            text.push('!');
            self.bump();
        }
        if self.peek(0) != Some('[') {
            // Stray `#` (e.g. inside macro_rules) — emit as punct.
            self.push_token(TokenKind::Punct, line, text);
            return;
        }
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            match c {
                '[' => {
                    depth += 1;
                    text.push(c);
                    self.bump();
                }
                ']' => {
                    text.push(c);
                    self.bump();
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                '"' => text.push_str(&self.quoted_string()),
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                _ => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push_token(TokenKind::Attr, line, text);
    }

    /// Consume a numeric literal; classifies float vs. int.
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut is_float = false;

        // Hex/octal/binary prefixes are always integers.
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('X') | Some('o') | Some('b'))
        {
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_token(TokenKind::Int, line, text);
            return;
        }

        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Decimal point: only when not `..` (range) and not a method
        // call on a literal (`1.max(2)`).
        if self.peek(0) == Some('.') {
            let next = self.peek(1);
            let is_range = next == Some('.');
            let is_method = next.map(is_ident_start).unwrap_or(false);
            if !is_range && !is_method {
                is_float = true;
                text.push('.');
                self.bump();
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let mut ahead = 1;
            if matches!(self.peek(1), Some('+') | Some('-')) {
                ahead = 2;
            }
            if self
                .peek(ahead)
                .map(|c| c.is_ascii_digit())
                .unwrap_or(false)
            {
                is_float = true;
                for _ in 0..ahead {
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (f32/f64 forces float; u8/i64/usize stay int).
        if self.peek(0).map(is_ident_start).unwrap_or(false) {
            let mut suffix = String::new();
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    suffix.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            if suffix == "f32" || suffix == "f64" {
                is_float = true;
            }
            text.push_str(&suffix);
        }
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push_token(kind, line, text);
    }

    /// After a `'`: char literal or lifetime?
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let mut text = String::from("'");
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal.
                text.push('\\');
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
                // Consume up to the closing quote (covers \u{…}).
                while let Some(c) = self.bump() {
                    text.push(c);
                    if c == '\'' {
                        break;
                    }
                }
                self.push_token(TokenKind::Char, line, text);
            }
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char; `'a` (no closing quote) is a lifetime.
                let mut ident = String::new();
                let mut ahead = 0;
                while let Some(n) = self.peek(ahead) {
                    if is_ident_continue(n) {
                        ident.push(n);
                        ahead += 1;
                    } else {
                        break;
                    }
                }
                if self.peek(ahead) == Some('\'') && ident.chars().count() == 1 {
                    // Char literal 'x'.
                    for _ in 0..=ahead {
                        if let Some(ch) = self.bump() {
                            text.push(ch);
                        }
                    }
                    self.push_token(TokenKind::Char, line, text);
                } else {
                    for _ in 0..ahead {
                        if let Some(ch) = self.bump() {
                            text.push(ch);
                        }
                    }
                    self.push_token(TokenKind::Lifetime, line, text);
                }
            }
            Some(c) => {
                // Punctuation char literal like '(' or ' '.
                text.push(c);
                self.bump();
                if self.peek(0) == Some('\'') {
                    text.push('\'');
                    self.bump();
                }
                self.push_token(TokenKind::Char, line, text);
            }
            None => self.push_token(TokenKind::Punct, line, text),
        }
    }
}

/// Scan `source` into tokens + comments.
pub fn scan(source: &str) -> Scan {
    let mut s = Scanner {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Scan::default(),
    };

    while let Some(c) = s.peek(0) {
        match c {
            c if c.is_whitespace() => {
                s.bump();
            }
            '/' if s.peek(1) == Some('/') => s.line_comment(),
            '/' if s.peek(1) == Some('*') => s.block_comment(),
            '#' => s.attribute(),
            '"' => {
                let line = s.line;
                let text = s.quoted_string();
                s.push_token(TokenKind::Str, line, text);
            }
            'r' | 'b' => {
                // Raw / byte strings: r", r#", br", b", b#…
                let line = s.line;
                let mut ahead = 1;
                let mut prefix = String::new();
                prefix.push(c);
                if c == 'b' && s.peek(1) == Some('r') {
                    prefix.push('r');
                    ahead = 2;
                }
                let mut hashes = 0;
                while s.peek(ahead) == Some('#') {
                    hashes += 1;
                    ahead += 1;
                }
                if s.peek(ahead) == Some('"') && (hashes == 0 || prefix.ends_with('r') || c == 'r')
                {
                    // It is a (raw/byte) string start.
                    for _ in 0..ahead {
                        s.bump();
                    }
                    let text = if hashes == 0 && !prefix.ends_with('r') && c == 'b' {
                        // b"…" is escape-processed like a normal string.
                        let mut t = prefix.clone();
                        t.push_str(&s.quoted_string());
                        t
                    } else if hashes == 0 && (c == 'r' || prefix.ends_with('r')) {
                        let mut t = prefix.clone();
                        t.push_str(&s.raw_string(String::new(), 0));
                        t
                    } else {
                        let mut t = prefix.clone();
                        for _ in 0..hashes {
                            t.push('#');
                        }
                        t.push_str(&s.raw_string(String::new(), hashes));
                        t
                    };
                    s.push_token(TokenKind::Str, line, text);
                } else {
                    // Plain identifier starting with r/b.
                    let mut text = String::new();
                    while let Some(n) = s.peek(0) {
                        if is_ident_continue(n) {
                            text.push(n);
                            s.bump();
                        } else {
                            break;
                        }
                    }
                    s.push_token(TokenKind::Ident, line, text);
                }
            }
            '\'' => s.char_or_lifetime(),
            c if c.is_ascii_digit() => s.number(),
            c if is_ident_start(c) => {
                let line = s.line;
                let mut text = String::new();
                while let Some(n) = s.peek(0) {
                    if is_ident_continue(n) {
                        text.push(n);
                        s.bump();
                    } else {
                        break;
                    }
                }
                s.push_token(TokenKind::Ident, line, text);
            }
            _ => {
                let line = s.line;
                let mut text = String::new();
                text.push(c);
                s.bump();
                // Combine the two-char operators checks care about.
                if let Some(n) = s.peek(0) {
                    let pair = matches!(
                        (c, n),
                        ('=', '=')
                            | ('!', '=')
                            | (':', ':')
                            | ('.', '.')
                            | ('-', '>')
                            | ('=', '>')
                            | ('&', '&')
                            | ('|', '|')
                            | ('<', '=')
                            | ('>', '=')
                    );
                    if pair {
                        text.push(n);
                        s.bump();
                    }
                }
                s.push_token(TokenKind::Punct, line, text);
            }
        }
    }
    s.out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        scan(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_are_side_channeled_not_tokens() {
        let s = scan("let x = 1; // PANIC-OK: fine\n/* block\nspans */ let y = 2;");
        assert!(s.tokens.iter().all(|t| !t.text.contains("PANIC")));
        assert_eq!(s.comments.len(), 2);
        assert!(s.comment_on_line_contains(1, "PANIC-OK:"));
        assert!(s.has_marker_near(3, 2, "block"));
    }

    #[test]
    fn strings_hide_operators_and_markers() {
        let toks = kinds(r#"let s = "a == b // not a comment"; x == y"#);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        let eqs = toks.iter().filter(|(_, t)| t == "==").count();
        assert_eq!(eqs, 1, "only the code `==` outside the string counts");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r##"let s = r#"embedded "quotes" and == ops"#; a != b"##);
        let eqs = toks.iter().filter(|(_, t)| t == "!=" || t == "==").count();
        assert_eq!(eqs, 1);
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = kinds(
            "let a = 1.0; let b = 0.; let c = 1e-3; let d = 2f32; \
                          let e = 42; let f = 0xFF; for i in 0..10 {}",
        );
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(floats, vec!["1.0", "0.", "1e-3", "2f32"]);
        let ints: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Int)
            .map(|(_, t)| t.clone())
            .collect();
        assert!(ints.contains(&"42".to_string()));
        assert!(ints.contains(&"0xFF".to_string()));
        assert!(ints.contains(&"0".to_string()) && ints.contains(&"10".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "'x'"));
    }

    #[test]
    fn attributes_are_single_balanced_tokens() {
        let toks = kinds("#[allow(clippy::unwrap_used)]\nfn f() {}\n#![warn(missing_docs)]");
        let attrs: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Attr)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(attrs.len(), 2);
        assert!(attrs[0].contains("unwrap_used"));
        assert!(attrs[1].starts_with("#!["));
    }

    #[test]
    fn escaped_quotes_do_not_terminate_strings() {
        let toks = kinds(r#"let s = "he said \"==\" loudly"; y"#);
        let eqs = toks.iter().filter(|(_, t)| t == "==").count();
        assert_eq!(eqs, 0);
    }

    #[test]
    fn line_numbers_track_newlines_in_all_token_shapes() {
        let src = "line1();\n\"multi\nline\nstring\";\nafter();";
        let s = scan(src);
        let after = s.tokens.iter().find(|t| t.text == "after");
        assert_eq!(after.map(|t| t.line), Some(5));
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner */ still comment */ code()");
        assert_eq!(s.comments.len(), 1);
        assert!(s.tokens.iter().any(|t| t.text == "code"));
        assert!(!s.tokens.iter().any(|t| t.text == "inner"));
    }
}

//! The RRAM crossbar array.
//!
//! A crossbar stores a matrix on the conductances of its cells and computes
//! analog matrix–vector products: driving voltages on the rows produces
//! column currents `i_out[k] = Σ_j g[j][k] · v_in[j]` (and symmetrically in
//! the transposed direction, which the paper's test method exploits to
//! derive row information).
//!
//! The simulator tracks, per cell: programmed level, analog conductance
//! (with write variation), hard-fault state, and remaining write endurance.
//! Every effective write consumes endurance; an exhausted cell becomes a
//! stuck-at fault — this is the mechanism that degrades on-line training in
//! the paper's motivational experiment (Fig. 1).
//!
//! # Cached conductance planes
//!
//! Cell state lives in an array-of-structs `Vec<RramCell>` (convenient for
//! the write/fault/endurance logic), but every analog *read* path — MVM in
//! both directions and the quiescent group sums of the test method — runs
//! on dense row-major **conductance planes** cached next to the cells: a
//! `Vec<f32>` for MVM SAXPY kernels and a `Vec<f64>` for the analog group
//! sums the ADC digitizes. The planes are kept coherent by construction:
//! the only two mutation funnels ([`Crossbar::apply_fault_map`] and the
//! internal `finish_write`, which every write primitive calls) refresh the
//! planes for the touched cell. Invariant, checked by the property tests:
//! `plane32[r*cols+c] == cells[r*cols+c].conductance() as f32` (and the
//! `f64` plane equals `conductance()` exactly) at every observable moment.

// Kernel module: keep the hot loops in iterator/slice style so the
// optimizer sees contiguous accesses (regressions to index loops are
// rejected at compile time).
#![deny(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::Rng;

use crate::cell::{RramCell, WriteOutcome};
use crate::endurance::EnduranceModel;
use crate::error::RramError;
use crate::fault::{FaultKind, FaultMap, FaultState};
use crate::rng::sim_rng;
use crate::spatial::{FaultInjection, SpatialDistribution};
use crate::stats::WearReport;
use crate::variation::WriteVariation;

/// Default number of programmable conductance levels (Xu et al., DAC'13).
pub const DEFAULT_LEVELS: u16 = 8;

/// Minimum number of cells before the MVM kernels fan out to worker
/// threads; below this the whole product is cheaper than one thread spawn.
const PAR_MIN_CELLS: usize = 1 << 15;

/// Whether `input` is sparse enough for the zero-skip branch to win; see
/// [`par::SPARSITY_SKIP_THRESHOLD`].
#[inline]
fn sparse_enough(input: &[f32]) -> bool {
    let zeros = input.iter().filter(|&&v| v == 0.0).count();
    // CAST-OK: a ratio test on counts; both sides fit f32 exactly for any
    // realistic crossbar dimension (< 2^24 cells per axis).
    zeros as f32 > par::SPARSITY_SKIP_THRESHOLD * input.len() as f32
}

// ---------------------------------------------------------------------------
// Lane kernels (the workspace-wide lane contract; see `par::F32_LANES`).
//
// Two shapes exist. *Output-axis* kernels (`saxpy_f32`, `accumulate_f64`)
// unroll across independent output elements: each element keeps its own
// accumulator, so the per-element accumulation order is unchanged from the
// scalar loop and results are bit-identical to the pre-lane kernels.
// *Reduction* kernels (`lane_dot_f32`, `lane_sum_f64`) fold one slice into
// `F32_LANES`/`F64_LANES` independent accumulators (remainder round-robin
// into the same accumulators) and combine them with the fixed tree pinned
// in `par` — that tree *is* the defined summation order for dot products
// and row-direction group sums.
// ---------------------------------------------------------------------------

/// `out[i] += row[i] * v`, unrolled [`par::F32_LANES`] outputs per step —
/// the shared SAXPY of both `mvm` paths.
#[inline]
fn saxpy_f32(out: &mut [f32], row: &[f32], v: f32) {
    debug_assert_eq!(out.len(), row.len());
    let mut o = out.chunks_exact_mut(par::F32_LANES);
    let mut g = row.chunks_exact(par::F32_LANES);
    for (o, g) in (&mut o).zip(&mut g) {
        o[0] += g[0] * v;
        o[1] += g[1] * v;
        o[2] += g[2] * v;
        o[3] += g[3] * v;
        o[4] += g[4] * v;
        o[5] += g[5] * v;
        o[6] += g[6] * v;
        o[7] += g[7] * v;
    }
    for (o, &g) in o.into_remainder().iter_mut().zip(g.remainder()) {
        *o += g * v;
    }
}

/// `out[i] += row[i]`, unrolled [`par::F64_LANES`] outputs per step — the
/// one column-group-sum kernel behind both the batched and the
/// single-column quiescent reads.
#[inline]
fn accumulate_f64(out: &mut [f64], row: &[f64]) {
    debug_assert_eq!(out.len(), row.len());
    let mut o = out.chunks_exact_mut(par::F64_LANES);
    let mut g = row.chunks_exact(par::F64_LANES);
    for (o, g) in (&mut o).zip(&mut g) {
        o[0] += g[0];
        o[1] += g[1];
        o[2] += g[2];
        o[3] += g[3];
    }
    for (o, &g) in o.into_remainder().iter_mut().zip(g.remainder()) {
        *o += g;
    }
}

/// Dot product over [`par::F32_LANES`] independent accumulators; the
/// remainder folds round-robin into the same accumulators, then the lane
/// tree `((a0+a1)+(a2+a3))+((a4+a5)+(a6+a7))` combines them.
#[inline]
fn lane_dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; par::F32_LANES];
    let mut ac = a.chunks_exact(par::F32_LANES);
    let mut bc = b.chunks_exact(par::F32_LANES);
    for (x, y) in (&mut ac).zip(&mut bc) {
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
        acc[4] += x[4] * y[4];
        acc[5] += x[5] * y[5];
        acc[6] += x[6] * y[6];
        acc[7] += x[7] * y[7];
    }
    for (l, (&x, &y)) in ac.remainder().iter().zip(bc.remainder()).enumerate() {
        acc[l] += x * y;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Slice sum over [`par::F64_LANES`] independent accumulators with the
/// lane tree `(a0+a1)+(a2+a3)` — the row-direction group-sum kernel.
#[inline]
fn lane_sum_f64(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; par::F64_LANES];
    let mut c = xs.chunks_exact(par::F64_LANES);
    for x in &mut c {
        acc[0] += x[0];
        acc[1] += x[1];
        acc[2] += x[2];
        acc[3] += x[3];
    }
    for (l, &x) in c.remainder().iter().enumerate() {
        acc[l] += x;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Builder for [`Crossbar`] arrays.
///
/// # Example
///
/// ```
/// use rram::crossbar::CrossbarBuilder;
/// use rram::endurance::EnduranceModel;
/// use rram::variation::WriteVariation;
/// use rram::spatial::SpatialDistribution;
///
/// # fn main() -> Result<(), rram::RramError> {
/// let xbar = CrossbarBuilder::new(128, 128)
///     .levels(8)
///     .endurance(EnduranceModel::high_endurance())
///     .variation(WriteVariation::typical())
///     .initial_faults(SpatialDistribution::Uniform, 0.10)
///     .seed(7)
///     .build()?;
/// assert_eq!(xbar.rows(), 128);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CrossbarBuilder {
    rows: usize,
    cols: usize,
    levels: u16,
    endurance: EnduranceModel,
    variation: WriteVariation,
    injection: Option<FaultInjection>,
    seed: u64,
}

impl CrossbarBuilder {
    /// Starts building a `rows × cols` crossbar.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            levels: DEFAULT_LEVELS,
            endurance: EnduranceModel::unlimited(),
            variation: WriteVariation::none(),
            injection: None,
            seed: 0,
        }
    }

    /// Sets the number of programmable levels (default 8).
    pub fn levels(mut self, levels: u16) -> Self {
        self.levels = levels;
        self
    }

    /// Sets the per-cell endurance model (default: unlimited).
    pub fn endurance(mut self, model: EnduranceModel) -> Self {
        self.endurance = model;
        self
    }

    /// Sets the write-variation model (default: none).
    pub fn variation(mut self, variation: WriteVariation) -> Self {
        self.variation = variation;
        self
    }

    /// Injects fabrication faults at build time: `fraction` of the cells
    /// become stuck (50/50 SA0/SA1), placed per `distribution`.
    pub fn initial_faults(mut self, distribution: SpatialDistribution, fraction: f64) -> Self {
        // Validation happens in `build` so the builder stays infallible.
        self.injection = FaultInjection::new(distribution, fraction).ok();
        if self.injection.is_none() {
            // Remember the invalid request so build() can report it.
            self.injection = Some(FaultInjection {
                distribution,
                fraction,
                sa0_prob: 0.5,
            });
        }
        self
    }

    /// Injects fabrication faults with full control over the campaign.
    pub fn initial_fault_injection(mut self, injection: FaultInjection) -> Self {
        self.injection = Some(injection);
        self
    }

    /// Seeds the crossbar's RNG (endurance sampling, variation, wear-out).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the crossbar.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::InvalidConfig`] for zero-sized arrays, fewer than
    /// two levels, or an out-of-range fault fraction.
    pub fn build(self) -> Result<Crossbar, RramError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(RramError::InvalidConfig(format!(
                "crossbar dimensions must be non-zero (got {}x{})",
                self.rows, self.cols
            )));
        }
        if self.levels < 2 {
            return Err(RramError::InvalidConfig(format!(
                "need at least 2 levels (got {})",
                self.levels
            )));
        }
        if let Some(inj) = &self.injection {
            if !(0.0..=1.0).contains(&inj.fraction) {
                return Err(RramError::InvalidConfig(format!(
                    "fault fraction {} outside [0, 1]",
                    inj.fraction
                )));
            }
        }
        let mut rng = sim_rng(self.seed);
        let cells: Vec<RramCell> = (0..self.rows * self.cols)
            .map(|_| RramCell::new(self.levels, self.endurance.sample(&mut rng)))
            .collect();
        let plane64: Vec<f64> = cells.iter().map(|c| c.conductance()).collect();
        // CAST-OK: the f32 plane *is defined as* the rounded view of the f64
        // master state (DESIGN.md §6); coherence tests pin this round-trip.
        let plane32: Vec<f32> = plane64.iter().map(|&g| g as f32).collect();
        let cell_count = self.rows * self.cols;
        let mut xbar = Crossbar {
            rows: self.rows,
            cols: self.cols,
            levels: self.levels,
            cells,
            plane32,
            plane64,
            endurance: self.endurance,
            variation: self.variation,
            rng,
            write_pulses: 0,
            wear_faults: 0,
            dirty_marked: vec![false; cell_count],
            dirty: Vec::new(),
            metrics: None,
        };
        if let Some(inj) = self.injection {
            let map = inj.generate(self.rows, self.cols, &mut xbar.rng);
            xbar.apply_fault_map(&map);
        }
        Ok(xbar)
    }
}

/// A simulated RRAM crossbar array.
#[derive(Debug, Clone)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    levels: u16,
    cells: Vec<RramCell>,
    /// Row-major cached conductances (`cells[i].conductance() as f32`),
    /// consumed by the dense MVM kernels. Kept coherent by `finish_write`
    /// and [`Crossbar::apply_fault_map`].
    plane32: Vec<f32>,
    /// Row-major cached conductances at full precision, consumed by the
    /// quiescent group-sum reads (the ADC digitizes analog `f64` sums).
    plane64: Vec<f64>,
    endurance: EnduranceModel,
    variation: WriteVariation,
    rng: StdRng,
    write_pulses: u64,
    wear_faults: u64,
    /// Dedup flag per cell for the dirty journal (`true` iff the cell's
    /// index is already in `dirty`).
    dirty_marked: Vec<bool>,
    /// Row-major indices of cells mutated since the last
    /// [`Crossbar::clear_dirty`], in first-touch order. Every cell-state
    /// mutation funnels through `sync_plane`, so this journal is complete:
    /// a cell absent from it cannot have changed level, conductance, or
    /// fault state. Incremental detection reference stores drain it.
    dirty: Vec<usize>,
    /// Optional telemetry handles; see [`Crossbar::attach_recorder`].
    metrics: Option<CrossbarMetrics>,
}

/// Cached telemetry counters of an instrumented crossbar. Counter adds are
/// commutative, so instrumented arrays may live on worker threads without
/// affecting determinism.
#[derive(Debug, Clone)]
struct CrossbarMetrics {
    write_pulses: obs::Counter,
    wear_faults: obs::Counter,
}

impl Crossbar {
    /// Number of rows (word lines).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (bit lines).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of programmable levels per cell.
    pub fn levels(&self) -> u16 {
        self.levels
    }

    /// Total write pulses issued to the array so far.
    pub fn write_pulses(&self) -> u64 {
        self.write_pulses
    }

    /// Number of cells that wore out (developed endurance faults) so far.
    pub fn wear_faults(&self) -> u64 {
        self.wear_faults
    }

    /// Instruments the array: every effective write pulse and wear-out
    /// fault also bumps the workspace-wide counters
    /// `rram_write_pulses_total` / `rram_wear_faults_total` on `recorder`'s
    /// registry. Clones of an instrumented crossbar share the same counter
    /// storage (handles are `Arc`s), so aggregate totals include every
    /// clone's writes.
    pub fn attach_recorder(&mut self, recorder: &obs::Recorder) {
        self.metrics = Some(CrossbarMetrics {
            write_pulses: recorder.counter("rram_write_pulses_total"),
            wear_faults: recorder.counter("rram_wear_faults_total"),
        });
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> Result<usize, RramError> {
        if row >= self.rows || col >= self.cols {
            return Err(RramError::OutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok(row * self.cols + col)
    }

    /// Immutable access to a cell.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::OutOfBounds`] for invalid coordinates.
    pub fn cell(&self, row: usize, col: usize) -> Result<&RramCell, RramError> {
        let i = self.idx(row, col)?;
        Ok(&self.cells[i])
    }

    /// The ideal programmed level at `(row, col)` (stuck cells read pinned).
    ///
    /// # Errors
    ///
    /// Returns [`RramError::OutOfBounds`] for invalid coordinates.
    pub fn read_level(&self, row: usize, col: usize) -> Result<u16, RramError> {
        Ok(self.cells[self.idx(row, col)?].level())
    }

    /// The analog conductance in `[0, 1]` at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::OutOfBounds`] for invalid coordinates.
    pub fn conductance(&self, row: usize, col: usize) -> Result<f64, RramError> {
        Ok(self.cells[self.idx(row, col)?].conductance())
    }

    /// Reads all levels row-major — the "read RRAM values, store off-chip"
    /// step at the start of the paper's test procedure.
    pub fn read_all_levels(&self) -> Vec<u16> {
        self.cells.iter().map(|c| c.level()).collect()
    }

    /// Reads all analog conductances row-major.
    pub fn read_all_conductances(&self) -> Vec<f64> {
        self.cells.iter().map(|c| c.conductance()).collect()
    }

    /// Programs the cell at `(row, col)` to `target` level.
    ///
    /// Consumes endurance when a pulse is issued; a cell whose budget is
    /// exhausted becomes stuck (SA0 with the endurance model's wear-out
    /// probability, SA1 otherwise) and the outcome reports the new fault.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::OutOfBounds`] for invalid coordinates or
    /// [`RramError::LevelOutOfRange`] for an unrepresentable level.
    pub fn write_level(
        &mut self,
        row: usize,
        col: usize,
        target: u16,
    ) -> Result<WriteOutcome, RramError> {
        if target >= self.levels {
            return Err(RramError::LevelOutOfRange {
                level: target,
                levels: self.levels,
            });
        }
        let i = self.idx(row, col)?;
        let noise = self.sample_noise();
        let outcome = self.cells[i].write_level(target, noise);
        self.finish_write(i, outcome)
    }

    /// Programs an arbitrary analog conductance in `[0, 1]` — the write
    /// primitive on-line *training* uses (test writes use the level-grid
    /// [`Crossbar::nudge`]; see §4.2 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`RramError::OutOfBounds`] for invalid coordinates and
    /// [`RramError::NonFiniteValue`] for a NaN/infinite target (which would
    /// otherwise poison the cached conductance planes).
    pub fn write_analog(
        &mut self,
        row: usize,
        col: usize,
        target: f64,
    ) -> Result<WriteOutcome, RramError> {
        if !target.is_finite() {
            return Err(RramError::NonFiniteValue {
                context: "write_analog target",
            });
        }
        let i = self.idx(row, col)?;
        let noise = self.sample_noise();
        let outcome = self.cells[i].write_analog(target, noise);
        self.finish_write(i, outcome)
    }

    /// Bulk-programs every cell from a row-major conductance plane in
    /// `[0, 1]` — one [`Crossbar::write_analog`] per cell, in row-major
    /// order (so the write-noise RNG stream matches a per-cell loop
    /// exactly). Returns the number of cells whose value actually changed;
    /// stuck/exhausted cells are skipped silently, matching how array
    /// initialization treats pre-existing faults.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::DimensionMismatch`] when `targets.len()` is not
    /// `rows * cols`, and [`RramError::NonFiniteValue`] on any NaN/infinite
    /// target (cells before the offending one stay programmed).
    pub fn program_conductances(&mut self, targets: &[f64]) -> Result<u64, RramError> {
        if targets.len() != self.rows * self.cols {
            return Err(RramError::DimensionMismatch {
                expected: self.rows * self.cols,
                actual: targets.len(),
            });
        }
        let mut changed = 0u64;
        for r in 0..self.rows {
            for c in 0..self.cols {
                let outcome = self.write_analog(r, c, targets[r * self.cols + c])?;
                if outcome.changed() {
                    changed += 1;
                }
            }
        }
        Ok(changed)
    }

    /// Program-and-verify: re-pulses the cell until its analog conductance
    /// lands within `tolerance` of the target or `max_pulses` are spent.
    /// Returns the outcome of the last pulse and the number of pulses used.
    ///
    /// This is how production RRAM suppresses write variation — at the cost
    /// of extra endurance per write. A fresh pulse is issued even when the
    /// cell is already in tolerance (the scheme verifies *after* writing).
    ///
    /// # Errors
    ///
    /// Returns [`RramError::OutOfBounds`] for invalid coordinates or
    /// [`RramError::InvalidConfig`] for a non-positive tolerance or zero
    /// pulse budget.
    pub fn write_verified(
        &mut self,
        row: usize,
        col: usize,
        target: f64,
        tolerance: f64,
        max_pulses: u32,
    ) -> Result<(WriteOutcome, u32), RramError> {
        if !target.is_finite() {
            return Err(RramError::NonFiniteValue {
                context: "write_verified target",
            });
        }
        if !tolerance.is_finite() || tolerance <= 0.0 {
            return Err(RramError::InvalidConfig(format!(
                "tolerance must be positive, got {tolerance}"
            )));
        }
        if max_pulses == 0 {
            return Err(RramError::InvalidConfig("need at least one pulse".into()));
        }
        let target = target.clamp(0.0, 1.0);
        let mut pulses = 0u32;
        let mut outcome = WriteOutcome::NoChange;
        while pulses < max_pulses {
            outcome = self.pulse_analog(row, col, target)?;
            pulses += 1;
            if !outcome.changed() {
                break; // stuck or exhausted: further pulses are futile
            }
            if (self.conductance(row, col)? - target).abs() <= tolerance {
                break;
            }
        }
        Ok((outcome, pulses))
    }

    /// Unconditional programming pulse (no write-verify): consumes
    /// endurance even when the value does not change. Training updates use
    /// this; see [`rram::cell::RramCell::pulse_analog`](crate::cell::RramCell::pulse_analog).
    ///
    /// # Errors
    ///
    /// Returns [`RramError::OutOfBounds`] for invalid coordinates and
    /// [`RramError::NonFiniteValue`] for a NaN/infinite target.
    pub fn pulse_analog(
        &mut self,
        row: usize,
        col: usize,
        target: f64,
    ) -> Result<WriteOutcome, RramError> {
        if !target.is_finite() {
            return Err(RramError::NonFiniteValue {
                context: "pulse_analog target",
            });
        }
        let i = self.idx(row, col)?;
        let noise = self.sample_noise();
        let outcome = self.cells[i].pulse_analog(target, noise);
        self.finish_write(i, outcome)
    }

    /// Adjusts the cell level by `delta` (the paper's "Write ±δw").
    ///
    /// # Errors
    ///
    /// Returns [`RramError::OutOfBounds`] for invalid coordinates.
    pub fn nudge(&mut self, row: usize, col: usize, delta: i32) -> Result<WriteOutcome, RramError> {
        let i = self.idx(row, col)?;
        let noise = self.sample_noise();
        let outcome = self.cells[i].nudge(delta, noise);
        self.finish_write(i, outcome)
    }

    /// Draws a zero-mean write-variation noise sample. Centred on 0.5 so the
    /// clamp inside [`WriteVariation::perturb`] almost never bites, then
    /// recentred to zero.
    fn sample_noise(&mut self) -> f64 {
        if self.variation.is_none() {
            0.0
        } else {
            self.variation.perturb(0.5, &mut self.rng) - 0.5
        }
    }

    /// Refreshes the cached conductance planes for cell `i`. Must be called
    /// after *any* cell-state mutation; `finish_write` and
    /// [`Crossbar::apply_fault_map`] are the only two mutation funnels.
    #[inline]
    fn sync_plane(&mut self, i: usize) {
        let g = self.cells[i].conductance();
        self.plane64[i] = g;
        // CAST-OK: same rounding as the builder's plane init — the f32 plane
        // is the defined narrowing of the f64 master (DESIGN.md §6).
        self.plane32[i] = g as f32;
        if !self.dirty_marked[i] {
            self.dirty_marked[i] = true;
            self.dirty.push(i);
        }
    }

    fn finish_write(&mut self, i: usize, outcome: WriteOutcome) -> Result<WriteOutcome, RramError> {
        debug_assert!(
            outcome != WriteOutcome::Exhausted,
            "crossbar sticks cells at the write that exhausts them"
        );
        if outcome.changed() {
            self.write_pulses += 1;
            if let Some(m) = &self.metrics {
                m.write_pulses.inc();
            }
            if self.cells[i].is_worn_out() && !self.cells[i].state().is_faulty() {
                let kind = if self.rng.gen_bool(self.endurance.wearout_sa0_prob()) {
                    FaultKind::StuckAt0
                } else {
                    FaultKind::StuckAt1
                };
                self.cells[i].wear_out(kind);
                self.wear_faults += 1;
                if let Some(m) = &self.metrics {
                    m.wear_faults.inc();
                }
                self.sync_plane(i);
                return Ok(WriteOutcome::WoreOut(kind));
            }
            self.sync_plane(i);
        }
        Ok(outcome)
    }

    /// Analog matrix–vector product driving the **rows**: returns one value
    /// per column, `out[k] = Σ_j g[j][k] · input[j]`.
    ///
    /// # Example
    ///
    /// ```
    /// use rram::crossbar::CrossbarBuilder;
    ///
    /// # fn main() -> Result<(), rram::RramError> {
    /// let mut xbar = CrossbarBuilder::new(2, 2).build()?;
    /// xbar.write_level(0, 0, 7)?; // g = 1.0
    /// xbar.write_level(1, 1, 7)?;
    /// let out = xbar.mvm(&[2.0, 3.0])?; // identity conductance matrix
    /// assert_eq!(out, vec![2.0, 3.0]);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`RramError::DimensionMismatch`] if `input.len() != rows`.
    pub fn mvm(&self, input: &[f32]) -> Result<Vec<f32>, RramError> {
        if input.len() != self.rows {
            return Err(RramError::DimensionMismatch {
                expected: self.rows,
                actual: input.len(),
            });
        }
        let mut out = vec![0.0f32; self.cols];
        // Skipping a zero input row saves a row-length SAXPY but costs a
        // branch per row; it only wins on mostly-zero inputs (post-§5.2
        // pruning, sparse activations). Gate it on measured sparsity so
        // dense inputs run branch-free. Skipping preserves the result
        // exactly: every skipped contribution is `±0.0 · g` with finite
        // `g ∈ [0, 1]`, which cannot move an IEEE-754 accumulator off the
        // value it would otherwise hold.
        let skip_zeros = sparse_enough(input);
        if self.rows * self.cols >= PAR_MIN_CELLS && par::thread_count() > 1 {
            let plane = &self.plane32;
            let cols = self.cols;
            par::for_each_chunk_mut(&mut out, 64, |c0, chunk| {
                for (r, &v) in input.iter().enumerate() {
                    if skip_zeros && v == 0.0 {
                        continue;
                    }
                    let row = &plane[r * cols + c0..r * cols + c0 + chunk.len()];
                    saxpy_f32(chunk, row, v);
                }
            });
        } else {
            for (r, &v) in input.iter().enumerate() {
                if skip_zeros && v == 0.0 {
                    continue;
                }
                let row = &self.plane32[r * self.cols..(r + 1) * self.cols];
                saxpy_f32(&mut out, row, v);
            }
        }
        Ok(out)
    }

    /// Scalar reference implementation of [`Crossbar::mvm`] iterating the
    /// array-of-structs cell storage directly (the pre-plane seed kernel).
    /// Kept for property tests and benches: [`Crossbar::mvm`] must return
    /// results equal to this for every input.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::DimensionMismatch`] if `input.len() != rows`.
    pub fn mvm_reference(&self, input: &[f32]) -> Result<Vec<f32>, RramError> {
        if input.len() != self.rows {
            return Err(RramError::DimensionMismatch {
                expected: self.rows,
                actual: input.len(),
            });
        }
        let mut out = vec![0.0f32; self.cols];
        for (r, &v) in input.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let row_cells = &self.cells[r * self.cols..(r + 1) * self.cols];
            for (o, cell) in out.iter_mut().zip(row_cells) {
                // CAST-OK: the f32 reference path mirrors the plane cache's
                // defined narrowing so scalar and plane MVMs stay bit-equal.
                *o += cell.conductance() as f32 * v;
            }
        }
        Ok(out)
    }

    /// Analog matrix–vector product driving the **columns** (the crossbar's
    /// second direction, used by the test method): returns one value per
    /// row, `out[j] = Σ_k g[j][k] · input[k]`.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::DimensionMismatch`] if `input.len() != cols`.
    pub fn mvm_transpose(&self, input: &[f32]) -> Result<Vec<f32>, RramError> {
        if input.len() != self.cols {
            return Err(RramError::DimensionMismatch {
                expected: self.cols,
                actual: input.len(),
            });
        }
        let mut out = vec![0.0f32; self.rows];
        let plane = &self.plane32;
        let cols = self.cols;
        let dot = |r: usize| -> f32 { lane_dot_f32(&plane[r * cols..(r + 1) * cols], input) };
        if self.rows * self.cols >= PAR_MIN_CELLS && par::thread_count() > 1 {
            par::for_each_chunk_mut(&mut out, 16, |r0, chunk| {
                for (k, o) in chunk.iter_mut().enumerate() {
                    *o = dot(r0 + k);
                }
            });
        } else {
            for (r, o) in out.iter_mut().enumerate() {
                *o = dot(r);
            }
        }
        Ok(out)
    }

    /// Quiescent column read for the test method: the analog sum of the
    /// conductances of the cells in `rows` (an inclusive-start, exclusive-end
    /// slice of driven word lines) on column `col`.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::OutOfBounds`] if the range or column is invalid.
    pub fn column_group_sum(
        &self,
        rows: std::ops::Range<usize>,
        col: usize,
    ) -> Result<f64, RramError> {
        if rows.end > self.rows || col >= self.cols {
            return Err(RramError::OutOfBounds {
                row: rows.end.saturating_sub(1),
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        // One-column slice through the shared accumulate kernel: identical
        // per-column accumulation order to the batched sweep, so the single
        // and batched reads are bit-equal by construction.
        Ok(self.column_sums_in(rows, col..col + 1)[0])
    }

    /// The one column-direction sum kernel: `out[k] = Σ_{r ∈ rows} g[r][k]`
    /// for `k ∈ cols`, accumulating row-by-row in ascending row order via
    /// [`accumulate_f64`]. Bounds must be pre-validated by the caller.
    fn column_sums_in(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> Vec<f64> {
        let mut out = vec![0.0f64; cols.len()];
        for r in rows {
            let row = &self.plane64[r * self.cols + cols.start..r * self.cols + cols.end];
            accumulate_f64(&mut out, row);
        }
        out
    }

    /// Batched [`Crossbar::column_group_sum`] for **all** columns at once:
    /// `out[k] = Σ_{r ∈ rows} g[r][k]`. One dense row-major sweep instead
    /// of `cols` strided walks — this is the kernel behind the detection
    /// campaign's row-group pass.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::OutOfBounds`] if the row range is invalid.
    pub fn column_group_sums(&self, rows: std::ops::Range<usize>) -> Result<Vec<f64>, RramError> {
        if rows.end > self.rows {
            return Err(RramError::OutOfBounds {
                row: rows.end.saturating_sub(1),
                col: 0,
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok(self.column_sums_in(rows, 0..self.cols))
    }

    /// Batched [`Crossbar::row_group_sum`] for **all** rows at once:
    /// `out[j] = Σ_{k ∈ cols} g[j][k]` — the kernel behind the detection
    /// campaign's column-group pass.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::OutOfBounds`] if the column range is invalid.
    pub fn row_group_sums(&self, cols: std::ops::Range<usize>) -> Result<Vec<f64>, RramError> {
        if cols.end > self.cols {
            return Err(RramError::OutOfBounds {
                row: 0,
                col: cols.end.saturating_sub(1),
                rows: self.rows,
                cols: self.cols,
            });
        }
        let out = (0..self.rows)
            .map(|r| {
                lane_sum_f64(&self.plane64[r * self.cols + cols.start..r * self.cols + cols.end])
            })
            .collect();
        Ok(out)
    }

    /// Quiescent row read: the analog sum over a slice of driven bit lines
    /// on row `row`.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::OutOfBounds`] if the range or row is invalid.
    pub fn row_group_sum(
        &self,
        row: usize,
        cols: std::ops::Range<usize>,
    ) -> Result<f64, RramError> {
        if cols.end > self.cols || row >= self.rows {
            return Err(RramError::OutOfBounds {
                row,
                col: cols.end.saturating_sub(1),
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok(lane_sum_f64(
            &self.plane64[row * self.cols + cols.start..row * self.cols + cols.end],
        ))
    }

    /// Pins cells to hard faults per the given map (fabrication injection).
    pub fn apply_fault_map(&mut self, map: &FaultMap) {
        for (r, c, kind) in map.iter_faulty() {
            if r < self.rows && c < self.cols {
                let i = r * self.cols + c;
                self.cells[i].force_fault(kind);
                self.sync_plane(i);
            }
        }
    }

    /// The cached row-major `f32` conductance plane
    /// (`plane[r * cols + c] == cells[r * cols + c].conductance() as f32`).
    /// External kernels (and the coherence property tests) read it directly.
    pub fn conductance_plane(&self) -> &[f32] {
        &self.plane32
    }

    /// The cached row-major `f64` conductance plane backing the quiescent
    /// group-sum reads (exactly `conductance()` per cell).
    pub fn conductance_plane_f64(&self) -> &[f64] {
        &self.plane64
    }

    /// Ground-truth fault map of the current array state.
    pub fn fault_map(&self) -> FaultMap {
        let mut map = FaultMap::healthy(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if let FaultState::Stuck(kind) = self.cells[r * self.cols + c].state() {
                    map.set(r, c, Some(kind));
                }
            }
        }
        map
    }

    /// Aggregate wear statistics.
    pub fn wear_report(&self) -> WearReport {
        WearReport::from_cells(self.rows, self.cols, &self.cells, self.write_pulses)
    }

    /// Row-major indices of cells whose state changed (writes, nudges,
    /// wear-out, forced faults) since the last [`Crossbar::clear_dirty`],
    /// in first-touch order, deduplicated. A freshly built array lists its
    /// injected-fault cells; attaching a reference store clears the journal
    /// after its full snapshot.
    pub fn dirty_cells(&self) -> &[usize] {
        &self.dirty
    }

    /// Resets the dirty journal (after a reference store has consumed it).
    pub fn clear_dirty(&mut self) {
        for &i in &self.dirty {
            self.dirty_marked[i] = false;
        }
        self.dirty.clear();
    }

    /// Captures the complete serializable state of the array (checkpoint).
    ///
    /// The conductance planes and the `dirty_marked` flags are *not* part
    /// of the state: both are derived views ( `plane64[i] ==
    /// cells[i].conductance()` exactly, `plane32` its defined narrowing,
    /// `dirty_marked[i] ⇔ i ∈ dirty` ) and are rebuilt on restore.
    /// Telemetry handles are not captured either; re-attach with
    /// [`Crossbar::attach_recorder`] after restoring.
    pub fn export_state(&self) -> CrossbarState {
        CrossbarState {
            rows: self.rows,
            cols: self.cols,
            levels: self.levels,
            cells: self
                .cells
                .iter()
                .map(|c| CellState {
                    level: c.raw_level(),
                    analog: c.raw_analog(),
                    state: c.state(),
                    endurance_left: c.endurance_left(),
                    writes: c.writes(),
                })
                .collect(),
            rng: self.rng.state(),
            write_pulses: self.write_pulses,
            wear_faults: self.wear_faults,
            dirty: self.dirty.clone(),
        }
    }

    /// Rebuilds an array from a previously captured [`CrossbarState`].
    ///
    /// `endurance` and `variation` are configuration (not state) and come
    /// from the caller, exactly as at build time. The conductance planes
    /// and `dirty_marked` are reconstructed from the cells and the journal.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::InvalidConfig`] when the state is incoherent:
    /// zero dimensions, fewer than two levels, a cell count that does not
    /// match `rows * cols`, or a dirty journal with out-of-bounds or
    /// duplicate entries (the journal is deduplicated by construction, so
    /// disagreement means the snapshot is corrupt).
    pub fn restore_state(
        state: &CrossbarState,
        endurance: EnduranceModel,
        variation: WriteVariation,
    ) -> Result<Self, RramError> {
        if state.rows == 0 || state.cols == 0 {
            return Err(RramError::InvalidConfig(format!(
                "snapshot crossbar dimensions must be non-zero (got {}x{})",
                state.rows, state.cols
            )));
        }
        if state.levels < 2 {
            return Err(RramError::InvalidConfig(format!(
                "snapshot needs at least 2 levels (got {})",
                state.levels
            )));
        }
        let cell_count = state.rows * state.cols;
        if state.cells.len() != cell_count {
            return Err(RramError::InvalidConfig(format!(
                "snapshot has {} cells for a {}x{} array",
                state.cells.len(),
                state.rows,
                state.cols
            )));
        }
        let cells: Vec<RramCell> = state
            .cells
            .iter()
            .map(|c| {
                RramCell::from_raw_parts(
                    state.levels,
                    c.level,
                    c.analog,
                    c.state,
                    c.endurance_left,
                    c.writes,
                )
            })
            .collect();
        let plane64: Vec<f64> = cells.iter().map(|c| c.conductance()).collect();
        // CAST-OK: same defined narrowing as the builder's plane init.
        let plane32: Vec<f32> = plane64.iter().map(|&g| g as f32).collect();
        let mut dirty_marked = vec![false; cell_count];
        for &i in &state.dirty {
            if i >= cell_count {
                return Err(RramError::InvalidConfig(format!(
                    "dirty journal entry {i} out of bounds for {cell_count} cells"
                )));
            }
            if dirty_marked[i] {
                return Err(RramError::InvalidConfig(format!(
                    "dirty journal entry {i} duplicated — journal and marks disagree"
                )));
            }
            dirty_marked[i] = true;
        }
        Ok(Self {
            rows: state.rows,
            cols: state.cols,
            levels: state.levels,
            cells,
            plane32,
            plane64,
            endurance,
            variation,
            rng: StdRng::from_state(state.rng),
            write_pulses: state.write_pulses,
            wear_faults: state.wear_faults,
            dirty_marked,
            dirty: state.dirty.clone(),
            metrics: None,
        })
    }
}

/// Raw serializable state of one cell; see [`Crossbar::export_state`].
///
/// `level`/`analog` are the *raw* stored values (a stuck cell keeps its
/// pre-fault value underneath the pin), so a restored cell is bit-identical
/// to the snapshotted one.
#[derive(Debug, Clone, PartialEq)]
pub struct CellState {
    /// Raw programmed level (unpinned).
    pub level: u16,
    /// Raw analog conductance (unpinned).
    pub analog: f64,
    /// Health state.
    pub state: FaultState,
    /// Remaining write budget.
    pub endurance_left: u64,
    /// Effective writes performed.
    pub writes: u64,
}

/// Complete serializable state of a [`Crossbar`]; see
/// [`Crossbar::export_state`] / [`Crossbar::restore_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarState {
    /// Rows (word lines).
    pub rows: usize,
    /// Columns (bit lines).
    pub cols: usize,
    /// Programmable levels per cell.
    pub levels: u16,
    /// Row-major raw cell states.
    pub cells: Vec<CellState>,
    /// The write-noise / wear-out RNG stream (xoshiro256++ state).
    pub rng: [u64; 4],
    /// Total write pulses issued.
    pub write_pulses: u64,
    /// Wear-out faults accumulated.
    pub wear_faults: u64,
    /// Dirty-cell journal in first-touch order (`dirty_marked` is rebuilt
    /// from this on restore).
    pub dirty: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Crossbar {
        CrossbarBuilder::new(4, 4).seed(1).build().unwrap()
    }

    #[test]
    fn builder_validates() {
        assert!(CrossbarBuilder::new(0, 4).build().is_err());
        assert!(CrossbarBuilder::new(4, 0).build().is_err());
        assert!(CrossbarBuilder::new(4, 4).levels(1).build().is_err());
        assert!(CrossbarBuilder::new(4, 4)
            .initial_faults(SpatialDistribution::Uniform, 2.0)
            .build()
            .is_err());
    }

    #[test]
    fn fresh_crossbar_reads_zero() {
        let x = small();
        assert_eq!(x.read_all_levels(), vec![0; 16]);
        assert_eq!(x.mvm(&[1.0; 4]).unwrap(), vec![0.0; 4]);
    }

    #[test]
    fn mvm_matches_dense_math() {
        let mut x = small();
        // Program an identifiable pattern: level = (r + c) % 8.
        for r in 0..4 {
            for c in 0..4 {
                x.write_level(r, c, ((r + c) % 8) as u16).unwrap();
            }
        }
        let input = [1.0, 0.5, -0.25, 2.0];
        let out = x.mvm(&input).unwrap();
        #[allow(clippy::needless_range_loop)]
        for c in 0..4 {
            let expect: f32 = (0..4)
                .map(|r| (((r + c) % 8) as f32 / 7.0) * input[r])
                .sum();
            assert!(
                (out[c] - expect).abs() < 1e-5,
                "col {c}: {} vs {expect}",
                out[c]
            );
        }
        // Transposed direction agrees with the transposed math.
        let tin = [1.0, -1.0, 0.5, 0.0];
        let tout = x.mvm_transpose(&tin).unwrap();
        #[allow(clippy::needless_range_loop)]
        for r in 0..4 {
            let expect: f32 = (0..4).map(|c| (((r + c) % 8) as f32 / 7.0) * tin[c]).sum();
            assert!((tout[r] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn mvm_rejects_wrong_length() {
        let x = small();
        assert!(matches!(
            x.mvm(&[1.0; 3]),
            Err(RramError::DimensionMismatch {
                expected: 4,
                actual: 3
            })
        ));
        assert!(x.mvm_transpose(&[1.0; 5]).is_err());
    }

    #[test]
    fn stuck_cells_dominate_reads() {
        let mut x = small();
        let mut map = FaultMap::healthy(4, 4);
        map.set(0, 0, Some(FaultKind::StuckAt1));
        map.set(1, 1, Some(FaultKind::StuckAt0));
        x.apply_fault_map(&map);
        assert_eq!(x.read_level(0, 0).unwrap(), 7);
        assert_eq!(x.conductance(0, 0).unwrap(), 1.0);
        assert_eq!(x.read_level(1, 1).unwrap(), 0);
        // Writes to stuck cells have no effect.
        assert!(matches!(
            x.write_level(0, 0, 3).unwrap(),
            WriteOutcome::Stuck(FaultKind::StuckAt1)
        ));
        assert_eq!(x.fault_map().count_faulty(), 2);
    }

    #[test]
    fn endurance_wearout_creates_faults() {
        let mut x = CrossbarBuilder::new(2, 2)
            .endurance(EnduranceModel::new(3.0, 0.0))
            .seed(9)
            .build()
            .unwrap();
        // Toggle one cell until it wears out (budget = 3 writes).
        let mut worn = None;
        for i in 0..10 {
            let out = x.write_level(0, 0, (i % 2 + 1) as u16).unwrap();
            if let WriteOutcome::WoreOut(kind) = out {
                worn = Some((i, kind));
                break;
            }
        }
        let (i, _) = worn.expect("cell should wear out");
        assert_eq!(i, 2, "third write exhausts a 3-write budget");
        assert_eq!(x.wear_faults(), 1);
        assert_eq!(x.fault_map().count_faulty(), 1);
        // Further writes report Stuck.
        assert!(matches!(
            x.write_level(0, 0, 5).unwrap(),
            WriteOutcome::Stuck(_)
        ));
    }

    #[test]
    fn group_sums_match_manual_sums() {
        let mut x = small();
        for r in 0..4 {
            for c in 0..4 {
                x.write_level(r, c, (r as u16 + 1).min(7)).unwrap();
            }
        }
        let s = x.column_group_sum(0..2, 1).unwrap();
        let expect = (1.0 + 2.0) / 7.0;
        assert!((s - expect).abs() < 1e-9);
        let s = x.row_group_sum(2, 1..4).unwrap();
        let expect = 3.0 * 3.0 / 7.0;
        assert!((s - expect).abs() < 1e-9);
        assert!(x.column_group_sum(0..5, 0).is_err());
        assert!(x.row_group_sum(4, 0..1).is_err());
    }

    #[test]
    fn single_column_sum_equals_batched_entry() {
        // Both paths must go through the one accumulate kernel: bit-equal.
        let mut x = CrossbarBuilder::new(7, 5)
            .variation(WriteVariation::new(0.03))
            .seed(4)
            .build()
            .unwrap();
        for r in 0..7 {
            for c in 0..5 {
                x.write_level(r, c, ((r * 5 + c) % 8) as u16).unwrap();
            }
        }
        for (lo, hi) in [(0, 7), (1, 4), (3, 3), (2, 7)] {
            let batched = x.column_group_sums(lo..hi).unwrap();
            for (c, sum) in batched.iter().enumerate() {
                assert_eq!(x.column_group_sum(lo..hi, c).unwrap(), *sum);
            }
            let row_batched = x.row_group_sums(0..5).unwrap();
            for (r, sum) in row_batched.iter().enumerate() {
                assert_eq!(x.row_group_sum(r, 0..5).unwrap(), *sum);
            }
        }
    }

    #[test]
    fn dirty_journal_tracks_every_mutation_funnel() {
        let mut x = CrossbarBuilder::new(4, 4)
            .initial_faults(SpatialDistribution::Uniform, 0.25)
            .seed(7)
            .build()
            .unwrap();
        // Injection runs through sync_plane, so fault cells start dirty.
        assert_eq!(x.dirty_cells().len(), 4);
        x.clear_dirty();
        assert!(x.dirty_cells().is_empty());
        // A no-op write (same level) issues no pulse and stays clean.
        let healthy = (0..16)
            .find(|&i| x.fault_map().get(i / 4, i % 4).is_none())
            .unwrap();
        let (r, c) = (healthy / 4, healthy % 4);
        x.write_level(r, c, x.read_level(r, c).unwrap()).unwrap();
        assert!(x.dirty_cells().is_empty());
        // Effective writes journal once per cell (deduplicated).
        x.write_level(r, c, 3).unwrap();
        x.nudge(r, c, 1).unwrap();
        assert_eq!(x.dirty_cells(), &[r * 4 + c]);
        // Forced faults journal too.
        let mut map = x.fault_map();
        map.set(0, 0, Some(FaultKind::StuckAt1));
        x.apply_fault_map(&map);
        assert!(x.dirty_cells().contains(&0));
        x.clear_dirty();
        assert!(x.dirty_cells().is_empty());
    }

    #[test]
    fn write_pulse_accounting() {
        let mut x = small();
        assert_eq!(x.write_pulses(), 0);
        x.write_level(0, 0, 3).unwrap();
        x.write_level(0, 0, 3).unwrap(); // no change, no pulse
        x.nudge(0, 0, 1).unwrap();
        x.nudge(0, 0, 0).unwrap(); // no-op
        assert_eq!(x.write_pulses(), 2);
    }

    #[test]
    fn initial_fault_injection_via_builder() {
        let x = CrossbarBuilder::new(32, 32)
            .initial_faults(SpatialDistribution::Uniform, 0.25)
            .seed(3)
            .build()
            .unwrap();
        let frac = x.fault_map().fraction_faulty();
        assert!((frac - 0.25).abs() < 0.01, "fraction was {frac}");
    }

    #[test]
    fn non_finite_write_targets_are_rejected() {
        let mut x = small();
        let before = x.conductance(0, 0).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                x.write_analog(0, 0, bad),
                Err(RramError::NonFiniteValue { .. })
            ));
            assert!(matches!(
                x.pulse_analog(0, 0, bad),
                Err(RramError::NonFiniteValue { .. })
            ));
            assert!(matches!(
                x.write_verified(0, 0, bad, 0.01, 4),
                Err(RramError::NonFiniteValue { .. })
            ));
        }
        // The rejected writes must not have touched cell state or planes.
        assert_eq!(x.conductance(0, 0).unwrap(), before);
        assert!(x.conductance_plane().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn write_verified_converges_under_variation() {
        let mut x = CrossbarBuilder::new(2, 2)
            .variation(WriteVariation::new(0.05))
            .seed(8)
            .build()
            .unwrap();
        let (outcome, pulses) = x.write_verified(0, 0, 0.5, 0.01, 50).unwrap();
        assert!(outcome.changed());
        assert!((x.conductance(0, 0).unwrap() - 0.5).abs() <= 0.01);
        assert!(pulses >= 1);
        // With σ = 0.05 and tolerance 0.01 the loop usually needs retries.
        let mut total = 0u32;
        for i in 0..20 {
            let target = 0.1 + 0.04 * f64::from(i);
            let (_, p) = x.write_verified(0, 1, target, 0.01, 50).unwrap();
            total += p;
        }
        assert!(
            total > 20,
            "verify loops should re-pulse sometimes: {total}"
        );
    }

    #[test]
    fn write_verified_gives_up_on_stuck_cells() {
        let mut x = CrossbarBuilder::new(2, 2).seed(9).build().unwrap();
        let mut map = FaultMap::healthy(2, 2);
        map.set(0, 0, Some(FaultKind::StuckAt0));
        x.apply_fault_map(&map);
        let (outcome, pulses) = x.write_verified(0, 0, 0.7, 0.01, 50).unwrap();
        assert!(matches!(outcome, WriteOutcome::Stuck(FaultKind::StuckAt0)));
        assert_eq!(pulses, 1, "one probe is enough to see the cell is stuck");
    }

    #[test]
    fn write_verified_validates_arguments() {
        let mut x = CrossbarBuilder::new(2, 2).seed(1).build().unwrap();
        assert!(x.write_verified(0, 0, 0.5, 0.0, 10).is_err());
        assert!(x.write_verified(0, 0, 0.5, 0.01, 0).is_err());
        assert!(x.write_verified(5, 0, 0.5, 0.01, 10).is_err());
    }

    #[test]
    fn state_roundtrip_is_bit_identical() {
        let mut x = CrossbarBuilder::new(6, 5)
            .variation(WriteVariation::new(0.03))
            .endurance(EnduranceModel::new(20.0, 5.0))
            .initial_faults(SpatialDistribution::Uniform, 0.2)
            .seed(11)
            .build()
            .unwrap();
        for r in 0..6 {
            for c in 0..5 {
                x.write_level(r, c, ((r * 5 + c) % 8) as u16).unwrap();
            }
        }
        x.clear_dirty();
        x.nudge(1, 2, 1).unwrap();
        let st = x.export_state();
        let mut y =
            Crossbar::restore_state(&st, EnduranceModel::new(20.0, 5.0), WriteVariation::new(0.03))
                .unwrap();
        assert_eq!(x.conductance_plane_f64(), y.conductance_plane_f64());
        assert_eq!(x.conductance_plane(), y.conductance_plane());
        assert_eq!(x.dirty_cells(), y.dirty_cells());
        assert_eq!(x.write_pulses(), y.write_pulses());
        assert_eq!(x.wear_faults(), y.wear_faults());
        assert_eq!(x.fault_map(), y.fault_map());
        // Same forward RNG stream: identical writes produce identical state.
        for i in 0..10 {
            let a = x.write_level(i % 6, (i * 3) % 5, (i % 8) as u16).unwrap();
            let b = y.write_level(i % 6, (i * 3) % 5, (i % 8) as u16).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(x.conductance_plane_f64(), y.conductance_plane_f64());
        assert_eq!(x.export_state(), y.export_state());
    }

    #[test]
    fn restore_rejects_incoherent_state() {
        let x = small();
        let good = x.export_state();
        let mut bad = good.clone();
        bad.cells.pop();
        assert!(
            Crossbar::restore_state(&bad, EnduranceModel::unlimited(), WriteVariation::none())
                .is_err()
        );
        let mut bad = good.clone();
        bad.dirty = vec![999];
        assert!(
            Crossbar::restore_state(&bad, EnduranceModel::unlimited(), WriteVariation::none())
                .is_err()
        );
        let mut bad = good;
        bad.dirty = vec![1, 1];
        assert!(
            Crossbar::restore_state(&bad, EnduranceModel::unlimited(), WriteVariation::none())
                .is_err()
        );
    }

    #[test]
    fn variation_perturbs_analog_reads() {
        let mut x = CrossbarBuilder::new(2, 2)
            .variation(WriteVariation::new(0.05))
            .seed(21)
            .build()
            .unwrap();
        let mut any_off = false;
        for i in 0..20 {
            x.write_level(0, 0, (i % 7 + 1) as u16).unwrap();
            let ideal = f64::from(x.read_level(0, 0).unwrap()) / 7.0;
            if (x.conductance(0, 0).unwrap() - ideal).abs() > 1e-6 {
                any_off = true;
            }
        }
        assert!(any_off, "variation should displace analog conductance");
    }
}

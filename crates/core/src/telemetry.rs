//! The flow's metrics carrier: [`FlowMetrics`].
//!
//! PR 3 rebuilt [`FlowStats`](crate::report::FlowStats) as a *view*: the
//! trainer no longer owns a mutable stats struct — it owns cached
//! counter/gauge handles on an [`obs::Recorder`]'s registry, and
//! [`FlowMetrics::snapshot`] derives the same `FlowStats` value the old
//! field updates produced (increments happen at exactly the same call
//! sites, with the same amounts). Existing code that reads
//! `trainer.stats().writes_issued` keeps working; the registry additionally
//! exposes every quantity to the Prometheus/JSONL exporters under the
//! `flow_*` names listed on [`FlowMetrics::new`].

use obs::{Counter, Gauge, Recorder};

use crate::report::FlowStats;

/// Cached handles for every flow statistic, plus the recorder they live on.
#[derive(Debug, Clone)]
pub struct FlowMetrics {
    recorder: Recorder,
    /// Hardware writes issued by threshold training.
    pub writes_issued: Counter,
    /// Updates suppressed by the threshold.
    pub writes_skipped: Counter,
    /// Cells that wore out during training writes.
    pub wear_faults_during_training: Counter,
    /// Detection campaigns run.
    pub detection_campaigns: Counter,
    /// Total detection test cycles.
    pub detection_cycles: Counter,
    /// Write pulses spent by detection itself.
    pub detection_writes: Counter,
    /// Re-mapping plans applied.
    pub remaps_applied: Counter,
    /// Cell-level analog multiply-accumulates on the mapped crossbars.
    pub mvm_cell_ops: Counter,
    /// Non-finite gradient updates skipped by the threshold trainer.
    pub nan_updates_skipped: Counter,
    /// Detection test groups that could not be swept.
    pub detection_untested_groups: Counter,
    /// Tiles retired after crossing the fault-density threshold.
    pub tiles_retired: Counter,
    /// Spare tiles attached in place of retired ones.
    pub spares_attached: Counter,
    /// Strategy-private overhead cycles (mask generation, verify reads
    /// outside detection campaigns), priced as cell reads by the energy
    /// model — the fault-tolerance strategy layer's accounting slot.
    pub strategy_cycles: Counter,
    /// `Dist(P, F)` before the most recent re-mapping search.
    pub last_remap_initial_cost: Gauge,
    /// `Dist(P, F)` after the most recent re-mapping search.
    pub last_remap_final_cost: Gauge,
}

impl FlowMetrics {
    /// Registers the flow metrics on `recorder`'s registry:
    ///
    /// * counters `flow_writes_issued_total`, `flow_writes_skipped_total`,
    ///   `flow_wear_faults_training_total`, `flow_detection_campaigns_total`,
    ///   `flow_detection_cycles_total`, `flow_detection_writes_total`,
    ///   `flow_remaps_applied_total`, `flow_mvm_cell_ops_total`,
    ///   `flow_nan_updates_skipped_total`,
    ///   `flow_detection_untested_groups_total`,
    ///   `flow_tiles_retired_total`, `flow_spares_attached_total`,
    ///   `flow_strategy_cycles_total`;
    /// * gauges `flow_last_remap_initial_cost`,
    ///   `flow_last_remap_final_cost`.
    pub fn new(recorder: Recorder) -> Self {
        let r = &recorder;
        Self {
            writes_issued: r.counter("flow_writes_issued_total"),
            writes_skipped: r.counter("flow_writes_skipped_total"),
            wear_faults_during_training: r.counter("flow_wear_faults_training_total"),
            detection_campaigns: r.counter("flow_detection_campaigns_total"),
            detection_cycles: r.counter("flow_detection_cycles_total"),
            detection_writes: r.counter("flow_detection_writes_total"),
            remaps_applied: r.counter("flow_remaps_applied_total"),
            mvm_cell_ops: r.counter("flow_mvm_cell_ops_total"),
            nan_updates_skipped: r.counter("flow_nan_updates_skipped_total"),
            detection_untested_groups: r.counter("flow_detection_untested_groups_total"),
            tiles_retired: r.counter("flow_tiles_retired_total"),
            spares_attached: r.counter("flow_spares_attached_total"),
            strategy_cycles: r.counter("flow_strategy_cycles_total"),
            last_remap_initial_cost: r.gauge("flow_last_remap_initial_cost"),
            last_remap_final_cost: r.gauge("flow_last_remap_final_cost"),
            recorder,
        }
    }

    /// The recorder the metrics live on.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Derives the aggregate [`FlowStats`] value from the registry — the
    /// same numbers the pre-PR-3 mutable struct accumulated.
    pub fn snapshot(&self) -> FlowStats {
        FlowStats {
            writes_issued: self.writes_issued.get(),
            writes_skipped: self.writes_skipped.get(),
            wear_faults_during_training: self.wear_faults_during_training.get(),
            detection_campaigns: self.detection_campaigns.get(),
            detection_cycles: self.detection_cycles.get(),
            detection_writes: self.detection_writes.get(),
            remaps_applied: self.remaps_applied.get(),
            // Dist(P, F) costs are cell counts far below 2^53, so the f64
            // gauge round-trips them exactly.
            last_remap_initial_cost: self.last_remap_initial_cost.get() as u64,
            last_remap_final_cost: self.last_remap_final_cost.get() as u64,
            mvm_cell_ops: self.mvm_cell_ops.get(),
            nan_updates_skipped: self.nan_updates_skipped.get(),
            detection_untested_groups: self.detection_untested_groups.get(),
            tiles_retired: self.tiles_retired.get(),
            spares_attached: self.spares_attached.get(),
            strategy_cycles: self.strategy_cycles.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_mirrors_counter_state() {
        let m = FlowMetrics::new(Recorder::deterministic());
        assert_eq!(m.snapshot(), FlowStats::default());
        m.writes_issued.add(10);
        m.writes_skipped.add(90);
        m.last_remap_initial_cost.set(40.0);
        m.last_remap_final_cost.set(11.0);
        let snap = m.snapshot();
        assert_eq!(snap.writes_issued, 10);
        assert_eq!(snap.writes_skipped, 90);
        assert_eq!(snap.last_remap_initial_cost, 40);
        assert_eq!(snap.last_remap_final_cost, 11);
        assert!((snap.skipped_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn metrics_are_visible_through_the_registry() {
        let m = FlowMetrics::new(Recorder::deterministic());
        m.mvm_cell_ops.add(7);
        assert_eq!(
            m.recorder()
                .registry()
                .counter_value("flow_mvm_cell_ops_total"),
            Some(7)
        );
        let text = m.recorder().render_prometheus();
        assert!(text.contains("flow_mvm_cell_ops_total 7"));
    }
}

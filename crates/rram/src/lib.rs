//! Behavioral simulator for metal-oxide RRAM cells and crossbar arrays.
//!
//! This crate is the hardware substrate of the `rram-ftt` workspace, a
//! reproduction of *"Fault-Tolerant Training with On-Line Fault Detection for
//! RRAM-Based Neural Computing Systems"* (Xia et al., DAC 2017). It models
//! everything the paper's evaluation needs from the device level:
//!
//! * **Multi-level cells** ([`cell::RramCell`]) — conductance is programmed
//!   in a small number of discrete levels (8 by default, following Xu et al.,
//!   DAC'13) with bounded analog write variation.
//! * **Hard faults** ([`fault`]) — stuck-at-0 (SA0, conductance pinned at the
//!   minimum) and stuck-at-1 (SA1, pinned at the maximum), from fabrication
//!   defects or endurance wear-out.
//! * **Endurance** ([`endurance::EnduranceModel`]) — every cell draws a write
//!   budget from a Gaussian distribution (mean 5×10⁶ for low-endurance
//!   technology, 10⁸ for high-endurance, per the paper's §6.2.1); exhausting
//!   it turns the cell into a stuck-at fault.
//! * **Spatial fault distributions** ([`spatial`]) — uniform and
//!   Gaussian-cluster injection of fabrication faults.
//! * **Crossbar arrays** ([`crossbar::Crossbar`]) — analog matrix–vector
//!   multiplication in both directions, per-cell wear tracking, and the
//!   quiescent read/write primitives the on-line test method drives.
//! * **Peripheral models** ([`adc`]) — level-granularity ADC with the
//!   mod-2ⁿ truncation used by the paper's comparison circuitry, and
//!   weight↔conductance codecs ([`quantize`]).
//!
//! # Example
//!
//! Build a 64×64 crossbar with 10 % uniformly distributed fabrication faults
//! and low-endurance cells, then run an analog matrix–vector product:
//!
//! ```
//! use rram::crossbar::CrossbarBuilder;
//! use rram::endurance::EnduranceModel;
//! use rram::spatial::SpatialDistribution;
//!
//! # fn main() -> Result<(), rram::RramError> {
//! let mut xbar = CrossbarBuilder::new(64, 64)
//!     .endurance(EnduranceModel::low_endurance().scaled(1e-3))
//!     .initial_faults(SpatialDistribution::Uniform, 0.10)
//!     .seed(42)
//!     .build()?;
//!
//! let input = vec![1.0; 64];
//! let output = xbar.mvm(&input)?;
//! assert_eq!(output.len(), 64);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adc;
pub mod cell;
pub mod crossbar;
pub mod endurance;
pub mod energy;
pub mod error;
pub mod fault;
pub mod quantize;
pub mod rng;
pub mod spatial;
pub mod stats;
pub mod variation;

pub use crossbar::{Crossbar, CrossbarBuilder};
pub use error::RramError;
pub use fault::{FaultKind, FaultMap, FaultState};

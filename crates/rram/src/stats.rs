//! Wear and fault statistics for a crossbar array.

use crate::cell::RramCell;
use crate::fault::FaultKind;

/// Aggregate wear report for a crossbar, produced by
/// [`Crossbar::wear_report`](crate::crossbar::Crossbar::wear_report).
#[derive(Debug, Clone, PartialEq)]
pub struct WearReport {
    /// Array rows.
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// Total write pulses issued to the array.
    pub total_write_pulses: u64,
    /// Number of SA0-stuck cells.
    pub sa0_cells: usize,
    /// Number of SA1-stuck cells.
    pub sa1_cells: usize,
    /// Mean writes per cell over the whole array.
    pub mean_writes_per_cell: f64,
    /// Maximum writes on any single cell.
    pub max_writes_on_cell: u64,
    /// Mean remaining endurance over still-healthy cells (`None` if no
    /// healthy cell is left).
    pub mean_endurance_left: Option<f64>,
}

impl WearReport {
    pub(crate) fn from_cells(
        rows: usize,
        cols: usize,
        cells: &[RramCell],
        total_write_pulses: u64,
    ) -> Self {
        let mut sa0 = 0usize;
        let mut sa1 = 0usize;
        let mut writes_sum = 0u64;
        let mut writes_max = 0u64;
        let mut healthy_left_sum = 0u128;
        let mut healthy_count = 0usize;
        for cell in cells {
            writes_sum += cell.writes();
            writes_max = writes_max.max(cell.writes());
            match cell.state().kind() {
                Some(FaultKind::StuckAt0) => sa0 += 1,
                Some(FaultKind::StuckAt1) => sa1 += 1,
                None => {
                    healthy_left_sum += u128::from(cell.endurance_left());
                    healthy_count += 1;
                }
            }
        }
        WearReport {
            rows,
            cols,
            total_write_pulses,
            sa0_cells: sa0,
            sa1_cells: sa1,
            mean_writes_per_cell: writes_sum as f64 / cells.len() as f64,
            max_writes_on_cell: writes_max,
            mean_endurance_left: if healthy_count > 0 {
                Some(healthy_left_sum as f64 / healthy_count as f64)
            } else {
                None
            },
        }
    }

    /// Total number of faulty cells.
    pub fn faulty_cells(&self) -> usize {
        self.sa0_cells + self.sa1_cells
    }

    /// Fraction of cells carrying a hard fault.
    pub fn fraction_faulty(&self) -> f64 {
        self.faulty_cells() as f64 / (self.rows * self.cols) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::CrossbarBuilder;
    use crate::endurance::EnduranceModel;
    use crate::fault::FaultMap;

    #[test]
    fn fresh_array_report_is_clean() {
        let x = CrossbarBuilder::new(4, 4).seed(1).build().unwrap();
        let r = x.wear_report();
        assert_eq!(r.total_write_pulses, 0);
        assert_eq!(r.faulty_cells(), 0);
        assert_eq!(r.fraction_faulty(), 0.0);
        assert_eq!(r.mean_writes_per_cell, 0.0);
        assert!(r.mean_endurance_left.is_some());
    }

    #[test]
    fn report_counts_faults_and_writes() {
        let mut x = CrossbarBuilder::new(2, 2).seed(1).build().unwrap();
        let mut map = FaultMap::healthy(2, 2);
        map.set(0, 0, Some(FaultKind::StuckAt0));
        map.set(0, 1, Some(FaultKind::StuckAt1));
        x.apply_fault_map(&map);
        x.write_level(1, 0, 3).unwrap();
        x.write_level(1, 0, 5).unwrap();
        x.write_level(1, 1, 1).unwrap();
        let r = x.wear_report();
        assert_eq!(r.sa0_cells, 1);
        assert_eq!(r.sa1_cells, 1);
        assert_eq!(r.faulty_cells(), 2);
        assert_eq!(r.fraction_faulty(), 0.5);
        assert_eq!(r.total_write_pulses, 3);
        assert_eq!(r.max_writes_on_cell, 2);
        assert!((r.mean_writes_per_cell - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_endurance_left_tracks_consumption() {
        let mut x = CrossbarBuilder::new(1, 2)
            .endurance(EnduranceModel::new(10.0, 0.0))
            .seed(1)
            .build()
            .unwrap();
        let before = x.wear_report().mean_endurance_left.unwrap();
        assert_eq!(before, 10.0);
        x.write_level(0, 0, 1).unwrap();
        let after = x.wear_report().mean_endurance_left.unwrap();
        assert_eq!(after, 9.5);
    }
}

//! Property-based tests for the neural network substrate.

use nn::init::init_rng;
use nn::layer::Layer;
use nn::layers::{Dense, Relu};
use nn::network::Network;
use nn::permute::{permute_hidden_neurons, Permutation};
use nn::pruning::magnitude_prune;
use nn::tensor::Tensor;
use proptest::prelude::*;

proptest! {
    /// matmul is associative with vectors: (A·B)·x == A·(B·x).
    #[test]
    fn matmul_is_associative(seed in 0u64..500) {
        use rand::Rng;
        let mut rng = init_rng(seed);
        let rand_t = |r: usize, c: usize, rng: &mut rand::rngs::StdRng| {
            Tensor::from_vec(
                vec![r, c],
                (0..r * c).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            )
        };
        let a = rand_t(3, 4, &mut rng);
        let b = rand_t(4, 5, &mut rng);
        let x = rand_t(5, 1, &mut rng);
        let lhs = a.matmul(&b).matmul(&x);
        let rhs = a.matmul(&b.matmul(&x));
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((l - r).abs() < 1e-4);
        }
    }

    /// ReLU forward is idempotent: relu(relu(x)) == relu(x).
    #[test]
    fn relu_is_idempotent(values in proptest::collection::vec(-10.0f32..10.0, 1..64)) {
        let mut relu = Relu::new();
        let n = values.len();
        let x = Tensor::from_vec(vec![1, n], values);
        let once = relu.forward(&x, false);
        let twice = relu.forward(&once, false);
        prop_assert_eq!(once.data(), twice.data());
    }

    /// Neuron permutation never changes a network's function, for any valid
    /// hidden-layer permutation.
    #[test]
    fn permutation_preserves_function(seed in 0u64..200, hidden in 2usize..12) {
        let mut rng = init_rng(seed);
        let mut net = Network::new();
        net.push(Dense::new(5, hidden, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(hidden, 3, &mut rng));
        let x = Tensor::from_vec(
            vec![2, 5],
            (0..10).map(|i| ((i as f32) * 0.7 + seed as f32).sin()).collect(),
        );
        let before = net.forward(&x);
        let perm = Permutation::random(hidden, &mut rng);
        permute_hidden_neurons(&mut net, 0, &perm).unwrap();
        let after = net.forward(&x);
        for (a, b) in before.data().iter().zip(after.data()) {
            prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
        }
    }

    /// Applying a permutation and then its inverse restores the weights.
    #[test]
    fn permutation_inverse_roundtrips(seed in 0u64..200, hidden in 2usize..12) {
        let mut rng = init_rng(seed);
        let mut net = Network::new();
        net.push(Dense::new(4, hidden, &mut rng));
        net.push(Dense::new(hidden, 2, &mut rng));
        let before: Vec<f32> = net.layer_params_mut(0).unwrap().weights.to_vec();
        let perm = Permutation::random(hidden, &mut rng);
        permute_hidden_neurons(&mut net, 0, &perm).unwrap();
        permute_hidden_neurons(&mut net, 0, &perm.inverse()).unwrap();
        let after: Vec<f32> = net.layer_params_mut(0).unwrap().weights.to_vec();
        prop_assert_eq!(before, after);
    }

    /// Magnitude pruning marks exactly the requested fraction (up to
    /// rounding) and only the smallest-magnitude weights.
    #[test]
    fn pruning_fraction_and_ordering(seed in 0u64..200, fraction in 0.0f64..1.0) {
        let mut rng = init_rng(seed);
        let mut net = Network::new();
        net.push(Dense::new(8, 8, &mut rng));
        let mask = magnitude_prune(&mut net, fraction);
        let expected = (fraction * 64.0).round() as usize;
        let actual = mask.layer(0).pruned.iter().filter(|&&p| p).count();
        prop_assert_eq!(actual, expected);
        let params = net.layer_params_mut(0).unwrap();
        let pruned_max = params
            .weights
            .iter()
            .zip(&mask.layer(0).pruned)
            .filter(|(_, &p)| p)
            .map(|(w, _)| w.abs())
            .fold(0.0f32, f32::max);
        let kept_min = params
            .weights
            .iter()
            .zip(&mask.layer(0).pruned)
            .filter(|(_, &p)| !p)
            .map(|(w, _)| w.abs())
            .fold(f32::INFINITY, f32::min);
        prop_assert!(pruned_max <= kept_min);
    }

    /// Softmax cross-entropy loss is always non-negative and its gradient
    /// rows sum to ~zero.
    #[test]
    fn cross_entropy_invariants(
        logits in proptest::collection::vec(-5.0f32..5.0, 6),
        label in 0usize..3,
    ) {
        let t = Tensor::from_vec(vec![2, 3], logits);
        let (loss, grad) = nn::loss::softmax_cross_entropy(&t, &[label, (label + 1) % 3]);
        prop_assert!(loss >= 0.0);
        for row in grad.data().chunks(3) {
            let s: f32 = row.iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }
}

//! Hard-fault taxonomy and dense fault maps.
//!
//! The paper classifies RRAM hard faults into stuck-at-0 (the cell is pinned
//! at its minimum conductance and cannot be SET) and stuck-at-1 (pinned at the
//! maximum conductance and cannot be RESET). Both arise from fabrication
//! defects and from write-endurance wear-out.

use std::fmt;

/// The two hard-fault classes of an RRAM cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// Stuck-at-0: conductance pinned at the minimum (high resistance).
    /// The cell always reads as level 0 and ignores SET pulses.
    StuckAt0,
    /// Stuck-at-1: conductance pinned at the maximum (low resistance).
    /// The cell always reads as the top level and ignores RESET pulses.
    StuckAt1,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::StuckAt0 => write!(f, "SA0"),
            FaultKind::StuckAt1 => write!(f, "SA1"),
        }
    }
}

/// The health state of a single cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultState {
    /// The cell can still be programmed (possibly with soft variation).
    #[default]
    Healthy,
    /// The cell carries a hard fault and cannot be reprogrammed.
    Stuck(FaultKind),
}

impl FaultState {
    /// Returns `true` when the cell carries a hard fault.
    pub fn is_faulty(&self) -> bool {
        matches!(self, FaultState::Stuck(_))
    }

    /// Returns the fault kind, if any.
    pub fn kind(&self) -> Option<FaultKind> {
        match self {
            FaultState::Healthy => None,
            FaultState::Stuck(k) => Some(*k),
        }
    }
}

/// A dense `rows × cols` map of per-cell fault states.
///
/// Used both as the *ground truth* injected into a simulated crossbar and as
/// the *prediction* produced by the on-line detector, so that the two can be
/// compared cell-by-cell for precision/recall scoring.
///
/// # Example
///
/// ```
/// use rram::fault::{FaultKind, FaultMap};
///
/// let mut map = FaultMap::healthy(4, 4);
/// map.set(1, 2, Some(FaultKind::StuckAt0));
/// assert_eq!(map.count_faulty(), 1);
/// assert_eq!(map.get(1, 2), Some(FaultKind::StuckAt0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMap {
    rows: usize,
    cols: usize,
    cells: Vec<Option<FaultKind>>,
}

impl FaultMap {
    /// Creates an all-healthy map.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn healthy(rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "fault map dimensions must be non-zero"
        );
        Self {
            rows,
            cols,
            cells: vec![None; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "({row}, {col}) out of bounds"
        );
        row * self.cols + col
    }

    /// The fault (if any) at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<FaultKind> {
        self.cells[self.idx(row, col)]
    }

    /// Sets or clears the fault at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, fault: Option<FaultKind>) {
        let i = self.idx(row, col);
        self.cells[i] = fault;
    }

    /// Total number of faulty cells.
    pub fn count_faulty(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }

    /// Number of cells with the given fault kind.
    pub fn count_kind(&self, kind: FaultKind) -> usize {
        self.cells.iter().filter(|c| **c == Some(kind)).count()
    }

    /// Fraction of faulty cells in `[0, 1]`.
    pub fn fraction_faulty(&self) -> f64 {
        self.count_faulty() as f64 / (self.rows * self.cols) as f64
    }

    /// Iterates over `(row, col, kind)` for every faulty cell.
    pub fn iter_faulty(&self) -> impl Iterator<Item = (usize, usize, FaultKind)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter_map(move |(i, c)| c.map(|kind| (i / self.cols, i % self.cols, kind)))
    }

    /// Merges another map into this one; existing faults are kept when both
    /// maps mark a cell (first-fault-wins, matching physical irreversibility).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn merge(&mut self, other: &FaultMap) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "fault map dimensions must match"
        );
        for (mine, theirs) in self.cells.iter_mut().zip(&other.cells) {
            if mine.is_none() {
                *mine = *theirs;
            }
        }
    }

    /// Returns the rows that contain at least one fault.
    pub fn rows_with_faults(&self) -> Vec<usize> {
        (0..self.rows)
            .filter(|&r| (0..self.cols).any(|c| self.get(r, c).is_some()))
            .collect()
    }

    /// Returns the columns that contain at least one fault.
    pub fn cols_with_faults(&self) -> Vec<usize> {
        (0..self.cols)
            .filter(|&c| (0..self.rows).any(|r| self.get(r, c).is_some()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_map_has_no_faults() {
        let map = FaultMap::healthy(8, 4);
        assert_eq!(map.rows(), 8);
        assert_eq!(map.cols(), 4);
        assert_eq!(map.count_faulty(), 0);
        assert_eq!(map.fraction_faulty(), 0.0);
        assert!(map.iter_faulty().next().is_none());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut map = FaultMap::healthy(3, 3);
        map.set(0, 0, Some(FaultKind::StuckAt1));
        map.set(2, 1, Some(FaultKind::StuckAt0));
        assert_eq!(map.get(0, 0), Some(FaultKind::StuckAt1));
        assert_eq!(map.get(2, 1), Some(FaultKind::StuckAt0));
        assert_eq!(map.get(1, 1), None);
        assert_eq!(map.count_kind(FaultKind::StuckAt0), 1);
        assert_eq!(map.count_kind(FaultKind::StuckAt1), 1);
        map.set(0, 0, None);
        assert_eq!(map.count_faulty(), 1);
    }

    #[test]
    fn iter_faulty_yields_coordinates() {
        let mut map = FaultMap::healthy(2, 3);
        map.set(1, 2, Some(FaultKind::StuckAt0));
        let faults: Vec<_> = map.iter_faulty().collect();
        assert_eq!(faults, vec![(1, 2, FaultKind::StuckAt0)]);
    }

    #[test]
    fn merge_is_first_fault_wins() {
        let mut a = FaultMap::healthy(2, 2);
        a.set(0, 0, Some(FaultKind::StuckAt0));
        let mut b = FaultMap::healthy(2, 2);
        b.set(0, 0, Some(FaultKind::StuckAt1));
        b.set(1, 1, Some(FaultKind::StuckAt1));
        a.merge(&b);
        assert_eq!(a.get(0, 0), Some(FaultKind::StuckAt0));
        assert_eq!(a.get(1, 1), Some(FaultKind::StuckAt1));
    }

    #[test]
    fn rows_and_cols_with_faults() {
        let mut map = FaultMap::healthy(4, 4);
        map.set(1, 3, Some(FaultKind::StuckAt0));
        map.set(2, 3, Some(FaultKind::StuckAt1));
        assert_eq!(map.rows_with_faults(), vec![1, 2]);
        assert_eq!(map.cols_with_faults(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let map = FaultMap::healthy(2, 2);
        let _ = map.get(2, 0);
    }

    #[test]
    fn fault_state_helpers() {
        assert!(!FaultState::Healthy.is_faulty());
        assert!(FaultState::Stuck(FaultKind::StuckAt0).is_faulty());
        assert_eq!(
            FaultState::Stuck(FaultKind::StuckAt1).kind(),
            Some(FaultKind::StuckAt1)
        );
        assert_eq!(FaultState::Healthy.kind(), None);
        assert_eq!(FaultState::default(), FaultState::Healthy);
    }

    #[test]
    fn fault_kind_display() {
        assert_eq!(FaultKind::StuckAt0.to_string(), "SA0");
        assert_eq!(FaultKind::StuckAt1.to_string(), "SA1");
    }
}

//! Error type for the serve layer.
//!
//! Admission outcomes ([`crate::queue::Admission`]) are deliberately *not*
//! errors: shedding a request is the service working as designed, so
//! `submit` never returns `Result`. `ServeError` covers the cases where
//! the service itself cannot make progress — invalid configuration,
//! placement that cannot fit, or a failure in one of the layers below.

use std::fmt;

use ftt_core::error::FttError;
use ftt_snapshot::SnapshotError;
use ftt_tile::TileError;

/// Errors surfaced by [`crate::service::Service`].
#[derive(Debug)]
pub enum ServeError {
    /// A `ServiceConfig`/spec field is out of range or inconsistent.
    InvalidConfig(String),
    /// No chip node has enough free tile budget for a tenant's quota.
    NoCapacity {
        /// Tenant that could not be placed.
        tenant: String,
        /// Tiles the tenant's quota requires.
        tiles_needed: usize,
    },
    /// A tenant name was registered twice.
    DuplicateTenant(String),
    /// The tile layer failed (allocation, programming, campaigns).
    Tile(TileError),
    /// The training flow failed.
    Flow(FttError),
    /// A migration snapshot failed to decode.
    Snapshot(SnapshotError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig(msg) => write!(f, "invalid service config: {msg}"),
            ServeError::NoCapacity {
                tenant,
                tiles_needed,
            } => write!(
                f,
                "no chip node has {tiles_needed} free tiles for tenant {tenant:?}"
            ),
            ServeError::DuplicateTenant(name) => {
                write!(f, "tenant {name:?} is already registered")
            }
            ServeError::Tile(e) => write!(f, "tile layer: {e}"),
            ServeError::Flow(e) => write!(f, "training flow: {e}"),
            ServeError::Snapshot(e) => write!(f, "migration snapshot: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<TileError> for ServeError {
    fn from(e: TileError) -> Self {
        ServeError::Tile(e)
    }
}

impl From<FttError> for ServeError {
    fn from(e: FttError) -> Self {
        ServeError::Flow(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_layer() {
        let e = ServeError::InvalidConfig("queue_capacity must be >= 1".into());
        assert!(e.to_string().contains("queue_capacity"));
        let e = ServeError::NoCapacity {
            tenant: "t0".into(),
            tiles_needed: 12,
        };
        assert!(e.to_string().contains("12 free tiles"));
        assert!(e.to_string().contains("t0"));
    }
}

//! Synthetic stand-ins for the paper's datasets.
//!
//! The paper evaluates on Cifar-10 (3×32×32 natural images, 10 classes) and
//! MNIST (28×28 digits). Neither dataset ships with this repository, so we
//! generate *structured* synthetic classification tasks of the same shape:
//! each class gets a smooth random prototype image (low-frequency pattern
//! upsampled from a coarse grid), and samples are noisy, randomly-scaled
//! copies of their class prototype.
//!
//! This preserves everything the paper's comparisons measure — a task that
//! trains to a stable accuracy ceiling, degrades when weights get stuck, and
//! recovers under fault-tolerant training — while remaining fully
//! deterministic from a seed (see `DESIGN.md` §2 for the substitution
//! rationale).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::Dataset;
use crate::tensor::Tensor;

/// Factory for synthetic datasets shaped like the paper's benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticDataset;

/// Amount of additive pixel noise in the generated samples.
const PIXEL_NOISE: f32 = 0.25;
/// Range of the per-sample global intensity scaling.
const SCALE_JITTER: f32 = 0.2;
/// Prototypes per class (samples pick one — multi-modal classes).
const PROTOTYPES_PER_CLASS: usize = 3;
/// Range of the distractor-prototype blend weight. Every sample is blended
/// with a prototype of a *different* class, pushing it toward the decision
/// boundary so the task has a sub-100 % accuracy ceiling — like the paper's
/// 85.2 % Cifar-10 ceiling — and so stuck weights visibly cost accuracy.
const DISTRACTOR_MIN: f32 = 0.25;
const DISTRACTOR_MAX: f32 = 0.45;

impl SyntheticDataset {
    /// A Cifar-10-like task: `[3, 32, 32]` images, 10 classes.
    pub fn cifar_like(train_n: usize, test_n: usize, seed: u64) -> Dataset {
        Self::images(train_n, test_n, seed, 3, 32, 32, 10)
    }

    /// An MNIST-like task: flat `[784]` vectors (28×28), 10 classes —
    /// matching the paper's 784×100×10 network input.
    ///
    /// Like real MNIST digits, the images are **sparse**: only the
    /// "stroke" region (where the class prototype is strong) carries
    /// non-zero pixels, leaving ~75–80 % of each image at exactly zero.
    /// This matters for reproducing §5.1: zero pixels give exactly-zero
    /// first-layer gradients, which is a large part of why ~90 % of the
    /// per-iteration `δw` fall below the write threshold.
    pub fn mnist_like(train_n: usize, test_n: usize, seed: u64) -> Dataset {
        let d = Self::images(train_n, test_n, seed, 1, 28, 28, 10);
        let sparsify = |x: Tensor| -> Tensor {
            // Keep only the strong part of each smooth pattern, re-scaled to
            // [0, 1]: value v -> max(0, (v - 0.6) / 0.4).
            x.map(|v| ((v - 0.7) / 0.3).max(0.0))
        };
        let (train_x, train_y) = d.train_set();
        let (test_x, test_y) = d.test_set();
        let tr_n = train_x.shape()[0];
        let te_n = test_x.shape()[0];
        Dataset::new(
            sparsify(train_x).reshape(vec![tr_n, 784]),
            train_y,
            sparsify(test_x).reshape(vec![te_n, 784]),
            test_y,
            10,
        )
    }

    /// A generic smooth-prototype image task.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn images(
        train_n: usize,
        test_n: usize,
        seed: u64,
        channels: usize,
        height: usize,
        width: usize,
        classes: usize,
    ) -> Dataset {
        assert!(
            train_n > 0 && test_n > 0 && classes > 0,
            "counts must be non-zero"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Multi-modal classes: several prototypes each.
        let prototypes: Vec<Vec<Vec<f32>>> = (0..classes)
            .map(|_| {
                (0..PROTOTYPES_PER_CLASS)
                    .map(|_| prototype(channels, height, width, &mut rng))
                    .collect()
            })
            .collect();
        let sample_len = channels * height * width;
        let make_split = |n: usize, rng: &mut StdRng| {
            let mut data = Vec::with_capacity(n * sample_len);
            let mut labels = Vec::with_capacity(n);
            for i in 0..n {
                let class = i % classes; // balanced classes
                let proto = &prototypes[class][rng.gen_range(0..PROTOTYPES_PER_CLASS)];
                // Blend with a distractor from a different class.
                let other = (class + rng.gen_range(1..classes.max(2))) % classes;
                let distractor = &prototypes[other][rng.gen_range(0..PROTOTYPES_PER_CLASS)];
                let alpha = rng.gen_range(DISTRACTOR_MIN..DISTRACTOR_MAX);
                let scale = 1.0 + rng.gen_range(-SCALE_JITTER..SCALE_JITTER);
                for (&p, &d) in proto.iter().zip(distractor) {
                    let blended = (1.0 - alpha) * p + alpha * d;
                    let noisy = blended * scale + rng.gen_range(-PIXEL_NOISE..PIXEL_NOISE);
                    data.push(noisy.clamp(0.0, 1.0));
                }
                labels.push(class);
            }
            (data, labels)
        };
        let (train_data, train_y) = make_split(train_n, &mut rng);
        let (test_data, test_y) = make_split(test_n, &mut rng);
        Dataset::new(
            Tensor::from_vec(vec![train_n, channels, height, width], train_data),
            train_y,
            Tensor::from_vec(vec![test_n, channels, height, width], test_data),
            test_y,
            classes,
        )
    }
}

/// Builds one smooth class prototype: a coarse random grid (quarter
/// resolution) upsampled with bilinear interpolation, normalized to `[0, 1]`.
fn prototype(channels: usize, height: usize, width: usize, rng: &mut StdRng) -> Vec<f32> {
    let ch = (height / 4).max(2);
    let cw = (width / 4).max(2);
    let mut out = Vec::with_capacity(channels * height * width);
    for _ in 0..channels {
        let coarse: Vec<f32> = (0..ch * cw).map(|_| rng.gen_range(0.0..1.0)).collect();
        for y in 0..height {
            let fy = y as f32 / height as f32 * (ch - 1) as f32;
            let (y0, ty) = (fy as usize, fy.fract());
            let y1 = (y0 + 1).min(ch - 1);
            for x in 0..width {
                let fx = x as f32 / width as f32 * (cw - 1) as f32;
                let (x0, tx) = (fx as usize, fx.fract());
                let x1 = (x0 + 1).min(cw - 1);
                let v = coarse[y0 * cw + x0] * (1.0 - ty) * (1.0 - tx)
                    + coarse[y0 * cw + x1] * (1.0 - ty) * tx
                    + coarse[y1 * cw + x0] * ty * (1.0 - tx)
                    + coarse[y1 * cw + x1] * ty * tx;
                out.push(v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cifar_like_has_paper_shape() {
        let d = SyntheticDataset::cifar_like(20, 10, 1);
        assert_eq!(d.sample_shape(), &[3, 32, 32]);
        assert_eq!(d.classes(), 10);
        assert_eq!(d.train_len(), 20);
        assert_eq!(d.test_len(), 10);
    }

    #[test]
    fn mnist_like_is_flat_784() {
        let d = SyntheticDataset::mnist_like(20, 10, 1);
        assert_eq!(d.sample_shape(), &[784]);
    }

    #[test]
    fn pixels_are_normalized() {
        let d = SyntheticDataset::cifar_like(10, 10, 2);
        let (x, _) = d.train_set();
        assert!(x.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn classes_are_balanced() {
        let d = SyntheticDataset::cifar_like(100, 50, 3);
        let (_, y) = d.train_set();
        for class in 0..10 {
            assert_eq!(y.iter().filter(|&&c| c == class).count(), 10);
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = SyntheticDataset::mnist_like(10, 5, 9);
        let b = SyntheticDataset::mnist_like(10, 5, 9);
        assert_eq!(a.train_set().0.data(), b.train_set().0.data());
        let c = SyntheticDataset::mnist_like(10, 5, 10);
        assert_ne!(a.train_set().0.data(), c.train_set().0.data());
    }

    #[test]
    fn same_class_samples_are_more_similar_than_cross_class() {
        let d = SyntheticDataset::cifar_like(40, 10, 4);
        let (x, y) = d.train_set();
        let len: usize = d.sample_shape().iter().product();
        let dist = |a: usize, b: usize| -> f32 {
            x.data()[a * len..(a + 1) * len]
                .iter()
                .zip(&x.data()[b * len..(b + 1) * len])
                .map(|(p, q)| (p - q) * (p - q))
                .sum()
        };
        // samples 0 and 10 share class 0; sample 1 is class 1.
        assert_eq!(y[0], y[10]);
        assert_ne!(y[0], y[1]);
        assert!(
            dist(0, 10) < dist(0, 1),
            "intra-class distance should be smaller"
        );
    }
}

//! Training curves and experiment records.

/// One evaluation point on a training curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Training iteration (mini-batch count).
    pub iteration: u64,
    /// Test-set accuracy measured through the (faulty) hardware.
    pub test_accuracy: f64,
    /// Fraction of mapped cells with hard faults at this point.
    pub faulty_fraction: f64,
    /// Cumulative hardware write pulses.
    pub write_pulses: u64,
}

/// An accuracy-vs-iterations curve, the unit the paper's Figs. 1 and 7 plot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainingCurve {
    points: Vec<CurvePoint>,
}

impl TrainingCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point.
    pub fn push(&mut self, point: CurvePoint) {
        self.points.push(point);
    }

    /// All recorded points, in iteration order.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// The highest accuracy seen (the "peak accuracy" the paper reports).
    pub fn peak_accuracy(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.test_accuracy)
            .fold(0.0, f64::max)
    }

    /// The accuracy at the last evaluation.
    pub fn final_accuracy(&self) -> f64 {
        self.points.last().map(|p| p.test_accuracy).unwrap_or(0.0)
    }

    /// Renders the curve as CSV
    /// (`iteration,accuracy,faulty_fraction,write_pulses`).
    ///
    /// Floats are truncated to 4 decimals for readability; use
    /// [`TrainingCurve::to_jsonl`] for a lossless export.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("iteration,accuracy,faulty_fraction,write_pulses\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.4},{:.4},{}\n",
                p.iteration, p.test_accuracy, p.faulty_fraction, p.write_pulses
            ));
        }
        out
    }

    /// Renders the curve as JSON Lines, one object per point, using the
    /// telemetry subsystem's shortest-round-trip float formatting — unlike
    /// [`TrainingCurve::to_csv`] this is lossless (every `f64` parses back
    /// to the identical bits; see [`TrainingCurve::from_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            out.push_str(
                &obs::JsonObject::new()
                    .field_u64("iteration", p.iteration)
                    .field_f64("accuracy", p.test_accuracy)
                    .field_f64("faulty_fraction", p.faulty_fraction)
                    .field_u64("write_pulses", p.write_pulses)
                    .finish(),
            );
            out.push('\n');
        }
        out
    }

    /// Parses a curve back from [`TrainingCurve::to_jsonl`] output. Lines
    /// missing any field are skipped (blank lines included), so the parse
    /// is total.
    pub fn from_jsonl(text: &str) -> Self {
        let mut curve = Self::new();
        for line in text.lines() {
            let (Some(iteration), Some(test_accuracy), Some(faulty_fraction), Some(write_pulses)) = (
                obs::json::extract_u64(line, "iteration"),
                obs::json::extract_f64(line, "accuracy"),
                obs::json::extract_f64(line, "faulty_fraction"),
                obs::json::extract_u64(line, "write_pulses"),
            ) else {
                continue;
            };
            curve.push(CurvePoint {
                iteration,
                test_accuracy,
                faulty_fraction,
                write_pulses,
            });
        }
        curve
    }
}

/// Aggregate statistics of a training run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlowStats {
    /// Hardware writes issued by threshold training.
    pub writes_issued: u64,
    /// Updates suppressed by the threshold.
    pub writes_skipped: u64,
    /// Cells that wore out during training writes.
    pub wear_faults_during_training: u64,
    /// Detection campaigns run.
    pub detection_campaigns: u64,
    /// Total detection test cycles.
    pub detection_cycles: u64,
    /// Write pulses spent by detection itself.
    pub detection_writes: u64,
    /// Re-mapping plans applied.
    pub remaps_applied: u64,
    /// `Dist(P, F)` before the most recent re-mapping search.
    pub last_remap_initial_cost: u64,
    /// `Dist(P, F)` after the most recent re-mapping search.
    pub last_remap_final_cost: u64,
    /// Cell-level analog multiply-accumulates performed on the mapped
    /// crossbars (forward pass plus the two backward products).
    pub mvm_cell_ops: u64,
    /// Non-finite (NaN/inf) gradient updates skipped by the threshold
    /// trainer instead of being written to hardware.
    pub nan_updates_skipped: u64,
    /// Detection test groups that could not be swept (hardware error mid-
    /// campaign); their cells stay flagged as they were, untested.
    pub detection_untested_groups: u64,
    /// Crossbar tiles retired after crossing the fault-density threshold.
    pub tiles_retired: u64,
    /// Spare tiles attached in place of retired ones.
    pub spares_attached: u64,
    /// Cycles spent by the fault-tolerance strategy outside detection
    /// campaigns (per-iteration mask generation, strategy-owned verify
    /// reads), priced as cell reads by [`FlowStats::energy`].
    pub strategy_cycles: u64,
}

impl FlowStats {
    /// Fraction of candidate updates suppressed over the whole run.
    pub fn skipped_fraction(&self) -> f64 {
        let total = self.writes_issued + self.writes_skipped;
        if total == 0 {
            0.0
        } else {
            self.writes_skipped as f64 / total as f64
        }
    }

    /// Estimates the run's RCS energy under the given model: analog MVM
    /// work, the quiescent-voltage read cycles spent by detection and by
    /// the fault-tolerance strategy (one cell read per cycle), and all
    /// programming pulses (training and detection).
    pub fn energy(&self, model: &rram::energy::EnergyModel) -> rram::energy::EnergyEstimate {
        model.estimate(rram::energy::OperationCounts {
            mvm_cell_ops: self.mvm_cell_ops,
            cell_reads: self.detection_cycles + self.strategy_cycles,
            write_pulses: self.writes_issued + self.detection_writes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_summary_statistics() {
        let mut curve = TrainingCurve::new();
        assert_eq!(curve.peak_accuracy(), 0.0);
        assert_eq!(curve.final_accuracy(), 0.0);
        for (i, acc) in [(10u64, 0.3), (20, 0.8), (30, 0.6)] {
            curve.push(CurvePoint {
                iteration: i,
                test_accuracy: acc,
                faulty_fraction: 0.1,
                write_pulses: i * 100,
            });
        }
        assert_eq!(curve.peak_accuracy(), 0.8);
        assert_eq!(curve.final_accuracy(), 0.6);
        assert_eq!(curve.points().len(), 3);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut curve = TrainingCurve::new();
        curve.push(CurvePoint {
            iteration: 5,
            test_accuracy: 0.5,
            faulty_fraction: 0.25,
            write_pulses: 42,
        });
        let csv = curve.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("iteration,"));
        assert_eq!(lines[1], "5,0.5000,0.2500,42");
    }

    #[test]
    fn stats_energy_estimate() {
        let stats = FlowStats {
            writes_issued: 10,
            detection_writes: 5,
            mvm_cell_ops: 1000,
            ..Default::default()
        };
        let est = stats.energy(&rram::energy::EnergyModel::typical());
        // 1000 * 0.1 + 15 * 100 = 1600 pJ.
        assert!((est.total_pj() - 1600.0).abs() < 1e-9);
        assert!(est.write_fraction() > 0.9);

        // Detection read cycles are no longer free: each test cycle is a
        // quiescent-voltage cell read at 1 pJ.
        let with_reads = FlowStats {
            detection_cycles: 200,
            ..stats
        };
        let est2 = with_reads.energy(&rram::energy::EnergyModel::typical());
        assert!((est2.read_pj - 200.0).abs() < 1e-9);
        assert!((est2.total_pj() - 1800.0).abs() < 1e-9);
    }

    #[test]
    fn jsonl_round_trips_bit_exact() {
        let mut curve = TrainingCurve::new();
        for (i, acc) in [
            (1u64, 1.0 / 3.0),
            (2, 0.123456789012345),
            (3, f64::MIN_POSITIVE),
        ] {
            curve.push(CurvePoint {
                iteration: i,
                test_accuracy: acc,
                faulty_fraction: acc / 7.0,
                write_pulses: i * 1000 + 1,
            });
        }
        let text = curve.to_jsonl();
        assert_eq!(text.lines().count(), 3);
        let back = TrainingCurve::from_jsonl(&text);
        assert_eq!(back.points().len(), 3);
        for (a, b) in curve.points().iter().zip(back.points()) {
            assert_eq!(a.iteration, b.iteration);
            assert_eq!(a.write_pulses, b.write_pulses);
            assert_eq!(a.test_accuracy.to_bits(), b.test_accuracy.to_bits());
            assert_eq!(a.faulty_fraction.to_bits(), b.faulty_fraction.to_bits());
        }
    }

    #[test]
    fn csv_round_trips_at_four_decimals() {
        // CSV is the lossy export: values survive only to 4 decimals.
        let mut curve = TrainingCurve::new();
        curve.push(CurvePoint {
            iteration: 9,
            test_accuracy: 0.87654321,
            faulty_fraction: 0.00012,
            write_pulses: 7,
        });
        let csv = curve.to_csv();
        let row = csv.lines().nth(1).unwrap();
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols[0].parse::<u64>().unwrap(), 9);
        let acc: f64 = cols[1].parse().unwrap();
        assert!(
            (acc - 0.87654321).abs() <= 5e-5,
            "4-decimal truncation bound"
        );
        let ff: f64 = cols[2].parse().unwrap();
        assert!((ff - 0.00012).abs() <= 5e-5);
        assert_eq!(cols[3].parse::<u64>().unwrap(), 7);
    }

    #[test]
    fn stats_skipped_fraction() {
        let stats = FlowStats {
            writes_issued: 10,
            writes_skipped: 90,
            ..Default::default()
        };
        assert!((stats.skipped_fraction() - 0.9).abs() < 1e-12);
        assert_eq!(FlowStats::default().skipped_fraction(), 0.0);
    }
}

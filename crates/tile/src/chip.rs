//! The tiled chip: a pool of bounded-size crossbar tiles plus spares.
//!
//! A real RRAM computing system shards any non-trivial layer across many
//! fixed-size arrays; fault handling, wear, and test scheduling are all
//! per-array decisions. [`TiledChip`] owns every physical tile of the
//! simulated chip — the active shards of mapped layers *and* a pool of
//! cold spares — and is the single authority on tile identity, retirement,
//! and substitution. Mappings (see [`crate::mapping::TiledMapping`]) hold
//! tile *ids*, never the arrays themselves, so a spare swap is one id
//! rewrite plus a reprogram.
//!
//! Determinism: each tile is seeded
//! `seed.wrapping_mul(0x9E37_79B9).wrapping_add(counter)` with a
//! pre-incremented chip-global allocation counter, the exact stream the
//! monolithic mapper uses — so a tiled chip and a monolithic mapping built
//! from the same seed draw identical per-tile RNG streams in allocation
//! order. Detection campaigns fan out across the [`par`] budget but
//! aggregate in tile-id order, and obs events are only emitted from the
//! sequential spine (retire/substitute), keeping seeded traces
//! byte-identical at any `RRAM_FTT_THREADS`.

use faultdet::detector::{DetectionOutcome, OnlineFaultDetector};
use faultdet::reference::{OffChipStore, StoreState};
use rram::crossbar::{Crossbar, CrossbarBuilder, CrossbarState};
use rram::endurance::EnduranceModel;
use rram::fault::{FaultKind, FaultMap};
use rram::spatial::FaultInjection;
use rram::variation::WriteVariation;
use rram::RramError;

use std::collections::BTreeSet;

use crate::error::TileError;
use crate::health::TileHealth;

/// Chip-wide configuration: tile geometry, device models, spare pool, and
/// the retirement policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipConfig {
    /// Nominal tile edge (tiles are at most `tile_size × tile_size`).
    pub tile_size: usize,
    /// Conductance levels per cell.
    pub levels: u16,
    /// Endurance model applied to every tile.
    pub endurance: EnduranceModel,
    /// Write-variation model applied to every tile.
    pub variation: WriteVariation,
    /// Manufacturing-fault injection applied to newly built tiles
    /// (spares included — a cold spare is not magically perfect).
    pub injection: Option<FaultInjection>,
    /// Cold spare tiles available for substitution.
    pub spare_tiles: usize,
    /// Retire a tile when its *predicted* fault density crosses this
    /// threshold (`None` disables sparing).
    pub retire_fault_density: Option<f64>,
    /// Chip seed; every tile derives its own stream from it.
    pub seed: u64,
}

impl ChipConfig {
    /// A chip with the given tile edge and seed; unlimited endurance, no
    /// variation, no injected faults, no spares, sparing disabled.
    pub fn new(tile_size: usize, levels: u16, seed: u64) -> Self {
        ChipConfig {
            tile_size,
            levels,
            endurance: EnduranceModel::unlimited(),
            variation: WriteVariation::none(),
            injection: None,
            spare_tiles: 0,
            retire_fault_density: None,
            seed,
        }
    }

    /// Sets the endurance model.
    pub fn with_endurance(mut self, endurance: EnduranceModel) -> Self {
        self.endurance = endurance;
        self
    }

    /// Sets the write-variation model.
    pub fn with_variation(mut self, variation: WriteVariation) -> Self {
        self.variation = variation;
        self
    }

    /// Sets manufacturing-fault injection for newly built tiles.
    pub fn with_injection(mut self, injection: FaultInjection) -> Self {
        self.injection = Some(injection);
        self
    }

    /// Sets the cold-spare pool size.
    pub fn with_spare_tiles(mut self, spares: usize) -> Self {
        self.spare_tiles = spares;
        self
    }

    /// Enables retirement at the given predicted fault density.
    pub fn with_retire_fault_density(mut self, density: f64) -> Self {
        self.retire_fault_density = Some(density);
        self
    }

    fn validate(&self) -> Result<(), TileError> {
        if self.tile_size == 0 {
            return Err(TileError::InvalidConfig("tile_size must be >= 1".into()));
        }
        if self.levels < 2 {
            return Err(TileError::InvalidConfig(format!(
                "need at least 2 conductance levels, got {}",
                self.levels
            )));
        }
        if let Some(d) = self.retire_fault_density {
            if !d.is_finite() || d <= 0.0 || d > 1.0 {
                return Err(TileError::InvalidConfig(format!(
                    "retire_fault_density must be in (0, 1], got {d}"
                )));
            }
        }
        Ok(())
    }
}

/// One physical tile slot of the chip.
#[derive(Debug, Clone)]
pub struct TileSlot {
    /// Chip-global tile id (stable for the chip's lifetime).
    pub id: usize,
    /// The physical array.
    pub xbar: Crossbar,
    /// Whether this tile has been retired from service.
    pub retired: bool,
    /// When this tile is a spare, the id of the tile it replaced.
    pub spare_origin: Option<usize>,
    /// Outcome of the most recent detection campaign on this tile.
    pub last_detection: Option<DetectionOutcome>,
    /// Error of the most recent campaign, when it failed.
    pub last_campaign_error: Option<RramError>,
    /// Persistent off-chip reference store for incremental campaigns
    /// (`None` until the first incremental campaign attaches one).
    pub store: Option<OffChipStore>,
}

impl TileSlot {
    /// Cells in this tile.
    pub fn cells(&self) -> usize {
        self.xbar.rows() * self.xbar.cols()
    }

    /// Predicted fault density from the last campaign (`None` before the
    /// first successful campaign).
    pub fn predicted_fault_density(&self) -> Option<f64> {
        self.last_detection
            .as_ref()
            .map(|d| d.predicted.count_faulty() as f64 / self.cells() as f64)
    }
}

/// Aggregate results of one chip-level detection pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Tiles whose campaign completed.
    pub campaigns_run: u64,
    /// Tiles whose campaign failed outright (error stored on the slot).
    pub failed_tiles: u64,
    /// Total test cycles across tiles (§6.1 per-tile cycles summed).
    pub cycles: u64,
    /// Write pulses the campaigns themselves spent.
    pub write_pulses: u64,
    /// Cells flagged faulty, summed over tested tiles.
    pub flagged_cells: u64,
    /// Group sweeps skipped due to degraded coverage.
    pub untested_groups: u64,
}

/// Result of a substitution request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpareOutcome {
    /// A spare was attached; the caller should reprogram and re-point its
    /// shards at `new_id`.
    Attached {
        /// Chip-global id of the newly attached tile.
        new_id: usize,
    },
    /// The spare pool is empty; the tile was *not* retired (a degraded
    /// tile still computes better than a missing one).
    Exhausted,
}

#[derive(Debug, Clone)]
struct ChipMetrics {
    recorder: obs::Recorder,
    retired: obs::Counter,
    attached: obs::Counter,
    spares_remaining: obs::Gauge,
    campaigns: obs::Counter,
}

/// The chip: a pool of tiles, a spare budget, and the retirement policy.
#[derive(Debug, Clone)]
pub struct TiledChip {
    config: ChipConfig,
    slots: Vec<TileSlot>,
    tile_counter: u64,
    spares_remaining: usize,
    spares_attached: u64,
    metrics: Option<ChipMetrics>,
}

impl TiledChip {
    /// Builds an empty chip from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TileError::InvalidConfig`] for a zero tile size, fewer
    /// than two levels, or an out-of-range retirement density.
    pub fn new(config: ChipConfig) -> Result<Self, TileError> {
        config.validate()?;
        Ok(TiledChip {
            config,
            slots: Vec::new(),
            tile_counter: 0,
            spares_remaining: config.spare_tiles,
            spares_attached: 0,
            metrics: None,
        })
    }

    /// The chip's configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Instruments the chip (and every current tile) with telemetry:
    /// `tile_retired_total` / `tile_spares_attached_total` counters, the
    /// `tile_spares_remaining` gauge, a `tile_campaigns_total` counter,
    /// and [`obs::Event::TileRetired`] / [`obs::Event::SpareAttached`]
    /// events on retirement and substitution.
    pub fn attach_recorder(&mut self, recorder: &obs::Recorder) {
        let m = ChipMetrics {
            recorder: recorder.clone(),
            retired: recorder.counter("tile_retired_total"),
            attached: recorder.counter("tile_spares_attached_total"),
            spares_remaining: recorder.gauge("tile_spares_remaining"),
            campaigns: recorder.counter("tile_campaigns_total"),
        };
        m.spares_remaining.set(self.spares_remaining as f64);
        for slot in &mut self.slots {
            slot.xbar.attach_recorder(recorder);
        }
        self.metrics = Some(m);
    }

    /// Allocates a fresh tile of the given dimensions (clamped to the
    /// nominal tile size by callers; the chip itself allows any dims up to
    /// `tile_size` per edge) and returns its chip-global id.
    ///
    /// # Errors
    ///
    /// Returns [`TileError::InvalidConfig`] for dimensions exceeding the
    /// nominal tile, and propagates device build errors.
    pub fn allocate(&mut self, rows: usize, cols: usize) -> Result<usize, TileError> {
        if rows == 0 || cols == 0 || rows > self.config.tile_size || cols > self.config.tile_size {
            return Err(TileError::InvalidConfig(format!(
                "tile dims {rows}x{cols} outside 1..={}",
                self.config.tile_size
            )));
        }
        self.tile_counter += 1;
        let mut builder = CrossbarBuilder::new(rows, cols)
            .levels(self.config.levels)
            .endurance(self.config.endurance)
            .variation(self.config.variation)
            .seed(
                self.config
                    .seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(self.tile_counter),
            );
        if let Some(injection) = self.config.injection {
            builder = builder.initial_fault_injection(injection);
        }
        let mut xbar = builder.build().map_err(TileError::Rram)?;
        if let Some(m) = &self.metrics {
            xbar.attach_recorder(&m.recorder);
        }
        let id = self.slots.len();
        self.slots.push(TileSlot {
            id,
            xbar,
            retired: false,
            spare_origin: None,
            last_detection: None,
            last_campaign_error: None,
            store: None,
        });
        Ok(id)
    }

    /// Number of tile slots ever allocated (retired slots included).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Ids of tiles currently in service, ascending.
    pub fn active_ids(&self) -> Vec<usize> {
        self.slots
            .iter()
            .filter(|s| !s.retired)
            .map(|s| s.id)
            .collect()
    }

    /// Spares left in the pool.
    pub fn spares_remaining(&self) -> usize {
        self.spares_remaining
    }

    /// Spares attached so far.
    pub fn spares_attached(&self) -> u64 {
        self.spares_attached
    }

    /// Tiles retired so far.
    pub fn tiles_retired(&self) -> u64 {
        self.slots.iter().filter(|s| s.retired).count() as u64
    }

    /// Shared view of a tile slot.
    pub fn slot(&self, id: usize) -> Result<&TileSlot, TileError> {
        self.slots.get(id).ok_or(TileError::UnknownTile { id })
    }

    /// Shared view of a tile's array.
    pub fn tile(&self, id: usize) -> Result<&Crossbar, TileError> {
        self.slot(id).map(|s| &s.xbar)
    }

    /// Exclusive view of a tile's array.
    ///
    /// # Errors
    ///
    /// Unknown ids error; retired tiles are still accessible (their state
    /// is frozen but readable — post-mortems read retired tiles).
    pub fn tile_mut(&mut self, id: usize) -> Result<&mut Crossbar, TileError> {
        let slot = self
            .slots
            .get_mut(id)
            .ok_or(TileError::UnknownTile { id })?;
        Ok(&mut slot.xbar)
    }

    /// Ground-truth fault density of a tile (simulator-only knowledge).
    pub fn fault_density(&self, id: usize) -> Result<f64, TileError> {
        Ok(self.slot(id)?.xbar.fault_map().fraction_faulty())
    }

    /// Predicted fault density of a tile from its last campaign.
    pub fn predicted_fault_density(&self, id: usize) -> Result<Option<f64>, TileError> {
        Ok(self.slot(id)?.predicted_fault_density())
    }

    /// The last campaign outcome of a tile.
    pub fn last_detection(&self, id: usize) -> Result<Option<&DetectionOutcome>, TileError> {
        Ok(self.slot(id)?.last_detection.as_ref())
    }

    /// Takes (and clears) the last campaign error of a tile.
    pub fn take_campaign_error(&mut self, id: usize) -> Result<Option<RramError>, TileError> {
        let slot = self
            .slots
            .get_mut(id)
            .ok_or(TileError::UnknownTile { id })?;
        Ok(slot.last_campaign_error.take())
    }

    /// Runs the §4 quiescent-voltage campaign on each listed tile,
    /// tile-locally: every tile gets its own campaign, so comparison
    /// groups (Tr/Tc) never span tile edges. Campaigns fan out across the
    /// [`par`] thread budget; results are stored on the slots and
    /// aggregated in ascending id order, so the stats (and any recorder
    /// counters the detector carries) are deterministic at any thread
    /// count. Retired and unknown ids are skipped silently — schedulers
    /// may race retirement.
    pub fn run_campaigns(
        &mut self,
        detector: &OnlineFaultDetector,
        ids: &[usize],
    ) -> CampaignStats {
        self.run_campaigns_with(detector, ids, false)
    }

    /// Incremental variant of [`run_campaigns`]: each tile keeps a
    /// persistent [`OffChipStore`] (attached with a full snapshot on its
    /// first incremental campaign) and subsequent campaigns only re-read and
    /// retest the cells written since the previous one, carrying the tile's
    /// last predicted map forward for untouched cells. Fresh tiles behave
    /// exactly like a full campaign; warm tiles with sparse write traffic
    /// cost a fraction of the cycles.
    ///
    /// [`run_campaigns`]: Self::run_campaigns
    pub fn run_campaigns_incremental(
        &mut self,
        detector: &OnlineFaultDetector,
        ids: &[usize],
    ) -> CampaignStats {
        self.run_campaigns_with(detector, ids, true)
    }

    fn run_campaigns_with(
        &mut self,
        detector: &OnlineFaultDetector,
        ids: &[usize],
        incremental: bool,
    ) -> CampaignStats {
        let selected: BTreeSet<usize> = ids.iter().copied().collect();
        let hint = 8 * self.config.tile_size * self.config.tile_size;
        par::for_each_chunk_mut_hinted(&mut self.slots, hint, |_, slots| {
            for slot in slots {
                if slot.retired || !selected.contains(&slot.id) {
                    continue;
                }
                let result = if incremental {
                    let TileSlot {
                        xbar,
                        store,
                        last_detection,
                        ..
                    } = slot;
                    let store = store.get_or_insert_with(|| OffChipStore::attach(&mut *xbar));
                    let baseline = last_detection.as_ref().map(|d| &d.predicted);
                    detector.run_incremental(xbar, store, baseline)
                } else {
                    detector.run(&mut slot.xbar)
                };
                match result {
                    Ok(outcome) => {
                        slot.last_detection = Some(outcome);
                        slot.last_campaign_error = None;
                    }
                    Err(e) => {
                        slot.last_campaign_error = Some(e);
                    }
                }
            }
        });
        let mut stats = CampaignStats::default();
        for &id in &selected {
            let Some(slot) = self.slots.get(id) else {
                continue;
            };
            if slot.retired {
                continue;
            }
            if slot.last_campaign_error.is_some() {
                stats.failed_tiles += 1;
                continue;
            }
            let Some(outcome) = &slot.last_detection else {
                continue;
            };
            stats.campaigns_run += 1;
            stats.cycles += outcome.cycles();
            stats.write_pulses += outcome.write_pulses;
            stats.flagged_cells += outcome.predicted.count_faulty() as u64;
            stats.untested_groups += outcome.untested_groups;
        }
        if let Some(m) = &self.metrics {
            m.campaigns.add(stats.campaigns_run);
        }
        stats
    }

    /// Active tiles whose *predicted* fault density is at or above the
    /// threshold, ascending by id. Tiles never tested are never flagged
    /// (retirement is driven by detection, exactly like remapping).
    pub fn tiles_over_density(&self, threshold: f64) -> Vec<usize> {
        self.slots
            .iter()
            .filter(|s| !s.retired)
            .filter(|s| s.predicted_fault_density().is_some_and(|d| d >= threshold))
            .map(|s| s.id)
            .collect()
    }

    /// Retires a tile and attaches a spare of the same dimensions in its
    /// place. On success the caller owns reprogramming the new tile and
    /// re-pointing shards at `new_id`. With an empty spare pool the tile
    /// is left in service and [`SpareOutcome::Exhausted`] is returned.
    ///
    /// Spares are *factory-screened*: the manufacture-time fault injection
    /// models defects in the arrays as shipped, and the held-back spare
    /// pool only keeps tiles that passed screening — so a fresh spare
    /// starts fault-free (it still wears out under writes like any tile).
    ///
    /// Emits [`obs::Event::TileRetired`] and [`obs::Event::SpareAttached`]
    /// (sequential spine only — never called from worker threads).
    ///
    /// # Errors
    ///
    /// Unknown ids and already-retired tiles error; spare allocation
    /// failures propagate from the device layer.
    pub fn substitute(&mut self, id: usize) -> Result<SpareOutcome, TileError> {
        let slot = self.slots.get(id).ok_or(TileError::UnknownTile { id })?;
        if slot.retired {
            return Err(TileError::TileRetired { id });
        }
        if self.spares_remaining == 0 {
            return Ok(SpareOutcome::Exhausted);
        }
        let (rows, cols) = (slot.xbar.rows(), slot.xbar.cols());
        let cells = slot.cells() as u64;
        let faulty = slot
            .last_detection
            .as_ref()
            .map(|d| d.predicted.count_faulty() as u64)
            .unwrap_or(0);
        let density = if cells == 0 {
            0.0
        } else {
            faulty as f64 / cells as f64
        };

        // Screened pool: allocate the spare without manufacture-time
        // injection (restored for any later non-spare allocations).
        let saved_injection = self.config.injection.take();
        let allocated = self.allocate(rows, cols);
        self.config.injection = saved_injection;
        let new_id = allocated?;
        self.spares_remaining -= 1;
        self.spares_attached += 1;
        // PANIC-OK: `id` was validated above and allocate only appends.
        #[allow(clippy::indexing_slicing)]
        {
            self.slots[id].retired = true;
            self.slots[new_id].spare_origin = Some(id);
        }
        if let Some(m) = &self.metrics {
            m.retired.inc();
            m.attached.inc();
            m.spares_remaining.set(self.spares_remaining as f64);
            m.recorder.emit(obs::Event::TileRetired {
                tile: id as u64,
                faulty_cells: faulty,
                fault_density: density,
            });
            m.recorder.emit(obs::Event::SpareAttached {
                tile: new_id as u64,
                replaced: id as u64,
                spares_remaining: self.spares_remaining as u64,
            });
        }
        Ok(SpareOutcome::Attached { new_id })
    }

    /// Hands the incremental-detection reference state over from a retired
    /// tile to its spare: drops the retired slot's [`OffChipStore`] (it
    /// describes an array no campaign will ever read again — a warm
    /// `run_incremental` must never serve its cached aggregates) and, when
    /// the retired tile *was* running incrementally and the spare already
    /// passed a verification campaign, attaches a fresh store to the spare
    /// with nothing pending, so the next incremental campaign starts warm
    /// from the verified baseline instead of paying a full re-test.
    ///
    /// Full-mode tiles (no store) are untouched. Call after reprogramming
    /// and verifying the spare (see `apply_sparing` in `ftt-core`).
    ///
    /// # Errors
    ///
    /// Returns [`TileError::UnknownTile`] for invalid ids.
    pub fn refresh_spare_store(
        &mut self,
        retired_id: usize,
        new_id: usize,
    ) -> Result<(), TileError> {
        if new_id >= self.slots.len() {
            return Err(TileError::UnknownTile { id: new_id });
        }
        let retired_slot = self
            .slots
            .get_mut(retired_id)
            .ok_or(TileError::UnknownTile { id: retired_id })?;
        let was_incremental = retired_slot.store.take().is_some();
        // PANIC-OK: `new_id` was bounds-checked above.
        #[allow(clippy::indexing_slicing)]
        let spare = &mut self.slots[new_id];
        if was_incremental && spare.last_detection.is_some() && spare.last_campaign_error.is_none()
        {
            let mut store = OffChipStore::attach(&mut spare.xbar);
            store.clear_pending();
            spare.store = Some(store);
        }
        Ok(())
    }

    /// Total write pulses over *all* slots, retired included (the chip's
    /// logical write-pulse clock must be monotonic across retirement).
    pub fn total_write_pulses(&self) -> u64 {
        self.slots.iter().map(|s| s.xbar.write_pulses()).sum()
    }

    /// Total endurance wear-out faults over all slots, retired included.
    pub fn wear_faults(&self) -> u64 {
        self.slots.iter().map(|s| s.xbar.wear_faults()).sum()
    }

    /// Per-tile health snapshot, ascending by id (retired slots included,
    /// marked). See [`TileHealth`] for the scoring model.
    pub fn health_report(&self) -> Vec<TileHealth> {
        self.slots.iter().map(TileHealth::from_slot).collect()
    }

    /// Captures the complete serializable state of the chip (checkpoint).
    ///
    /// [`TileHealth`] is a derived view and is not captured; telemetry
    /// handles are not captured either (re-attach with
    /// [`TiledChip::attach_recorder`] after restoring). A pending
    /// `last_campaign_error` is dropped: at a healthy iteration boundary it
    /// is `None` (successful campaigns clear it), and errors are not
    /// actionable across a process restart.
    pub fn export_state(&self) -> ChipState {
        ChipState {
            slots: self
                .slots
                .iter()
                .map(|s| TileSlotState {
                    id: s.id,
                    xbar: s.xbar.export_state(),
                    retired: s.retired,
                    spare_origin: s.spare_origin,
                    last_detection: s.last_detection.as_ref().map(DetectionState::from_outcome),
                    store: s.store.as_ref().map(OffChipStore::export_state),
                })
                .collect(),
            tile_counter: self.tile_counter,
            spares_remaining: self.spares_remaining,
            spares_attached: self.spares_attached,
        }
    }

    /// Rebuilds a chip from a previously captured [`ChipState`].
    ///
    /// `config` is configuration (not state) and comes from the caller,
    /// exactly as at build time — including the device models handed to
    /// each restored tile.
    ///
    /// # Errors
    ///
    /// Returns [`TileError::InvalidConfig`] when the state is incoherent
    /// (slot ids out of order, a spare origin pointing at no slot, stores
    /// or detection maps whose dimensions disagree with their tile), and
    /// propagates device-layer restore errors.
    pub fn restore_state(config: ChipConfig, state: &ChipState) -> Result<Self, TileError> {
        config.validate()?;
        let mut slots = Vec::with_capacity(state.slots.len());
        for (i, s) in state.slots.iter().enumerate() {
            if s.id != i {
                return Err(TileError::InvalidConfig(format!(
                    "snapshot slot {i} carries id {} — slots must be id-ordered",
                    s.id
                )));
            }
            if let Some(origin) = s.spare_origin {
                if origin >= state.slots.len() {
                    return Err(TileError::InvalidConfig(format!(
                        "snapshot slot {i} spare origin {origin} out of range"
                    )));
                }
            }
            let xbar = Crossbar::restore_state(&s.xbar, config.endurance, config.variation)
                .map_err(TileError::Rram)?;
            let last_detection = match &s.last_detection {
                Some(d) => Some(d.to_outcome(xbar.rows(), xbar.cols())?),
                None => None,
            };
            let store = match &s.store {
                Some(st) => {
                    if st.rows != xbar.rows() || st.cols != xbar.cols() {
                        return Err(TileError::InvalidConfig(format!(
                            "snapshot slot {i} store is {}x{} for a {}x{} tile",
                            st.rows,
                            st.cols,
                            xbar.rows(),
                            xbar.cols()
                        )));
                    }
                    Some(OffChipStore::restore_state(st).map_err(TileError::Rram)?)
                }
                None => None,
            };
            slots.push(TileSlot {
                id: s.id,
                xbar,
                retired: s.retired,
                spare_origin: s.spare_origin,
                last_detection,
                last_campaign_error: None,
                store,
            });
        }
        Ok(TiledChip {
            config,
            slots,
            tile_counter: state.tile_counter,
            spares_remaining: state.spares_remaining,
            spares_attached: state.spares_attached,
            metrics: None,
        })
    }
}

/// Serializable form of a [`DetectionOutcome`]; the predicted map is
/// stored as its faulty-cell list and rebuilt against the tile geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionState {
    /// Faulty cells of the predicted map: `(row, col, kind)`.
    pub faults: Vec<(usize, usize, FaultKind)>,
    /// See [`DetectionOutcome::sa0_cycles`].
    pub sa0_cycles: u64,
    /// See [`DetectionOutcome::sa1_cycles`].
    pub sa1_cycles: u64,
    /// See [`DetectionOutcome::write_pulses`].
    pub write_pulses: u64,
    /// See [`DetectionOutcome::sa0_candidates`].
    pub sa0_candidates: usize,
    /// See [`DetectionOutcome::sa1_candidates`].
    pub sa1_candidates: usize,
    /// See [`DetectionOutcome::untested_groups`].
    pub untested_groups: u64,
    /// See [`DetectionOutcome::store_read_cells`].
    pub store_read_cells: u64,
    /// See [`DetectionOutcome::store_read_cycles`].
    pub store_read_cycles: u64,
}

impl DetectionState {
    /// Captures an outcome.
    pub fn from_outcome(o: &DetectionOutcome) -> Self {
        DetectionState {
            faults: o.predicted.iter_faulty().collect(),
            sa0_cycles: o.sa0_cycles,
            sa1_cycles: o.sa1_cycles,
            write_pulses: o.write_pulses,
            sa0_candidates: o.sa0_candidates,
            sa1_candidates: o.sa1_candidates,
            untested_groups: o.untested_groups,
            store_read_cells: o.store_read_cells,
            store_read_cycles: o.store_read_cycles,
        }
    }

    /// Rebuilds the outcome against the tile's geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TileError::InvalidConfig`] for out-of-bounds fault
    /// coordinates.
    pub fn to_outcome(&self, rows: usize, cols: usize) -> Result<DetectionOutcome, TileError> {
        let mut predicted = FaultMap::healthy(rows, cols);
        for &(r, c, kind) in &self.faults {
            if r >= rows || c >= cols {
                return Err(TileError::InvalidConfig(format!(
                    "snapshot detection fault ({r}, {c}) outside {rows}x{cols}"
                )));
            }
            predicted.set(r, c, Some(kind));
        }
        Ok(DetectionOutcome {
            predicted,
            sa0_cycles: self.sa0_cycles,
            sa1_cycles: self.sa1_cycles,
            write_pulses: self.write_pulses,
            sa0_candidates: self.sa0_candidates,
            sa1_candidates: self.sa1_candidates,
            untested_groups: self.untested_groups,
            store_read_cells: self.store_read_cells,
            store_read_cycles: self.store_read_cycles,
        })
    }
}

/// Serializable state of one [`TileSlot`]; see [`TiledChip::export_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct TileSlotState {
    /// Chip-global tile id (must equal the slot's position).
    pub id: usize,
    /// The physical array's state.
    pub xbar: CrossbarState,
    /// Whether the tile is retired.
    pub retired: bool,
    /// When a spare, the id of the replaced tile.
    pub spare_origin: Option<usize>,
    /// Last campaign outcome, if any.
    pub last_detection: Option<DetectionState>,
    /// Persistent incremental-detection store, if attached.
    pub store: Option<StoreState>,
}

/// Complete serializable state of a [`TiledChip`]; see
/// [`TiledChip::export_state`] / [`TiledChip::restore_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChipState {
    /// Every slot ever allocated, in id order (retired included).
    pub slots: Vec<TileSlotState>,
    /// The chip-global allocation counter (drives per-tile seeds).
    pub tile_counter: u64,
    /// Spares left in the pool.
    pub spares_remaining: usize,
    /// Spares attached so far.
    pub spares_attached: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultdet::detector::DetectorConfig;
    use rram::spatial::SpatialDistribution;

    fn chip(spares: usize) -> TiledChip {
        TiledChip::new(ChipConfig::new(8, 8, 42).with_spare_tiles(spares)).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(TiledChip::new(ChipConfig::new(0, 8, 1)).is_err());
        assert!(TiledChip::new(ChipConfig::new(8, 1, 1)).is_err());
        assert!(TiledChip::new(ChipConfig::new(8, 8, 1).with_retire_fault_density(0.0)).is_err());
        assert!(TiledChip::new(ChipConfig::new(8, 8, 1).with_retire_fault_density(1.5)).is_err());
        assert!(TiledChip::new(ChipConfig::new(8, 8, 1).with_retire_fault_density(1.0)).is_ok());
    }

    #[test]
    fn allocation_bounds_and_ids() {
        let mut c = chip(0);
        assert!(c.allocate(9, 4).is_err());
        assert!(c.allocate(0, 4).is_err());
        let a = c.allocate(8, 8).unwrap();
        let b = c.allocate(3, 5).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(c.slot_count(), 2);
        assert_eq!(c.active_ids(), vec![0, 1]);
        assert_eq!(c.tile(b).unwrap().rows(), 3);
        assert!(c.tile(7).is_err());
    }

    #[test]
    fn seed_stream_matches_monolithic_formula() {
        // Two chips with the same seed allocate identical tiles.
        let mut a = chip(0);
        let mut b = chip(0);
        let ia = a.allocate(8, 8).unwrap();
        let ib = b.allocate(8, 8).unwrap();
        a.tile_mut(ia).unwrap().write_analog(0, 0, 0.5).unwrap();
        b.tile_mut(ib).unwrap().write_analog(0, 0, 0.5).unwrap();
        assert_eq!(
            a.tile(ia).unwrap().conductance(0, 0).unwrap().to_bits(),
            b.tile(ib).unwrap().conductance(0, 0).unwrap().to_bits()
        );
    }

    #[test]
    fn substitution_retires_and_attaches() {
        let mut c = chip(2);
        let id = c.allocate(4, 4).unwrap();
        match c.substitute(id).unwrap() {
            SpareOutcome::Attached { new_id } => {
                assert_eq!(new_id, 1);
                assert!(c.slot(id).unwrap().retired);
                assert_eq!(c.slot(new_id).unwrap().spare_origin, Some(id));
                assert_eq!(c.spares_remaining(), 1);
                assert_eq!(c.tiles_retired(), 1);
                assert_eq!(c.active_ids(), vec![new_id]);
            }
            SpareOutcome::Exhausted => panic!("spares available"),
        }
        // Retired tiles refuse a second retirement.
        assert!(matches!(
            c.substitute(id),
            Err(TileError::TileRetired { .. })
        ));
    }

    #[test]
    fn exhausted_pool_degrades() {
        let mut c = chip(0);
        let id = c.allocate(4, 4).unwrap();
        assert_eq!(c.substitute(id).unwrap(), SpareOutcome::Exhausted);
        assert!(!c.slot(id).unwrap().retired, "tile stays in service");
    }

    #[test]
    fn campaigns_store_outcomes_and_skip_retired() {
        let injection = FaultInjection::new(SpatialDistribution::Uniform, 0.2).unwrap();
        let mut c = TiledChip::new(
            ChipConfig::new(8, 8, 7)
                .with_injection(injection)
                .with_spare_tiles(1),
        )
        .unwrap();
        let a = c.allocate(8, 8).unwrap();
        let b = c.allocate(8, 6).unwrap();
        let det = OnlineFaultDetector::new(DetectorConfig::new(1).unwrap());
        let stats = c.run_campaigns(&det, &[a, b, 99]);
        assert_eq!(stats.campaigns_run, 2);
        assert_eq!(stats.failed_tiles, 0);
        assert!(stats.cycles > 0);
        // test_size=1 detection is exact: predicted density == ground truth.
        for id in [a, b] {
            let predicted = c.predicted_fault_density(id).unwrap().unwrap();
            assert!((predicted - c.fault_density(id).unwrap()).abs() < 1e-12);
        }
        // Retire `a`; a rerun skips it.
        c.substitute(a).unwrap();
        let stats = c.run_campaigns(&det, &[a, b]);
        assert_eq!(stats.campaigns_run, 1);
        // Over-density query sees only active, tested tiles.
        let over = c.tiles_over_density(0.0);
        assert_eq!(over, vec![b]);
    }

    #[test]
    fn incremental_campaigns_match_full_then_get_cheaper() {
        let injection = FaultInjection::new(SpatialDistribution::Uniform, 0.1).unwrap();
        let build = || TiledChip::new(ChipConfig::new(8, 8, 13).with_injection(injection)).unwrap();
        let (mut full_chip, mut inc_chip) = (build(), build());
        let a = full_chip.allocate(8, 8).unwrap();
        assert_eq!(inc_chip.allocate(8, 8).unwrap(), a);
        let det = OnlineFaultDetector::new(DetectorConfig::new(2).unwrap());

        let full = full_chip.run_campaigns(&det, &[a]);
        let first = inc_chip.run_campaigns_incremental(&det, &[a]);
        // A fresh tile's incremental campaign is the full campaign minus the
        // snapshot re-read (attach pre-paid it).
        assert_eq!(first.flagged_cells, full.flagged_cells);
        assert_eq!(first.write_pulses, full.write_pulses);
        assert!(
            first.cycles < full.cycles,
            "{} vs {}",
            first.cycles,
            full.cycles
        );

        // With no writes since, nothing is pending: the rerun is free and
        // the previous verdicts carry over.
        let second = inc_chip.run_campaigns_incremental(&det, &[a]);
        assert_eq!(second.cycles, 0);
        assert_eq!(second.write_pulses, 0);
        assert_eq!(second.flagged_cells, full.flagged_cells);

        // A sparse write makes only its cells pending.
        inc_chip.tile_mut(a).unwrap().write_level(0, 0, 5).unwrap();
        let third = inc_chip.run_campaigns_incremental(&det, &[a]);
        assert!(third.cycles > 0);
        assert!(third.cycles < first.cycles);
    }

    #[test]
    fn aggregates_cover_retired_slots() {
        let mut c = chip(1);
        let id = c.allocate(4, 4).unwrap();
        c.tile_mut(id).unwrap().write_analog(0, 0, 0.7).unwrap();
        let before = c.total_write_pulses();
        assert!(before > 0);
        c.substitute(id).unwrap();
        assert!(
            c.total_write_pulses() >= before,
            "retired pulses stay counted"
        );
    }

    #[test]
    fn chip_state_roundtrip_is_lossless() {
        let injection = FaultInjection::new(SpatialDistribution::Uniform, 0.15).unwrap();
        let cfg = ChipConfig::new(8, 8, 21)
            .with_injection(injection)
            .with_spare_tiles(2)
            .with_retire_fault_density(0.5);
        let mut c = TiledChip::new(cfg).unwrap();
        let a = c.allocate(8, 8).unwrap();
        let b = c.allocate(6, 8).unwrap();
        let det = OnlineFaultDetector::new(DetectorConfig::new(2).unwrap());
        c.run_campaigns_incremental(&det, &[a, b]);
        c.tile_mut(a).unwrap().write_level(0, 0, 5).unwrap();
        c.substitute(b).unwrap();

        let st = c.export_state();
        let mut back = TiledChip::restore_state(cfg, &st).unwrap();
        assert_eq!(back.slot_count(), c.slot_count());
        assert_eq!(back.active_ids(), c.active_ids());
        assert_eq!(back.spares_remaining(), c.spares_remaining());
        assert_eq!(back.spares_attached(), c.spares_attached());
        assert_eq!(back.total_write_pulses(), c.total_write_pulses());
        assert_eq!(back.export_state(), st, "double roundtrip is lossless");

        // Identical future behavior: the same incremental campaign on both
        // chips produces identical stats and predictions.
        c.tile_mut(a).unwrap().write_level(1, 1, 3).unwrap();
        back.tile_mut(a).unwrap().write_level(1, 1, 3).unwrap();
        let s1 = c.run_campaigns_incremental(&det, &[a]);
        let s2 = back.run_campaigns_incremental(&det, &[a]);
        assert_eq!(s1, s2);
        assert_eq!(
            c.slot(a).unwrap().last_detection.as_ref().map(|d| &d.predicted),
            back.slot(a)
                .unwrap()
                .last_detection
                .as_ref()
                .map(|d| &d.predicted)
        );
    }

    #[test]
    fn restore_state_rejects_incoherent_chips() {
        let cfg = ChipConfig::new(8, 8, 3);
        let mut c = TiledChip::new(cfg).unwrap();
        c.allocate(4, 4).unwrap();
        let good = c.export_state();
        assert!(TiledChip::restore_state(cfg, &good).is_ok());

        let mut bad = good.clone();
        bad.slots[0].id = 7;
        assert!(TiledChip::restore_state(cfg, &bad).is_err());

        let mut bad = good.clone();
        bad.slots[0].spare_origin = Some(9);
        assert!(TiledChip::restore_state(cfg, &bad).is_err());

        let mut bad = good;
        bad.slots[0].last_detection = Some(DetectionState {
            faults: vec![(99, 0, rram::fault::FaultKind::StuckAt0)],
            sa0_cycles: 0,
            sa1_cycles: 0,
            write_pulses: 0,
            sa0_candidates: 0,
            sa1_candidates: 0,
            untested_groups: 0,
            store_read_cells: 0,
            store_read_cycles: 0,
        });
        assert!(TiledChip::restore_state(cfg, &bad).is_err());
    }

    #[test]
    fn refresh_spare_store_hands_over_incremental_state() {
        let injection = FaultInjection::new(SpatialDistribution::Uniform, 0.3).unwrap();
        let mut c = TiledChip::new(
            ChipConfig::new(8, 8, 5)
                .with_injection(injection)
                .with_spare_tiles(1),
        )
        .unwrap();
        let id = c.allocate(8, 8).unwrap();
        let det = OnlineFaultDetector::new(DetectorConfig::new(2).unwrap());
        c.run_campaigns_incremental(&det, &[id]);
        assert!(c.slot(id).unwrap().store.is_some());

        let SpareOutcome::Attached { new_id } = c.substitute(id).unwrap() else {
            panic!("spare available");
        };
        // The retired slot still holds its store until the handover.
        assert!(c.slot(id).unwrap().store.is_some());
        // Verify the spare (as apply_sparing does), then hand over.
        c.run_campaigns(&det, &[new_id]);
        c.refresh_spare_store(id, new_id).unwrap();
        assert!(c.slot(id).unwrap().store.is_none(), "stale store dropped");
        let spare_store = c.slot(new_id).unwrap().store.as_ref().unwrap();
        assert_eq!(spare_store.pending_count(), 0, "verified baseline is warm");
        assert!(c.refresh_spare_store(id, 99).is_err());
        assert!(c.refresh_spare_store(99, new_id).is_err());
    }

    #[test]
    fn refresh_spare_store_skips_full_mode_tiles() {
        let mut c = chip(1);
        let id = c.allocate(4, 4).unwrap();
        let SpareOutcome::Attached { new_id } = c.substitute(id).unwrap() else {
            panic!("spare available");
        };
        let det = OnlineFaultDetector::new(DetectorConfig::new(1).unwrap());
        c.run_campaigns(&det, &[new_id]);
        c.refresh_spare_store(id, new_id).unwrap();
        assert!(c.slot(new_id).unwrap().store.is_none(), "full mode: no store");
    }

    #[test]
    fn recorder_events_and_counters() {
        let rec = obs::Recorder::deterministic();
        let mut c = chip(1);
        c.attach_recorder(&rec);
        let id = c.allocate(4, 4).unwrap();
        c.substitute(id).unwrap();
        assert_eq!(rec.events_of_kind(obs::EventKind::TileRetired), 1);
        assert_eq!(rec.events_of_kind(obs::EventKind::SpareAttached), 1);
    }
}

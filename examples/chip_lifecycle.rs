//! Chip lifecycle: repeatedly re-training one RCS for new applications
//! (§1 / §6.4 of the paper) until its cells wear out.
//!
//! Each campaign programs a fresh network for a fresh task onto the *same*
//! simulated chip; hard faults accumulate across campaigns, and the run
//! reports the accuracy trajectory with and without threshold training.
//!
//! The chip is tiled (DESIGN.md §11) and carries a configurable spare-tile
//! pool: periodic detection scores each tile's fault density, and tiles
//! that cross the retirement threshold are swapped for factory-screened
//! spares mid-lifecycle — so the run also shows how far sparing stretches
//! a chip once wear sets in, and what happens when the pool runs dry.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example chip_lifecycle
//! ```

use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use ftt_core::flow::FaultTolerantTrainer;
use ftt_core::threshold::ThresholdPolicy;
use nn::init::init_rng;
use nn::layers::{Dense, Relu};
use nn::network::Network;
use nn::optimizer::LrSchedule;
use nn::synth::SyntheticDataset;
use rram::endurance::EnduranceModel;

/// Tile/sparing parameters for the lifecycle run — tweak these to explore
/// how the pool size and retirement bar trade off against chip lifetime.
struct TilePlan {
    tile_size: usize,
    spare_tiles: usize,
    retire_fault_density: f64,
}

impl TilePlan {
    fn default_plan() -> Self {
        Self {
            tile_size: 64,
            spare_tiles: 12,
            retire_fault_density: 0.15,
        }
    }

    fn mapping(&self, endurance: EnduranceModel, seed: u64) -> MappingConfig {
        let mut mapping = MappingConfig::new(MappingScope::EntireNetwork)
            .with_endurance(endurance)
            .with_seed(seed)
            .with_spare_tiles(self.spare_tiles)
            .with_retire_fault_density(self.retire_fault_density);
        mapping.tile_size = self.tile_size;
        mapping
    }
}

fn fresh_net(seed: u64) -> Network {
    let mut rng = init_rng(seed);
    let mut net = Network::new();
    net.push(Dense::new(784, 32, &mut rng));
    net.push(Relu::new());
    net.push(Dense::new(32, 10, &mut rng));
    net
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let per_campaign = 1000u64;
    let campaigns = 8u64;
    let plan = TilePlan::default_plan();
    // The chip survives ~4 campaigns of unconditional writes.
    let endurance = EnduranceModel::new(4.0 * per_campaign as f64, per_campaign as f64);

    println!(
        "tile plan: {0}x{0} tiles, {1} spares, retire at {2:.0}% predicted density",
        plan.tile_size,
        plan.spare_tiles,
        100.0 * plan.retire_fault_density
    );
    println!();

    for (name, policy) in [
        ("original method", ThresholdPolicy::None),
        ("threshold training", ThresholdPolicy::paper_default()),
    ] {
        println!("== {name} ==");
        println!("campaign, final_accuracy, faulty_cells, tiles_retired, spares_left");
        let mapping = plan.mapping(endurance, 12);
        let mut flow = FlowConfig::original().with_lr(LrSchedule::constant(0.05));
        flow.threshold = policy;
        flow.eval_interval = per_campaign;
        // Detection drives sparing: score tile fault densities twice per
        // campaign so worn-out tiles retire while the chip is still usable.
        flow.detection_interval = Some(per_campaign / 2);
        let mut trainer = FaultTolerantTrainer::new(fresh_net(0), mapping, flow)?;
        for campaign in 0..campaigns {
            if campaign > 0 {
                trainer.reprogram_network(fresh_net(campaign))?;
            }
            let data = SyntheticDataset::mnist_like(400, 100, 500 + campaign);
            trainer.train(&data, per_campaign)?;
            let stats = trainer.stats();
            println!(
                "{campaign}, {:.3}, {:.1}%, {}, {}",
                trainer.curve().final_accuracy(),
                100.0 * trainer.mapped().fraction_faulty(),
                stats.tiles_retired,
                trainer.mapped().chip().spares_remaining()
            );
        }
        let stats = trainer.stats();
        println!(
            "-- retired {} tiles, attached {} spares ({} left in the pool)",
            stats.tiles_retired,
            stats.spares_attached,
            trainer.mapped().chip().spares_remaining()
        );
        println!();
    }
    println!("the original method exhausts the chip within a few applications;");
    println!("threshold training writes ~15x less, so the same spare pool");
    println!("keeps it serviceable across all of them.");
    Ok(())
}

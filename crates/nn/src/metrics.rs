//! Classification metrics and shared float-comparison helpers.

use crate::tensor::Tensor;

/// Absolute-tolerance float equality: `|a - b| <= tol`, with exact
/// equality as a fallback so infinities compare equal to themselves.
///
/// This is the workspace's sanctioned alternative to `==` on floats:
/// the F1 lint (DESIGN.md §10) flags equality against non-zero float
/// literals, and call sites are expected to route through this helper
/// (or [`approx_eq`]) instead. Comparisons against exact zero remain
/// `==` by policy — the sparsity skip gate depends on IEEE-exact zero
/// semantics.
#[inline]
#[must_use]
pub fn approx_eq_tol(a: f64, b: f64, tol: f64) -> bool {
    a == b || (a - b).abs() <= tol
}

/// [`approx_eq_tol`] with the default tolerance `1e-12`, suited to
/// values of order one (accuracies, sparsities, normalized weights).
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_tol(a, b, 1e-12)
}

/// Top-1 accuracy of logits (or probabilities) against labels, in `[0, 1]`.
///
/// # Panics
///
/// Panics if the batch sizes differ.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let (b, k) = (logits.rows(), logits.cols());
    assert_eq!(b, labels.len(), "one label per row");
    if b == 0 {
        // An empty batch has no wrong answers; returning 0.0 (not NaN from
        // 0/0) keeps downstream curve aggregation finite.
        return 0.0;
    }
    let mut correct = 0usize;
    for (row, &label) in logits.data().chunks(k).zip(labels) {
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if argmax == label {
            correct += 1;
        }
    }
    correct as f64 / b as f64
}

/// A `K × K` confusion matrix (`rows` = true class, `cols` = predicted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from logits and labels.
    ///
    /// # Panics
    ///
    /// Panics if any label is out of range or batch sizes differ.
    pub fn from_logits(logits: &Tensor, labels: &[usize], classes: usize) -> Self {
        let (b, k) = (logits.rows(), logits.cols());
        assert_eq!(b, labels.len(), "one label per row");
        assert!(k >= classes, "logit width below class count");
        let mut counts = vec![0u64; classes * classes];
        for (row, &label) in logits.data().chunks(k).zip(labels) {
            assert!(label < classes, "label {label} out of range");
            let pred = row[..classes]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            counts[label * classes + pred] += 1;
        }
        Self { classes, counts }
    }

    /// Count of samples with true class `t` predicted as `p`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn count(&self, t: usize, p: usize) -> u64 {
        assert!(
            t < self.classes && p < self.classes,
            "class index out of range"
        );
        self.counts[t * self.classes + p]
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let diag: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            diag as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_rounding_but_not_gaps() {
        assert!(approx_eq(0.1 + 0.2, 0.3), "classic rounding case");
        assert!(approx_eq(1.0, 1.0));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
        assert!(approx_eq_tol(1.0, 1.5, 0.5));
        assert!(!approx_eq_tol(1.0, 1.51, 0.5));
        assert!(
            approx_eq(f64::INFINITY, f64::INFINITY),
            "inf == inf via exact branch"
        );
        assert!(!approx_eq(f64::NAN, f64::NAN), "NaN never compares equal");
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec(vec![3, 2], vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn confusion_matrix_diagonal() {
        let logits = Tensor::from_vec(vec![4, 2], vec![1., 0., 0., 1., 1., 0., 1., 0.]);
        let cm = ConfusionMatrix::from_logits(&logits, &[0, 1, 1, 0], 2);
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.count(0, 1), 0);
        assert_eq!(cm.accuracy(), 0.75);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn mismatched_labels_panic() {
        let logits = Tensor::zeros(vec![2, 2]);
        let _ = accuracy(&logits, &[0]);
    }
}

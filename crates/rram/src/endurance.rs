//! Write-endurance models.
//!
//! Following the paper's §6.2.1, per-cell endurance (the number of write
//! operations a cell survives before it develops a hard fault) is drawn from
//! a Gaussian distribution:
//!
//! * **Low-endurance technology**: mean 5×10⁶ writes, σ = 1.5×10⁶.
//! * **High-endurance technology**: mean 10⁸ writes, σ = 3×10⁷.
//!
//! Because simulating millions of real training iterations is impractical,
//! the model supports *proportional scaling* ([`EnduranceModel::scaled`]):
//! scaling endurance and iteration counts by the same factor preserves the
//! statistics that matter (expected writes-per-cell relative to the cell's
//! budget). `DESIGN.md` §2 documents this substitution.

use rand::Rng;

use crate::rng::Normal;

/// Gaussian per-cell write-endurance model.
///
/// # Example
///
/// ```
/// use rram::endurance::EnduranceModel;
/// use rram::rng::sim_rng;
///
/// let model = EnduranceModel::low_endurance().scaled(1e-3);
/// let mut rng = sim_rng(1);
/// let budget = model.sample(&mut rng);
/// assert!(budget >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceModel {
    mean: f64,
    std: f64,
    wearout_sa0_prob: f64,
}

impl EnduranceModel {
    /// Creates a model with the given mean and standard deviation (writes).
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`, `std < 0`, or either is non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(
            mean.is_finite() && std.is_finite(),
            "parameters must be finite"
        );
        assert!(mean > 0.0, "mean endurance must be positive");
        assert!(std >= 0.0, "endurance std must be non-negative");
        Self {
            mean,
            std,
            wearout_sa0_prob: 0.5,
        }
    }

    /// The paper's low-endurance technology: N(5×10⁶, (1.5×10⁶)²).
    pub fn low_endurance() -> Self {
        Self::new(5.0e6, 1.5e6)
    }

    /// The paper's high-endurance technology: N(10⁸, (3×10⁷)²).
    pub fn high_endurance() -> Self {
        Self::new(1.0e8, 3.0e7)
    }

    /// The intermediate technology discussed in §6.4: N(10⁷, 3×10⁶).
    pub fn medium_endurance() -> Self {
        Self::new(1.0e7, 3.0e6)
    }

    /// An effectively unlimited endurance (for fault-free baselines).
    pub fn unlimited() -> Self {
        Self::new(1.0e18, 0.0)
    }

    /// Returns a copy with mean and std multiplied by `factor`.
    ///
    /// Use together with an equally scaled iteration budget to keep
    /// experiments tractable; see `DESIGN.md` §2.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a positive finite number.
    pub fn scaled(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        Self {
            mean: self.mean * factor,
            std: self.std * factor,
            wearout_sa0_prob: self.wearout_sa0_prob,
        }
    }

    /// Sets the probability that a worn-out cell becomes SA0 (vs SA1).
    ///
    /// Filamentary RRAM wears out into either a permanently formed filament
    /// (stuck at low resistance, SA1) or a cell that can no longer form one
    /// (SA0); the literature reports both, so the split is configurable and
    /// defaults to 0.5.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    pub fn with_wearout_sa0_prob(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0, 1]");
        self.wearout_sa0_prob = prob;
        self
    }

    /// Mean endurance in writes.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of endurance in writes.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Probability that a worn-out cell becomes SA0.
    pub fn wearout_sa0_prob(&self) -> f64 {
        self.wearout_sa0_prob
    }

    /// Draws a per-cell write budget (at least 1 write).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let raw = Normal::new(self.mean, self.std).sample(rng);
        raw.max(1.0).round() as u64
    }
}

impl Default for EnduranceModel {
    /// Defaults to the paper's low-endurance technology.
    fn default() -> Self {
        Self::low_endurance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::sim_rng;

    #[test]
    fn presets_match_paper_parameters() {
        let low = EnduranceModel::low_endurance();
        assert_eq!(low.mean(), 5.0e6);
        assert_eq!(low.std(), 1.5e6);
        let high = EnduranceModel::high_endurance();
        assert_eq!(high.mean(), 1.0e8);
        assert_eq!(high.std(), 3.0e7);
        let med = EnduranceModel::medium_endurance();
        assert_eq!(med.mean(), 1.0e7);
    }

    #[test]
    fn scaling_scales_both_moments() {
        let m = EnduranceModel::low_endurance().scaled(1e-3);
        assert_eq!(m.mean(), 5.0e3);
        assert_eq!(m.std(), 1.5e3);
    }

    #[test]
    fn samples_cluster_around_mean() {
        let model = EnduranceModel::new(1000.0, 100.0);
        let mut rng = sim_rng(77);
        let n = 5000;
        let mean = (0..n).map(|_| model.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 1000.0).abs() < 10.0, "mean was {mean}");
    }

    #[test]
    fn sample_is_at_least_one() {
        // A tight distribution near zero must still produce valid budgets.
        let model = EnduranceModel::new(1.0, 100.0);
        let mut rng = sim_rng(3);
        for _ in 0..1000 {
            assert!(model.sample(&mut rng) >= 1);
        }
    }

    #[test]
    fn unlimited_is_effectively_infinite() {
        let mut rng = sim_rng(1);
        assert!(EnduranceModel::unlimited().sample(&mut rng) > 1_000_000_000_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mean_panics() {
        let _ = EnduranceModel::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_wearout_prob_panics() {
        let _ = EnduranceModel::low_endurance().with_wearout_sa0_prob(1.5);
    }
}

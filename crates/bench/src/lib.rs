//! Shared utilities for the experiment harness.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the paper
//! (see `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results). Binaries print the series to stdout and
//! mirror them as CSV under `results/`.

pub mod plot;

use std::fs;
use std::path::PathBuf;

/// Writes an experiment's CSV mirror under `results/<name>.csv`, creating
/// the directory if needed. Failures are reported but non-fatal (the
/// stdout output is the primary artifact).
pub fn write_csv(name: &str, contents: &str) {
    let dir = PathBuf::from("results");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match fs::write(&path, contents) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Parses `--key value` style flags from the command line, returning the
/// value for `key` if present.
pub fn arg_value(key: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == key {
            return args.next();
        }
    }
    None
}

/// Parses a `--key value` flag with a default.
pub fn arg_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    arg_value(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

use ftt_core::config::{FlowConfig, MappingConfig};
use ftt_core::flow::FaultTolerantTrainer;
use ftt_core::report::{FlowStats, TrainingCurve};
use nn::data::Dataset;
use nn::network::Network;

/// One completed training run for a curve plot.
#[derive(Debug, Clone)]
pub struct CurveRun {
    /// Legend label (matches the paper's figure legends).
    pub label: String,
    /// The recorded accuracy-vs-iterations curve.
    pub curve: TrainingCurve,
    /// Aggregate flow statistics.
    pub stats: FlowStats,
    /// Fraction of mapped cells faulty at the end of the run.
    pub final_faulty: f64,
}

/// Trains one configuration and captures its curve.
///
/// # Panics
///
/// Panics on configuration errors — the experiment binaries construct
/// static configurations that must be valid.
pub fn run_flow(
    label: &str,
    net: Network,
    mapping: MappingConfig,
    flow: FlowConfig,
    data: &Dataset,
    iterations: u64,
) -> CurveRun {
    let mut trainer =
        FaultTolerantTrainer::new(net, mapping, flow).expect("valid flow configuration");
    trainer.train(data, iterations).expect("training run");
    CurveRun {
        label: label.to_string(),
        curve: trainer.curve().clone(),
        stats: trainer.stats(),
        final_faulty: trainer.mapped().fraction_faulty(),
    }
}

/// Prints a set of curves as aligned series (iteration, one accuracy column
/// per run) and mirrors them to `results/<csv_name>.csv`.
pub fn print_curves(title: &str, runs: &[CurveRun], csv_name: &str) {
    println!("# {title}");
    print!("iteration");
    for run in runs {
        print!(", {}", run.label);
    }
    println!();
    let mut csv = String::from("iteration");
    for run in runs {
        csv.push(',');
        csv.push_str(&run.label.replace(' ', "_"));
    }
    csv.push('\n');
    // Runs share the eval grid (same eval_interval), so align by index.
    let rows = runs
        .iter()
        .map(|r| r.curve.points().len())
        .max()
        .unwrap_or(0);
    for i in 0..rows {
        let iter = runs
            .iter()
            .filter_map(|r| r.curve.points().get(i))
            .map(|p| p.iteration)
            .next()
            .unwrap_or(0);
        print!("{iter}");
        csv.push_str(&iter.to_string());
        for run in runs {
            match run.curve.points().get(i) {
                Some(p) => {
                    print!(", {:.3}", p.test_accuracy);
                    csv.push_str(&format!(",{:.4}", p.test_accuracy));
                }
                None => {
                    print!(", ");
                    csv.push(',');
                }
            }
        }
        println!();
        csv.push('\n');
    }
    // ASCII rendition of the figure.
    let chart_series: Vec<plot::Series> = runs
        .iter()
        .map(|r| {
            plot::Series::new(
                r.label.clone(),
                r.curve
                    .points()
                    .iter()
                    .map(|p| (p.iteration as f64, p.test_accuracy))
                    .collect(),
            )
        })
        .collect();
    println!();
    println!("{}", plot::render(&chart_series, 72, 18));
    println!();
    println!("# summary");
    println!("label, peak_accuracy, final_accuracy, final_faulty_fraction, writes_issued, writes_skipped");
    for run in runs {
        println!(
            "{}, {:.3}, {:.3}, {:.3}, {}, {}",
            run.label,
            run.curve.peak_accuracy(),
            run.curve.final_accuracy(),
            run.final_faulty,
            run.stats.writes_issued,
            run.stats.writes_skipped
        );
    }
    write_csv(csv_name, &csv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_value_absent_is_none() {
        assert_eq!(arg_value("--definitely-not-passed"), None);
    }

    #[test]
    fn arg_or_uses_default() {
        assert_eq!(arg_or("--definitely-not-passed", 42u32), 42);
    }
}

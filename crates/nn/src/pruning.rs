//! Magnitude pruning (Han et al., "Deep Compression" — the paper's ref \[8\]).
//!
//! Pruning produces the **weight-pruning matrices `P`** that the re-mapping
//! step consumes: `p(n)_{i,j} = 0` when the weight can be fixed to zero,
//! `∞` otherwise. In this implementation a [`PruneMask`] stores one boolean
//! per weight (`true` = prunable/zero), per weight-carrying layer.

use crate::network::Network;

/// Per-layer pruning masks over a network's weight layers.
///
/// Index `k` of [`PruneMask::layers`] corresponds to the `k`-th
/// weight-carrying layer in network order (activations are skipped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruneMask {
    layers: Vec<LayerMask>,
}

/// Mask for one weight matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerMask {
    /// Index of the layer inside the [`Network`].
    pub layer_index: usize,
    /// `(rows, cols)` of the weight matrix.
    pub shape: (usize, usize),
    /// `true` = this weight is pruned (fixed to zero). Row-major.
    pub pruned: Vec<bool>,
}

impl LayerMask {
    /// Whether the weight at `(row, col)` is pruned.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn is_pruned(&self, row: usize, col: usize) -> bool {
        assert!(
            row < self.shape.0 && col < self.shape.1,
            "index out of range"
        );
        self.pruned[row * self.shape.1 + col]
    }

    /// Fraction of pruned weights.
    pub fn sparsity(&self) -> f64 {
        self.pruned.iter().filter(|&&p| p).count() as f64 / self.pruned.len() as f64
    }
}

impl PruneMask {
    /// Builds a mask from explicit layer masks (used when transforming a
    /// mask, e.g. permuting it alongside a neuron re-ordering).
    pub fn from_layers(layers: Vec<LayerMask>) -> Self {
        Self { layers }
    }

    /// The per-layer masks in weight-layer order.
    pub fn layers(&self) -> &[LayerMask] {
        &self.layers
    }

    /// Mask for the `k`-th weight layer.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn layer(&self, k: usize) -> &LayerMask {
        &self.layers[k]
    }

    /// Number of weight layers covered.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the mask covers no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Overall sparsity across all covered layers.
    pub fn total_sparsity(&self) -> f64 {
        let pruned: usize = self
            .layers
            .iter()
            .map(|l| l.pruned.iter().filter(|&&p| p).count())
            .sum();
        let total: usize = self.layers.iter().map(|l| l.pruned.len()).sum();
        if total == 0 {
            0.0
        } else {
            pruned as f64 / total as f64
        }
    }
}

/// Computes magnitude-pruning masks: in every weight layer, the `fraction`
/// of weights with the smallest absolute values is marked prunable.
///
/// Does **not** modify the network; combine with [`apply_mask`] to zero the
/// pruned weights, mirroring the paper's flow where pruning is generated
/// during training and then enforced.
///
/// # Example
///
/// ```
/// use nn::network::Network;
/// use nn::layers::Dense;
/// use nn::init::init_rng;
/// use nn::pruning::{apply_mask, magnitude_prune};
///
/// let mut rng = init_rng(0);
/// let mut net = Network::new();
/// net.push(Dense::new(4, 4, &mut rng));
/// let mask = magnitude_prune(&mut net, 0.5);
/// assert_eq!(mask.total_sparsity(), 0.5);
/// apply_mask(&mut net, &mask);
/// ```
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
pub fn magnitude_prune(net: &mut Network, fraction: f64) -> PruneMask {
    let count = net.weight_layer_indices().len();
    magnitude_prune_per_layer(net, &vec![fraction; count])
}

/// Like [`magnitude_prune`] but with one fraction per weight layer — the
/// paper notes conv layers tolerate much less sparsity than FC layers, so
/// callers typically pass small fractions for conv and ≥ 0.5 for FC.
///
/// # Panics
///
/// Panics if the fraction count does not match the number of weight layers
/// or any fraction is outside `[0, 1]`. Library code that must not panic
/// should use [`try_magnitude_prune_per_layer`].
pub fn magnitude_prune_per_layer(net: &mut Network, fractions: &[f64]) -> PruneMask {
    // PANIC-OK: documented panicking convenience wrapper over the fallible
    // variant below.
    #[allow(clippy::expect_used)]
    try_magnitude_prune_per_layer(net, fractions).expect("invalid pruning fractions")
}

/// Fallible variant of [`magnitude_prune_per_layer`].
///
/// # Errors
///
/// Returns [`crate::error::NnError::InvalidConfig`] if the fraction count
/// does not match the number of weight layers or any fraction is outside
/// `[0, 1]` (NaN included).
pub fn try_magnitude_prune_per_layer(
    net: &mut Network,
    fractions: &[f64],
) -> Result<PruneMask, crate::error::NnError> {
    let indices = net.weight_layer_indices();
    if indices.len() != fractions.len() {
        return Err(crate::error::NnError::InvalidConfig(format!(
            "need one fraction per weight layer ({} layers, {} fractions)",
            indices.len(),
            fractions.len()
        )));
    }
    let mut layers = Vec::with_capacity(indices.len());
    for (&layer_index, &fraction) in indices.iter().zip(fractions) {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(crate::error::NnError::InvalidConfig(format!(
                "fraction {fraction} outside [0, 1]"
            )));
        }
        // PANIC-OK: `weight_layer_indices` only returns indices of layers
        // that expose parameters; a `None` here is an internal Network
        // invariant violation, not a caller-reachable state.
        #[allow(clippy::expect_used)]
        let params = net
            .layer_params_mut(layer_index)
            .expect("weight_layer_indices returned a parameterless layer");
        let n = params.weights.len();
        let keep_threshold = {
            let mut magnitudes: Vec<f32> = params.weights.iter().map(|w| w.abs()).collect();
            magnitudes.sort_by(|a, b| a.total_cmp(b));
            let cut = ((fraction * n as f64).round() as usize).min(n);
            if cut == 0 {
                None
            } else {
                Some((cut, magnitudes[cut - 1]))
            }
        };
        let mut pruned = vec![false; n];
        if let Some((cut, threshold)) = keep_threshold {
            // Mark strictly-below-threshold weights, then fill up to `cut`
            // with ties so the count is exact.
            let mut marked = 0usize;
            for (m, &w) in pruned.iter_mut().zip(params.weights.iter()) {
                if w.abs() < threshold {
                    *m = true;
                    marked += 1;
                }
            }
            if marked < cut {
                for (m, &w) in pruned.iter_mut().zip(params.weights.iter()) {
                    if marked >= cut {
                        break;
                    }
                    if !*m && w.abs() == threshold {
                        *m = true;
                        marked += 1;
                    }
                }
            }
        }
        layers.push(LayerMask {
            layer_index,
            shape: params.weight_shape,
            pruned,
        });
    }
    Ok(PruneMask { layers })
}

/// Zeroes every pruned weight in the network.
///
/// # Panics
///
/// Panics if the mask does not match the network's weight layers. Library
/// code that must not panic should use [`try_apply_mask`].
pub fn apply_mask(net: &mut Network, mask: &PruneMask) {
    // PANIC-OK: documented panicking convenience wrapper over the fallible
    // variant below.
    #[allow(clippy::expect_used)]
    try_apply_mask(net, mask).expect("mask does not match network");
}

/// Fallible variant of [`apply_mask`].
///
/// # Errors
///
/// Returns [`crate::error::NnError::ShapeMismatch`] if a mask layer points
/// at a parameterless layer or its size does not match the weight matrix —
/// e.g. a mask computed before a topology change and applied after.
pub fn try_apply_mask(net: &mut Network, mask: &PruneMask) -> Result<(), crate::error::NnError> {
    for layer_mask in mask.layers() {
        let params = net
            .layer_params_mut(layer_mask.layer_index)
            .ok_or_else(|| {
                crate::error::NnError::InvalidConfig(format!(
                    "mask references parameterless layer {}",
                    layer_mask.layer_index
                ))
            })?;
        if params.weights.len() != layer_mask.pruned.len() {
            return Err(crate::error::NnError::ShapeMismatch {
                expected: format!("mask of {} weights", params.weights.len()),
                actual: vec![layer_mask.pruned.len()],
            });
        }
        for (w, &p) in params.weights.iter_mut().zip(&layer_mask.pruned) {
            if p {
                *w = 0.0;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::init_rng;
    use crate::layers::{Dense, Relu};

    fn net() -> Network {
        let mut rng = init_rng(3);
        let mut n = Network::new();
        n.push(Dense::new(10, 20, &mut rng));
        n.push(Relu::new());
        n.push(Dense::new(20, 5, &mut rng));
        n
    }

    #[test]
    fn prune_fraction_is_exact() {
        let mut n = net();
        let mask = magnitude_prune(&mut n, 0.5);
        assert_eq!(mask.len(), 2);
        assert!(!mask.is_empty());
        assert!((mask.layer(0).sparsity() - 0.5).abs() < 1e-9);
        assert!((mask.layer(1).sparsity() - 0.5).abs() < 1e-9);
        assert!((mask.total_sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pruned_weights_are_the_smallest() {
        let mut n = net();
        let mask = magnitude_prune(&mut n, 0.3);
        let params = n.layer_params_mut(0).unwrap();
        let mut kept_min = f32::INFINITY;
        let mut pruned_max = 0.0f32;
        for (&w, &p) in params.weights.iter().zip(&mask.layer(0).pruned) {
            if p {
                pruned_max = pruned_max.max(w.abs());
            } else {
                kept_min = kept_min.min(w.abs());
            }
        }
        assert!(pruned_max <= kept_min, "{pruned_max} vs {kept_min}");
    }

    #[test]
    fn apply_mask_zeros_weights() {
        let mut n = net();
        let mask = magnitude_prune(&mut n, 0.5);
        apply_mask(&mut n, &mask);
        let params = n.layer_params_mut(0).unwrap();
        for (&w, &p) in params.weights.iter().zip(&mask.layer(0).pruned) {
            if p {
                assert_eq!(w, 0.0);
            }
        }
        // Unpruned weights survive.
        assert!(params.weights.iter().any(|&w| w != 0.0));
    }

    #[test]
    fn per_layer_fractions() {
        let mut n = net();
        let mask = magnitude_prune_per_layer(&mut n, &[0.1, 0.9]);
        assert!((mask.layer(0).sparsity() - 0.1).abs() < 0.01);
        assert!((mask.layer(1).sparsity() - 0.9).abs() < 0.01);
    }

    #[test]
    fn zero_and_full_fractions() {
        let mut n = net();
        let mask = magnitude_prune(&mut n, 0.0);
        assert_eq!(mask.total_sparsity(), 0.0);
        let mask = magnitude_prune(&mut n, 1.0);
        assert_eq!(mask.total_sparsity(), 1.0);
    }

    #[test]
    fn mask_is_pruned_accessor() {
        let mut n = net();
        let mask = magnitude_prune(&mut n, 0.5);
        let lm = mask.layer(0);
        assert_eq!(lm.shape, (10, 20));
        let mut seen_pruned = false;
        for r in 0..10 {
            for c in 0..20 {
                if lm.is_pruned(r, c) {
                    seen_pruned = true;
                }
            }
        }
        assert!(seen_pruned);
    }

    #[test]
    #[should_panic(expected = "one fraction per weight layer")]
    fn wrong_fraction_count_panics() {
        let mut n = net();
        let _ = magnitude_prune_per_layer(&mut n, &[0.5]);
    }

    #[test]
    fn try_variants_surface_typed_errors() {
        let mut n = net();
        assert!(try_magnitude_prune_per_layer(&mut n, &[0.5]).is_err());
        assert!(try_magnitude_prune_per_layer(&mut n, &[0.5, f64::NAN]).is_err());
        assert!(try_magnitude_prune_per_layer(&mut n, &[0.5, 1.5]).is_err());
        let ok = try_magnitude_prune_per_layer(&mut n, &[0.0, 1.0]).unwrap();
        assert_eq!(ok.len(), 2);

        // A mask whose shape no longer matches the network must error, not
        // corrupt weights.
        let bad = PruneMask::from_layers(vec![LayerMask {
            layer_index: 0,
            shape: (3, 3),
            pruned: vec![true; 9],
        }]);
        assert!(try_apply_mask(&mut n, &bad).is_err());
        let bad_idx = PruneMask::from_layers(vec![LayerMask {
            layer_index: 1, // Relu: parameterless
            shape: (1, 1),
            pruned: vec![true],
        }]);
        assert!(try_apply_mask(&mut n, &bad_idx).is_err());
    }
}

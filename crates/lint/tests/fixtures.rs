//! Fixture-tree integration suite: runs the full catalog over
//! `tests/fixtures/ws` (a miniature two-crate workspace with one
//! deliberate violation per check in `bad` and the matching clean
//! construction in `good`) and snapshots the sorted JSON report.

use std::path::PathBuf;
use std::process::Command;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn report() -> ftt_lint::diag::Report {
    ftt_lint::run(&fixture_root(), None).expect("fixture workspace loads")
}

#[test]
fn every_check_has_a_failing_fixture() {
    let counts = report().counts();
    for id in ["P1", "D1", "F1", "S1", "O1", "W1", "C1", "O2", "R1", "E2"] {
        assert!(
            counts.get(id).copied().unwrap_or(0) > 0,
            "check {id} produced no findings on the violation fixture: {counts:?}"
        );
    }
}

#[test]
fn every_check_passes_on_the_good_crate() {
    let rep = report();
    let good: Vec<_> = rep
        .findings
        .iter()
        .filter(|f| f.file.starts_with("crates/good"))
        .collect();
    assert!(good.is_empty(), "good crate must be clean: {good:#?}");
}

#[test]
fn json_report_matches_snapshot() {
    let expected_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/expected.json");
    let expected = std::fs::read_to_string(&expected_path).expect("snapshot exists");
    let actual = report().to_json();
    assert_eq!(
        actual, expected,
        "fixture JSON drifted; if the change is intentional, update \
         tests/fixtures/expected.json"
    );
}

#[test]
fn json_report_is_byte_identical_across_runs() {
    assert_eq!(report().to_json(), report().to_json());
}

#[test]
fn binary_exits_nonzero_on_violations_and_zero_on_clean() {
    let bin = env!("CARGO_BIN_EXE_ftt-lint");

    // Violation fixture -> exit 1.
    let out = Command::new(bin)
        .args(["--root"])
        .arg(fixture_root())
        .output()
        .expect("run ftt-lint on fixtures");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Real workspace -> exit 0 (also asserted by workspace_clean.rs via
    // the library API; this covers the CLI path).
    let ws_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(bin)
        .args(["--root"])
        .arg(&ws_root)
        .output()
        .expect("run ftt-lint on workspace");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace must lint clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Missing config -> exit 2.
    let out = Command::new(bin)
        .args(["--root"])
        .arg(fixture_root())
        .args(["--config", "/nonexistent/lint.toml"])
        .output()
        .expect("run ftt-lint with bad config");
    assert_eq!(out.status.code(), Some(2));

    // Unknown flag -> exit 2.
    let out = Command::new(bin)
        .args(["--frobnicate"])
        .output()
        .expect("run ftt-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn stale_suppressions_surface_as_warnings() {
    let rep = report();
    let kinds: Vec<&str> = rep.warnings.iter().map(|w| w.check).collect();
    for kind in ["stale-allow", "stale-annotation", "stale-exclude"] {
        assert!(
            kinds.contains(&kind),
            "expected a {kind} warning, got {kinds:?}"
        );
    }
    // Warnings never affect the exit decision.
    assert!(!rep.is_clean(), "fixture still has findings");
}

#[test]
fn baseline_diff_suppresses_known_findings() {
    let bin = env!("CARGO_BIN_EXE_ftt-lint");
    let snapshot =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/expected.json");

    // Diffing the fixture tree against its own snapshot: nothing new.
    let out = Command::new(bin)
        .args(["--root"])
        .arg(fixture_root())
        .args(["--baseline"])
        .arg(&snapshot)
        .output()
        .expect("run ftt-lint --baseline");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 new finding(s)"), "stdout: {text}");

    // An empty baseline suppresses nothing: every finding is new.
    let empty = fixture_root().join("../empty-baseline.json");
    std::fs::write(&empty, "{\n  \"findings\": []\n}\n").expect("write empty baseline");
    let out = Command::new(bin)
        .args(["--root"])
        .arg(fixture_root())
        .args(["--baseline"])
        .arg(&empty)
        .output()
        .expect("run ftt-lint --baseline (empty)");
    std::fs::remove_file(&empty).ok();
    assert_eq!(out.status.code(), Some(1));

    // A malformed baseline is a usage error, not a silent pass.
    let out = Command::new(bin)
        .args(["--root"])
        .arg(fixture_root())
        .args(["--baseline", "/nonexistent/baseline.json"])
        .output()
        .expect("run ftt-lint --baseline (missing)");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn human_rendering_carries_file_line_spans() {
    let rep = report();
    let human = rep.to_human();
    assert!(
        human.contains("crates/bad/src/lib.rs:"),
        "diagnostics must carry file:line spans:\n{human}"
    );
    assert!(human.contains("finding(s)"));
}

//! Saving and loading trained parameters.
//!
//! Experiments often want to train a reference network once and then deploy
//! it onto many simulated chips (the `fault_sensitivity` and
//! `remap_recovery` benches do exactly this). The format is a tiny
//! self-describing binary container — magic, version, then per weight-layer
//! the shape, weights, and bias — deliberately independent of the layer
//! *types*, so any same-topology network can receive the parameters.
//!
//! The format stores only parameters, not architecture: the loader checks
//! that shapes match and refuses anything else.

use std::io::{self, Read, Write};

use crate::error::NnError;
use crate::network::Network;

const MAGIC: &[u8; 8] = b"RRAMFTT1";

/// Writes all weight-layer parameters of `net` to `writer`.
///
/// Pass `&mut file` for writers you want back afterwards.
///
/// # Errors
///
/// Returns any I/O error from the writer.
///
/// # Example
///
/// ```
/// use nn::network::Network;
/// use nn::layers::Dense;
/// use nn::init::init_rng;
/// use nn::serialize::{load_parameters, save_parameters};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = init_rng(0);
/// let mut net = Network::new();
/// net.push(Dense::new(4, 2, &mut rng));
///
/// let mut buf = Vec::new();
/// save_parameters(&mut net, &mut buf)?;
///
/// let mut fresh = Network::new();
/// fresh.push(Dense::new(4, 2, &mut init_rng(99)));
/// load_parameters(&mut fresh, buf.as_slice())?;
/// # Ok(())
/// # }
/// ```
pub fn save_parameters<W: Write>(net: &mut Network, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    let indices = net.weight_layer_indices();
    writer.write_all(&(indices.len() as u32).to_le_bytes())?;
    for idx in indices {
        // PANIC-OK: `weight_layer_indices` only lists layers with
        // parameters; `None` is an internal invariant violation.
        #[allow(clippy::expect_used)]
        let params = net
            .layer_params_mut(idx)
            .expect("weight_layer_indices returned a parameterless layer");
        let (rows, cols) = params.weight_shape;
        writer.write_all(&(rows as u32).to_le_bytes())?;
        writer.write_all(&(cols as u32).to_le_bytes())?;
        for &w in params.weights.iter() {
            writer.write_all(&w.to_le_bytes())?;
        }
        match params.bias {
            Some(bias) => {
                writer.write_all(&(bias.len() as u32).to_le_bytes())?;
                for &b in bias.iter() {
                    writer.write_all(&b.to_le_bytes())?;
                }
            }
            None => writer.write_all(&0u32.to_le_bytes())?,
        }
    }
    Ok(())
}

/// Loads parameters saved by [`save_parameters`] into a same-topology
/// network.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] on a bad magic/shape mismatch, or a
/// wrapped description of any I/O error.
pub fn load_parameters<R: Read>(net: &mut Network, mut reader: R) -> Result<(), NnError> {
    let io_err = |e: io::Error| NnError::InvalidConfig(format!("read failed: {e}"));
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(NnError::InvalidConfig(
            "not an rram-ftt parameter file".into(),
        ));
    }
    let layer_count = read_u32(&mut reader).map_err(io_err)? as usize;
    let indices = net.weight_layer_indices();
    if layer_count != indices.len() {
        return Err(NnError::InvalidConfig(format!(
            "file has {layer_count} weight layers, network has {}",
            indices.len()
        )));
    }
    for idx in indices {
        let rows = read_u32(&mut reader).map_err(io_err)? as usize;
        let cols = read_u32(&mut reader).map_err(io_err)? as usize;
        // PANIC-OK: `weight_layer_indices` only lists layers with
        // parameters; `None` is an internal invariant violation.
        #[allow(clippy::expect_used)]
        let params = net
            .layer_params_mut(idx)
            .expect("weight_layer_indices returned a parameterless layer");
        if params.weight_shape != (rows, cols) {
            return Err(NnError::InvalidConfig(format!(
                "layer {idx}: file shape ({rows}, {cols}) vs network {:?}",
                params.weight_shape
            )));
        }
        // Re-borrow mutably after the shape check to write into the layer.
        let mut buf = [0u8; 4];
        for w in params.weights.iter_mut() {
            reader.read_exact(&mut buf).map_err(io_err)?;
            *w = f32::from_le_bytes(buf);
        }
        let bias_len = {
            let mut b = [0u8; 4];
            reader.read_exact(&mut b).map_err(io_err)?;
            u32::from_le_bytes(b) as usize
        };
        match params.bias {
            Some(bias) => {
                if bias.len() != bias_len {
                    return Err(NnError::InvalidConfig(format!(
                        "layer {idx}: file bias length {bias_len} vs network {}",
                        bias.len()
                    )));
                }
                for b in bias.iter_mut() {
                    reader.read_exact(&mut buf).map_err(io_err)?;
                    *b = f32::from_le_bytes(buf);
                }
            }
            None if bias_len == 0 => {}
            None => {
                return Err(NnError::InvalidConfig(format!(
                    "layer {idx}: file has a bias, network layer does not"
                )))
            }
        }
    }
    Ok(())
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::init_rng;
    use crate::layers::{Dense, Relu};
    use crate::tensor::Tensor;

    fn net(seed: u64) -> Network {
        let mut rng = init_rng(seed);
        let mut n = Network::new();
        n.push(Dense::new(6, 8, &mut rng));
        n.push(Relu::new());
        n.push(Dense::new(8, 3, &mut rng));
        n
    }

    #[test]
    fn roundtrip_restores_function() {
        let mut original = net(1);
        let mut buf = Vec::new();
        save_parameters(&mut original, &mut buf).unwrap();

        let mut fresh = net(99); // different init
        load_parameters(&mut fresh, buf.as_slice()).unwrap();

        let x = Tensor::from_vec(vec![2, 6], (0..12).map(|i| (i as f32).cos()).collect());
        assert_eq!(original.forward(&x).data(), fresh.forward(&x).data());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut fresh = net(1);
        let err = load_parameters(&mut fresh, &b"NOTAFILE????"[..]);
        assert!(err.is_err());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut original = net(1);
        let mut buf = Vec::new();
        save_parameters(&mut original, &mut buf).unwrap();
        let mut rng = init_rng(2);
        let mut other = Network::new();
        other.push(Dense::new(6, 9, &mut rng)); // wrong width
        other.push(Dense::new(9, 3, &mut rng));
        assert!(load_parameters(&mut other, buf.as_slice()).is_err());
    }

    #[test]
    fn layer_count_mismatch_is_rejected() {
        let mut original = net(1);
        let mut buf = Vec::new();
        save_parameters(&mut original, &mut buf).unwrap();
        let mut rng = init_rng(2);
        let mut other = Network::new();
        other.push(Dense::new(6, 3, &mut rng));
        assert!(load_parameters(&mut other, buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_file_is_rejected() {
        let mut original = net(1);
        let mut buf = Vec::new();
        save_parameters(&mut original, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut fresh = net(1);
        assert!(load_parameters(&mut fresh, buf.as_slice()).is_err());
    }
}

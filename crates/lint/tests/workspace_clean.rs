//! Meta-test: the real workspace lints clean, and the JSON report is a
//! deterministic artifact — byte-identical across repeated runs and
//! across `RRAM_FTT_THREADS` settings (the linter reads neither the
//! clock nor the environment; the spawned-process check pins that).

use std::path::PathBuf;
use std::process::Command;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn the_workspace_lints_clean() {
    let report = ftt_lint::run(&workspace_root(), None).expect("workspace loads");
    assert!(
        report.is_clean(),
        "the workspace must satisfy its own lint gate:\n{}",
        report.to_human()
    );
    // The full catalog ran: six per-file checks plus the four semantic
    // (cross-crate) checks introduced with the workspace model.
    assert_eq!(
        report.checks,
        vec!["C1", "D1", "E2", "F1", "O1", "O2", "P1", "R1", "S1", "W1"]
    );
    // No stale suppressions linger in lint.toml or the source tree.
    assert!(
        report.warnings.is_empty(),
        "stale suppressions:\n{}",
        report.to_human()
    );
    // Sanity: the gate actually scanned the tree (not an empty walk).
    assert!(
        report.files_scanned > 100,
        "scanned {} files",
        report.files_scanned
    );
}

#[test]
fn json_report_is_byte_identical_across_thread_budgets() {
    let bin = env!("CARGO_BIN_EXE_ftt-lint");
    let mut outputs = Vec::new();
    for budget in ["1", "4", "13"] {
        let out = Command::new(bin)
            .args(["--json", "--root"])
            .arg(workspace_root())
            .env("RRAM_FTT_THREADS", budget)
            .output()
            .expect("run ftt-lint --json");
        assert_eq!(out.status.code(), Some(0));
        outputs.push(out.stdout);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "trace must not depend on RRAM_FTT_THREADS"
    );
    assert_eq!(
        outputs[1], outputs[2],
        "trace must not depend on RRAM_FTT_THREADS"
    );
    let text = String::from_utf8(outputs[0].clone()).expect("utf-8 report");
    assert!(
        text.contains("\"findings\": []"),
        "clean workspace report:\n{text}"
    );
}

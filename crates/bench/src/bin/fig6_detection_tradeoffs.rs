//! **Fig. 6** — trade-offs between test time, precision, and recall of the
//! quiescent-voltage comparison method.
//!
//! For crossbar sizes 128²–1024² with 10 % defective cells, the test size
//! `Tr = Tc` is swept and each campaign reports its test time
//! `T = ⌈Cr/Tr⌉ + ⌈Cc/Tc⌉` (cycles), precision, and recall.
//!
//! ```text
//! cargo run --release -p ftt-bench --bin fig6_detection_tradeoffs -- --dist uniform
//! cargo run --release -p ftt-bench --bin fig6_detection_tradeoffs -- --dist gaussian
//! ```
//!
//! Expected shape (paper): recall always above ~87 % and rising slowly with
//! test time; precision rising steeply with test time; for a given
//! precision the required test time grows linearly with crossbar size.

use faultdet::detector::{DetectorConfig, OnlineFaultDetector};
use faultdet::metrics::DetectionReport;
use ftt_bench::{arg_or, arg_value, write_csv};
use rand::Rng;
use rram::crossbar::{Crossbar, CrossbarBuilder};
use rram::spatial::SpatialDistribution;

fn build(size: usize, dist: SpatialDistribution, seed: u64) -> Crossbar {
    let mut xbar = CrossbarBuilder::new(size, size)
        .initial_faults(dist, 0.10)
        .seed(seed)
        .build()
        .expect("valid crossbar config");
    let mut rng = rram::rng::sim_rng(seed ^ 0x5eed);
    for r in 0..size {
        for c in 0..size {
            let _ = xbar
                .write_level(r, c, rng.gen_range(0..8))
                .expect("in range");
        }
    }
    xbar
}

fn main() {
    let dist_name = arg_value("--dist").unwrap_or_else(|| "uniform".into());
    let dist = match dist_name.as_str() {
        "uniform" => SpatialDistribution::Uniform,
        "gaussian" => SpatialDistribution::default_clusters(),
        other => {
            eprintln!("unknown --dist {other} (use uniform|gaussian)");
            std::process::exit(2);
        }
    };
    let seeds = arg_or("--seeds", 3u64);

    // `recall` scores kind-agnostically (a fault flagged with the wrong
    // kind still counts); `recall_kind_aware` requires the detected kind to
    // match and is the stricter floor corresponding to the paper's ~87 %.
    println!("# Fig. 6 ({dist_name} fault distribution, 10% defective cells)");
    println!("crossbar_size, test_size, test_cycles, precision, recall, recall_kind_aware");
    let mut csv =
        String::from("crossbar_size,test_size,test_cycles,precision,recall,recall_kind_aware\n");
    for size in [128usize, 256, 512, 1024] {
        // Sweep test sizes from whole-array down to fine granularity.
        let mut test_sizes = vec![size, size / 2, size / 4, size / 8, size / 16];
        test_sizes.extend([32, 16, 8, 4, 2].iter().filter(|&&t| t < size / 16));
        for test_size in test_sizes {
            let test_size = test_size.max(1);
            let mut precision = 0.0;
            let mut recall = 0.0;
            let mut recall_kind = 0.0;
            let mut cycles = 0u64;
            for seed in 0..seeds {
                let mut xbar = build(size, dist, seed * 31 + size as u64);
                let truth = xbar.fault_map();
                let outcome = OnlineFaultDetector::new(
                    DetectorConfig::new(test_size).expect("non-zero test size"),
                )
                .run(&mut xbar)
                .expect("campaign");
                let report = DetectionReport::evaluate(&truth, &outcome.predicted);
                let kind_report = DetectionReport::evaluate_kind_aware(&truth, &outcome.predicted);
                precision += report.precision();
                recall += report.recall();
                recall_kind += kind_report.recall();
                cycles = outcome.cycles();
            }
            precision /= seeds as f64;
            recall /= seeds as f64;
            recall_kind /= seeds as f64;
            println!(
                "{size}, {test_size}, {cycles}, {precision:.3}, {recall:.3}, {recall_kind:.3}"
            );
            csv.push_str(&format!(
                "{size},{test_size},{cycles},{precision:.4},{recall:.4},{recall_kind:.4}\n"
            ));
        }
    }
    write_csv(&format!("fig6_{dist_name}"), &csv);
}

//! **Extension ablation** — adaptive (bisection) testing versus the paper's
//! fixed-test-size sweep, as a function of fault density.
//!
//! The adaptive schedule pinpoints faults exactly in `O(faults · log n)`
//! probes, so it dominates in the *incremental* regime (few new faults
//! since the last campaign) and loses to coarse fixed-size tests when the
//! array is already riddled with faults. This run charts the crossover.
//!
//! ```text
//! cargo run --release -p ftt-bench --bin ablation_adaptive
//! ```

use faultdet::adaptive::AdaptiveDetector;
use faultdet::detector::{DetectorConfig, OnlineFaultDetector};
use faultdet::metrics::DetectionReport;
use ftt_bench::{arg_or, write_csv};
use rand::Rng;
use rram::crossbar::{Crossbar, CrossbarBuilder};
use rram::spatial::SpatialDistribution;

fn build(size: usize, fraction: f64, seed: u64) -> Crossbar {
    let mut xbar = CrossbarBuilder::new(size, size)
        .initial_faults(SpatialDistribution::Uniform, fraction)
        .seed(seed)
        .build()
        .expect("valid crossbar");
    let mut rng = rram::rng::sim_rng(seed ^ 0xada);
    for r in 0..size {
        for c in 0..size {
            let _ = xbar
                .write_level(r, c, rng.gen_range(0..8))
                .expect("in range");
        }
    }
    xbar
}

fn main() {
    let size = arg_or("--size", 256usize);
    println!("# adaptive bisection vs fixed-size testing ({size}x{size})");
    println!("fault_fraction, method, cycles, precision, recall");
    let mut csv = String::from("fault_fraction,method,cycles,precision,recall\n");
    for &fraction in &[0.0005f64, 0.001, 0.005, 0.01, 0.05, 0.1] {
        // Adaptive.
        let mut xbar = build(size, fraction, 9);
        let truth = xbar.fault_map();
        let outcome = AdaptiveDetector::new(DetectorConfig::new(size).expect("size"))
            .run(&mut xbar)
            .expect("campaign");
        let report = DetectionReport::evaluate(&truth, &outcome.predicted);
        println!(
            "{fraction:.4}, adaptive, {}, {:.3}, {:.3}",
            outcome.cycles,
            report.precision(),
            report.recall()
        );
        csv.push_str(&format!(
            "{fraction:.4},adaptive,{},{:.4},{:.4}\n",
            outcome.cycles,
            report.precision(),
            report.recall()
        ));

        // Fixed exhaustive (test size 1, exact like adaptive).
        let mut xbar = build(size, fraction, 9);
        let truth = xbar.fault_map();
        let outcome = OnlineFaultDetector::new(DetectorConfig::new(1).expect("size"))
            .run(&mut xbar)
            .expect("campaign");
        let report = DetectionReport::evaluate(&truth, &outcome.predicted);
        let cycles = outcome.sa0_cycles + outcome.sa1_cycles;
        println!(
            "{fraction:.4}, fixed_exhaustive, {cycles}, {:.3}, {:.3}",
            report.precision(),
            report.recall()
        );
        csv.push_str(&format!(
            "{fraction:.4},fixed_exhaustive,{cycles},{:.4},{:.4}\n",
            report.precision(),
            report.recall()
        ));
    }
    write_csv("ablation_adaptive", &csv);
}

//! **Fig. 7(b) (FC-only case)** — fault-tolerant on-line training with only
//! the FC layers mapped onto an RCS that has already been trained many
//! times: ~50 % of the cells carry hard faults before training starts, and
//! the surviving cells' remaining endurance is depleted, so faults keep
//! accumulating during the run.
//!
//! Paper result: the original method peaks at 63 %; threshold training has
//! little additional effect; the entire fault-tolerant flow (detection +
//! re-mapping) restores accuracy to 76 % (fault-free ideal: 85.2 %).
//!
//! ```text
//! cargo run --release -p ftt-bench --bin fig7b_fc_only
//! ```

use ftt_bench::{arg_or, print_curves, run_flow};
use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use nn::models::vgg11_cifar;
use nn::optimizer::LrSchedule;
use nn::synth::SyntheticDataset;
use rram::endurance::EnduranceModel;
use rram::spatial::SpatialDistribution;

fn main() {
    let iterations = arg_or("--iterations", 5000u64);
    let divisor = arg_or("--divisor", 8usize);
    let data = SyntheticDataset::cifar_like(512, 128, 21);
    let schedule = LrSchedule::step_decay(0.01, 0.7, iterations / 3);
    // Depleted remaining endurance: cells keep dying during this run.
    let endurance = EnduranceModel::new(0.8 * iterations as f64, 0.3 * iterations as f64)
        .with_wearout_sa0_prob(0.8);
    let mapping = || {
        MappingConfig::new(MappingScope::FcOnly)
            .with_initial_fault_fraction(0.50)
            .with_fault_distribution(SpatialDistribution::default_clusters())
            .with_initial_sa0_prob(0.8)
            .with_endurance(endurance)
            .with_seed(17)
    };
    let eval = iterations / 40;

    let runs = vec![
        run_flow(
            "ideal case (no faults)",
            vgg11_cifar(divisor, 3),
            MappingConfig::new(MappingScope::FcOnly).with_seed(17),
            FlowConfig::original()
                .with_lr(schedule)
                .with_eval_interval(eval),
            &data,
            iterations,
        ),
        run_flow(
            "original method",
            vgg11_cifar(divisor, 3),
            mapping(),
            FlowConfig::original()
                .with_lr(schedule)
                .with_eval_interval(eval),
            &data,
            iterations,
        ),
        run_flow(
            "fault-tolerant method with threshold training",
            vgg11_cifar(divisor, 3),
            mapping(),
            FlowConfig::threshold_only()
                .with_lr(schedule)
                .with_eval_interval(eval),
            &data,
            iterations,
        ),
        run_flow(
            "entire fault-tolerant method",
            vgg11_cifar(divisor, 3),
            mapping(),
            FlowConfig::fault_tolerant()
                .with_lr(schedule)
                .with_eval_interval(eval)
                .with_detection_interval(iterations / 6)
                .with_detection_warmup(iterations / 2),
            &data,
            iterations,
        ),
    ];
    print_curves(
        &format!(
            "Fig. 7(b): FC-only case (VGG-11/{divisor}, 50% initial faults, depleted endurance, {iterations} iterations)"
        ),
        &runs,
        "fig7b_fc_only",
    );
}

//! **§1 / §2.2 baseline comparison** — traditional March testing versus the
//! paper's quiescent-voltage comparison.
//!
//! The paper's motivation for a new on-line test: "the test time of
//! traditional test methods increases quadratically with the number of
//! rows (columns) of the RRAM crossbar". This bench quantifies that, plus
//! the wear each campaign inflicts on the array it is protecting.
//!
//! ```text
//! cargo run --release -p ftt-bench --bin baseline_march
//! ```

use faultdet::detector::{DetectorConfig, OnlineFaultDetector};
use faultdet::march::MarchTest;
use faultdet::metrics::DetectionReport;
use ftt_bench::{arg_or, write_csv};
use rand::Rng;
use rram::crossbar::{Crossbar, CrossbarBuilder};
use rram::spatial::SpatialDistribution;

fn build(size: usize, seed: u64) -> Crossbar {
    let mut xbar = CrossbarBuilder::new(size, size)
        .initial_faults(SpatialDistribution::Uniform, 0.10)
        .seed(seed)
        .build()
        .expect("valid crossbar");
    let mut rng = rram::rng::sim_rng(seed ^ 0xdead);
    for r in 0..size {
        for c in 0..size {
            let _ = xbar
                .write_level(r, c, rng.gen_range(0..8))
                .expect("in range");
        }
    }
    xbar
}

fn main() {
    let test_size = arg_or("--test-size", 8usize);
    println!("# March (traditional, refs [9,12]) vs quiescent-voltage comparison");
    println!("# 10% uniform faults; quiescent test size {test_size}");
    println!("crossbar_size, method, cycles, precision, recall, test_write_pulses");
    let mut csv = String::from("crossbar_size,method,cycles,precision,recall,test_write_pulses\n");
    for size in [64usize, 128, 256, 512] {
        // March baseline.
        let mut xbar = build(size, 5);
        let truth = xbar.fault_map();
        let outcome = MarchTest::new().run(&mut xbar).expect("march");
        let report = DetectionReport::evaluate(&truth, &outcome.predicted);
        println!(
            "{size}, march, {}, {:.3}, {:.3}, {}",
            outcome.cycles,
            report.precision(),
            report.recall(),
            outcome.write_pulses
        );
        csv.push_str(&format!(
            "{size},march,{},{:.4},{:.4},{}\n",
            outcome.cycles,
            report.precision(),
            report.recall(),
            outcome.write_pulses
        ));

        // Quiescent-voltage comparison.
        let mut xbar = build(size, 5);
        let truth = xbar.fault_map();
        let outcome = OnlineFaultDetector::new(DetectorConfig::new(test_size).expect("test size"))
            .run(&mut xbar)
            .expect("campaign");
        let report = DetectionReport::evaluate(&truth, &outcome.predicted);
        println!(
            "{size}, quiescent, {}, {:.3}, {:.3}, {}",
            outcome.cycles(),
            report.precision(),
            report.recall(),
            outcome.write_pulses
        );
        csv.push_str(&format!(
            "{size},quiescent,{},{:.4},{:.4},{}\n",
            outcome.cycles(),
            report.precision(),
            report.recall(),
            outcome.write_pulses
        ));
    }
    println!();
    println!("# March is exact but its cycle count grows with the cell count");
    println!("# (quadratic in the dimension); the quiescent method stays linear.");
    write_csv("baseline_march", &csv);
}

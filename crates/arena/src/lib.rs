//! Deterministic strategy-comparison arena (DESIGN.md §14).
//!
//! The arena answers the question the closed-loop reproduction alone
//! cannot: *compared to what?* It runs every registered fault-tolerance
//! strategy under **identical** seeded fault processes and ranks them in a
//! league table of accuracy, energy, write pulses, tiles retired, and
//! wall-free logical duration.
//!
//! # Fairness rules
//!
//! * **Shared chip state.** For each fault density one *reference* trainer
//!   is built (under the `noop` strategy) and its complete state is
//!   captured through the `ftt-snapshot` codec. Every contender decodes
//!   that same byte string, rebinds the capture's strategy id to itself,
//!   and restores — so all contenders start from the bit-identical chip:
//!   same fault map, same cell endurance draws, same RNG stream positions.
//! * **Shared flow.** All contenders train with the same flow config
//!   (schedule, batch, thresholds, detection cadence); only the strategy
//!   selection differs.
//! * **Per-contender RNG salting.** Strategy-private randomness (the
//!   drop-connect masks) is salted with an arena-level constant distinct
//!   from the chip seed, so no contender's choices correlate with the
//!   fault process it is being judged against.
//! * **Cost-accounting parity.** Every strategy charges its reads into
//!   `flow_detection_cycles_total`/`flow_strategy_cycles_total` and its
//!   pulses into the chip's write counters, so the energy column prices
//!   all contenders with the same meter.
//!
//! The league table is sorted (density ascending, then rank) and rendered
//! with the telemetry subsystem's shortest-round-trip float formatting —
//! byte-identical at any `RRAM_FTT_THREADS` setting.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use ftt_core::error::FttError;
use ftt_core::flow::FaultTolerantTrainer;
use ftt_core::strategy::StrategySelect;
use nn::data::Dataset;
use nn::init::init_rng;
use nn::network::Network;
use nn::optimizer::LrSchedule;
use nn::synth::SyntheticDataset;
use obs::{Event, JsonObject, Recorder};

/// Salt mixed into strategy-private RNG seeds (drop-connect masks) so they
/// never alias the chip construction stream.
const STRATEGY_SEED_SALT: u64 = 0xa11e_57a7_e6fa_u64;

/// One arena sweep: which strategies race, under which fault densities,
/// for how long.
#[derive(Debug, Clone)]
pub struct ArenaConfig {
    /// Base seed: chip construction, dataset synthesis, and (salted)
    /// strategy randomness all derive from it.
    pub seed: u64,
    /// Fault densities swept (each is one shared-chip heat).
    pub densities: Vec<f64>,
    /// Training iterations per contender run.
    pub iterations: u64,
    /// The contenders.
    pub strategies: Vec<StrategySelect>,
    /// Synthetic dataset training samples.
    pub train_samples: usize,
    /// Synthetic dataset test samples.
    pub test_samples: usize,
    /// Iterations between detection campaigns (strategies that campaign).
    pub detection_interval: u64,
    /// Spare tiles per chip (redundant-column raw material).
    pub spare_tiles: usize,
    /// Crossbar tile size.
    pub tile_size: usize,
}

impl ArenaConfig {
    /// The reference sweep: all four strategies over three fault densities,
    /// long enough for the contenders to actually separate.
    pub fn reference() -> Self {
        Self {
            seed: 17,
            densities: vec![0.05, 0.15, 0.3],
            iterations: 200,
            strategies: Self::all_strategies(17),
            train_samples: 240,
            test_samples: 60,
            detection_interval: 25,
            spare_tiles: 8,
            tile_size: 64,
        }
    }

    /// A reduced sweep for CI and the chaos harness: same shape, far fewer
    /// iterations and samples (rankings are not meaningful, byte-identity
    /// still is).
    pub fn quick() -> Self {
        Self {
            iterations: 16,
            train_samples: 60,
            test_samples: 20,
            detection_interval: 8,
            ..Self::reference()
        }
    }

    /// The four registered strategies, with arena-salted private seeds.
    pub fn all_strategies(seed: u64) -> Vec<StrategySelect> {
        vec![
            StrategySelect::DetectRemap,
            StrategySelect::NoOp,
            StrategySelect::DropConnect {
                rate: 0.15,
                seed: seed ^ STRATEGY_SEED_SALT,
            },
            StrategySelect::RedundantColumn {
                retire_density: 0.25,
                interval: 8,
            },
        ]
    }
}

/// One contender's result under one fault density.
#[derive(Debug, Clone, PartialEq)]
pub struct LeagueRow {
    /// Stable strategy id.
    pub strategy: String,
    /// Fault density of the heat.
    pub fault_density: f64,
    /// 1-based rank within the heat (accuracy desc, energy asc, id asc).
    pub rank: u64,
    /// Final test accuracy through the faulty hardware.
    pub final_accuracy: f64,
    /// Peak test accuracy over the run.
    pub peak_accuracy: f64,
    /// Estimated run energy in picojoules (typical RRAM energy model).
    pub energy_pj: f64,
    /// Total hardware write pulses (training + detection + reprogram).
    pub write_pulses: u64,
    /// Tiles retired (redundant-column / sparing activity).
    pub tiles_retired: u64,
    /// Wall-free logical duration: MVM cell ops + detection and strategy
    /// cycles + write pulses — the run's total hardware occupancy.
    pub logical_cycles: u64,
}

impl LeagueRow {
    /// One sorted-JSON league line (without trailing newline).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .field_f64("fault_density", self.fault_density)
            .field_u64("rank", self.rank)
            .field_str("strategy", &self.strategy)
            .field_f64("final_accuracy", self.final_accuracy)
            .field_f64("peak_accuracy", self.peak_accuracy)
            .field_f64("energy_pj", self.energy_pj)
            .field_u64("write_pulses", self.write_pulses)
            .field_u64("tiles_retired", self.tiles_retired)
            .field_u64("logical_cycles", self.logical_cycles)
            .finish()
    }
}

/// The finished sweep: sorted rows plus the arena's own event trace.
#[derive(Debug)]
pub struct ArenaReport {
    /// League rows, sorted by density ascending then rank ascending.
    pub rows: Vec<LeagueRow>,
    /// JSONL view of the arena recorder's event stream
    /// (`strategy_selected` / `arena_run` lines).
    pub trace: String,
}

impl ArenaReport {
    /// The sorted league table as JSON Lines — the machine artifact CI
    /// byte-compares across thread budgets.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&row.to_json());
            out.push('\n');
        }
        out
    }

    /// The human league table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "density  rank  strategy          final%   peak%    energy_pJ      pulses    retired  cycles\n",
        );
        let mut last_density = f64::NAN;
        for r in &self.rows {
            if r.fault_density != last_density {
                if !last_density.is_nan() {
                    out.push('\n');
                }
                last_density = r.fault_density;
            }
            out.push_str(&format!(
                "{:<8.2} {:<5} {:<17} {:<8.2} {:<8.2} {:<14.1} {:<11} {:<8} {}\n",
                r.fault_density,
                r.rank,
                r.strategy,
                r.final_accuracy * 100.0,
                r.peak_accuracy * 100.0,
                r.energy_pj,
                r.write_pulses,
                r.tiles_retired,
                r.logical_cycles,
            ));
        }
        out
    }
}

/// The shared MLP every contender trains (784×32×10, the test workhorse).
fn arena_net(seed: u64) -> Network {
    let mut rng = init_rng(seed);
    let mut net = Network::new();
    net.push(nn::layers::Dense::new(784, 32, &mut rng));
    net.push(nn::layers::Relu::new());
    net.push(nn::layers::Dense::new(32, 10, &mut rng));
    net
}

fn arena_mapping(config: &ArenaConfig, density: f64) -> MappingConfig {
    MappingConfig::new(MappingScope::EntireNetwork)
        .with_initial_fault_fraction(density)
        .with_seed(config.seed)
        .with_spare_tiles(config.spare_tiles)
        .with_tile_size(config.tile_size)
}

fn arena_flow(config: &ArenaConfig, select: StrategySelect) -> FlowConfig {
    FlowConfig::fault_tolerant()
        .with_lr(LrSchedule::constant(0.1))
        .with_detection_interval(config.detection_interval)
        .with_detection_warmup(0)
        .with_eval_interval(config.detection_interval)
        .with_strategy_select(select)
}

/// Runs the full sweep: for each density, snapshot one reference chip and
/// race every contender from that bit-identical starting state.
///
/// # Errors
///
/// Propagates configuration/hardware errors from the trainers and codec
/// errors from the snapshot round trip.
pub fn run(config: &ArenaConfig) -> Result<ArenaReport, FttError> {
    let recorder = Recorder::deterministic();
    let sink = obs::JsonlSink::new();
    let view = sink.view();
    recorder.add_sink(Box::new(sink));
    let data: Dataset = SyntheticDataset::mnist_like(
        config.train_samples,
        config.test_samples,
        config.seed,
    );

    let mut rows = Vec::new();
    for &density in &config.densities {
        // One reference chip per density, captured through the snapshot
        // codec. The reference trainer never trains — it exists to run the
        // mapping (fault injection, endurance draws) exactly once.
        let mapping = arena_mapping(config, density);
        let reference_flow = arena_flow(config, StrategySelect::NoOp);
        let mut reference = FaultTolerantTrainer::with_recorder(
            arena_net(config.seed),
            mapping.clone(),
            reference_flow,
            Recorder::deterministic(),
        )?;
        let bytes = ftt_snapshot::encode(&reference.export_state());

        let mut heat = Vec::new();
        for select in &config.strategies {
            let id = select.id();
            recorder.counter_labeled("arena_runs_total", &[("strategy", id)]).inc();
            recorder.emit(Event::StrategySelected {
                strategy: id.to_string(),
                fault_density: density,
            });

            // Rebind the reference capture to this contender. The id field
            // is the snapshot's only strategy-dependent datum at iteration
            // zero, so this is exactly "same chip, different policy".
            let mut state = ftt_snapshot::decode(&bytes)
                .map_err(|e| FttError::InvalidConfig(format!("arena snapshot: {e}")))?;
            state.strategy_id = id.to_string();
            let flow = arena_flow(config, *select);
            let mut trainer = FaultTolerantTrainer::restore_state_with(
                arena_net(config.seed),
                mapping.clone(),
                flow,
                Recorder::deterministic(),
                &state,
                ftt_strategy::build(select),
            )?;
            trainer.train(&data, config.iterations)?;

            let stats = trainer.stats();
            let curve = trainer.curve();
            let energy_pj = stats.energy(&rram::energy::EnergyModel::typical()).total_pj();
            let write_pulses = trainer.mapped().total_write_pulses();
            let row = LeagueRow {
                strategy: id.to_string(),
                fault_density: density,
                rank: 0, // assigned below
                final_accuracy: curve.final_accuracy(),
                peak_accuracy: curve.peak_accuracy(),
                energy_pj,
                write_pulses,
                tiles_retired: stats.tiles_retired,
                logical_cycles: stats.mvm_cell_ops
                    + stats.detection_cycles
                    + stats.strategy_cycles
                    + write_pulses,
            };
            recorder.gauge_labeled("arena_final_accuracy", &[("strategy", id)])
                .set(row.final_accuracy);
            recorder.emit(Event::ArenaRun {
                strategy: id.to_string(),
                fault_density: density,
                accuracy_ppm: (row.final_accuracy * 1e6).round() as u64,
                write_pulses,
            });
            heat.push(row);
        }

        // Rank the heat: accuracy desc, energy asc, id asc — a total order,
        // so degenerate heats (all-faulty chip, zero density) still rank
        // deterministically.
        heat.sort_by(|a, b| {
            b.final_accuracy
                .total_cmp(&a.final_accuracy)
                .then(a.energy_pj.total_cmp(&b.energy_pj))
                .then(a.strategy.cmp(&b.strategy))
        });
        for (i, row) in heat.iter_mut().enumerate() {
            row.rank = (i + 1) as u64;
        }
        rows.extend(heat);
    }

    Ok(ArenaReport {
        rows,
        trace: view.contents(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ArenaConfig {
        ArenaConfig {
            iterations: 6,
            densities: vec![0.1],
            ..ArenaConfig::quick()
        }
    }

    #[test]
    fn arena_ranks_every_contender_once() {
        let report = run(&tiny()).unwrap();
        assert_eq!(report.rows.len(), 4);
        let ranks: Vec<u64> = report.rows.iter().map(|r| r.rank).collect();
        assert_eq!(ranks, vec![1, 2, 3, 4]);
        // Every registered strategy appears exactly once.
        let mut ids: Vec<&str> = report.rows.iter().map(|r| r.strategy.as_str()).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            vec!["detect_remap", "drop_connect", "noop", "redundant_column"]
        );
        // The arena trace recorded a selection and a result per contender.
        assert_eq!(report.trace.matches("strategy_selected").count(), 4);
        assert_eq!(report.trace.matches("arena_run").count(), 4);
    }

    #[test]
    fn league_table_is_thread_budget_invariant() {
        let run_at = |threads: usize| {
            par::set_thread_count(threads);
            let report = run(&tiny()).unwrap();
            (report.to_jsonl(), report.trace)
        };
        let (j1, t1) = run_at(1);
        let (j4, t4) = run_at(4);
        par::set_thread_count(0);
        assert_eq!(j1, j4);
        assert_eq!(t1, t4);
    }

    #[test]
    fn jsonl_and_table_render_every_row() {
        let report = run(&tiny()).unwrap();
        assert_eq!(report.to_jsonl().lines().count(), 4);
        let table = report.table();
        for row in &report.rows {
            assert!(table.contains(&row.strategy));
        }
    }
}

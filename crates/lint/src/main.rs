//! `ftt-lint` CLI: run the workspace static-analysis gate.
//!
//! ```text
//! cargo run -p ftt-lint [-- [--json] [--root DIR] [--config FILE]]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/config/I-O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root requires a directory argument"),
            },
            "--config" => match args.next() {
                Some(v) => config = Some(PathBuf::from(v)),
                None => return usage("--config requires a file argument"),
            },
            "--help" | "-h" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("ftt-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match ftt_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "ftt-lint: no [workspace] Cargo.toml found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    match ftt_lint::run(&root, config.as_deref()) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.to_human());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("ftt-lint: {problem}\n\n{HELP}");
    ExitCode::from(2)
}

const HELP: &str = "\
ftt-lint — workspace static-analysis gate (DESIGN.md §10)

USAGE:
    cargo run -p ftt-lint [-- OPTIONS]

OPTIONS:
    --json           emit the deterministic JSON report instead of human
                     diagnostics
    --root DIR       workspace root (default: nearest [workspace] above cwd)
    --config FILE    lint.toml path (default: <root>/lint.toml)
    -h, --help       this help

CHECKS:
    P1 panic-policy            D1 determinism        F1 float-soundness
    S1 unsafe-audit            O1 obs-naming         W1 workspace-consistency

EXIT CODES:
    0 clean    1 findings    2 usage/config/IO error
";

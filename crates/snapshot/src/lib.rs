//! Versioned, zero-dependency binary checkpoint/restore for complete
//! fault-tolerant training runs.
//!
//! A snapshot captures *everything* a [`FaultTolerantTrainer`] needs to
//! continue bit-identically in a fresh process: every crossbar cell (raw
//! level, analog residue, fault pin, endurance budget, write count), the
//! per-tile RNG streams, dirty journals, campaign outcomes, off-chip
//! reference stores, the spare pool, the mapped layers' placement and
//! software weights, the network parameters, the threshold ledgers, the
//! mini-batch stream position, the open skip burst, the training curve,
//! every registry counter and gauge, and the logical clock tail.
//! Configurations ([`MappingConfig`], [`FlowConfig`]) are code, not state
//! — [`resume`] is handed the same configs the run was built with.
//!
//! # Wire format
//!
//! ```text
//! magic    8 bytes  b"FTTSNAP\0"
//! version  u32 LE   FORMAT_VERSION
//! digest   u64 LE   FNV-1a 64 of the payload
//! payload  ...      TrainerState fields, in struct order
//! ```
//!
//! All integers are little-endian; floats are stored as raw IEEE-754 bits
//! (`to_bits`/`from_bits`, never converted); `usize` travels as `u64`;
//! lengths are `u64` prefixes; `Option` is a one-byte tag; enums are
//! one-byte discriminants. Any layout change bumps [`FORMAT_VERSION`] —
//! there is no in-place migration, old snapshots are rejected with
//! [`SnapshotError::UnsupportedVersion`].
//!
//! Decoding is structural; semantic validation (journal coherence,
//! pending-count popcount, tile-id reachability, …) happens in the domain
//! layers' `restore_state` constructors, surfaced as
//! [`SnapshotError::Invalid`]. Neither path panics on malformed input.
//!
//! What is deliberately *not* captured: span-duration histograms and wall
//! times (diagnostics, not behavior), cached conductance planes and group
//! aggregates (rebuilt exactly from cells/levels), tile health gauges
//! (derived), and the last campaign error of a tile (campaigns at healthy
//! iteration boundaries leave it clear).

use std::fmt;

use faultdet::reference::StoreState;
use ftt_core::error::FttError;
use ftt_core::flow::{NetParamState, TrainerState};
use ftt_core::mapping::{MappedLayerState, MappedState};
use ftt_core::report::CurvePoint;
use ftt_core::{FaultTolerantTrainer, FlowConfig, MappingConfig};
use ftt_tile::chip::{ChipState, DetectionState, TileSlotState};
use nn::data::BatchStreamState;
use nn::network::Network;
use nn::pruning::LayerMask;
use obs::{ClockState, Recorder};
use rram::crossbar::{CellState, CrossbarState};
use rram::fault::{FaultKind, FaultState};

/// Leading magic of every snapshot.
pub const MAGIC: [u8; 8] = *b"FTTSNAP\0";

/// Current wire-format version. Bumped on any layout change.
///
/// * v1 — PR 8's original layout.
/// * v2 — the strategy layer: a strategy-id string follows the iteration
///   counter (the one "config-like" datum captured as state, so restore
///   can refuse to continue a run under a different strategy).
pub const FORMAT_VERSION: u32 = 2;

/// Errors raised while decoding or resuming a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The byte stream ended before the payload did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually left.
        available: usize,
    },
    /// The leading magic is not [`MAGIC`].
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion(u32),
    /// The payload digest does not match the header.
    DigestMismatch {
        /// Digest stored in the header.
        stored: u64,
        /// Digest of the payload as received.
        computed: u64,
    },
    /// The payload is structurally malformed (bad tag, bad UTF-8, …).
    Malformed(String),
    /// The payload decoded but fails domain validation on restore.
    Invalid(FttError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { needed, available } => {
                write!(f, "snapshot truncated: needed {needed} bytes, {available} left")
            }
            Self::BadMagic => write!(f, "not a snapshot (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads {FORMAT_VERSION})")
            }
            Self::DigestMismatch { stored, computed } => write!(
                f,
                "snapshot digest mismatch: header {stored:#018x}, payload {computed:#018x}"
            ),
            Self::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            Self::Invalid(e) => write!(f, "snapshot fails domain validation: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<FttError> for SnapshotError {
    fn from(e: FttError) -> Self {
        Self::Invalid(e)
    }
}

/// FNV-1a 64-bit digest — the integrity check in the snapshot header.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- encoding ----------------------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn size(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn i8(&mut self, v: i8) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn str(&mut self, v: &str) {
        self.size(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }
    fn opt<T>(&mut self, v: Option<&T>, mut put: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(inner) => {
                self.u8(1);
                put(self, inner);
            }
        }
    }
}

fn put_fault_kind(w: &mut Writer, k: FaultKind) {
    w.u8(match k {
        FaultKind::StuckAt0 => 0,
        FaultKind::StuckAt1 => 1,
    });
}

fn put_fault_state(w: &mut Writer, s: FaultState) {
    w.u8(match s {
        FaultState::Healthy => 0,
        FaultState::Stuck(FaultKind::StuckAt0) => 1,
        FaultState::Stuck(FaultKind::StuckAt1) => 2,
    });
}

fn put_crossbar(w: &mut Writer, x: &CrossbarState) {
    w.size(x.rows);
    w.size(x.cols);
    w.u16(x.levels);
    w.size(x.cells.len());
    for c in &x.cells {
        w.u16(c.level);
        w.f64(c.analog);
        put_fault_state(w, c.state);
        w.u64(c.endurance_left);
        w.u64(c.writes);
    }
    for lane in x.rng {
        w.u64(lane);
    }
    w.u64(x.write_pulses);
    w.u64(x.wear_faults);
    w.size(x.dirty.len());
    for &i in &x.dirty {
        w.size(i);
    }
}

fn put_detection(w: &mut Writer, d: &DetectionState) {
    w.size(d.faults.len());
    for &(r, c, kind) in &d.faults {
        w.size(r);
        w.size(c);
        put_fault_kind(w, kind);
    }
    w.u64(d.sa0_cycles);
    w.u64(d.sa1_cycles);
    w.u64(d.write_pulses);
    w.size(d.sa0_candidates);
    w.size(d.sa1_candidates);
    w.u64(d.untested_groups);
    w.u64(d.store_read_cells);
    w.u64(d.store_read_cycles);
}

fn put_store(w: &mut Writer, s: &StoreState) {
    w.size(s.rows);
    w.size(s.cols);
    w.u16(s.levels);
    w.size(s.stored.len());
    for &l in &s.stored {
        w.u16(l);
    }
    w.size(s.pending.len());
    for &p in &s.pending {
        w.bool(p);
    }
    w.size(s.pending_count);
}

fn put_chip(w: &mut Writer, chip: &ChipState) {
    w.size(chip.slots.len());
    for s in &chip.slots {
        w.size(s.id);
        put_crossbar(w, &s.xbar);
        w.bool(s.retired);
        w.opt(s.spare_origin.as_ref(), |w, &o| w.size(o));
        w.opt(s.last_detection.as_ref(), put_detection);
        w.opt(s.store.as_ref(), put_store);
    }
    w.u64(chip.tile_counter);
    w.size(chip.spares_remaining);
    w.u64(chip.spares_attached);
}

fn put_mapped(w: &mut Writer, m: &MappedState) {
    put_chip(w, &m.chip);
    w.size(m.layers.len());
    for l in &m.layers {
        w.size(l.weight_layer);
        w.size(l.layer_index);
        w.size(l.rows);
        w.size(l.cols);
        w.f64(l.w_max);
        w.size(l.signs.len());
        for &s in &l.signs {
            w.i8(s);
        }
        w.size(l.targets.len());
        for &t in &l.targets {
            w.f32(t);
        }
        for shards in [&l.tiles, &l.neg_tiles] {
            w.size(shards.len());
            for &(row0, col0, id) in shards.iter() {
                w.size(row0);
                w.size(col0);
                w.size(id);
            }
        }
    }
}

fn put_batch_stream(w: &mut Writer, b: &BatchStreamState) {
    w.size(b.batch);
    w.size(b.train_len);
    w.size(b.order.len());
    for &i in &b.order {
        w.size(i);
    }
    w.size(b.cursor);
    for lane in b.rng {
        w.u64(lane);
    }
}

/// Serializes a [`TrainerState`] into the versioned wire format.
pub fn encode(state: &TrainerState) -> Vec<u8> {
    let mut w = Writer::default();
    w.u64(state.iteration);
    w.str(&state.strategy_id);
    put_mapped(&mut w, &state.mapped);
    w.size(state.params.len());
    for p in &state.params {
        w.size(p.layer_index);
        w.size(p.weights.len());
        for &v in &p.weights {
            w.f32(v);
        }
        w.opt(p.bias.as_ref(), |w, b| {
            w.size(b.len());
            for &v in b.iter() {
                w.f32(v);
            }
        });
    }
    w.size(state.ledgers.len());
    for ledger in &state.ledgers {
        w.size(ledger.len());
        for &v in ledger {
            w.u32(v);
        }
    }
    w.size(state.curve.len());
    for p in &state.curve {
        w.u64(p.iteration);
        w.f64(p.test_accuracy);
        w.f64(p.faulty_fraction);
        w.u64(p.write_pulses);
    }
    w.opt(state.active_mask.as_ref(), |w, layers| {
        w.size(layers.len());
        for m in layers.iter() {
            w.size(m.layer_index);
            w.size(m.shape.0);
            w.size(m.shape.1);
            w.size(m.pruned.len());
            for &p in &m.pruned {
                w.bool(p);
            }
        }
    });
    w.opt(state.burst_start.as_ref(), |w, &v| w.u64(v));
    w.u64(state.burst_skipped);
    w.opt(state.batch_stream.as_ref(), put_batch_stream);
    w.size(state.counters.len());
    for (name, v) in &state.counters {
        w.str(name);
        w.u64(*v);
    }
    w.size(state.gauges.len());
    for (name, v) in &state.gauges {
        w.str(name);
        w.f64(*v);
    }
    w.u64(state.clock.iteration);
    w.u64(state.clock.write_pulses);
    w.u64(state.clock.seq);
    w.size(state.clock.kind_counts.len());
    for &c in &state.clock.kind_counts {
        w.u64(c);
    }

    let payload = w.buf;
    let mut out = Vec::with_capacity(MAGIC.len() + 12 + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

// ---- decoding ----------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| SnapshotError::Malformed("length overflow".into()))?;
        let slice = self.buf.get(self.pos..end).ok_or(SnapshotError::Truncated {
            needed: n,
            available: self.buf.len().saturating_sub(self.pos),
        })?;
        self.pos = end;
        Ok(slice)
    }
    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn size(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?)
            .map_err(|_| SnapshotError::Malformed("size exceeds this platform's usize".into()))
    }
    /// A length prefix about to drive an allocation: bounded by the bytes
    /// actually left, so corrupt prefixes can't balloon memory.
    fn len(&mut self, min_elem: usize) -> Result<usize, SnapshotError> {
        let n = self.size()?;
        let bound = self.remaining() / min_elem.max(1);
        if n > bound {
            return Err(SnapshotError::Malformed(format!(
                "length {n} exceeds the {bound} elements the remaining bytes could hold"
            )));
        }
        Ok(n)
    }
    fn i8(&mut self) -> Result<i8, SnapshotError> {
        Ok(i8::from_le_bytes([self.take(1)?[0]]))
    }
    fn f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapshotError::Malformed(format!("bad bool tag {t}"))),
        }
    }
    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("string is not UTF-8".into()))
    }
    fn opt<T>(
        &mut self,
        mut get: impl FnMut(&mut Self) -> Result<T, SnapshotError>,
    ) -> Result<Option<T>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(get(self)?)),
            t => Err(SnapshotError::Malformed(format!("bad option tag {t}"))),
        }
    }
}

fn get_fault_kind(r: &mut Reader<'_>) -> Result<FaultKind, SnapshotError> {
    match r.u8()? {
        0 => Ok(FaultKind::StuckAt0),
        1 => Ok(FaultKind::StuckAt1),
        t => Err(SnapshotError::Malformed(format!("bad fault kind {t}"))),
    }
}

fn get_fault_state(r: &mut Reader<'_>) -> Result<FaultState, SnapshotError> {
    match r.u8()? {
        0 => Ok(FaultState::Healthy),
        1 => Ok(FaultState::Stuck(FaultKind::StuckAt0)),
        2 => Ok(FaultState::Stuck(FaultKind::StuckAt1)),
        t => Err(SnapshotError::Malformed(format!("bad fault state {t}"))),
    }
}

fn get_crossbar(r: &mut Reader<'_>) -> Result<CrossbarState, SnapshotError> {
    let rows = r.size()?;
    let cols = r.size()?;
    let levels = r.u16()?;
    let n = r.len(27)?; // 2 + 8 + 1 + 8 + 8 bytes per encoded cell
    let mut cells = Vec::with_capacity(n);
    for _ in 0..n {
        cells.push(CellState {
            level: r.u16()?,
            analog: r.f64()?,
            state: get_fault_state(r)?,
            endurance_left: r.u64()?,
            writes: r.u64()?,
        });
    }
    let rng = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
    let write_pulses = r.u64()?;
    let wear_faults = r.u64()?;
    let nd = r.len(8)?;
    let mut dirty = Vec::with_capacity(nd);
    for _ in 0..nd {
        dirty.push(r.size()?);
    }
    Ok(CrossbarState {
        rows,
        cols,
        levels,
        cells,
        rng,
        write_pulses,
        wear_faults,
        dirty,
    })
}

fn get_detection(r: &mut Reader<'_>) -> Result<DetectionState, SnapshotError> {
    let n = r.len(17)?;
    let mut faults = Vec::with_capacity(n);
    for _ in 0..n {
        faults.push((r.size()?, r.size()?, get_fault_kind(r)?));
    }
    Ok(DetectionState {
        faults,
        sa0_cycles: r.u64()?,
        sa1_cycles: r.u64()?,
        write_pulses: r.u64()?,
        sa0_candidates: r.size()?,
        sa1_candidates: r.size()?,
        untested_groups: r.u64()?,
        store_read_cells: r.u64()?,
        store_read_cycles: r.u64()?,
    })
}

fn get_store(r: &mut Reader<'_>) -> Result<StoreState, SnapshotError> {
    let rows = r.size()?;
    let cols = r.size()?;
    let levels = r.u16()?;
    let ns = r.len(2)?;
    let mut stored = Vec::with_capacity(ns);
    for _ in 0..ns {
        stored.push(r.u16()?);
    }
    let np = r.len(1)?;
    let mut pending = Vec::with_capacity(np);
    for _ in 0..np {
        pending.push(r.bool()?);
    }
    Ok(StoreState {
        rows,
        cols,
        levels,
        stored,
        pending,
        pending_count: r.size()?,
    })
}

fn get_chip(r: &mut Reader<'_>) -> Result<ChipState, SnapshotError> {
    let n = r.len(1)?;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.size()?;
        let xbar = get_crossbar(r)?;
        let retired = r.bool()?;
        let spare_origin = r.opt(|r| r.size())?;
        let last_detection = r.opt(get_detection)?;
        let store = r.opt(get_store)?;
        slots.push(TileSlotState {
            id,
            xbar,
            retired,
            spare_origin,
            last_detection,
            store,
        });
    }
    Ok(ChipState {
        slots,
        tile_counter: r.u64()?,
        spares_remaining: r.size()?,
        spares_attached: r.u64()?,
    })
}

fn get_mapped(r: &mut Reader<'_>) -> Result<MappedState, SnapshotError> {
    let chip = get_chip(r)?;
    let n = r.len(1)?;
    let mut layers = Vec::with_capacity(n);
    for _ in 0..n {
        let weight_layer = r.size()?;
        let layer_index = r.size()?;
        let rows = r.size()?;
        let cols = r.size()?;
        let w_max = r.f64()?;
        let nsigns = r.len(1)?;
        let mut signs = Vec::with_capacity(nsigns);
        for _ in 0..nsigns {
            signs.push(r.i8()?);
        }
        let nt = r.len(4)?;
        let mut targets = Vec::with_capacity(nt);
        for _ in 0..nt {
            targets.push(r.f32()?);
        }
        let mut grids: [Vec<(usize, usize, usize)>; 2] = [Vec::new(), Vec::new()];
        for grid in &mut grids {
            let ns = r.len(24)?;
            grid.reserve(ns);
            for _ in 0..ns {
                grid.push((r.size()?, r.size()?, r.size()?));
            }
        }
        let [tiles, neg_tiles] = grids;
        layers.push(MappedLayerState {
            weight_layer,
            layer_index,
            rows,
            cols,
            w_max,
            signs,
            targets,
            tiles,
            neg_tiles,
        });
    }
    Ok(MappedState { chip, layers })
}

fn get_batch_stream(r: &mut Reader<'_>) -> Result<BatchStreamState, SnapshotError> {
    let batch = r.size()?;
    let train_len = r.size()?;
    let n = r.len(8)?;
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        order.push(r.size()?);
    }
    let cursor = r.size()?;
    let rng = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
    Ok(BatchStreamState {
        batch,
        train_len,
        order,
        cursor,
        rng,
    })
}

/// Deserializes a [`TrainerState`] from the versioned wire format.
///
/// This is structural decoding only; use [`resume`] (or
/// [`FaultTolerantTrainer::restore_state`]) to also run the domain
/// layers' coherence validation.
///
/// # Errors
///
/// Every malformed input maps to a typed [`SnapshotError`]; this function
/// never panics.
pub fn decode(bytes: &[u8]) -> Result<TrainerState, SnapshotError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(MAGIC.len())? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let stored = r.u64()?;
    let payload = &bytes[r.pos..];
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(SnapshotError::DigestMismatch { stored, computed });
    }

    let iteration = r.u64()?;
    let strategy_id = r.str()?;
    if !ftt_core::strategy::is_known_strategy_id(&strategy_id) {
        return Err(SnapshotError::Malformed(format!(
            "snapshot records unknown strategy `{strategy_id}`"
        )));
    }
    let mapped = get_mapped(&mut r)?;
    let np = r.len(1)?;
    let mut params = Vec::with_capacity(np);
    for _ in 0..np {
        let layer_index = r.size()?;
        let nw = r.len(4)?;
        let mut weights = Vec::with_capacity(nw);
        for _ in 0..nw {
            weights.push(r.f32()?);
        }
        let bias = r.opt(|r| {
            let nb = r.len(4)?;
            let mut b = Vec::with_capacity(nb);
            for _ in 0..nb {
                b.push(r.f32()?);
            }
            Ok(b)
        })?;
        params.push(NetParamState {
            layer_index,
            weights,
            bias,
        });
    }
    let nl = r.len(1)?;
    let mut ledgers = Vec::with_capacity(nl);
    for _ in 0..nl {
        let n = r.len(4)?;
        let mut ledger = Vec::with_capacity(n);
        for _ in 0..n {
            ledger.push(r.u32()?);
        }
        ledgers.push(ledger);
    }
    let nc = r.len(32)?;
    let mut curve = Vec::with_capacity(nc);
    for _ in 0..nc {
        curve.push(CurvePoint {
            iteration: r.u64()?,
            test_accuracy: r.f64()?,
            faulty_fraction: r.f64()?,
            write_pulses: r.u64()?,
        });
    }
    let active_mask = r.opt(|r| {
        let n = r.len(1)?;
        let mut layers = Vec::with_capacity(n);
        for _ in 0..n {
            let layer_index = r.size()?;
            let shape = (r.size()?, r.size()?);
            let np = r.len(1)?;
            let mut pruned = Vec::with_capacity(np);
            for _ in 0..np {
                pruned.push(r.bool()?);
            }
            layers.push(LayerMask {
                layer_index,
                shape,
                pruned,
            });
        }
        Ok(layers)
    })?;
    let burst_start = r.opt(|r| r.u64())?;
    let burst_skipped = r.u64()?;
    let batch_stream = r.opt(get_batch_stream)?;
    let ncnt = r.len(9)?;
    let mut counters = Vec::with_capacity(ncnt);
    for _ in 0..ncnt {
        let name = r.str()?;
        counters.push((name, r.u64()?));
    }
    let ng = r.len(9)?;
    let mut gauges = Vec::with_capacity(ng);
    for _ in 0..ng {
        let name = r.str()?;
        gauges.push((name, r.f64()?));
    }
    let clock_iteration = r.u64()?;
    let clock_write_pulses = r.u64()?;
    let seq = r.u64()?;
    let nk = r.len(8)?;
    let mut kind_counts = Vec::with_capacity(nk);
    for _ in 0..nk {
        kind_counts.push(r.u64()?);
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::Malformed(format!(
            "{} trailing bytes after the payload",
            r.remaining()
        )));
    }
    Ok(TrainerState {
        iteration,
        strategy_id,
        mapped,
        params,
        ledgers,
        curve,
        active_mask,
        burst_start,
        burst_skipped,
        batch_stream,
        counters,
        gauges,
        clock: ClockState {
            iteration: clock_iteration,
            write_pulses: clock_write_pulses,
            seq,
            kind_counts,
        },
    })
}

// ---- top-level API -----------------------------------------------------

/// Captures and serializes the trainer's complete state. Call at an
/// iteration boundary (between [`FaultTolerantTrainer::train`] calls).
pub fn snapshot(trainer: &mut FaultTolerantTrainer) -> Vec<u8> {
    encode(&trainer.export_state())
}

/// Decodes a snapshot and rebuilds a trainer from it: `net` is a template
/// network of the original topology, `mapping`/`flow` the original
/// configs, `recorder` a fresh recorder (attach sinks to capture the
/// continuation's event stream — it picks up the logical clock exactly
/// where the snapshot left it).
///
/// # Errors
///
/// Structural errors from [`decode`], or [`SnapshotError::Invalid`] when
/// the decoded state fails the domain layers' coherence checks.
pub fn resume(
    bytes: &[u8],
    net: Network,
    mapping: MappingConfig,
    flow: FlowConfig,
    recorder: Recorder,
) -> Result<FaultTolerantTrainer, SnapshotError> {
    let state = decode(bytes)?;
    Ok(FaultTolerantTrainer::restore_state(
        net, mapping, flow, recorder, &state,
    )?)
}

/// Like [`resume`], but rebuilds the trainer around an explicit
/// [`FaultStrategy`](ftt_core::strategy::FaultStrategy) implementation —
/// required for the `ftt-strategy` contenders, which `ftt-core` cannot
/// construct from the config alone. The snapshot's recorded strategy id
/// must match both the config selection and the given implementation.
///
/// # Errors
///
/// Structural errors from [`decode`], or [`SnapshotError::Invalid`] when
/// the decoded state fails the domain layers' coherence checks (including
/// a strategy-id mismatch).
pub fn resume_with(
    bytes: &[u8],
    net: Network,
    mapping: MappingConfig,
    flow: FlowConfig,
    recorder: Recorder,
    strategy: Box<dyn ftt_core::strategy::FaultStrategy>,
) -> Result<FaultTolerantTrainer, SnapshotError> {
    let state = decode(bytes)?;
    Ok(FaultTolerantTrainer::restore_state_with(
        net, mapping, flow, recorder, &state, strategy,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftt_core::MappingScope;
    use nn::init::init_rng;
    use nn::optimizer::LrSchedule;
    use nn::synth::SyntheticDataset;
    use rram::endurance::EnduranceModel;

    fn net(seed: u64) -> Network {
        let mut rng = init_rng(seed);
        let mut n = Network::new();
        n.push(nn::layers::Dense::new(784, 12, &mut rng));
        n.push(nn::layers::Relu::new());
        n.push(nn::layers::Dense::new(12, 10, &mut rng));
        n
    }

    fn mapping(seed: u64) -> MappingConfig {
        MappingConfig::new(MappingScope::EntireNetwork)
            .with_initial_fault_fraction(0.15)
            .with_endurance(EnduranceModel::new(40.0, 10.0))
            .with_seed(seed)
            .with_spare_tiles(4)
            .with_retire_fault_density(0.3)
    }

    fn flow() -> FlowConfig {
        FlowConfig::fault_tolerant()
            .with_lr(LrSchedule::constant(0.1))
            .with_detection_interval(5)
            .with_detection_warmup(0)
            .with_eval_interval(5)
            .with_incremental_detection()
    }

    fn traced(seed: u64) -> (FaultTolerantTrainer, obs::JsonlView) {
        let recorder = Recorder::deterministic();
        let sink = obs::JsonlSink::new();
        let view = sink.view();
        recorder.add_sink(Box::new(sink));
        let t =
            FaultTolerantTrainer::with_recorder(net(seed), mapping(seed), flow(), recorder)
                .unwrap();
        (t, view)
    }

    #[test]
    fn encode_decode_roundtrips_exactly() {
        let data = SyntheticDataset::mnist_like(40, 10, 3);
        let (mut trainer, _view) = traced(3);
        trainer.train(&data, 12).unwrap();
        let state = trainer.export_state();
        let bytes = encode(&state);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, state);
        // Byte-determinism: encoding the same state twice is identical.
        assert_eq!(encode(&back), bytes);
    }

    #[test]
    fn resumed_process_continues_byte_identically() {
        let data = SyntheticDataset::mnist_like(40, 10, 3);
        let (mut full, full_view) = traced(3);
        full.train(&data, 23).unwrap();

        let (mut head, head_view) = traced(3);
        head.train(&data, 9).unwrap();
        let bytes = snapshot(&mut head);
        drop(head); // the "process" ends here; only `bytes` survives

        let recorder = Recorder::deterministic();
        let sink = obs::JsonlSink::new();
        let tail_view = sink.view();
        recorder.add_sink(Box::new(sink));
        let mut resumed = resume(&bytes, net(3), mapping(3), flow(), recorder).unwrap();
        resumed.train(&data, 14).unwrap();

        let stitched = format!("{}{}", head_view.contents(), tail_view.contents());
        assert_eq!(stitched, full_view.contents());
        assert_eq!(resumed.stats(), full.stats());
        // Double roundtrip through bytes is stable.
        let s2 = snapshot(&mut resumed);
        let s2_again = encode(&decode(&s2).unwrap());
        assert_eq!(s2, s2_again);
    }

    #[test]
    fn tampered_snapshots_are_rejected_with_typed_errors() {
        let data = SyntheticDataset::mnist_like(40, 10, 3);
        let (mut trainer, _view) = traced(3);
        trainer.train(&data, 6).unwrap();
        let good = snapshot(&mut trainer);

        assert!(matches!(decode(&[]), Err(SnapshotError::Truncated { .. })));

        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(decode(&bad), Err(SnapshotError::BadMagic)));

        let mut bad = good.clone();
        bad[8] = 0xee; // version field
        assert!(matches!(
            decode(&bad),
            Err(SnapshotError::UnsupportedVersion(_))
        ));

        // Any payload bit flip trips the digest.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            decode(&bad),
            Err(SnapshotError::DigestMismatch { .. })
        ));

        let mut bad = good.clone();
        bad.truncate(bad.len() / 2);
        assert!(decode(&bad).is_err());

        // Semantically incoherent but structurally valid: a store whose
        // pending count disagrees with its mask popcount decodes fine and
        // is rejected by domain validation on resume.
        let mut state = decode(&good).unwrap();
        let mut tampered = false;
        for slot in &mut state.mapped.chip.slots {
            if let Some(store) = &mut slot.store {
                store.pending_count += 1;
                tampered = true;
                break;
            }
        }
        assert!(tampered, "incremental flow must have attached a store");
        let bytes = encode(&state);
        assert!(matches!(
            resume(&bytes, net(3), mapping(3), flow(), Recorder::deterministic()),
            Err(SnapshotError::Invalid(_))
        ));
    }

    #[test]
    fn strategy_selection_round_trips_and_unknown_ids_are_rejected() {
        let data = SyntheticDataset::mnist_like(40, 10, 3);
        let (mut trainer, _view) = traced(3);
        trainer.train(&data, 6).unwrap();
        let state = trainer.export_state();
        assert_eq!(state.strategy_id, "detect_remap");
        let good = encode(&state);

        // v2 layout: the strategy id survives the wire round trip.
        assert_eq!(decode(&good).unwrap().strategy_id, "detect_remap");

        // A capture recording a strategy this build does not know is
        // structurally rejected at decode time.
        let mut alien = state.clone();
        alien.strategy_id = "time_travel".into();
        assert!(matches!(
            decode(&encode(&alien)),
            Err(SnapshotError::Malformed(_))
        ));

        // A known id that differs from the restoring configuration is
        // rejected by domain validation: a detect_remap capture cannot
        // silently continue as an unprotected run.
        let mut crossed = state.clone();
        crossed.strategy_id = "noop".into();
        assert!(matches!(
            resume(
                &encode(&crossed),
                net(3),
                mapping(3),
                flow(),
                Recorder::deterministic()
            ),
            Err(SnapshotError::Invalid(_))
        ));

        // And the matching id restores fine.
        assert!(resume(&good, net(3), mapping(3), flow(), Recorder::deterministic()).is_ok());
    }
}

//! **§6.4 re-training count** — how many complete training campaigns an RCS
//! survives before training stops converging.
//!
//! Paper results: with high-endurance cells the original method can train
//! the RCS ~10 times while threshold training manages >150 (its writes are
//! ~6 % of the baseline's); with a 10⁷-endurance technology the original
//! method leaves ~14 % of the cells faulty after the *first* campaign and
//! the second fails, while threshold training still gets ~27 campaigns.
//!
//! Every campaign trains a *new application* (fresh network initialization
//! and a fresh synthetic task) on the same wearing hardware; a campaign
//! fails when its final accuracy drops below 70 % of the fresh-hardware
//! reference.
//!
//! ```text
//! cargo run --release -p ftt-bench --bin endurance_retraining
//! ```

use ftt_bench::{arg_or, write_csv};
use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use ftt_core::flow::FaultTolerantTrainer;
use ftt_core::threshold::ThresholdPolicy;
use nn::init::init_rng;
use nn::layers::{Dense, Relu};
use nn::network::Network;
use nn::optimizer::LrSchedule;
use nn::synth::SyntheticDataset;
use rram::endurance::EnduranceModel;

fn small_net(seed: u64) -> Network {
    let mut rng = init_rng(seed);
    let mut net = Network::new();
    net.push(Dense::new(784, 32, &mut rng));
    net.push(Relu::new());
    net.push(Dense::new(32, 10, &mut rng));
    net
}

/// Runs campaigns until the first failure (or `cap`), returning the number
/// of *successful* campaigns and the faulty fraction after campaign 1.
fn campaigns(
    policy: ThresholdPolicy,
    endurance: EnduranceModel,
    per_campaign: u64,
    cap: u32,
    reference: f64,
) -> (u32, f64) {
    // One persistent trainer = one physical chip; each campaign re-trains
    // it for a new application by reprogramming a fresh network's weights.
    let mapping = MappingConfig::new(MappingScope::EntireNetwork)
        .with_endurance(endurance.with_wearout_sa0_prob(0.8))
        .with_seed(99);
    // Constant learning rate: every campaign trains a brand-new task.
    let mut flow = FlowConfig::original().with_lr(LrSchedule::constant(0.05));
    flow.threshold = policy;
    flow.eval_interval = per_campaign;
    let mut trainer = FaultTolerantTrainer::new(small_net(0), mapping, flow).expect("valid config");
    let mut succeeded = 0u32;
    let mut faulty_after_first = 0.0;
    for campaign in 0..cap {
        // A new application: fresh network initialization and a fresh task.
        if campaign > 0 {
            trainer
                .reprogram_network(small_net(u64::from(campaign)))
                .expect("same topology");
        }
        let data = SyntheticDataset::mnist_like(512, 128, 1000 + u64::from(campaign));
        trainer.train(&data, per_campaign).expect("training");
        let final_acc = trainer.curve().final_accuracy();
        if campaign == 0 {
            faulty_after_first = trainer.mapped().fraction_faulty();
        }
        if final_acc < 0.7 * reference {
            break;
        }
        succeeded += 1;
    }
    (succeeded, faulty_after_first)
}

fn main() {
    let per_campaign = arg_or("--iterations", 1500u64);
    let cap = arg_or("--cap", 40u32);

    // Fresh-hardware reference accuracy.
    let data = SyntheticDataset::mnist_like(512, 128, 1000);
    let mut reference_trainer = FaultTolerantTrainer::new(
        small_net(0),
        MappingConfig::new(MappingScope::EntireNetwork).with_seed(99),
        FlowConfig::original().with_lr(LrSchedule::constant(0.05)),
    )
    .expect("valid config");
    reference_trainer
        .train(&data, per_campaign)
        .expect("training");
    let reference = reference_trainer.curve().final_accuracy();
    println!("# fresh-hardware reference accuracy: {reference:.3}");
    println!("# campaign budget cap: {cap}; {per_campaign} iterations per campaign");
    println!();
    println!("endurance_model, method, successful_campaigns, faulty_after_first_campaign");

    let mut csv = String::from("endurance_model,method,successful_campaigns,faulty_after_first\n");
    // "High endurance": mean = 12 campaigns' worth of unconditional writes
    // (the paper's 1e8 vs 5e6-write campaigns gives a similar small ratio).
    // "Medium endurance" (the paper's 1e7 case): mean = 1.2 campaigns.
    let cases = [
        (
            "high_endurance",
            EnduranceModel::new(12.0 * per_campaign as f64, 3.0 * per_campaign as f64),
        ),
        (
            "medium_endurance",
            EnduranceModel::new(1.2 * per_campaign as f64, 0.35 * per_campaign as f64),
        ),
    ];
    for (label, endurance) in cases {
        for (method, policy) in [
            ("original", ThresholdPolicy::None),
            ("threshold", ThresholdPolicy::paper_default()),
        ] {
            let (n, faulty1) = campaigns(policy, endurance, per_campaign, cap, reference);
            let shown = if n >= cap {
                format!(">={n}")
            } else {
                n.to_string()
            };
            println!("{label}, {method}, {shown}, {faulty1:.3}");
            csv.push_str(&format!("{label},{method},{n},{faulty1:.4}\n"));
        }
    }
    write_csv("endurance_retraining", &csv);
}

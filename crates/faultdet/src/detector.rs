//! The complete quiescent-voltage-comparison detection campaign (Fig. 3).
//!
//! # Parallel comparison sweeps
//!
//! Each test cycle drives one group of `Tr` rows (or `Tc` columns) and reads
//! every output line — a purely read-only pass over a `t × cols` slice of
//! the crossbar's cached conductance plane. Candidate-bearing groups are
//! therefore independent work items, and [`OnlineFaultDetector::kind_pass`]
//! fans them out across the [`par`] worker budget via
//! [`par::map_indices_hinted`] (groups are few but heavy, so the fan-out is
//! gated on total estimated work, not item count). The mutating steps — the
//! `±δ` test writes before the sweep and the restore writes after — stay
//! sequential. Per-group flags are merged back in group order, so the
//! predicted fault map is bit-identical to the sequential sweep at any
//! thread count.

#![deny(clippy::needless_range_loop)]

use rram::adc::Adc;
use rram::crossbar::Crossbar;
use rram::error::RramError;
use rram::fault::{FaultKind, FaultMap};

use crate::localize::FlagSet;
use crate::reference::OffChipStore;
use crate::schedule::groups;
use crate::selected::CandidateMask;

/// Which cells a campaign tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestMode {
    /// Test every cell (§4.1/4.2): simplest, longest, lowest precision.
    AllCells,
    /// Selected-cell testing (§4.3): test SA0 only where the stored level is
    /// ≤ `sa0_max_level` and SA1 only where it is ≥ `sa1_min_level`.
    SelectedCells {
        /// Highest stored level still considered an SA0 candidate.
        sa0_max_level: u16,
        /// Lowest stored level still considered an SA1 candidate.
        sa1_min_level: u16,
    },
}

impl TestMode {
    /// The default selected-cell thresholds for 8-level cells: the bottom
    /// two levels can hide SA0, the top two can hide SA1.
    pub fn default_selected() -> Self {
        TestMode::SelectedCells {
            sa0_max_level: 1,
            sa1_min_level: 6,
        }
    }
}

/// Configuration of one detection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Rows (and columns — the paper sets `Tr = Tc`) driven per test cycle.
    pub test_size: usize,
    /// Test increment in levels (the paper's `δw`; must exceed the write
    /// variation, §4.2).
    pub delta_levels: u16,
    /// Modulo divisor of the ADC comparison (16 in the paper).
    pub modulo_divisor: u32,
    /// All-cells or selected-cells testing.
    pub mode: TestMode,
}

impl DetectorConfig {
    /// Creates an all-cells configuration with the paper's defaults
    /// (`δ = 1` level, mod-16 comparison).
    ///
    /// # Errors
    ///
    /// Returns [`RramError::InvalidConfig`] if `test_size` is zero.
    pub fn new(test_size: usize) -> Result<Self, RramError> {
        if test_size == 0 {
            return Err(RramError::InvalidConfig(
                "test size must be non-zero".into(),
            ));
        }
        Ok(Self {
            test_size,
            delta_levels: 1,
            modulo_divisor: 16,
            mode: TestMode::AllCells,
        })
    }

    /// Switches to selected-cell testing with the default thresholds.
    pub fn with_selected_cells(mut self) -> Self {
        self.mode = TestMode::default_selected();
        self
    }

    /// Sets the test mode explicitly.
    pub fn with_mode(mut self, mode: TestMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the modulo divisor (must be a power of two ≥ 2; validated when
    /// the campaign builds its ADC).
    pub fn with_modulo_divisor(mut self, divisor: u32) -> Self {
        self.modulo_divisor = divisor;
        self
    }

    /// Sets the test increment in levels.
    pub fn with_delta_levels(mut self, delta: u16) -> Self {
        self.delta_levels = delta;
        self
    }
}

/// Result of one detection campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionOutcome {
    /// Predicted fault map (SA0 and SA1 merged; SA0 wins on overlap).
    pub predicted: FaultMap,
    /// Test cycles spent by the SA0 pass (row groups + column groups driven).
    pub sa0_cycles: u64,
    /// Test cycles spent by the SA1 pass.
    pub sa1_cycles: u64,
    /// Effective write pulses issued by the campaign (test writes plus
    /// restore writes) — detection itself wears the array.
    pub write_pulses: u64,
    /// SA0 candidate count (equals the full array in all-cells mode).
    pub sa0_candidates: usize,
    /// SA1 candidate count.
    pub sa1_candidates: usize,
    /// Comparison sweeps that failed and were skipped instead of aborting
    /// the campaign (graceful degradation: the cells covered only by an
    /// untested group may carry undetected faults). 0 on a clean campaign.
    pub untested_groups: u64,
    /// Cells read into the off-chip store by this campaign: the full array
    /// for [`OnlineFaultDetector::run`]'s "Read RRAM Values, Store Off-Chip"
    /// step, only the cells written since the last campaign for
    /// [`OnlineFaultDetector::run_incremental`].
    pub store_read_cells: u64,
    /// The same reads expressed in row-wide read cycles (`⌈cells / cols⌉`).
    pub store_read_cycles: u64,
}

impl DetectionOutcome {
    /// The campaign's total test time in cycles: the snapshot-read cost
    /// plus the comparison sweeps per the paper's §6.1 definition
    /// `T = ⌈Cr/Tr⌉ + ⌈Cc/Tc⌉` (which both kind passes each realize in
    /// all-cells mode), reported as the larger of the two passes.
    pub fn cycles(&self) -> u64 {
        self.sa0_cycles.max(self.sa1_cycles) + self.store_read_cycles
    }
}

/// Cached telemetry handles of an instrumented detector.
///
/// Campaigns may execute on worker threads (the mapped network fans tiles
/// out across the [`par`] budget), so everything here is *commutative*:
/// counter adds and span histograms merge identically in any interleaving.
/// No events are emitted from the detector — the sequential flow spine
/// emits the campaign events.
#[derive(Debug, Clone)]
struct DetectorMetrics {
    recorder: obs::Recorder,
    campaigns: obs::Counter,
    cycles: obs::Counter,
    write_pulses: obs::Counter,
    flagged_cells: obs::Counter,
    untested_groups: obs::Counter,
    candidates: obs::Counter,
}

/// Runs quiescent-voltage-comparison campaigns against a crossbar.
#[derive(Debug, Clone)]
pub struct OnlineFaultDetector {
    config: DetectorConfig,
    metrics: Option<DetectorMetrics>,
}

impl OnlineFaultDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: DetectorConfig) -> Self {
        Self {
            config,
            metrics: None,
        }
    }

    /// Instruments the detector: per-campaign counters
    /// (`faultdet_campaigns_total`, `faultdet_cycles_total`,
    /// `faultdet_write_pulses_total`, `faultdet_flagged_cells_total`,
    /// `faultdet_untested_groups_total`, `faultdet_candidates_total`) and
    /// per-pass sweep-timing spans land in `recorder`'s registry. Only
    /// commutative metrics are touched, so instrumented campaigns remain
    /// bit-identical at any thread count.
    pub fn with_recorder(mut self, recorder: &obs::Recorder) -> Self {
        self.metrics = Some(DetectorMetrics {
            recorder: recorder.clone(),
            campaigns: recorder.counter("faultdet_campaigns_total"),
            cycles: recorder.counter("faultdet_cycles_total"),
            write_pulses: recorder.counter("faultdet_write_pulses_total"),
            flagged_cells: recorder.counter("faultdet_flagged_cells_total"),
            untested_groups: recorder.counter("faultdet_untested_groups_total"),
            candidates: recorder.counter("faultdet_candidates_total"),
        });
        self
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Runs a full campaign: SA0 pass (`+δ`, compare, restore) followed by
    /// the SA1 pass (`−δ`, compare, restore). The crossbar's training state
    /// is recovered up to cells that wore out during the test itself.
    ///
    /// # Errors
    ///
    /// Returns an error for a zero test size or an invalid modulo divisor.
    /// A comparison sweep that fails mid-campaign does **not** abort the
    /// run: the group is counted in
    /// [`DetectionOutcome::untested_groups`] and the campaign continues
    /// with the remaining groups (graceful degradation).
    pub fn run(&self, xbar: &mut Crossbar) -> Result<DetectionOutcome, RramError> {
        if self.config.test_size == 0 {
            // `DetectorConfig` fields are public, so a zero test size is
            // constructible without going through `DetectorConfig::new`.
            return Err(RramError::InvalidConfig(
                "test size must be non-zero".into(),
            ));
        }
        let adc = Adc::new(xbar.levels(), self.config.modulo_divisor)?;
        let store = OffChipStore::read_from(xbar);
        let store_read_cells = (xbar.rows() * xbar.cols()) as u64;
        let (sa0_candidates, sa1_candidates) = match self.config.mode {
            TestMode::AllCells => (
                CandidateMask::all(xbar.rows(), xbar.cols()),
                CandidateMask::all(xbar.rows(), xbar.cols()),
            ),
            TestMode::SelectedCells {
                sa0_max_level,
                sa1_min_level,
            } => (
                CandidateMask::sa0_candidates(&store, sa0_max_level),
                CandidateMask::sa1_candidates(&store, sa1_min_level),
            ),
        };
        let pulses_before = xbar.write_pulses();

        let delta = i32::from(self.config.delta_levels);
        let (sa0_map, sa0_cycles, sa0_untested) = self.kind_pass(
            xbar,
            &store,
            &adc,
            &sa0_candidates,
            FaultKind::StuckAt0,
            delta,
            false,
        )?;
        let (sa1_map, sa1_cycles, sa1_untested) = self.kind_pass(
            xbar,
            &store,
            &adc,
            &sa1_candidates,
            FaultKind::StuckAt1,
            -delta,
            false,
        )?;

        let canvas = FaultMap::healthy(xbar.rows(), xbar.cols());
        let predicted = merge_kind_maps(&sa0_map, &sa1_map, &store, xbar.levels(), canvas);
        let outcome = DetectionOutcome {
            predicted,
            sa0_cycles,
            sa1_cycles,
            write_pulses: xbar.write_pulses() - pulses_before,
            sa0_candidates: sa0_candidates.count(),
            sa1_candidates: sa1_candidates.count(),
            untested_groups: sa0_untested + sa1_untested,
            store_read_cells,
            store_read_cycles: store_read_cells.div_ceil(xbar.cols() as u64),
        };
        self.record_campaign(&outcome);
        Ok(outcome)
    }

    /// Runs an *incremental* campaign against a persistent store created by
    /// [`OffChipStore::attach`]: instead of re-reading the whole array, the
    /// store is brought up to date from the crossbar's dirty-cell journal and
    /// only the cells written since the last campaign (the store's pending
    /// set, intersected with the mode's level predicate) are tested.
    /// Untouched cells keep their verdict from `baseline` — normally the
    /// previous campaign's [`DetectionOutcome::predicted`]; `None` means no
    /// prior verdict (every untested cell is presumed healthy).
    ///
    /// On a freshly attached store (everything pending, no baseline) the
    /// result is identical to [`run`] except for
    /// [`DetectionOutcome::store_read_cells`], which reflects the cheaper
    /// journal-driven read path.
    ///
    /// [`run`]: Self::run
    ///
    /// # Errors
    ///
    /// Returns an error for a zero test size, an invalid modulo divisor, or
    /// a store/baseline whose dimensions do not match the crossbar.
    pub fn run_incremental(
        &self,
        xbar: &mut Crossbar,
        store: &mut OffChipStore,
        baseline: Option<&FaultMap>,
    ) -> Result<DetectionOutcome, RramError> {
        if self.config.test_size == 0 {
            return Err(RramError::InvalidConfig(
                "test size must be non-zero".into(),
            ));
        }
        let adc = Adc::new(xbar.levels(), self.config.modulo_divisor)?;
        if let Some(previous) = baseline {
            if previous.rows() != xbar.rows() || previous.cols() != xbar.cols() {
                return Err(RramError::DimensionMismatch {
                    expected: xbar.rows() * xbar.cols(),
                    actual: previous.rows() * previous.cols(),
                });
            }
        }
        let store_read_cells = store.sync_from(xbar)?;
        store.ensure_aggregates(self.config.test_size);
        let pending =
            CandidateMask::from_mask(xbar.rows(), xbar.cols(), store.pending_mask().to_vec());
        let (sa0_candidates, sa1_candidates) = match self.config.mode {
            TestMode::AllCells => (pending.clone(), pending),
            TestMode::SelectedCells {
                sa0_max_level,
                sa1_min_level,
            } => (
                pending
                    .clone()
                    .restrict_levels(store, |level| level <= sa0_max_level),
                pending.restrict_levels(store, |level| level >= sa1_min_level),
            ),
        };
        store.clear_pending();
        let pulses_before = xbar.write_pulses();

        let delta = i32::from(self.config.delta_levels);
        let (sa0_map, sa0_cycles, sa0_untested) = self.kind_pass(
            xbar,
            store,
            &adc,
            &sa0_candidates,
            FaultKind::StuckAt0,
            delta,
            true,
        )?;
        let (sa1_map, sa1_cycles, sa1_untested) = self.kind_pass(
            xbar,
            store,
            &adc,
            &sa1_candidates,
            FaultKind::StuckAt1,
            -delta,
            true,
        )?;

        // Retested cells get fresh verdicts; everything else carries over.
        let canvas = match baseline {
            Some(previous) => {
                let mut canvas = previous.clone();
                for (r, c) in sa0_candidates.iter() {
                    canvas.set(r, c, None);
                }
                for (r, c) in sa1_candidates.iter() {
                    canvas.set(r, c, None);
                }
                canvas
            }
            None => FaultMap::healthy(xbar.rows(), xbar.cols()),
        };
        let predicted = merge_kind_maps(&sa0_map, &sa1_map, store, xbar.levels(), canvas);

        // The campaign's own nudges and restores are in the journal now;
        // drop the round-tripped ones, keep failed restores pending.
        store.absorb_campaign_writes(xbar)?;

        let outcome = DetectionOutcome {
            predicted,
            sa0_cycles,
            sa1_cycles,
            write_pulses: xbar.write_pulses() - pulses_before,
            sa0_candidates: sa0_candidates.count(),
            sa1_candidates: sa1_candidates.count(),
            untested_groups: sa0_untested + sa1_untested,
            store_read_cells,
            store_read_cycles: store_read_cells.div_ceil(xbar.cols() as u64),
        };
        self.record_campaign(&outcome);
        Ok(outcome)
    }

    fn record_campaign(&self, outcome: &DetectionOutcome) {
        if let Some(m) = &self.metrics {
            m.campaigns.inc();
            m.cycles.add(outcome.cycles());
            m.write_pulses.add(outcome.write_pulses);
            m.flagged_cells.add(outcome.predicted.count_faulty() as u64);
            m.untested_groups.add(outcome.untested_groups);
            m.candidates
                .add((outcome.sa0_candidates + outcome.sa1_candidates) as u64);
        }
    }

    /// One fault-kind pass: write `delta` to the candidates, run the
    /// two-direction comparison, restore, and localize. Returns the
    /// predicted map, the cycles spent, and the number of comparison
    /// sweeps that failed and were skipped (graceful degradation).
    ///
    /// With `cached_refs` the expected group sums come from the store's
    /// incremental aggregates (`expected_*_group_sums_cached`, exact integer
    /// equality with the dense sweep) instead of a dense per-cell delta
    /// vector; the comparison results are identical either way.
    #[allow(clippy::too_many_arguments)]
    fn kind_pass(
        &self,
        xbar: &mut Crossbar,
        store: &OffChipStore,
        adc: &Adc,
        candidates: &CandidateMask,
        kind: FaultKind,
        delta: i32,
        cached_refs: bool,
    ) -> Result<(FaultMap, u64, u64), RramError> {
        let (rows, cols) = (xbar.rows(), xbar.cols());
        let t = self.config.test_size;

        // Step 1 (Fig. 3): write the increment to every candidate cell, and
        // (on the dense path) record the per-cell delta for reference
        // computation.
        let mut deltas = vec![0i32; if cached_refs { 0 } else { rows * cols }];
        for (r, c) in candidates.iter() {
            let _ = xbar.nudge(r, c, delta)?;
            if !cached_refs {
                deltas[r * cols + c] = delta;
            }
        }

        // Steps 2-4: drive row groups, compare all candidate columns. The
        // comparison sweep is read-only, so the candidate-bearing groups fan
        // out across worker threads; each returns the columns it flagged and
        // the flags merge sequentially in group order (bit-identical to the
        // sequential sweep). The dense batched kernels compute every output
        // line's sum — exactly what the hardware's quiescent read produces —
        // but only candidate lines are compared, matching the old per-line
        // loop's predictions.
        let mut flags = FlagSet::new();
        let row_groups: Vec<(usize, std::ops::Range<usize>)> = groups(rows, t)
            .into_iter()
            .enumerate()
            .filter(|(_, group)| candidates.any_in_rows(group.clone()))
            .collect();
        let col_groups: Vec<(usize, std::ops::Range<usize>)> = groups(cols, t)
            .into_iter()
            .enumerate()
            .filter(|(_, group)| candidates.any_in_cols(group.clone()))
            .collect();
        let cycles = (row_groups.len() + col_groups.len()) as u64;
        let mut untested = 0u64;
        {
            // Per-pass sweep timing (histogram only; never the event
            // stream, so wall-clock jitter cannot break determinism).
            let _sweep_span = self.metrics.as_ref().map(|m| {
                m.recorder.span(match kind {
                    FaultKind::StuckAt0 => "faultdet_sweep_sa0",
                    FaultKind::StuckAt1 => "faultdet_sweep_sa1",
                })
            });
            let xbar: &Crossbar = xbar;
            let per_group = par::map_indices_hinted(row_groups.len(), t * cols, |gi| {
                let group = row_groups[gi].1.clone();
                let actual = xbar.column_group_sums(group.clone())?;
                let expected = if cached_refs {
                    store.expected_column_group_sums_cached(group.clone(), candidates, delta)
                } else {
                    store.expected_column_group_sums(group.clone(), &deltas)
                };
                let mut hits = Vec::new();
                for (col, (&sum, &exp)) in actual.iter().zip(&expected).enumerate() {
                    if candidates.column_has_candidate(group.clone(), col)
                        && adc.digitize_mod(sum) != adc.reduce(exp)
                    {
                        hits.push(col);
                    }
                }
                Ok::<_, RramError>(hits)
            });
            for ((g, _), hits) in row_groups.iter().zip(per_group) {
                match hits {
                    Ok(hit_cols) => {
                        for col in hit_cols {
                            flags.flag_row_test(*g, col);
                        }
                    }
                    // Graceful degradation: a failed sweep marks the group
                    // untested and the campaign continues (§4's controller
                    // re-schedules the group on the next periodic test).
                    Err(_) => untested += 1,
                }
            }

            // Repeat in the column direction to derive row information.
            let per_group = par::map_indices_hinted(col_groups.len(), t * rows, |gi| {
                let group = col_groups[gi].1.clone();
                let actual = xbar.row_group_sums(group.clone())?;
                let expected = if cached_refs {
                    store.expected_row_group_sums_cached(group.clone(), candidates, delta)
                } else {
                    store.expected_row_group_sums(group.clone(), &deltas)
                };
                let mut hits = Vec::new();
                for (row, (&sum, &exp)) in actual.iter().zip(&expected).enumerate() {
                    if candidates.row_has_candidate(row, group.clone())
                        && adc.digitize_mod(sum) != adc.reduce(exp)
                    {
                        hits.push(row);
                    }
                }
                Ok::<_, RramError>(hits)
            });
            for ((g, _), hits) in col_groups.iter().zip(per_group) {
                match hits {
                    Ok(hit_rows) => {
                        for row in hit_rows {
                            flags.flag_col_test(*g, row);
                        }
                    }
                    Err(_) => untested += 1,
                }
            }
        }

        // Restore the training weights on the tested cells.
        for (r, c) in candidates.iter() {
            let target = store.stored_level(r, c);
            if xbar.read_level(r, c)? != target {
                let _ = xbar.write_level(r, c, target)?;
            }
        }

        Ok((flags.predict(candidates, kind, t), cycles, untested))
    }
}

/// Merges the two kind passes onto `canvas`, touching only flagged cells
/// (O(flagged), not O(cells)). When both passes flag the same cell the
/// controller disambiguates from the stored read: a stuck-at-0 cell always
/// reads low, a stuck-at-1 cell always reads high.
fn merge_kind_maps(
    sa0_map: &FaultMap,
    sa1_map: &FaultMap,
    store: &OffChipStore,
    levels: u16,
    mut canvas: FaultMap,
) -> FaultMap {
    let mid = (levels - 1) / 2;
    for (r, c, kind) in sa0_map.iter_faulty() {
        canvas.set(r, c, Some(kind));
    }
    for (r, c, kind) in sa1_map.iter_faulty() {
        let resolved = if sa0_map.get(r, c).is_some() {
            if store.stored_level(r, c) <= mid {
                FaultKind::StuckAt0
            } else {
                FaultKind::StuckAt1
            }
        } else {
            kind
        };
        canvas.set(r, c, Some(resolved));
    }
    canvas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::DetectionReport;
    use rram::crossbar::CrossbarBuilder;
    use rram::spatial::SpatialDistribution;

    fn faulty_xbar(n: usize, fraction: f64, seed: u64) -> Crossbar {
        let mut xbar = CrossbarBuilder::new(n, n)
            .initial_faults(SpatialDistribution::Uniform, fraction)
            .seed(seed)
            .build()
            .unwrap();
        // Program a realistic mixed-level state.
        use rand::Rng;
        let mut rng = rram::rng::sim_rng(seed + 1);
        for r in 0..n {
            for c in 0..n {
                let _ = xbar.write_level(r, c, rng.gen_range(0..8)).unwrap();
            }
        }
        xbar
    }

    #[test]
    fn clean_array_produces_no_flags() {
        let mut xbar = faulty_xbar(16, 0.0, 1);
        let detector = OnlineFaultDetector::new(DetectorConfig::new(4).unwrap());
        let outcome = detector.run(&mut xbar).unwrap();
        assert_eq!(outcome.predicted.count_faulty(), 0);
    }

    #[test]
    fn test_restores_training_state() {
        let mut xbar = faulty_xbar(16, 0.05, 2);
        let before = xbar.read_all_levels();
        let detector = OnlineFaultDetector::new(DetectorConfig::new(4).unwrap());
        let _ = detector.run(&mut xbar).unwrap();
        assert_eq!(xbar.read_all_levels(), before, "weights must be recovered");
    }

    #[test]
    fn detection_wears_the_array() {
        let mut xbar = faulty_xbar(16, 0.0, 3);
        let detector = OnlineFaultDetector::new(DetectorConfig::new(4).unwrap());
        let outcome = detector.run(&mut xbar).unwrap();
        assert!(outcome.write_pulses > 0, "test writes consume endurance");
    }

    #[test]
    fn single_cell_test_size_gives_perfect_detection() {
        // Groups of one cell leave no room for aliasing or cross products.
        let mut xbar = faulty_xbar(12, 0.1, 4);
        let truth = xbar.fault_map();
        let detector = OnlineFaultDetector::new(DetectorConfig::new(1).unwrap());
        let outcome = detector.run(&mut xbar).unwrap();
        let report = DetectionReport::evaluate(&truth, &outcome.predicted);
        assert_eq!(report.recall(), 1.0, "no escapes at test size 1");
        assert_eq!(report.precision(), 1.0, "no false positives at test size 1");
    }

    #[test]
    fn recall_stays_high_at_coarse_test_size() {
        let mut xbar = faulty_xbar(64, 0.1, 5);
        let truth = xbar.fault_map();
        let detector = OnlineFaultDetector::new(DetectorConfig::new(32).unwrap());
        let outcome = detector.run(&mut xbar).unwrap();
        let report = DetectionReport::evaluate(&truth, &outcome.predicted);
        assert!(report.recall() > 0.85, "recall {}", report.recall());
        assert!(
            report.precision() < 1.0,
            "coarse groups must cost precision"
        );
    }

    #[test]
    fn selected_mode_improves_precision_at_similar_recall() {
        let (mut a, mut b) = (faulty_xbar(64, 0.1, 6), faulty_xbar(64, 0.1, 6));
        let truth = a.fault_map();
        let all = OnlineFaultDetector::new(DetectorConfig::new(16).unwrap())
            .run(&mut a)
            .unwrap();
        let sel = OnlineFaultDetector::new(DetectorConfig::new(16).unwrap().with_selected_cells())
            .run(&mut b)
            .unwrap();
        let all_report = DetectionReport::evaluate(&truth, &all.predicted);
        let sel_report = DetectionReport::evaluate(&truth, &sel.predicted);
        assert!(
            sel_report.precision() > all_report.precision(),
            "selected {} vs all {}",
            sel_report.precision(),
            all_report.precision()
        );
        assert!(sel_report.recall() > 0.85);
        assert!(sel.sa0_candidates < all.sa0_candidates);
    }

    #[test]
    fn all_cells_cycles_match_paper_formula() {
        let mut xbar = faulty_xbar(64, 0.1, 7);
        let detector = OnlineFaultDetector::new(DetectorConfig::new(8).unwrap());
        let outcome = detector.run(&mut xbar).unwrap();
        // ⌈64/8⌉ + ⌈64/8⌉ = 16 cycles per kind pass.
        assert_eq!(outcome.sa0_cycles, 16);
        assert_eq!(outcome.sa1_cycles, 16);
        // Plus the full-array snapshot read: 64² cells over 64-wide rows.
        assert_eq!(outcome.store_read_cells, 64 * 64);
        assert_eq!(outcome.store_read_cycles, 64);
        assert_eq!(outcome.cycles(), 64 + 16);
    }

    #[test]
    fn selected_mode_reduces_cycles() {
        // All cells at mid level except a few candidates confined to the
        // top-left corner: only those groups need driving.
        let mut xbar = faulty_xbar(64, 0.0, 8);
        for r in 0..64 {
            for c in 0..64 {
                let _ = xbar.write_level(r, c, 4);
            }
        }
        xbar.write_level(0, 0, 0).unwrap();
        xbar.write_level(1, 1, 7).unwrap();
        let sel = OnlineFaultDetector::new(DetectorConfig::new(8).unwrap().with_selected_cells())
            .run(&mut xbar)
            .unwrap();
        // The sweeps shrink below the all-cells 16 cycles; the snapshot
        // charge (64 read cycles) is mode-independent.
        assert!(
            sel.sa0_cycles.max(sel.sa1_cycles) < 16,
            "sweep cycles {}",
            sel.sa0_cycles
        );
        assert!(sel.cycles() < 64 + 16, "cycles {}", sel.cycles());
    }

    #[test]
    fn incremental_matches_full_campaign_on_fresh_store() {
        for config in [
            DetectorConfig::new(8).unwrap(),
            DetectorConfig::new(8).unwrap().with_selected_cells(),
        ] {
            let mut a = faulty_xbar(32, 0.1, 21);
            let mut b = faulty_xbar(32, 0.1, 21);
            let detector = OnlineFaultDetector::new(config);
            let full = detector.run(&mut a).unwrap();
            let mut store = OffChipStore::attach(&mut b);
            let inc = detector.run_incremental(&mut b, &mut store, None).unwrap();
            // Everything pending and no baseline → the incremental campaign
            // is the full campaign, minus the snapshot re-read (attach
            // pre-paid it, and nothing was written since).
            assert_eq!(inc.predicted, full.predicted);
            assert_eq!(inc.sa0_cycles, full.sa0_cycles);
            assert_eq!(inc.sa1_cycles, full.sa1_cycles);
            assert_eq!(inc.write_pulses, full.write_pulses);
            assert_eq!(inc.sa0_candidates, full.sa0_candidates);
            assert_eq!(inc.sa1_candidates, full.sa1_candidates);
            assert_eq!(inc.untested_groups, full.untested_groups);
            assert_eq!(full.store_read_cells, 32 * 32);
            assert_eq!(inc.store_read_cells, 0);
            assert_eq!(
                a.read_all_levels(),
                b.read_all_levels(),
                "both restore identically"
            );
        }
    }

    #[test]
    fn incremental_retests_only_dirty_cells_and_carries_baseline() {
        // Test size 1 localizes exactly, so predictions can be compared to
        // ground truth at every step.
        let mut xbar = faulty_xbar(24, 0.08, 22);
        let truth = xbar.fault_map();
        let detector = OnlineFaultDetector::new(DetectorConfig::new(1).unwrap());
        let mut store = OffChipStore::attach(&mut xbar);
        let first = detector
            .run_incremental(&mut xbar, &mut store, None)
            .unwrap();
        assert_eq!(first.predicted, truth);

        // Sparse traffic between campaigns: a few weight writes and one new
        // hard fault.
        xbar.write_level(0, 0, 5).unwrap();
        xbar.write_level(3, 7, 2).unwrap();
        xbar.nudge(10, 10, 1).unwrap();
        let mut injected = FaultMap::healthy(24, 24);
        injected.set(5, 5, Some(FaultKind::StuckAt1));
        xbar.apply_fault_map(&injected);

        let second = detector
            .run_incremental(&mut xbar, &mut store, Some(&first.predicted))
            .unwrap();
        assert_eq!(
            second.predicted,
            xbar.fault_map(),
            "carried + fresh verdicts = truth"
        );
        assert!(
            second.store_read_cells <= 4,
            "only the written cells are re-read, got {}",
            second.store_read_cells
        );
        assert!(second.sa0_candidates <= 4);
        assert!(
            second.cycles() < first.cycles(),
            "sparse retest must be cheaper: {} vs {}",
            second.cycles(),
            first.cycles()
        );
    }

    #[test]
    fn predictions_are_thread_count_invariant() {
        // The fan-out only changes which worker computes a group, never the
        // comparison values or merge order — any thread count must yield
        // the sequential prediction bit-for-bit.
        let detector = OnlineFaultDetector::new(DetectorConfig::new(16).unwrap());
        let run_with = |threads: usize| {
            par::set_thread_count(threads);
            let mut xbar = faulty_xbar(64, 0.1, 11);
            let out = detector.run(&mut xbar).unwrap();
            par::set_thread_count(0);
            out
        };
        let seq = run_with(1);
        let par4 = run_with(4);
        assert_eq!(seq.predicted, par4.predicted, "fault maps must match");
        assert_eq!(seq.sa0_cycles, par4.sa0_cycles);
        assert_eq!(seq.sa1_cycles, par4.sa1_cycles);
        assert_eq!(seq.write_pulses, par4.write_pulses);
    }

    #[test]
    fn zero_test_size_is_rejected() {
        assert!(DetectorConfig::new(0).is_err());
    }

    #[test]
    fn zero_test_size_literal_errors_instead_of_panicking() {
        // `DetectorConfig` fields are pub, so the constructor's validation
        // can be bypassed; `run` must still surface a typed error.
        let mut xbar = faulty_xbar(8, 0.0, 10);
        let cfg = DetectorConfig {
            test_size: 0,
            delta_levels: 1,
            modulo_divisor: 16,
            mode: TestMode::AllCells,
        };
        let err = OnlineFaultDetector::new(cfg).run(&mut xbar);
        assert!(matches!(err, Err(RramError::InvalidConfig(_))));
    }

    #[test]
    fn clean_campaign_reports_no_untested_groups() {
        let mut xbar = faulty_xbar(16, 0.1, 12);
        let detector = OnlineFaultDetector::new(DetectorConfig::new(4).unwrap());
        let outcome = detector.run(&mut xbar).unwrap();
        assert_eq!(outcome.untested_groups, 0);
    }

    #[test]
    fn bad_modulo_divisor_fails_at_run() {
        let mut xbar = faulty_xbar(8, 0.0, 9);
        let detector =
            OnlineFaultDetector::new(DetectorConfig::new(2).unwrap().with_modulo_divisor(12));
        assert!(detector.run(&mut xbar).is_err());
    }

    /// Every cell at `level`, variation-free — the deterministic substrate
    /// the remainder/aliasing regressions are built on.
    fn uniform_xbar(rows: usize, cols: usize, level: u16) -> Crossbar {
        let mut xbar = CrossbarBuilder::new(rows, cols).build().unwrap();
        for r in 0..rows {
            for c in 0..cols {
                xbar.write_level(r, c, level).unwrap();
            }
        }
        xbar
    }

    #[test]
    fn remainder_groups_are_swept_not_dropped() {
        // Tr = 3 does not divide 10 rows or 7 columns: the campaign must
        // sweep ceil(10/3) + ceil(7/3) = 4 + 3 groups per pass and still
        // find a fault parked in the trailing remainder group.
        for (rows, cols, t) in [(10usize, 7usize, 3usize), (9, 5, 4), (5, 9, 16)] {
            let mut xbar = uniform_xbar(rows, cols, 3);
            let mut injected = FaultMap::healthy(rows, cols);
            injected.set(rows - 1, cols - 1, Some(FaultKind::StuckAt0));
            xbar.apply_fault_map(&injected);

            let detector = OnlineFaultDetector::new(DetectorConfig::new(t).unwrap());
            let outcome = detector.run(&mut xbar).unwrap();
            let expected_cycles = (rows.div_ceil(t) + cols.div_ceil(t)) as u64;
            assert_eq!(
                outcome.sa0_cycles, expected_cycles,
                "{rows}x{cols} t={t}: a remainder group was dropped"
            );
            assert_eq!(
                outcome.predicted.get(rows - 1, cols - 1),
                Some(FaultKind::StuckAt0),
                "{rows}x{cols} t={t}: the remainder-corner fault escaped"
            );
        }
    }

    /// Pins the §4.2 aliasing escape documented at the crate root: failed
    /// increments summing to 0 mod 16 within one tested group are
    /// invisible to the comparison. This is *intended* behavior — the
    /// paper's recall ceiling — and must not silently change.
    #[test]
    fn mod16_aliasing_false_negative_regression() {
        let build_and_run = |divisor: u32| {
            let mut xbar = uniform_xbar(16, 16, 3);
            // 16 SA0 cells in one column of the single 16-row group: the
            // SA0 pass loses exactly 16·δ = 16 levels on that column sum.
            let mut injected = FaultMap::healthy(16, 16);
            for r in 0..16 {
                injected.set(r, 5, Some(FaultKind::StuckAt0));
            }
            xbar.apply_fault_map(&injected);
            let config = DetectorConfig::new(16)
                .unwrap()
                .with_modulo_divisor(divisor);
            OnlineFaultDetector::new(config).run(&mut xbar).unwrap()
        };

        // mod 16: the deviation aliases to 0 — all 16 faults escape.
        let aliased = build_and_run(16);
        assert_eq!(
            aliased.predicted.count_faulty(),
            0,
            "the documented mod-16 false negative disappeared — ADC change?"
        );
        // mod 32: the same deviation is visible — all 16 faults localized.
        let caught = build_and_run(32);
        assert_eq!(caught.predicted.count_faulty(), 16);
        for r in 0..16 {
            assert_eq!(caught.predicted.get(r, 5), Some(FaultKind::StuckAt0));
        }
    }
}

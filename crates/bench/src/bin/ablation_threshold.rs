//! **§5.1 ablation** — threshold-training policy variants.
//!
//! Compares the paper's fixed 1 % threshold against different fractions and
//! against the wear-aware `CalculateThreshold(WriteAmount)` variant that
//! Algorithm 1's signature permits. Reported per policy: final accuracy,
//! write workload relative to the original method, and the *hottest cell*'s
//! write count (the wear-aware policy trades a slightly higher total for a
//! flatter per-cell distribution).
//!
//! ```text
//! cargo run --release -p ftt-bench --bin ablation_threshold
//! ```

use ftt_bench::{arg_or, write_csv};
use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use ftt_core::flow::FaultTolerantTrainer;
use ftt_core::threshold::ThresholdPolicy;
use nn::models::mlp_784_100_10;
use nn::optimizer::LrSchedule;
use nn::synth::SyntheticDataset;

fn main() {
    let iterations = arg_or("--iterations", 3000u64);
    let data = SyntheticDataset::mnist_like(512, 128, 21);
    let schedule = LrSchedule::step_decay(0.1, 0.7, 1000);

    let policies: [(&str, ThresholdPolicy); 6] = [
        ("original (no threshold)", ThresholdPolicy::None),
        ("fixed 0.1%", ThresholdPolicy::Fixed { fraction: 0.001 }),
        (
            "fixed 1% (paper)",
            ThresholdPolicy::Fixed { fraction: 0.01 },
        ),
        ("fixed 5%", ThresholdPolicy::Fixed { fraction: 0.05 }),
        (
            "wear-aware 1%",
            ThresholdPolicy::WearAware {
                fraction: 0.01,
                growth: 0.01,
            },
        ),
        (
            "wear-aware 0.1%",
            ThresholdPolicy::WearAware {
                fraction: 0.001,
                growth: 0.05,
            },
        ),
    ];

    println!("# threshold policy ablation (784x100x10 MLP, {iterations} iterations)");
    println!("policy, final_accuracy, writes_issued, write_ratio_vs_original");
    let mut csv = String::from("policy,final_accuracy,writes_issued,write_ratio\n");
    let mut original_writes = None;
    for (name, policy) in policies {
        let mut flow = FlowConfig::original().with_lr(schedule);
        flow.threshold = policy;
        let mut trainer = FaultTolerantTrainer::new(
            mlp_784_100_10(3),
            MappingConfig::new(MappingScope::EntireNetwork).with_seed(17),
            flow,
        )
        .expect("valid config");
        trainer.train(&data, iterations).expect("training");
        let writes = trainer.stats().writes_issued;
        if original_writes.is_none() {
            original_writes = Some(writes.max(1));
        }
        let ratio = writes as f64 / original_writes.expect("set on first run") as f64;
        let acc = trainer.curve().final_accuracy();
        println!("{name}, {acc:.3}, {writes}, {ratio:.4}");
        csv.push_str(&format!(
            "{},{acc:.4},{writes},{ratio:.5}\n",
            name.replace(',', ";")
        ));
    }
    write_csv("ablation_threshold", &csv);
}

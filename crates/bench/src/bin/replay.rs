//! **Trace replay** — rebuilds metric timelines from an obs JSONL trace.
//!
//! The event stream is the durable record of a run (the snapshot carries
//! the *state*, the trace carries the *history*). This bin re-derives the
//! per-iteration metric timelines — writes issued/skipped, skip fraction,
//! wear faults, detection-campaign cost and accuracy, tile retirements —
//! purely from the trace, without re-running the flow.
//!
//! ```text
//! cargo run --release -p ftt-bench --bin replay -- --trace run.jsonl
//! cargo run --release -p ftt-bench --bin replay            # self-check
//! ```
//!
//! Without `--trace` it records a seeded fault-tolerant run in memory,
//! replays its own trace, and cross-checks the rebuilt totals against the
//! trainer's `FlowStats` — a second, independent proof that the trace is a
//! complete account of the run.

use ftt_bench::{arg_value, write_csv};
use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use ftt_core::flow::FaultTolerantTrainer;
use nn::optimizer::LrSchedule;
use nn::synth::SyntheticDataset;
use obs::json::{extract_f64, extract_str, extract_u64};
use obs::{JsonlSink, Recorder};
use rram::endurance::EnduranceModel;

/// One training iteration's metrics, rebuilt from its events.
#[derive(Debug, Default, Clone, Copy)]
struct IterPoint {
    iteration: u64,
    writes_issued: u64,
    writes_skipped: u64,
    new_wear_faults: u64,
    max_abs_dw: f64,
    cum_pulses: u64,
}

/// One detection campaign's metrics, rebuilt from its end event.
#[derive(Debug, Default, Clone, Copy)]
struct CampaignPoint {
    campaign: u64,
    iteration: u64,
    flagged_cells: u64,
    cycles: u64,
    write_pulses: u64,
    untested_groups: u64,
    precision: f64,
    recall: f64,
}

#[derive(Debug, Default)]
struct Timeline {
    iters: Vec<IterPoint>,
    campaigns: Vec<CampaignPoint>,
    retired_tiles: Vec<(u64, u64)>,  // (iteration, tile)
    spares_attached: Vec<(u64, u64)>, // (iteration, tile)
    remaps: Vec<(u64, u64, u64)>,    // (iteration, initial_cost, final_cost)
    total_wear_faults: u64,
    burst_skipped: u64,
    pulses_by_phase: Vec<(String, u64)>,
    events: u64,
    skipped_lines: u64,
}

impl Timeline {
    fn phase_add(&mut self, phase: &str, pulses: u64) {
        match self.pulses_by_phase.iter_mut().find(|(p, _)| p == phase) {
            Some((_, total)) => *total += pulses,
            None => self.pulses_by_phase.push((phase.to_string(), pulses)),
        }
    }
}

/// Replays one JSONL trace into metric timelines. Lines that are not
/// trace events (missing `kind`) are counted and skipped, not fatal —
/// traces may be interleaved with other log output.
fn replay(trace: &str) -> Timeline {
    let mut t = Timeline::default();
    for line in trace.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (Some(kind), Some(iter)) = (extract_str(line, "kind"), extract_u64(line, "iter"))
        else {
            t.skipped_lines += 1;
            continue;
        };
        t.events += 1;
        match kind.as_str() {
            "training_iteration" => t.iters.push(IterPoint {
                iteration: iter,
                writes_issued: extract_u64(line, "writes_issued").unwrap_or(0),
                writes_skipped: extract_u64(line, "writes_skipped").unwrap_or(0),
                new_wear_faults: extract_u64(line, "new_wear_faults").unwrap_or(0),
                max_abs_dw: extract_f64(line, "max_abs_dw").unwrap_or(0.0),
                cum_pulses: extract_u64(line, "pulses").unwrap_or(0),
            }),
            "threshold_skip_burst" => {
                t.burst_skipped += extract_u64(line, "writes_skipped").unwrap_or(0);
            }
            "detection_campaign_end" => {
                let tp = extract_u64(line, "true_pos").unwrap_or(0);
                let fp = extract_u64(line, "false_pos").unwrap_or(0);
                let fneg = extract_u64(line, "false_neg").unwrap_or(0);
                let ratio = |num: u64, den: u64| {
                    if den == 0 {
                        1.0
                    } else {
                        num as f64 / den as f64
                    }
                };
                t.campaigns.push(CampaignPoint {
                    campaign: extract_u64(line, "campaign").unwrap_or(0),
                    iteration: iter,
                    flagged_cells: extract_u64(line, "flagged_cells").unwrap_or(0),
                    cycles: extract_u64(line, "cycles").unwrap_or(0),
                    write_pulses: extract_u64(line, "write_pulses").unwrap_or(0),
                    untested_groups: extract_u64(line, "untested_groups").unwrap_or(0),
                    precision: ratio(tp, tp + fp),
                    recall: ratio(tp, tp + fneg),
                });
            }
            "remap_applied" => t.remaps.push((
                iter,
                extract_u64(line, "initial_cost").unwrap_or(0),
                extract_u64(line, "final_cost").unwrap_or(0),
            )),
            "wear_fault" => {
                t.total_wear_faults = extract_u64(line, "total_faults").unwrap_or(t.total_wear_faults);
            }
            "write_pulse_batch" => {
                let phase = extract_str(line, "phase").unwrap_or_else(|| "unknown".into());
                t.phase_add(&phase, extract_u64(line, "pulses").unwrap_or(0));
            }
            "tile_retired" => t.retired_tiles.push((iter, extract_u64(line, "tile").unwrap_or(0))),
            "spare_attached" => {
                t.spares_attached.push((iter, extract_u64(line, "tile").unwrap_or(0)));
            }
            _ => {} // campaign starts and future kinds carry no timeline data
        }
    }
    t
}

fn print_timeline(t: &Timeline) -> String {
    let mut csv = String::from("iteration,writes_issued,writes_skipped,new_wear_faults,max_abs_dw,cum_pulses\n");
    println!("# per-iteration timeline (rebuilt from trace)");
    println!("iteration, writes_issued, writes_skipped, new_wear_faults, max_abs_dw, cum_pulses");
    for p in &t.iters {
        println!(
            "{}, {}, {}, {}, {:.6}, {}",
            p.iteration, p.writes_issued, p.writes_skipped, p.new_wear_faults, p.max_abs_dw, p.cum_pulses
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            p.iteration, p.writes_issued, p.writes_skipped, p.new_wear_faults, p.max_abs_dw, p.cum_pulses
        ));
    }
    if !t.campaigns.is_empty() {
        println!();
        println!("# detection campaigns");
        println!("campaign, iteration, flagged, cycles, write_pulses, untested, precision, recall");
        for c in &t.campaigns {
            println!(
                "{}, {}, {}, {}, {}, {}, {:.3}, {:.3}",
                c.campaign, c.iteration, c.flagged_cells, c.cycles, c.write_pulses, c.untested_groups, c.precision, c.recall
            );
        }
    }
    if !t.remaps.is_empty() {
        println!();
        println!("# remaps applied");
        println!("iteration, initial_cost, final_cost");
        for (iter, initial, fin) in &t.remaps {
            println!("{iter}, {initial}, {fin}");
        }
    }
    if !t.retired_tiles.is_empty() || !t.spares_attached.is_empty() {
        println!();
        println!(
            "# sparing: {} tiles retired, {} spares attached",
            t.retired_tiles.len(),
            t.spares_attached.len()
        );
    }
    println!();
    println!("# totals");
    let issued: u64 = t.iters.iter().map(|p| p.writes_issued).sum();
    let skipped: u64 = t.iters.iter().map(|p| p.writes_skipped).sum();
    println!("events_replayed, {}", t.events);
    println!("iterations, {}", t.iters.len());
    println!("writes_issued, {issued}");
    println!("writes_skipped, {skipped}");
    println!("skip_burst_suppressed, {}", t.burst_skipped);
    println!("wear_faults, {}", t.total_wear_faults);
    for (phase, pulses) in &t.pulses_by_phase {
        println!("pulses_{phase}, {pulses}");
    }
    if t.skipped_lines > 0 {
        println!("non_event_lines_skipped, {}", t.skipped_lines);
    }
    csv
}

/// Records a seeded fault-tolerant run and returns its trace plus the
/// trainer's own aggregate stats for cross-checking.
fn record_demo_run() -> (String, ftt_core::report::FlowStats) {
    let seed = 11;
    let mut rng = nn::init::init_rng(seed);
    let mut net = nn::network::Network::new();
    net.push(nn::layers::Dense::new(784, 12, &mut rng));
    net.push(nn::layers::Relu::new());
    net.push(nn::layers::Dense::new(12, 10, &mut rng));
    let mapping = MappingConfig::new(MappingScope::EntireNetwork)
        .with_initial_fault_fraction(0.15)
        .with_endurance(EnduranceModel::new(40.0, 10.0))
        .with_seed(seed)
        .with_spare_tiles(4)
        .with_retire_fault_density(0.3);
    let flow = FlowConfig::fault_tolerant()
        .with_lr(LrSchedule::constant(0.1))
        .with_detection_interval(5)
        .with_detection_warmup(0)
        .with_eval_interval(5);
    let recorder = Recorder::deterministic();
    let sink = JsonlSink::new();
    let view = sink.view();
    recorder.add_sink(Box::new(sink));
    let mut trainer = FaultTolerantTrainer::with_recorder(net, mapping, flow, recorder)
        .expect("valid demo configuration");
    let data = SyntheticDataset::mnist_like(40, 10, seed);
    trainer.train(&data, 25).expect("demo training run");
    (view.contents(), trainer.stats())
}

fn main() {
    let (trace, check) = match arg_value("--trace") {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(contents) => (contents, None),
            Err(e) => {
                eprintln!("cannot read trace {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            println!("# no --trace given: recording a seeded demo run and replaying its trace");
            let (trace, stats) = record_demo_run();
            (trace, Some(stats))
        }
    };

    let timeline = replay(&trace);
    let csv = print_timeline(&timeline);
    write_csv("replay", &csv);

    // Self-check: the trace must be a complete account of the run.
    if let Some(stats) = check {
        let issued: u64 = timeline.iters.iter().map(|p| p.writes_issued).sum();
        let skipped: u64 = timeline.iters.iter().map(|p| p.writes_skipped).sum();
        let mut ok = true;
        if issued != stats.writes_issued {
            eprintln!(
                "MISMATCH writes_issued: trace {issued} vs trainer {}",
                stats.writes_issued
            );
            ok = false;
        }
        if skipped != stats.writes_skipped {
            eprintln!(
                "MISMATCH writes_skipped: trace {skipped} vs trainer {}",
                stats.writes_skipped
            );
            ok = false;
        }
        if timeline.total_wear_faults != stats.wear_faults_during_training {
            eprintln!(
                "MISMATCH wear_faults: trace {} vs trainer {}",
                timeline.total_wear_faults, stats.wear_faults_during_training
            );
            ok = false;
        }
        if timeline.campaigns.len() as u64 != stats.detection_campaigns {
            eprintln!(
                "MISMATCH campaigns: trace {} vs trainer {}",
                timeline.campaigns.len(),
                stats.detection_campaigns
            );
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!();
        println!("self-check PASS: replayed totals match the trainer's FlowStats");
    }
}

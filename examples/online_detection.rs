//! On-line fault detection walkthrough (§4 of the paper).
//!
//! Injects 10 % stuck-at faults into a 128×128 crossbar and sweeps the test
//! size of the quiescent-voltage comparison, printing the test-time /
//! precision / recall trade-off (the Fig. 6 phenomenon), then demonstrates
//! the selected-cell improvement (§4.3).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example online_detection
//! ```

use faultdet::detector::{DetectorConfig, OnlineFaultDetector};
use faultdet::metrics::DetectionReport;
use rand::Rng;
use rram::crossbar::{Crossbar, CrossbarBuilder};
use rram::spatial::SpatialDistribution;

fn make_crossbar(seed: u64) -> Result<Crossbar, rram::RramError> {
    let mut xbar = CrossbarBuilder::new(128, 128)
        .initial_faults(SpatialDistribution::default_clusters(), 0.10)
        .seed(seed)
        .build()?;
    // Program a realistic spread of trained levels.
    let mut rng = rram::rng::sim_rng(seed + 999);
    for r in 0..128 {
        for c in 0..128 {
            let _ = xbar.write_level(r, c, rng.gen_range(0..8))?;
        }
    }
    Ok(xbar)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== test-size sweep on a 128x128 crossbar, 10% clustered faults ==");
    println!("test_size, cycles, precision, recall");
    for test_size in [64, 32, 16, 8, 4, 2, 1] {
        let mut xbar = make_crossbar(3)?;
        let truth = xbar.fault_map();
        let detector = OnlineFaultDetector::new(DetectorConfig::new(test_size)?);
        let outcome = detector.run(&mut xbar)?;
        let report = DetectionReport::evaluate(&truth, &outcome.predicted);
        println!(
            "{test_size}, {}, {:.3}, {:.3}",
            outcome.cycles(),
            report.precision(),
            report.recall()
        );
    }

    println!();
    println!("== all-cells vs selected-cells at test size 16 ==");
    for (label, config) in [
        ("all cells", DetectorConfig::new(16)?),
        (
            "selected cells",
            DetectorConfig::new(16)?.with_selected_cells(),
        ),
    ] {
        let mut xbar = make_crossbar(3)?;
        let truth = xbar.fault_map();
        let outcome = OnlineFaultDetector::new(config).run(&mut xbar)?;
        let report = DetectionReport::evaluate(&truth, &outcome.predicted);
        println!(
            "{label}: cycles {}, precision {:.3}, recall {:.3}, test writes {}",
            outcome.cycles(),
            report.precision(),
            report.recall(),
            outcome.write_pulses
        );
    }

    println!();
    println!("== modulo-divisor ablation at test size 32 (coarser = more escapes) ==");
    println!("divisor, recall");
    for divisor in [2u32, 4, 8, 16, 32] {
        let mut xbar = make_crossbar(5)?;
        let truth = xbar.fault_map();
        let outcome =
            OnlineFaultDetector::new(DetectorConfig::new(32)?.with_modulo_divisor(divisor))
                .run(&mut xbar)?;
        let report = DetectionReport::evaluate(&truth, &outcome.predicted);
        println!("{divisor}, {:.3}", report.recall());
    }
    Ok(())
}

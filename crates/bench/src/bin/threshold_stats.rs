//! **§5.1 claims** — the three quantitative properties of threshold
//! training:
//!
//! * `--what dw-dist`   — ~90 % of per-iteration `δw` fall below
//!   `0.01 · max|δw|` (measured as the suppressed-write fraction).
//! * `--what lifetime`  — write pulses drop to a few percent of the
//!   original method's, extending mean cell lifetime ~15×.
//! * `--what iterations`— iterations-to-accuracy grow only ~1.2×.
//!
//! Default runs all three on both benchmark networks.
//!
//! ```text
//! cargo run --release -p ftt-bench --bin threshold_stats
//! ```

use ftt_bench::{arg_or, arg_value, write_csv};
use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use ftt_core::flow::FaultTolerantTrainer;
use nn::data::Dataset;
use nn::models::{mlp_784_100_10, vgg11_cifar};
use nn::network::Network;
use nn::optimizer::LrSchedule;
use nn::synth::SyntheticDataset;

struct Bench {
    name: &'static str,
    net: Box<dyn Fn() -> Network>,
    data: Dataset,
    lr: LrSchedule,
    iterations: u64,
}

fn benches(iterations: u64) -> Vec<Bench> {
    vec![
        Bench {
            name: "mnist_784_100_10",
            net: Box::new(|| mlp_784_100_10(3)),
            data: SyntheticDataset::mnist_like(512, 128, 21),
            lr: LrSchedule::step_decay(0.1, 0.7, 1000),
            iterations,
        },
        Bench {
            name: "vgg11_cifar",
            net: Box::new(|| vgg11_cifar(8, 3)),
            data: SyntheticDataset::cifar_like(512, 128, 21),
            lr: LrSchedule::step_decay(0.01, 0.7, 1500),
            iterations,
        },
    ]
}

fn run(bench: &Bench, flow: FlowConfig) -> FaultTolerantTrainer {
    let mapping = MappingConfig::new(MappingScope::EntireNetwork).with_seed(17);
    let mut trainer =
        FaultTolerantTrainer::new((bench.net)(), mapping, flow).expect("valid config");
    trainer
        .train(&bench.data, bench.iterations)
        .expect("training run");
    trainer
}

fn dw_distribution(benches: &[Bench], csv: &mut String) {
    println!("# δw distribution: fraction of updates below 0.01·max|δw| (paper: ~90%)");
    println!("network, suppressed_fraction");
    for bench in benches {
        let trainer = run(bench, FlowConfig::threshold_only().with_lr(bench.lr));
        let frac = trainer.stats().skipped_fraction();
        println!("{}, {frac:.3}", bench.name);
        csv.push_str(&format!("dw_dist,{},{frac:.4}\n", bench.name));
    }
}

fn lifetime(benches: &[Bench], csv: &mut String) {
    println!();
    println!("# write workload: threshold vs original (paper: writes drop to ~6%, lifetime ~15x)");
    println!(
        "network, original_writes, threshold_writes, write_ratio, lifetime_factor, energy_saved"
    );
    let energy_model = rram::energy::EnergyModel::typical();
    for bench in benches {
        let orig = run(bench, FlowConfig::original().with_lr(bench.lr));
        let thr = run(bench, FlowConfig::threshold_only().with_lr(bench.lr));
        let ow = orig.stats().writes_issued.max(1);
        let tw = thr.stats().writes_issued.max(1);
        let ratio = tw as f64 / ow as f64;
        let orig_energy = orig.stats().energy(&energy_model).total_uj();
        let thr_energy = thr.stats().energy(&energy_model).total_uj();
        let saved = 1.0 - thr_energy / orig_energy;
        println!(
            "{}, {ow}, {tw}, {:.3}, {:.1}x, {:.0}%",
            bench.name,
            ratio,
            1.0 / ratio,
            100.0 * saved
        );
        csv.push_str(&format!(
            "lifetime,{},{:.4},{:.2}\n",
            bench.name,
            ratio,
            1.0 / ratio
        ));
    }
}

fn iterations_to_accuracy(benches: &[Bench], csv: &mut String) {
    println!();
    println!("# iterations to reach the original method's 90%-of-final accuracy (paper: ~1.2x)");
    println!("network, target_accuracy, original_iters, threshold_iters, ratio");
    for bench in benches {
        let orig = run(bench, FlowConfig::original().with_lr(bench.lr));
        let thr = run(bench, FlowConfig::threshold_only().with_lr(bench.lr));
        let target = 0.9 * orig.curve().final_accuracy();
        let first_reach = |t: &FaultTolerantTrainer| {
            t.curve()
                .points()
                .iter()
                .find(|p| p.test_accuracy >= target)
                .map(|p| p.iteration)
        };
        match (first_reach(&orig), first_reach(&thr)) {
            (Some(oi), Some(ti)) => {
                let ratio = ti as f64 / oi as f64;
                println!("{}, {target:.3}, {oi}, {ti}, {ratio:.2}x", bench.name);
                csv.push_str(&format!("iterations,{},{oi},{ti},{ratio:.3}\n", bench.name));
            }
            _ => println!(
                "{}, {target:.3}, (target not reached within budget)",
                bench.name
            ),
        }
    }
}

fn main() {
    let what = arg_value("--what").unwrap_or_else(|| "all".into());
    let iterations = arg_or("--iterations", 3000u64);
    let benches = benches(iterations);
    let mut csv = String::from("experiment,network,value1,value2\n");
    if what == "all" || what == "dw-dist" {
        dw_distribution(&benches, &mut csv);
    }
    if what == "all" || what == "lifetime" {
        lifetime(&benches, &mut csv);
    }
    if what == "all" || what == "iterations" {
        iterations_to_accuracy(&benches, &mut csv);
    }
    write_csv("threshold_stats", &csv);
}

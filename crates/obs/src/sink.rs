//! Event sinks: where the typed event stream goes.
//!
//! A [`Recorder`](crate::recorder::Recorder) fans every emitted
//! [`TimedEvent`] out to its attached sinks. Sinks are deliberately dumb:
//! they receive fully-stamped events in emission order and store or
//! serialize them. Two built-ins cover the workspace's needs:
//!
//! * [`RingSink`] — bounded in-memory buffer (most recent N events) for
//!   tests and post-mortem inspection;
//! * [`JsonlSink`] — append-only JSON-Lines text, one event per line, for
//!   export and the byte-identity chaos checks.
//!
//! Both hand out `Arc`-shared views so callers can keep reading after the
//! sink has been moved into the recorder.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::event::TimedEvent;

/// A consumer of the event stream. Called from the emitting thread, in
/// emission order (the recorder serializes calls).
pub trait EventSink: Send {
    /// Receives one stamped event.
    fn record(&mut self, event: &TimedEvent);

    /// Flushes any buffered output. Default: no-op.
    fn flush(&mut self) {}
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned sink buffer is still structurally valid; telemetry must
    // never take the process down.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Bounded in-memory event buffer keeping the most recent `capacity`
/// events.
#[derive(Debug)]
pub struct RingSink {
    buf: Arc<Mutex<VecDeque<TimedEvent>>>,
    capacity: usize,
}

impl RingSink {
    /// A ring holding at most `capacity` events (capacity 0 stores none).
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: Arc::new(Mutex::new(VecDeque::new())),
            capacity,
        }
    }

    /// A shared view that stays readable after the sink is attached.
    pub fn view(&self) -> RingView {
        RingView {
            buf: Arc::clone(&self.buf),
        }
    }
}

impl EventSink for RingSink {
    fn record(&mut self, event: &TimedEvent) {
        if self.capacity == 0 {
            return;
        }
        let mut buf = lock_ignoring_poison(&self.buf);
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Read handle to a [`RingSink`]'s buffer.
#[derive(Debug, Clone)]
pub struct RingView {
    buf: Arc<Mutex<VecDeque<TimedEvent>>>,
}

impl RingView {
    /// Copies out the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TimedEvent> {
        lock_ignoring_poison(&self.buf).iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        lock_ignoring_poison(&self.buf).len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Append-only JSON-Lines sink: one [`TimedEvent::to_json`] object per
/// line, `\n`-terminated.
#[derive(Debug, Default)]
pub struct JsonlSink {
    text: Arc<Mutex<String>>,
}

impl JsonlSink {
    /// An empty JSONL sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared view that stays readable after the sink is attached.
    pub fn view(&self) -> JsonlView {
        JsonlView {
            text: Arc::clone(&self.text),
        }
    }
}

impl EventSink for JsonlSink {
    fn record(&mut self, event: &TimedEvent) {
        let mut text = lock_ignoring_poison(&self.text);
        text.push_str(&event.to_json());
        text.push('\n');
    }
}

/// Read handle to a [`JsonlSink`]'s accumulated text.
#[derive(Debug, Clone)]
pub struct JsonlView {
    text: Arc<Mutex<String>>,
}

impl JsonlView {
    /// The accumulated JSONL text (possibly empty).
    pub fn contents(&self) -> String {
        lock_ignoring_poison(&self.text).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, LogicalTime};

    fn ev(seq: u64) -> TimedEvent {
        TimedEvent {
            at: LogicalTime {
                iteration: 1,
                write_pulses: 2,
                seq,
            },
            event: Event::WearFault {
                new_faults: 1,
                total_faults: 9,
            },
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut sink = RingSink::new(2);
        let view = sink.view();
        for s in 0..5 {
            sink.record(&ev(s));
        }
        let snap = view.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].at.seq, 3);
        assert_eq!(snap[1].at.seq, 4);
    }

    #[test]
    fn zero_capacity_ring_stores_nothing() {
        let mut sink = RingSink::new(0);
        let view = sink.view();
        sink.record(&ev(0));
        assert!(view.is_empty());
    }

    #[test]
    fn jsonl_appends_one_line_per_event() {
        let mut sink = JsonlSink::new();
        let view = sink.view();
        sink.record(&ev(0));
        sink.record(&ev(1));
        let text = view.contents();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"kind\":\"wear_fault\""));
        }
    }
}

//! # ftt-lint — workspace static-analysis gate
//!
//! A zero-dependency, token-level Rust source analyzer that turns the
//! workspace's written conventions — the panic policy (DESIGN.md §8),
//! the determinism contract (§6/§9), float-comparison discipline, unsafe
//! audits, the obs naming grammar (§9), and workspace-manifest hygiene —
//! into a machine-checked gate. See DESIGN.md §10 for the check catalog
//! and the annotation grammar (`PANIC-OK:` / `CAST-OK:` / `SAFETY:`).
//!
//! Run it as `cargo run -p ftt-lint` (or `just lint`). Findings are
//! rendered as human diagnostics with `file:line` spans and — with
//! `--json` — as a deterministic, sorted, machine-readable report that
//! is byte-identical across repeated runs regardless of environment
//! (the linter never reads the clock, the thread budget, or anything
//! else nondeterministic).
//!
//! ## Architecture
//!
//! * [`lexer`] — a string/char/comment/attribute-aware token scanner
//!   (no full parse); comments are a side channel so annotation markers
//!   are never confused with code.
//! * [`model`] — workspace discovery (member list from the root
//!   manifest), per-file scans, and scope analysis (`#[cfg(test)]`
//!   ranges, panic-`#[allow]` ranges).
//! * [`checks`] — the pluggable [`checks::Check`] catalog: P1 panic
//!   policy, D1 determinism, F1 float soundness, S1 unsafe audit, O1
//!   obs naming, W1 workspace consistency.
//! * [`config`] — `lint.toml` (minimal TOML subset, zero deps).
//! * [`diag`] — sorted findings, JSON + human renderers.

#![warn(missing_docs)]
// Test code is exempt from the panic policy (DESIGN.md §8.1): the deny
// applies only to the shipped library, matching the `--lib` clippy gate.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod baseline;
pub mod checks;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod model;
pub mod model2;
mod stale;

use std::path::Path;

use config::Config;
use diag::{Finding, Report};
use model::Workspace;

/// A fatal error (I/O or config syntax) — distinct from findings.
#[derive(Debug)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ftt-lint: {}", self.0)
    }
}

/// Run the full check catalog over the workspace rooted at `root`,
/// configured by the `lint.toml` at `config_path` (defaults to
/// `<root>/lint.toml`). A missing config file is a hard error: the gate
/// must not silently run unconfigured.
pub fn run(root: &Path, config_path: Option<&Path>) -> Result<Report, Error> {
    let cfg_file = config_path
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| root.join("lint.toml"));
    let cfg_text = std::fs::read_to_string(&cfg_file)
        .map_err(|e| Error(format!("cannot read config {}: {e}", cfg_file.display())))?;
    let cfg = Config::parse(&cfg_text).map_err(|e| Error(e.to_string()))?;
    run_with_config(root, &cfg)
}

/// [`run`] with an already-parsed configuration.
pub fn run_with_config(root: &Path, cfg: &Config) -> Result<Report, Error> {
    let mut exclude = cfg.list("lint", "exclude");
    exclude.push("target".to_string());

    let ws = Workspace::load(root, &exclude).map_err(|e| Error(e.to_string()))?;
    let catalog = checks::catalog();

    // Phase 1: the workspace semantic model (items, fn boundaries, use
    // graph, approximate call graph). Phase 2: every check, in catalog
    // order — per-file passes, then the workspace pass, then the
    // semantic pass.
    let model = model2::SemanticModel::build(&ws);

    let mut findings: Vec<Finding> = Vec::new();
    for check in &catalog {
        for file in &ws.files {
            check.check_file(file, cfg, &mut findings);
        }
        check.check_workspace(&ws, cfg, &mut findings);
        check.check_semantic(&ws, &model, cfg, &mut findings);
    }
    let warnings = stale::stale_suppressions(root, &ws, &model, cfg, &catalog, &findings);
    let ids: Vec<&'static str> = catalog.iter().map(|c| c.id()).collect();
    Ok(Report::with_warnings(
        findings,
        warnings,
        ws.files.len(),
        ids,
    ))
}

/// Locate the workspace root by walking up from `start` until a
/// `Cargo.toml` containing a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

/// Test-only helpers shared by the check unit tests.
#[cfg(test)]
pub(crate) mod testsupport {
    use crate::model::{FileRole, SourceFile};

    /// Build an analyzed library [`SourceFile`] from inline source.
    pub fn lib_file(rel_path: &str, crate_name: &str, src: &str) -> SourceFile {
        let scan = crate::lexer::scan(src);
        let (test_scopes, panic_allow_scopes) = analyze(&scan);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: Some(crate_name.to_string()),
            role: FileRole::Lib,
            scan,
            test_scopes,
            panic_allow_scopes,
        }
    }

    // Re-derive scopes the same way model::load does (the function is
    // private there; duplicating three lines keeps the test seam thin).
    fn analyze(
        scan: &crate::lexer::Scan,
    ) -> (Vec<crate::model::Scope>, Vec<(crate::model::Scope, usize)>) {
        crate::model::analyze_scopes_for_tests(scan)
    }
}

//! `lint.toml` — policy configuration for the workspace lint pass.
//!
//! The linter is zero-dependency, so this module carries a minimal TOML
//! *subset* parser sufficient for its own config grammar:
//!
//! ```toml
//! [lint]
//! exclude = ["crates/shims", "crates/lint/tests/fixtures"]
//!
//! [checks.D1]
//! crates = ["rram", "nn"]
//! allow = ["crates/bench"]
//! ```
//!
//! Supported syntax: `[section]` / `[a.b]` headers, `key = "string"`,
//! `key = true|false`, `key = 123`, and `key = ["a", "b"]` arrays
//! (single-line or spanning lines), with `#` comments. Anything else is
//! a hard error — config typos must fail loudly, not silently relax a
//! policy.

use std::collections::BTreeMap;

/// A parsed configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// An array of strings (the only array element type the grammar
    /// needs).
    List(Vec<String>),
}

/// Parsed config: `section -> key -> value`, with deterministic
/// (sorted) iteration because both maps are B-trees.
#[derive(Debug, Clone, Default)]
pub struct Config {
    sections: BTreeMap<String, BTreeMap<String, Value>>,
}

/// A config-file syntax error with its 1-based line.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line where parsing failed.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl Config {
    /// Parse the supported TOML subset.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();

        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unterminated section header: {raw:?}"),
                    });
                };
                section = name.trim().to_string();
                cfg.sections.entry(section.clone()).or_default();
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value`, got {raw:?}"),
                });
            };
            let key = line[..eq].trim().to_string();
            let mut rhs = line[eq + 1..].trim().to_string();
            // Multi-line arrays: accumulate until the brackets balance.
            while rhs.starts_with('[') && !array_closed(&rhs) {
                let Some((_, next)) = lines.next() else {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unterminated array for key {key:?}"),
                    });
                };
                rhs.push(' ');
                rhs.push_str(strip_comment(next).trim());
            }
            let value = parse_value(&rhs).map_err(|message| ConfigError {
                line: lineno,
                message,
            })?;
            cfg.sections
                .entry(section.clone())
                .or_default()
                .insert(key, value);
        }
        Ok(cfg)
    }

    /// String list at `[section] key`, or empty when absent.
    pub fn list(&self, section: &str, key: &str) -> Vec<String> {
        match self.sections.get(section).and_then(|s| s.get(key)) {
            Some(Value::List(v)) => v.clone(),
            Some(Value::Str(s)) => vec![s.clone()],
            _ => Vec::new(),
        }
    }

    /// Bool at `[section] key`, or `default` when absent.
    pub fn bool(&self, section: &str, key: &str, default: bool) -> bool {
        match self.sections.get(section).and_then(|s| s.get(key)) {
            Some(Value::Bool(b)) => *b,
            _ => default,
        }
    }

    /// Integer at `[section] key`, or `default` when absent.
    pub fn int(&self, section: &str, key: &str, default: i64) -> i64 {
        match self.sections.get(section).and_then(|s| s.get(key)) {
            Some(Value::Int(i)) => *i,
            _ => default,
        }
    }

    /// String at `[section] key`, or `None`.
    pub fn str(&self, section: &str, key: &str) -> Option<String> {
        match self.sections.get(section).and_then(|s| s.get(key)) {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        }
    }

    /// A copy of this config with `[section] key` removed — used for
    /// shadow runs that re-check suppressed files to detect stale
    /// `allow` entries.
    pub fn without_key(&self, section: &str, key: &str) -> Config {
        let mut cfg = self.clone();
        if let Some(s) = cfg.sections.get_mut(section) {
            s.remove(key);
        }
        cfg
    }
}

/// True when every `[` in `rhs` has its matching `]` (string-aware).
fn array_closed(rhs: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    for c in rhs.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

/// Remove a `#` comment (string-aware).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(rhs: &str) -> Result<Value, String> {
    let rhs = rhs.trim();
    if rhs == "true" {
        return Ok(Value::Bool(true));
    }
    if rhs == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = rhs.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(format!("unterminated array: {rhs:?}"));
        };
        let mut items = Vec::new();
        for part in split_array(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(s) => items.push(s),
                other => return Err(format!("arrays may only hold strings, got {other:?}")),
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(body) = rhs.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(format!("unterminated string: {rhs:?}"));
        };
        return Ok(Value::Str(body.replace("\\\"", "\"").replace("\\\\", "\\")));
    }
    if let Ok(i) = rhs.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    Err(format!("unsupported value syntax: {rhs:?}"))
}

/// Split an array body on commas outside strings.
fn split_array(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_arrays() {
        let cfg = Config::parse(
            r#"
# top comment
[lint]
exclude = ["a/b", "c"]  # trailing comment

[checks.D1]
crates = [
    "rram",
    "nn",
]
allow_zero_eq = true
lookback = 5
name = "x"
"#,
        )
        .expect("parses");
        assert_eq!(cfg.list("lint", "exclude"), vec!["a/b", "c"]);
        assert_eq!(cfg.list("checks.D1", "crates"), vec!["rram", "nn"]);
        assert!(cfg.bool("checks.D1", "allow_zero_eq", false));
        assert_eq!(cfg.int("checks.D1", "lookback", 0), 5);
        assert_eq!(cfg.str("checks.D1", "name").as_deref(), Some("x"));
        assert!(cfg.list("missing", "key").is_empty());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Config::parse("[unclosed").is_err());
        assert!(Config::parse("novalue").is_err());
        assert!(Config::parse("k = [1, 2]").is_err());
        assert!(Config::parse("k = nope").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("k = \"a#b\"").expect("parses");
        assert_eq!(cfg.str("", "k").as_deref(), Some("a#b"));
    }
}

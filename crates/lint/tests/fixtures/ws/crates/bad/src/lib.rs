//! The violation crate: one *positive* (failing) case per check.

use std::collections::HashMap; // D1: unordered collection
use std::time::Instant; // D1: wall clock

/// P1: bare unwrap, no justification.
pub fn p1_unwrap(x: Option<u8>) -> u8 {
    x.unwrap()
}

/// P1: panic-lint allow without a PANIC-OK reason.
#[allow(clippy::expect_used)]
pub fn p1_allow(x: Option<u8>) -> u8 {
    x.expect("boom")
}

/// D1: unscoped spawn; also exercises the banned imports above.
pub fn d1_spawn(map: HashMap<u8, u8>) -> usize {
    let t = Instant::now();
    std::thread::spawn(move || map.len());
    t.elapsed().as_nanos() as usize
}

/// F1: equality against a non-zero float literal, and a NaN compare.
pub fn f1_eq(x: f64) -> bool {
    x == 1.0 || x != f64::NAN
}

/// F1: unannotated narrowing cast on a cast_path file.
pub fn f1_cast(g: f64) -> f32 {
    g as f32
}

/// S1: unsafe without a SAFETY comment.
pub fn s1_unsafe(p: *const u8) -> u8 {
    unsafe { *p }
}

/// O1: registry name violating the snake_case grammar.
pub fn o1_name(r: &dyn Registrar) {
    r.counter("Bad-Name__total");
}

/// Minimal registrar shape so the fixture stays self-contained.
pub trait Registrar {
    /// Register a counter.
    fn counter(&self, name: &str);
    /// Register a labeled counter.
    fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]);
}

/// C1: the closure crossing the `par` boundary mutates a captured
/// binding and builds an RNG with no per-index salt.
pub fn c1_racy(n: usize, seed: u64) -> usize {
    let mut total = 0usize;
    par::map_indices(n, |i| {
        total += i;
        let _rng = sim_rng(seed);
        i
    });
    total
}

/// O2: `NeverEmitted` has no emitter anywhere outside this crate.
pub enum Event {
    /// Emitted by the good crate.
    Used(u64),
    /// Dead schema entry.
    NeverEmitted,
}

/// R1 root: reaches an unjustified panic site two hops down.
pub fn resume() {
    r1_helper();
}

fn r1_helper() {
    r1_deep();
}

fn r1_deep() {
    let v: Option<u8> = None;
    let _ = v.unwrap();
}

/// E2: the outcome's cost never reaches a FlowStats sink.
pub struct DetectionOutcome;

/// E2 producer.
pub fn e2_detect() -> DetectionOutcome {
    DetectionOutcome
}

/// E2: a caller exists (so the producer is not a library leaf) but it
/// never feeds the accounting.
pub fn e2_driver() {
    let _ = e2_detect();
}

/// O1: labeled-constructor label key violating the grammar.
pub fn o1_label(r: &dyn Registrar) {
    r.counter_labeled("o1_labeled_total", &[("Bad Key", "any value")]);
}

/// stale-annotation: the unwrap this once justified was refactored away.
// PANIC-OK: leftover justification with nothing to justify
pub fn stale_marker() -> u8 {
    0
}

//! Neuron re-ordering (network isomorphism) utilities.
//!
//! §5.2 of the paper re-orders *neurons* rather than arbitrary rows/columns:
//! when the `i`-th and `j`-th **columns** of layer `n`'s weight matrix are
//! exchanged, the `i`-th and `j`-th **rows** of layer `n+1` are exchanged
//! correspondingly, producing an isomorphic network (same function, same
//! interconnect) that places different weights on different RRAM cells.
//!
//! These helpers are generic over the element type so the same permutation
//! can be applied to weight matrices (`f32`) and pruning masks (`bool`).

use crate::error::NnError;
use crate::network::Network;

/// A permutation of `n` items.
///
/// `perm[i] = j` means *the item previously at position `j` moves to
/// position `i`* (gather semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation(Vec<usize>);

impl Permutation {
    /// The identity permutation on `n` items.
    pub fn identity(n: usize) -> Self {
        Self((0..n).collect())
    }

    /// Builds a permutation from a gather vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `perm` is not a permutation of
    /// `0..perm.len()`.
    pub fn from_vec(perm: Vec<usize>) -> Result<Self, NnError> {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            if p >= n || seen[p] {
                return Err(NnError::InvalidConfig(format!(
                    "not a permutation of 0..{n}: {perm:?}"
                )));
            }
            seen[p] = true;
        }
        Ok(Self(perm))
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The gather vector.
    pub fn as_slice(&self) -> &[usize] {
        &self.0
    }

    /// Returns a copy with positions `i` and `j` swapped.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swapped(&self, i: usize, j: usize) -> Self {
        let mut v = self.0.clone();
        v.swap(i, j);
        Self(v)
    }

    /// Swaps positions `i` and `j` in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap(&mut self, i: usize, j: usize) {
        self.0.swap(i, j);
    }

    /// A uniformly random permutation.
    pub fn random<R: rand::Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        use rand::seq::SliceRandom;
        let mut v: Vec<usize> = (0..n).collect();
        v.shuffle(rng);
        Self(v)
    }

    /// The inverse permutation (scatter of this gather).
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0usize; self.0.len()];
        for (i, &p) in self.0.iter().enumerate() {
            inv[p] = i;
        }
        Self(inv)
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.0.iter().enumerate().all(|(i, &p)| i == p)
    }

    /// Gathers a slice: `out[i] = data[perm[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn apply<T: Copy>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.0.len(), "length mismatch");
        self.0.iter().map(|&p| data[p]).collect()
    }
}

/// Permutes the columns of a row-major `rows × cols` matrix in place.
///
/// # Panics
///
/// Panics if sizes disagree.
pub fn permute_columns<T: Copy>(data: &mut [T], rows: usize, cols: usize, perm: &Permutation) {
    assert_eq!(data.len(), rows * cols, "matrix size mismatch");
    assert_eq!(perm.len(), cols, "permutation must cover the columns");
    for row in data.chunks_mut(cols) {
        let gathered = perm.apply(row);
        row.copy_from_slice(&gathered);
    }
}

/// Permutes the rows of a row-major `rows × cols` matrix in place.
///
/// # Panics
///
/// Panics if sizes disagree.
pub fn permute_rows<T: Copy>(data: &mut [T], rows: usize, cols: usize, perm: &Permutation) {
    assert_eq!(data.len(), rows * cols, "matrix size mismatch");
    assert_eq!(perm.len(), rows, "permutation must cover the rows");
    let original = data.to_vec();
    for (i, &src) in perm.as_slice().iter().enumerate() {
        data[i * cols..(i + 1) * cols].copy_from_slice(&original[src * cols..(src + 1) * cols]);
    }
}

/// Permutes row *blocks* of `block` consecutive rows each — the shape of a
/// downstream layer whose rows are grouped per upstream neuron (`k·k` rows
/// per input channel for convolutions, `H·W` rows per channel across a
/// flatten boundary).
///
/// # Panics
///
/// Panics if sizes disagree or `rows` is not a multiple of `block`.
pub fn permute_row_blocks<T: Copy>(
    data: &mut [T],
    rows: usize,
    cols: usize,
    block: usize,
    perm: &Permutation,
) {
    assert_eq!(data.len(), rows * cols, "matrix size mismatch");
    assert!(
        block > 0 && rows.is_multiple_of(block),
        "rows must divide into blocks"
    );
    assert_eq!(
        perm.len(),
        rows / block,
        "permutation must cover the row blocks"
    );
    let original = data.to_vec();
    let stride = block * cols;
    for (i, &src) in perm.as_slice().iter().enumerate() {
        data[i * stride..(i + 1) * stride]
            .copy_from_slice(&original[src * stride..(src + 1) * stride]);
    }
}

/// Re-orders the output neurons of the `k`-th weight-carrying layer of a
/// network (paper §5.2): permutes that layer's weight **columns** and bias,
/// and the next weight layer's **rows** (in blocks when the downstream rows
/// are grouped per neuron, e.g. across conv/flatten boundaries).
///
/// The network computes exactly the same function afterwards.
///
/// # Example
///
/// ```
/// use nn::network::Network;
/// use nn::layers::Dense;
/// use nn::init::init_rng;
/// use nn::permute::{permute_hidden_neurons, Permutation};
///
/// # fn main() -> Result<(), nn::NnError> {
/// let mut rng = init_rng(0);
/// let mut net = Network::new();
/// net.push(Dense::new(3, 4, &mut rng));
/// net.push(Dense::new(4, 2, &mut rng));
/// let perm = Permutation::from_vec(vec![3, 0, 1, 2])?;
/// permute_hidden_neurons(&mut net, 0, &perm)?; // function unchanged
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] when `k` is the last weight layer
/// (output neurons are externally visible and cannot be re-ordered), when
/// the permutation size does not match, or when the downstream row count is
/// not a multiple of the upstream neuron count.
pub fn permute_hidden_neurons(
    net: &mut Network,
    k: usize,
    perm: &Permutation,
) -> Result<(), NnError> {
    let weight_layers = net.weight_layer_indices();
    if k + 1 >= weight_layers.len() {
        return Err(NnError::InvalidConfig(format!(
            "cannot re-order neurons of weight layer {k}: it is the output layer"
        )));
    }
    let (this_idx, next_idx) = (weight_layers[k], weight_layers[k + 1]);

    // Permute this layer's columns and bias.
    {
        // PANIC-OK: `this_idx` comes from `weight_layer_indices`, which
        // only lists layers with parameters.
        #[allow(clippy::expect_used)]
        let params = net
            .layer_params_mut(this_idx)
            .expect("weight layer has params");
        let (rows, cols) = params.weight_shape;
        if perm.len() != cols {
            return Err(NnError::InvalidConfig(format!(
                "permutation of {} does not match {} output neurons",
                perm.len(),
                cols
            )));
        }
        permute_columns(params.weights, rows, cols, perm);
        if let Some(bias) = params.bias {
            let permuted = perm.apply(bias);
            bias.copy_from_slice(&permuted);
        }
    }

    // Permute the next layer's row blocks.
    {
        let neurons = perm.len();
        // PANIC-OK: `next_idx` comes from `weight_layer_indices`, which
        // only lists layers with parameters.
        #[allow(clippy::expect_used)]
        let params = net
            .layer_params_mut(next_idx)
            .expect("weight layer has params");
        let (rows, cols) = params.weight_shape;
        if rows % neurons != 0 {
            return Err(NnError::InvalidConfig(format!(
                "downstream rows {rows} not divisible by {neurons} neurons"
            )));
        }
        let block = rows / neurons;
        permute_row_blocks(params.weights, rows, cols, block, perm);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::init_rng;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2, Relu};
    use crate::tensor::Tensor;

    #[test]
    fn permutation_validation() {
        assert!(Permutation::from_vec(vec![0, 1, 2]).is_ok());
        assert!(Permutation::from_vec(vec![2, 0, 1]).is_ok());
        assert!(Permutation::from_vec(vec![0, 0, 1]).is_err());
        assert!(Permutation::from_vec(vec![0, 3, 1]).is_err());
        assert!(Permutation::identity(4).is_identity());
        assert!(!Permutation::identity(4).swapped(0, 1).is_identity());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let mut rng = init_rng(1);
        let p = Permutation::random(10, &mut rng);
        let inv = p.inverse();
        let data: Vec<usize> = (0..10).collect();
        let there = p.apply(&data);
        let back = inv.apply(&there);
        assert_eq!(back, data);
    }

    #[test]
    fn column_and_row_permutation() {
        // 2x3 matrix [[1,2,3],[4,5,6]]
        let mut m = vec![1, 2, 3, 4, 5, 6];
        let perm = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        permute_columns(&mut m, 2, 3, &perm);
        assert_eq!(m, vec![3, 1, 2, 6, 4, 5]);

        let mut m = vec![1, 2, 3, 4, 5, 6];
        let perm = Permutation::from_vec(vec![1, 0]).unwrap();
        permute_rows(&mut m, 2, 3, &perm);
        assert_eq!(m, vec![4, 5, 6, 1, 2, 3]);
    }

    #[test]
    fn row_blocks_move_together() {
        // 4 rows, 1 col, blocks of 2: [a a b b] -> [b b a a]
        let mut m = vec![1, 1, 2, 2];
        let perm = Permutation::from_vec(vec![1, 0]).unwrap();
        permute_row_blocks(&mut m, 4, 1, 2, &perm);
        assert_eq!(m, vec![2, 2, 1, 1]);
    }

    #[test]
    fn dense_network_output_is_invariant() {
        let mut rng = init_rng(2);
        let mut net = Network::new();
        net.push(Dense::new(6, 8, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(8, 4, &mut rng));
        let x = Tensor::from_vec(vec![3, 6], (0..18).map(|i| (i as f32).sin()).collect());
        let before = net.forward(&x);
        let perm = Permutation::random(8, &mut rng);
        permute_hidden_neurons(&mut net, 0, &perm).unwrap();
        let after = net.forward(&x);
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn conv_channel_permutation_is_invariant_across_pool_and_flatten() {
        let mut rng = init_rng(3);
        let mut net = Network::new();
        net.push(Conv2d::new(1, 4, 3, 1, 1, &mut rng));
        net.push(Relu::new());
        net.push(MaxPool2::new());
        net.push(Flatten::new());
        net.push(Dense::new(4 * 2 * 2, 3, &mut rng));
        let x = Tensor::from_vec(
            vec![2, 1, 4, 4],
            (0..32).map(|i| (i as f32 * 0.3).cos()).collect(),
        );
        let before = net.forward(&x);
        // Re-order the conv's 4 output channels; dense rows move in blocks
        // of 2·2 = 4 (the pooled spatial size).
        let perm = Permutation::from_vec(vec![3, 1, 0, 2]).unwrap();
        permute_hidden_neurons(&mut net, 0, &perm).unwrap();
        let after = net.forward(&x);
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn output_layer_cannot_be_permuted() {
        let mut rng = init_rng(4);
        let mut net = Network::new();
        net.push(Dense::new(4, 3, &mut rng));
        let perm = Permutation::identity(3);
        assert!(permute_hidden_neurons(&mut net, 0, &perm).is_err());
    }

    #[test]
    fn size_mismatch_is_rejected() {
        let mut rng = init_rng(5);
        let mut net = Network::new();
        net.push(Dense::new(4, 6, &mut rng));
        net.push(Dense::new(6, 2, &mut rng));
        let perm = Permutation::identity(5);
        assert!(permute_hidden_neurons(&mut net, 0, &perm).is_err());
    }
}

//! The adversarial scenario families.
//!
//! Each family is a module exposing `run(seed) -> FamilyReport`. Families
//! are independent and derive any randomness from their own seed, so the
//! harness is reproducible case-by-case.

mod arena;
mod detector;
mod geometry;
mod kernels;
mod observability;
mod restore;
mod robustness;
mod sanitize;
mod serve;
mod tiling;
mod training;

pub use arena::arena;
pub use detector::{all_faulty_extremes, detector_group_remainders, mod16_aliasing};
pub use geometry::{extreme_geometry, plane_coherence};
pub use kernels::kernels;
pub use observability::obs_stream;
pub use restore::restore;
pub use robustness::{config_rejection, thread_budget};
pub use sanitize::sanitize;
pub use serve::serve;
pub use tiling::tiling;
pub use training::{degenerate_gradients, prune_rate_extremes};

use rram::crossbar::{Crossbar, CrossbarBuilder};

/// Builds a variation-free crossbar with every cell programmed to `level`
/// — the deterministic substrate most detector cases start from.
pub(crate) fn uniform_crossbar(rows: usize, cols: usize, level: u16) -> Result<Crossbar, String> {
    let mut xbar = CrossbarBuilder::new(rows, cols)
        .build()
        .map_err(|e| format!("build {rows}x{cols}: {e}"))?;
    for r in 0..rows {
        for c in 0..cols {
            xbar.write_level(r, c, level)
                .map_err(|e| format!("write_level({r},{c}): {e}"))?;
        }
    }
    Ok(xbar)
}

/// Checks that both cached conductance planes agree exactly with the
/// per-cell scalar state (the coherence invariant every batched kernel
/// relies on).
pub(crate) fn check_plane_coherence(xbar: &Crossbar, context: &str) -> Result<(), String> {
    let plane64 = xbar.conductance_plane_f64();
    let plane32 = xbar.conductance_plane();
    for r in 0..xbar.rows() {
        for c in 0..xbar.cols() {
            let scalar = xbar
                .conductance(r, c)
                .map_err(|e| format!("{context}: conductance({r},{c}): {e}"))?;
            let i = r * xbar.cols() + c;
            if plane64[i].to_bits() != scalar.to_bits() {
                return Err(format!(
                    "{context}: plane64[{r},{c}] = {} but scalar = {scalar}",
                    plane64[i]
                ));
            }
            if plane32[i].to_bits() != (scalar as f32).to_bits() {
                return Err(format!(
                    "{context}: plane32[{r},{c}] = {} but scalar = {scalar}",
                    plane32[i]
                ));
            }
        }
    }
    Ok(())
}

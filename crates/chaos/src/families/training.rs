//! Training-focused families: poisoned gradients and pruning extremes.

use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use ftt_core::flow::FaultTolerantTrainer;
use ftt_core::mapping::MappedNetwork;
use ftt_core::threshold::{ThresholdPolicy, ThresholdTrainer};
use nn::init::init_rng;
use nn::network::Network;
use nn::optimizer::LrSchedule;
use nn::pruning::{try_apply_mask, try_magnitude_prune_per_layer};
use nn::synth::SyntheticDataset;
use nn::tensor::Tensor;

use crate::{ensure, FamilyReport};

fn dense_net(inputs: usize, outputs: usize, seed: u64) -> Network {
    let mut rng = init_rng(seed);
    let mut net = Network::new();
    net.push(nn::layers::Dense::new(inputs, outputs, &mut rng));
    net
}

fn mapped_pair(seed: u64) -> Result<(Network, MappedNetwork), String> {
    let mut net = dense_net(6, 4, seed);
    let mapped =
        MappedNetwork::from_network(&mut net, MappingConfig::new(MappingScope::EntireNetwork))
            .map_err(|e| format!("map: {e}"))?;
    Ok((net, mapped))
}

/// Backward pass with a crafted output gradient.
fn backward_with(net: &mut Network, inputs: usize, grad: Vec<f32>) {
    let x = Tensor::from_vec(
        vec![1, inputs],
        (0..inputs).map(|i| 0.1 + i as f32 * 0.1).collect(),
    );
    net.forward_train(&x);
    let g = Tensor::from_vec(vec![1, grad.len()], grad);
    net.backward(&g);
}

/// NaN, ∞, and all-zero gradient iterations: the update pass must skip
/// them deterministically — no NaN on hardware, no spurious pulses, same
/// result on every replay.
pub fn degenerate_gradients(seed: u64) -> FamilyReport {
    let mut fam = FamilyReport::new("degenerate_gradients");

    fam.case("nan_and_inf_gradients_never_reach_hardware", || {
        let (mut net, mut mapped) = mapped_pair(seed)?;
        mapped
            .load_effective_weights(&mut net)
            .map_err(|e| e.to_string())?;
        backward_with(&mut net, 6, vec![f32::NAN, f32::INFINITY, 0.5, -0.5]);
        let mut trainer = ThresholdTrainer::new(ThresholdPolicy::paper_default(), &mapped);
        let report = trainer
            .apply(&mut mapped, &mut net, 0.1)
            .map_err(|e| format!("apply: {e}"))?;
        ensure(
            report.nan_updates_skipped > 0,
            "poisoned updates must be counted",
        )?;
        ensure(report.max_abs_dw.is_finite(), "max|δw| must exclude NaN")?;
        mapped
            .load_effective_weights(&mut net)
            .map_err(|e| e.to_string())?;
        let params = net.layer_params_mut(0).ok_or("params")?;
        ensure(
            params.weights.iter().all(|w| w.is_finite()),
            "a NaN reached the hardware weights",
        )
    });

    fam.case("all_nan_gradients_degrade_to_noop", || {
        let (mut net, mut mapped) = mapped_pair(seed)?;
        mapped
            .load_effective_weights(&mut net)
            .map_err(|e| e.to_string())?;
        backward_with(&mut net, 6, vec![f32::NAN; 4]);
        let mut trainer = ThresholdTrainer::new(ThresholdPolicy::paper_default(), &mapped);
        let report = trainer
            .apply(&mut mapped, &mut net, 0.1)
            .map_err(|e| format!("apply: {e}"))?;
        ensure(
            report.writes_issued == 0,
            "an all-NaN iteration must not pulse cells",
        )?;
        ensure(report.max_abs_dw == 0.0, "no finite update exists")?;
        Ok(())
    });

    fam.case("zero_gradient_iteration_is_deterministic", || {
        let (mut net, mut mapped) = mapped_pair(seed)?;
        mapped
            .load_effective_weights(&mut net)
            .map_err(|e| e.to_string())?;
        backward_with(&mut net, 6, vec![0.0; 4]);
        let mut trainer = ThresholdTrainer::new(ThresholdPolicy::paper_default(), &mapped);
        let first = trainer
            .apply(&mut mapped, &mut net, 0.1)
            .map_err(|e| format!("apply: {e}"))?;
        ensure(
            first.writes_issued == 0,
            "a zero iteration must skip every write",
        )?;
        ensure(first.writes_skipped == 24, "all 6×4 updates suppressed")?;
        let second = trainer
            .apply(&mut mapped, &mut net, 0.1)
            .map_err(|e| format!("apply 2: {e}"))?;
        ensure(
            first.writes_skipped == second.writes_skipped
                && first.writes_issued == second.writes_issued,
            "replaying a zero iteration must be bit-identical",
        )
    });

    fam.case("none_policy_keeps_pulse_everything_semantics", || {
        // The original method has no write-verify: even zero updates cost a
        // pulse. The degenerate-iteration skip must NOT change the baseline.
        let (mut net, mut mapped) = mapped_pair(seed)?;
        mapped
            .load_effective_weights(&mut net)
            .map_err(|e| e.to_string())?;
        backward_with(&mut net, 6, vec![0.0; 4]);
        let mut trainer = ThresholdTrainer::new(ThresholdPolicy::None, &mapped);
        let report = trainer
            .apply(&mut mapped, &mut net, 0.1)
            .map_err(|e| format!("apply: {e}"))?;
        ensure(
            report.writes_skipped == 0,
            "the None policy must not silently start suppressing",
        )
    });
    fam
}

/// Pruning rates at exactly 0 % and 100 %, standalone and inside the full
/// detection + re-map phase.
pub fn prune_rate_extremes(seed: u64) -> FamilyReport {
    let mut fam = FamilyReport::new("prune_rate_extremes");

    fam.case("prune_0pct_keeps_everything", || {
        let mut net = dense_net(8, 4, seed);
        let mask = try_magnitude_prune_per_layer(&mut net, &[0.0]).map_err(|e| e.to_string())?;
        ensure(mask.total_sparsity() == 0.0, "0 % must prune nothing")?;
        try_apply_mask(&mut net, &mask).map_err(|e| e.to_string())?;
        Ok(())
    });

    fam.case("prune_100pct_zeroes_everything", || {
        let mut net = dense_net(8, 4, seed);
        let mask = try_magnitude_prune_per_layer(&mut net, &[1.0]).map_err(|e| e.to_string())?;
        ensure(
            nn::metrics::approx_eq(mask.total_sparsity(), 1.0),
            "100 % must prune all 32 weights",
        )?;
        try_apply_mask(&mut net, &mask).map_err(|e| e.to_string())?;
        let params = net.layer_params_mut(0).ok_or("params")?;
        ensure(
            params.weights.iter().all(|&w| w == 0.0),
            "weights must all be zero",
        )
    });

    for (name, dense, conv) in [
        ("flow_prune_0pct", 0.0, 0.0),
        ("flow_prune_100pct", 1.0, 1.0),
    ] {
        fam.case(name, || {
            let data = SyntheticDataset::mnist_like(40, 10, seed);
            let mut rng = init_rng(seed);
            let mut net = Network::new();
            net.push(nn::layers::Dense::new(784, 8, &mut rng));
            net.push(nn::layers::Relu::new());
            net.push(nn::layers::Dense::new(8, 10, &mut rng));
            let mapping = MappingConfig::new(MappingScope::EntireNetwork)
                .with_initial_fault_fraction(0.2)
                .with_seed(seed);
            let mut flow = FlowConfig::fault_tolerant()
                .with_lr(LrSchedule::constant(0.1))
                .with_detection_interval(4)
                .with_detection_warmup(0)
                .with_eval_interval(4);
            flow.prune_fraction_dense = dense;
            flow.prune_fraction_conv = conv;
            let mut trainer =
                FaultTolerantTrainer::new(net, mapping, flow).map_err(|e| format!("new: {e}"))?;
            let curve = trainer
                .train(&data, 10)
                .map_err(|e| format!("train: {e}"))?;
            ensure(
                curve.points().iter().all(|p| p.test_accuracy.is_finite()),
                "accuracy must stay finite at pruning extremes",
            )?;
            ensure(
                trainer.stats().detection_campaigns > 0,
                "detection must have run",
            )
        });
    }
    fam
}

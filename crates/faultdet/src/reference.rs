//! The off-chip value store and reference computation.
//!
//! The first step of the test procedure reads the whole crossbar and stores
//! the levels off-chip. During the comparison steps the controller knows, for
//! every cell, what level it *should* be at — the stored level plus the test
//! increment, saturating at the level range boundaries — so it can select the
//! correct reference voltage for any tested group of rows or columns.
//!
//! Two usage modes share this type:
//!
//! * **Snapshot** ([`OffChipStore::read_from`]): a fresh full-array read at
//!   the start of every campaign, as in Fig. 3 of the paper. Simple, and the
//!   oracle against which the incremental mode is tested.
//! * **Persistent** ([`OffChipStore::attach`] + [`OffChipStore::sync_from`]):
//!   the store stays alive between campaigns and is kept coherent from the
//!   crossbar's dirty-cell journal, so each campaign only re-reads the cells
//!   written since the last one. A pending-cell mask remembers which cells
//!   still await testing, and per-group sum aggregates make the expected
//!   group references O(candidates) instead of O(cells) to compute.

use rram::crossbar::Crossbar;
use rram::RramError;

use crate::selected::CandidateMask;

/// Per-group sums of stored levels, maintained incrementally so expected
/// group references do not require a dense sweep of the snapshot.
#[derive(Debug, Clone)]
struct GroupAggregates {
    /// The test size (group height/width) the partitions were built for.
    test_size: usize,
    /// `col_base[g * cols + c]`: sum of stored levels in column `c` over row
    /// group `g` (rows `g*t .. min((g+1)*t, rows)`).
    col_base: Vec<u64>,
    /// `row_base[g * rows + r]`: sum of stored levels in row `r` over column
    /// group `g`.
    row_base: Vec<u64>,
}

impl GroupAggregates {
    fn build(stored: &[u16], rows: usize, cols: usize, test_size: usize) -> Self {
        let row_groups = rows.div_ceil(test_size);
        let col_groups = cols.div_ceil(test_size);
        let mut col_base = vec![0u64; row_groups * cols];
        let mut row_base = vec![0u64; col_groups * rows];
        for r in 0..rows {
            let row = &stored[r * cols..(r + 1) * cols];
            let group_row = &mut col_base[(r / test_size) * cols..(r / test_size + 1) * cols];
            for (b, &lvl) in group_row.iter_mut().zip(row) {
                *b += u64::from(lvl);
            }
            for (c, &lvl) in row.iter().enumerate() {
                row_base[(c / test_size) * rows + r] += u64::from(lvl);
            }
        }
        Self {
            test_size,
            col_base,
            row_base,
        }
    }

    /// Applies a single-cell level change to both aggregate planes.
    fn update(&mut self, row: usize, col: usize, old: u16, new: u16, rows: usize, cols: usize) {
        let t = self.test_size;
        let cb = &mut self.col_base[(row / t) * cols + col];
        *cb += u64::from(new);
        *cb -= u64::from(old);
        let rb = &mut self.row_base[(col / t) * rows + row];
        *rb += u64::from(new);
        *rb -= u64::from(old);
    }
}

/// Off-chip copy of the crossbar levels used to derive test references.
///
/// Equality compares the snapshot content only (`rows`, `cols`, `levels`,
/// stored levels); the pending mask and cached aggregates are bookkeeping.
#[derive(Debug, Clone)]
pub struct OffChipStore {
    rows: usize,
    cols: usize,
    levels: u16,
    stored: Vec<u16>,
    /// Cells written (level-changed *or* rewritten) since they were last
    /// tested — the incremental detector's candidate universe.
    pending: Vec<bool>,
    pending_count: usize,
    agg: Option<GroupAggregates>,
}

impl PartialEq for OffChipStore {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.levels == other.levels
            && self.stored == other.stored
    }
}

impl Eq for OffChipStore {}

impl OffChipStore {
    /// Reads the crossbar ("Read RRAM Values, Store Off-Chip" in Fig. 3).
    pub fn read_from(xbar: &Crossbar) -> Self {
        let stored = xbar.read_all_levels();
        let cells = stored.len();
        Self {
            rows: xbar.rows(),
            cols: xbar.cols(),
            levels: xbar.levels(),
            stored,
            pending: vec![false; cells],
            pending_count: 0,
            agg: None,
        }
    }

    /// Creates a *persistent* store attached to the crossbar: a full snapshot
    /// with every cell marked pending (nothing has been tested yet) and the
    /// crossbar's dirty journal reset so future [`sync_from`] calls see only
    /// writes that happened after this point.
    ///
    /// [`sync_from`]: Self::sync_from
    pub fn attach(xbar: &mut Crossbar) -> Self {
        let mut store = Self::read_from(xbar);
        store.pending.fill(true);
        store.pending_count = store.pending.len();
        xbar.clear_dirty();
        store
    }

    /// Brings the store up to date from the crossbar's dirty-cell journal:
    /// every cell written since the last sync is re-read, its stored level
    /// (and any cached aggregates) updated, and the cell marked pending for
    /// the next test campaign. Returns the number of cells read, and clears
    /// the journal.
    ///
    /// The journal is complete — a cell absent from it cannot have changed —
    /// so after this call the store equals a fresh [`read_from`] snapshot.
    ///
    /// [`read_from`]: Self::read_from
    ///
    /// # Errors
    ///
    /// Returns [`RramError::DimensionMismatch`] when the crossbar dimensions
    /// do not match the snapshot.
    pub fn sync_from(&mut self, xbar: &mut Crossbar) -> Result<u64, RramError> {
        if xbar.rows() != self.rows || xbar.cols() != self.cols {
            return Err(RramError::DimensionMismatch {
                expected: self.rows * self.cols,
                actual: xbar.rows() * xbar.cols(),
            });
        }
        let dirty = xbar.dirty_cells().to_vec();
        let read = dirty.len() as u64;
        for i in dirty {
            let (r, c) = (i / self.cols, i % self.cols);
            let level = xbar.read_level(r, c)?;
            self.set_level(r, c, level);
        }
        xbar.clear_dirty();
        Ok(read)
    }

    /// Records an off-chip level for one cell, updating any cached group
    /// aggregates and marking the cell pending.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn set_level(&mut self, row: usize, col: usize, level: u16) {
        assert!(
            row < self.rows && col < self.cols,
            "({row}, {col}) out of bounds"
        );
        let i = row * self.cols + col;
        let old = self.stored[i];
        if old != level {
            if let Some(agg) = &mut self.agg {
                agg.update(row, col, old, level, self.rows, self.cols);
            }
            self.stored[i] = level;
        }
        if !self.pending[i] {
            self.pending[i] = true;
            self.pending_count += 1;
        }
    }

    /// Row-major mask of cells awaiting testing.
    pub fn pending_mask(&self) -> &[bool] {
        &self.pending
    }

    /// Number of cells awaiting testing.
    pub fn pending_count(&self) -> usize {
        self.pending_count
    }

    /// Marks every cell as tested (called once a campaign has covered the
    /// pending set).
    pub fn clear_pending(&mut self) {
        self.pending.fill(false);
        self.pending_count = 0;
    }

    /// Builds (or rebuilds, when the test size changed) the per-group sum
    /// aggregates backing the `*_cached` expected-sum methods.
    ///
    /// # Panics
    ///
    /// Panics if `test_size` is zero.
    pub fn ensure_aggregates(&mut self, test_size: usize) {
        assert!(test_size > 0, "test size must be non-zero");
        let stale = match &self.agg {
            Some(agg) => agg.test_size != test_size,
            None => true,
        };
        if stale {
            self.agg = Some(GroupAggregates::build(
                &self.stored,
                self.rows,
                self.cols,
                test_size,
            ));
        }
    }

    /// Absorbs a test campaign's own writes (nudges and restores) from the
    /// crossbar journal. Cells that read back at their stored level and are
    /// healthy were fully restored and are dropped silently; cells that
    /// differ or carry a hard fault (stuck or worn out mid-campaign) are
    /// re-synced and marked pending so the next campaign retests them.
    /// Clears the journal.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::DimensionMismatch`] when the crossbar dimensions
    /// do not match the snapshot.
    pub fn absorb_campaign_writes(&mut self, xbar: &mut Crossbar) -> Result<(), RramError> {
        if xbar.rows() != self.rows || xbar.cols() != self.cols {
            return Err(RramError::DimensionMismatch {
                expected: self.rows * self.cols,
                actual: xbar.rows() * xbar.cols(),
            });
        }
        let dirty = xbar.dirty_cells().to_vec();
        for i in dirty {
            let (r, c) = (i / self.cols, i % self.cols);
            let level = xbar.read_level(r, c)?;
            if level != self.stored[i] || xbar.cell(r, c)?.state().is_faulty() {
                self.set_level(r, c, level);
            }
        }
        xbar.clear_dirty();
        Ok(())
    }

    /// Number of snapshot rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of snapshot columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The stored (pre-test) level of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn stored_level(&self, row: usize, col: usize) -> u16 {
        assert!(
            row < self.rows && col < self.cols,
            "({row}, {col}) out of bounds"
        );
        self.stored[row * self.cols + col]
    }

    /// The level a cell is *expected* to read after a `delta`-level test
    /// write, saturating at the range boundaries — `delta = 0` means the
    /// cell was not written (not a test candidate).
    pub fn expected_level(&self, row: usize, col: usize, delta: i32) -> u16 {
        let stored = i64::from(self.stored_level(row, col));
        (stored + i64::from(delta)).clamp(0, i64::from(self.levels - 1)) as u16
    }

    /// Expected digital level sum over a slice of rows on one column, given
    /// the per-cell test deltas (`deltas[row * cols + col]`).
    ///
    /// # Panics
    ///
    /// Panics if the range or column is out of bounds.
    pub fn expected_column_group_sum(
        &self,
        rows: std::ops::Range<usize>,
        col: usize,
        deltas: &[i32],
    ) -> u64 {
        assert!(
            rows.end <= self.rows && col < self.cols,
            "range out of bounds"
        );
        rows.map(|r| u64::from(self.expected_level(r, col, deltas[r * self.cols + col])))
            .sum()
    }

    /// Expected digital level sum over a slice of columns on one row.
    ///
    /// # Panics
    ///
    /// Panics if the range or row is out of bounds.
    pub fn expected_row_group_sum(
        &self,
        row: usize,
        cols: std::ops::Range<usize>,
        deltas: &[i32],
    ) -> u64 {
        assert!(
            cols.end <= self.cols && row < self.rows,
            "range out of bounds"
        );
        cols.map(|c| u64::from(self.expected_level(row, c, deltas[row * self.cols + c])))
            .sum()
    }

    /// Batched form of [`expected_column_group_sum`]: the expected sum over
    /// the row slice for *every* column at once, as one dense row-major
    /// sweep over the snapshot. Entry `col` equals
    /// `expected_column_group_sum(rows, col, deltas)` exactly (same
    /// clamped-level accumulation, ascending row order), so callers that
    /// sweep whole detection groups avoid `cols` separate strided walks.
    ///
    /// [`expected_column_group_sum`]: Self::expected_column_group_sum
    ///
    /// # Panics
    ///
    /// Panics if the row range is out of bounds.
    pub fn expected_column_group_sums(
        &self,
        rows: std::ops::Range<usize>,
        deltas: &[i32],
    ) -> Vec<u64> {
        assert!(rows.end <= self.rows, "row range out of bounds");
        let top = i64::from(self.levels - 1);
        let mut sums = vec![0u64; self.cols];
        for r in rows {
            let base = r * self.cols;
            let stored = &self.stored[base..base + self.cols];
            let row_deltas = &deltas[base..base + self.cols];
            for (s, (&lvl, &d)) in sums.iter_mut().zip(stored.iter().zip(row_deltas)) {
                *s += (i64::from(lvl) + i64::from(d)).clamp(0, top) as u64;
            }
        }
        sums
    }

    /// Batched form of [`expected_row_group_sum`]: the expected sum over the
    /// column slice for *every* row at once. Entry `row` equals
    /// `expected_row_group_sum(row, cols, deltas)` exactly.
    ///
    /// [`expected_row_group_sum`]: Self::expected_row_group_sum
    ///
    /// # Panics
    ///
    /// Panics if the column range is out of bounds.
    pub fn expected_row_group_sums(
        &self,
        cols: std::ops::Range<usize>,
        deltas: &[i32],
    ) -> Vec<u64> {
        assert!(cols.end <= self.cols, "column range out of bounds");
        let top = i64::from(self.levels - 1);
        let mut sums = vec![0u64; self.rows];
        for (r, s) in sums.iter_mut().enumerate() {
            let base = r * self.cols;
            let stored = &self.stored[base + cols.start..base + cols.end];
            let row_deltas = &deltas[base + cols.start..base + cols.end];
            for (&lvl, &d) in stored.iter().zip(row_deltas) {
                *s += (i64::from(lvl) + i64::from(d)).clamp(0, top) as u64;
            }
        }
        sums
    }

    /// Aggregate-backed form of [`expected_column_group_sums`] for the
    /// uniform-delta case: the sum for each column is the cached base sum of
    /// stored levels plus, for every *candidate* cell, the saturating
    /// adjustment `clamp(stored + delta) - stored`. Bit-for-bit equal to the
    /// dense method called with `deltas[cell] = delta` on candidates and `0`
    /// elsewhere.
    ///
    /// The row range must be one of the groups [`ensure_aggregates`] was
    /// built for; other ranges fall back to a dense base-sum scan (still
    /// exact, just not O(candidates)).
    ///
    /// [`expected_column_group_sums`]: Self::expected_column_group_sums
    /// [`ensure_aggregates`]: Self::ensure_aggregates
    ///
    /// # Panics
    ///
    /// Panics if the row range is out of bounds or the candidate mask has
    /// different dimensions.
    pub fn expected_column_group_sums_cached(
        &self,
        rows: std::ops::Range<usize>,
        candidates: &CandidateMask,
        delta: i32,
    ) -> Vec<u64> {
        assert!(rows.end <= self.rows, "row range out of bounds");
        assert!(
            candidates.rows() == self.rows && candidates.cols() == self.cols,
            "candidate mask dimensions must match"
        );
        let top = i64::from(self.levels - 1);
        let mut sums = self.column_group_base(&rows);
        for r in rows {
            let mask = candidates.row_slice(r);
            let stored = &self.stored[r * self.cols..(r + 1) * self.cols];
            for (c, (&is_candidate, &lvl)) in mask.iter().zip(stored).enumerate() {
                if is_candidate {
                    adjust(&mut sums[c], i64::from(lvl), delta, top);
                }
            }
        }
        sums
    }

    /// Aggregate-backed form of [`expected_row_group_sums`] for the
    /// uniform-delta case; see [`expected_column_group_sums_cached`].
    ///
    /// [`expected_row_group_sums`]: Self::expected_row_group_sums
    /// [`expected_column_group_sums_cached`]: Self::expected_column_group_sums_cached
    ///
    /// # Panics
    ///
    /// Panics if the column range is out of bounds or the candidate mask has
    /// different dimensions.
    pub fn expected_row_group_sums_cached(
        &self,
        cols: std::ops::Range<usize>,
        candidates: &CandidateMask,
        delta: i32,
    ) -> Vec<u64> {
        assert!(cols.end <= self.cols, "column range out of bounds");
        assert!(
            candidates.rows() == self.rows && candidates.cols() == self.cols,
            "candidate mask dimensions must match"
        );
        let top = i64::from(self.levels - 1);
        let mut sums = self.row_group_base(&cols);
        for (r, s) in sums.iter_mut().enumerate() {
            let base = r * self.cols;
            let mask = &candidates.row_slice(r)[cols.start..cols.end];
            let stored = &self.stored[base + cols.start..base + cols.end];
            for (&is_candidate, &lvl) in mask.iter().zip(stored) {
                if is_candidate {
                    adjust(s, i64::from(lvl), delta, top);
                }
            }
        }
        sums
    }

    /// Base (delta-free) column sums over a row slice: served from the
    /// aggregates when the slice is one of their groups, recomputed densely
    /// otherwise.
    fn column_group_base(&self, rows: &std::ops::Range<usize>) -> Vec<u64> {
        if let Some(agg) = &self.agg {
            let t = agg.test_size;
            let g = rows.start / t;
            if rows.start == g * t && rows.end == ((g + 1) * t).min(self.rows) {
                return agg.col_base[g * self.cols..(g + 1) * self.cols].to_vec();
            }
        }
        let mut base = vec![0u64; self.cols];
        for r in rows.clone() {
            let stored = &self.stored[r * self.cols..(r + 1) * self.cols];
            for (b, &lvl) in base.iter_mut().zip(stored) {
                *b += u64::from(lvl);
            }
        }
        base
    }

    /// Base (delta-free) per-row sums over a column slice.
    fn row_group_base(&self, cols: &std::ops::Range<usize>) -> Vec<u64> {
        if let Some(agg) = &self.agg {
            let t = agg.test_size;
            let g = cols.start / t;
            if cols.start == g * t && cols.end == ((g + 1) * t).min(self.cols) {
                return agg.row_base[g * self.rows..(g + 1) * self.rows].to_vec();
            }
        }
        let mut base = vec![0u64; self.rows];
        for (r, b) in base.iter_mut().enumerate() {
            let start = r * self.cols;
            for &lvl in &self.stored[start + cols.start..start + cols.end] {
                *b += u64::from(lvl);
            }
        }
        base
    }

    /// Captures the serializable state of the store (checkpoint).
    ///
    /// The cached group aggregates are *not* part of the state: they are a
    /// derived view rebuilt exactly (integer sums over `stored`) by the
    /// next [`ensure_aggregates`] call after restore.
    ///
    /// [`ensure_aggregates`]: Self::ensure_aggregates
    pub fn export_state(&self) -> StoreState {
        StoreState {
            rows: self.rows,
            cols: self.cols,
            levels: self.levels,
            stored: self.stored.clone(),
            pending: self.pending.clone(),
            pending_count: self.pending_count,
        }
    }

    /// Rebuilds a store from a previously captured [`StoreState`].
    ///
    /// # Errors
    ///
    /// Returns [`RramError::InvalidConfig`] when the state is incoherent:
    /// zero dimensions, fewer than two levels, array lengths that do not
    /// match `rows * cols`, a stored level outside the level range, or a
    /// `pending_count` that disagrees with the popcount of the pending
    /// mask (the count is maintained in lockstep with the mask, so
    /// disagreement means the snapshot is corrupt).
    pub fn restore_state(state: &StoreState) -> Result<Self, RramError> {
        if state.rows == 0 || state.cols == 0 {
            return Err(RramError::InvalidConfig(format!(
                "snapshot store dimensions must be non-zero (got {}x{})",
                state.rows, state.cols
            )));
        }
        if state.levels < 2 {
            return Err(RramError::InvalidConfig(format!(
                "snapshot store needs at least 2 levels (got {})",
                state.levels
            )));
        }
        let cells = state.rows * state.cols;
        if state.stored.len() != cells || state.pending.len() != cells {
            return Err(RramError::InvalidConfig(format!(
                "snapshot store arrays ({} stored, {} pending) do not match {}x{}",
                state.stored.len(),
                state.pending.len(),
                state.rows,
                state.cols
            )));
        }
        if let Some(&bad) = state.stored.iter().find(|&&l| l >= state.levels) {
            return Err(RramError::InvalidConfig(format!(
                "snapshot store level {bad} outside 0..{}",
                state.levels
            )));
        }
        let popcount = state.pending.iter().filter(|p| **p).count();
        if state.pending_count != popcount {
            return Err(RramError::InvalidConfig(format!(
                "snapshot pending_count {} disagrees with mask popcount {popcount}",
                state.pending_count
            )));
        }
        Ok(Self {
            rows: state.rows,
            cols: state.cols,
            levels: state.levels,
            stored: state.stored.clone(),
            pending: state.pending.clone(),
            pending_count: state.pending_count,
            agg: None,
        })
    }

    /// Restores every cell whose level differs from the snapshot back to the
    /// stored value (the "recover the training weights" step). Returns the
    /// number of restore writes issued.
    ///
    /// # Errors
    ///
    /// Propagates crossbar write errors (only possible on dimension
    /// mismatch, which would be a bug).
    pub fn restore(&self, xbar: &mut Crossbar) -> Result<u64, rram::RramError> {
        let mut writes = 0u64;
        for r in 0..self.rows {
            for c in 0..self.cols {
                let target = self.stored[r * self.cols + c];
                if xbar.read_level(r, c)? != target {
                    let outcome = xbar.write_level(r, c, target)?;
                    if outcome.changed() {
                        writes += 1;
                    }
                }
            }
        }
        Ok(writes)
    }
}

/// Serializable state of an [`OffChipStore`]; see
/// [`OffChipStore::export_state`] / [`OffChipStore::restore_state`].
///
/// Invariant (checked on restore): `pending_count` equals the popcount of
/// `pending`. The cached group aggregates are intentionally absent — they
/// are rebuilt exactly on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreState {
    /// Snapshot rows.
    pub rows: usize,
    /// Snapshot columns.
    pub cols: usize,
    /// Programmable levels per cell.
    pub levels: u16,
    /// Row-major stored (pre-test) levels.
    pub stored: Vec<u16>,
    /// Row-major mask of cells awaiting testing.
    pub pending: Vec<bool>,
    /// Number of `true` entries in `pending`.
    pub pending_count: usize,
}

/// Adds `clamp(stored + delta) - stored` to a group sum without signed
/// round-trips on the accumulator.
#[inline]
fn adjust(sum: &mut u64, stored: i64, delta: i32, top: i64) {
    let expected = (stored + i64::from(delta)).clamp(0, top);
    if expected >= stored {
        *sum += (expected - stored) as u64;
    } else {
        *sum -= (stored - expected) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rram::crossbar::CrossbarBuilder;
    use rram::fault::{FaultKind, FaultMap};

    fn programmed_xbar() -> Crossbar {
        let mut x = CrossbarBuilder::new(4, 4).seed(1).build().unwrap();
        for r in 0..4 {
            for c in 0..4 {
                x.write_level(r, c, ((r * 2 + c) % 8) as u16).unwrap();
            }
        }
        x
    }

    #[test]
    fn snapshot_matches_crossbar() {
        let x = programmed_xbar();
        let store = OffChipStore::read_from(&x);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(store.stored_level(r, c), x.read_level(r, c).unwrap());
            }
        }
        assert_eq!(store.rows(), 4);
        assert_eq!(store.cols(), 4);
        assert_eq!(store.pending_count(), 0, "plain snapshots track nothing");
    }

    #[test]
    fn expected_level_saturates() {
        let mut x = programmed_xbar();
        x.write_level(0, 0, 7).unwrap();
        x.write_level(0, 1, 0).unwrap();
        let store = OffChipStore::read_from(&x);
        assert_eq!(store.expected_level(0, 0, 1), 7, "saturates at the top");
        assert_eq!(store.expected_level(0, 1, -1), 0, "saturates at the bottom");
        assert_eq!(store.expected_level(0, 0, 0), 7, "delta 0 = not written");
    }

    #[test]
    fn group_sums_accumulate_expected_levels() {
        let x = programmed_xbar();
        let store = OffChipStore::read_from(&x);
        let deltas = vec![1i32; 16];
        let sum = store.expected_column_group_sum(0..4, 1, &deltas);
        // Stored col 1: levels 1, 3, 5, 7; +1 saturating: 2, 4, 6, 7 = 19.
        assert_eq!(sum, 19);
        let sum = store.expected_row_group_sum(1, 0..4, &deltas);
        // Stored row 1: 2, 3, 4, 5; +1: 3, 4, 5, 6 = 18.
        assert_eq!(sum, 18);
    }

    #[test]
    fn batched_group_sums_match_scalar_sums() {
        let x = programmed_xbar();
        let store = OffChipStore::read_from(&x);
        // Mixed deltas, including saturating ones.
        let deltas: Vec<i32> = (0..16).map(|i| [1, -1, 0, 2][i % 4]).collect();
        for lo in 0..4 {
            for hi in lo..=4 {
                let cols = store.expected_column_group_sums(lo..hi, &deltas);
                for (c, &sum) in cols.iter().enumerate() {
                    assert_eq!(sum, store.expected_column_group_sum(lo..hi, c, &deltas));
                }
                let rows = store.expected_row_group_sums(lo..hi, &deltas);
                for (r, &sum) in rows.iter().enumerate() {
                    assert_eq!(sum, store.expected_row_group_sum(r, lo..hi, &deltas));
                }
            }
        }
    }

    #[test]
    fn restore_returns_crossbar_to_snapshot() {
        let mut x = programmed_xbar();
        let store = OffChipStore::read_from(&x);
        // Perturb.
        x.nudge(0, 0, 1).unwrap();
        x.nudge(2, 3, -1).unwrap();
        let writes = store.restore(&mut x).unwrap();
        assert_eq!(writes, 2);
        assert_eq!(x.read_all_levels(), {
            let mut expected = Vec::new();
            for r in 0..4 {
                for c in 0..4 {
                    expected.push(store.stored_level(r, c));
                }
            }
            expected
        });
        // A second restore is free.
        assert_eq!(store.restore(&mut x).unwrap(), 0);
    }

    #[test]
    fn restore_skips_stuck_cells() {
        let mut x = programmed_xbar();
        let store = OffChipStore::read_from(&x);
        let mut map = FaultMap::healthy(4, 4);
        map.set(1, 1, Some(FaultKind::StuckAt0));
        x.apply_fault_map(&map);
        // Stuck cell reads 0 but stored 3; restore attempts a write that the
        // cell ignores; no effective write is counted.
        let writes = store.restore(&mut x).unwrap();
        assert_eq!(writes, 0);
        assert_eq!(x.read_level(1, 1).unwrap(), 0);
    }

    #[test]
    fn attach_marks_all_pending_and_resets_journal() {
        let mut x = programmed_xbar();
        // Pre-attach traffic dirties the journal; attach must discard it.
        x.write_level(0, 0, 5).unwrap();
        let store = OffChipStore::attach(&mut x);
        assert_eq!(store.pending_count(), 16);
        assert!(store.pending_mask().iter().all(|&p| p));
        assert!(x.dirty_cells().is_empty());
        assert_eq!(
            store,
            OffChipStore::read_from(&x),
            "attach snapshots current levels"
        );
    }

    #[test]
    fn sync_from_keeps_store_coherent_under_interleaved_traffic() {
        let mut x = programmed_xbar();
        let mut store = OffChipStore::attach(&mut x);
        store.clear_pending();
        store.ensure_aggregates(2);

        // Interleave writes, nudges, and a hard fault between syncs.
        x.write_level(0, 0, 6).unwrap();
        x.nudge(1, 2, -1).unwrap();
        x.nudge(1, 2, 1).unwrap(); // round-trips back to its stored level
        let mut map = FaultMap::healthy(4, 4);
        map.set(3, 3, Some(FaultKind::StuckAt1));
        x.apply_fault_map(&map);

        let read = store.sync_from(&mut x).unwrap();
        assert_eq!(read, 3, "one read per distinct dirty cell");
        assert_eq!(
            store,
            OffChipStore::read_from(&x),
            "store matches a fresh snapshot"
        );
        assert_eq!(store.pending_count(), 3);
        for (r, c) in [(0, 0), (1, 2), (3, 3)] {
            assert!(
                store.pending_mask()[r * 4 + c],
                "({r}, {c}) must be pending"
            );
        }
        assert!(x.dirty_cells().is_empty());

        // A second sync with no traffic reads nothing.
        assert_eq!(store.sync_from(&mut x).unwrap(), 0);
    }

    #[test]
    fn cached_group_sums_match_dense_oracle() {
        let mut x = CrossbarBuilder::new(7, 5).seed(9).build().unwrap();
        for r in 0..7 {
            for c in 0..5 {
                x.write_level(r, c, ((r * 3 + c * 5) % 8) as u16).unwrap();
            }
        }
        let mut store = OffChipStore::attach(&mut x);
        for t in [1usize, 2, 3, 7] {
            store.ensure_aggregates(t);
            // A sparse candidate set exercising saturation at both ends.
            let mut mask = vec![false; 35];
            for i in [0usize, 6, 11, 17, 23, 29, 34] {
                mask[i] = true;
            }
            let candidates = CandidateMask::from_mask(7, 5, mask.clone());
            for delta in [1i32, -1, 3, -9] {
                let deltas: Vec<i32> = mask.iter().map(|&m| if m { delta } else { 0 }).collect();
                for g in 0..7usize.div_ceil(t) {
                    let rows = g * t..((g + 1) * t).min(7);
                    assert_eq!(
                        store.expected_column_group_sums_cached(rows.clone(), &candidates, delta),
                        store.expected_column_group_sums(rows, &deltas),
                    );
                }
                for g in 0..5usize.div_ceil(t) {
                    let cols = g * t..((g + 1) * t).min(5);
                    assert_eq!(
                        store.expected_row_group_sums_cached(cols.clone(), &candidates, delta),
                        store.expected_row_group_sums(cols, &deltas),
                    );
                }
            }
        }
    }

    #[test]
    fn cached_sums_follow_incremental_updates() {
        let mut x = programmed_xbar();
        let mut store = OffChipStore::attach(&mut x);
        store.ensure_aggregates(2);
        x.write_level(2, 1, 7).unwrap();
        x.write_level(0, 3, 0).unwrap();
        store.sync_from(&mut x).unwrap();
        // Aggregates were updated in place, not rebuilt: compare against a
        // freshly built store over the same levels.
        let mut fresh = OffChipStore::read_from(&x);
        fresh.ensure_aggregates(2);
        let candidates = CandidateMask::all(4, 4);
        for g in 0..2 {
            let range = g * 2..(g + 1) * 2;
            assert_eq!(
                store.expected_column_group_sums_cached(range.clone(), &candidates, 1),
                fresh.expected_column_group_sums_cached(range.clone(), &candidates, 1),
            );
            assert_eq!(
                store.expected_row_group_sums_cached(range.clone(), &candidates, 1),
                fresh.expected_row_group_sums_cached(range, &candidates, 1),
            );
        }
    }

    #[test]
    fn store_state_roundtrip_preserves_everything_observable() {
        let mut x = programmed_xbar();
        let mut store = OffChipStore::attach(&mut x);
        store.clear_pending();
        x.write_level(0, 0, 6).unwrap();
        x.nudge(1, 2, -1).unwrap();
        store.sync_from(&mut x).unwrap();
        store.ensure_aggregates(2);

        let st = store.export_state();
        let mut back = OffChipStore::restore_state(&st).unwrap();
        assert_eq!(store, back);
        assert_eq!(store.pending_mask(), back.pending_mask());
        assert_eq!(store.pending_count(), back.pending_count());
        // Aggregates rebuild exactly (integer sums are order-independent).
        back.ensure_aggregates(2);
        let candidates = CandidateMask::all(4, 4);
        for g in 0..2 {
            let range = g * 2..(g + 1) * 2;
            assert_eq!(
                store.expected_column_group_sums_cached(range.clone(), &candidates, 1),
                back.expected_column_group_sums_cached(range.clone(), &candidates, 1),
            );
            assert_eq!(
                store.expected_row_group_sums_cached(range.clone(), &candidates, 1),
                back.expected_row_group_sums_cached(range, &candidates, 1),
            );
        }
        // Double roundtrip is lossless.
        assert_eq!(back.export_state(), st);
    }

    #[test]
    fn restore_state_rejects_incoherent_snapshots() {
        let mut x = programmed_xbar();
        let store = OffChipStore::attach(&mut x);
        let good = store.export_state();
        assert!(OffChipStore::restore_state(&good).is_ok());

        // Tampered pending_count: the mask/count invariant must hold.
        let mut bad = good.clone();
        bad.pending_count += 1;
        assert!(OffChipStore::restore_state(&bad).is_err());

        // Truncated arrays.
        let mut bad = good.clone();
        bad.stored.pop();
        assert!(OffChipStore::restore_state(&bad).is_err());
        let mut bad = good.clone();
        bad.pending.pop();
        assert!(OffChipStore::restore_state(&bad).is_err());

        // A level outside the range.
        let mut bad = good.clone();
        bad.stored[0] = bad.levels;
        assert!(OffChipStore::restore_state(&bad).is_err());

        // Zero dimensions.
        let mut bad = good;
        bad.rows = 0;
        assert!(OffChipStore::restore_state(&bad).is_err());
    }

    #[test]
    fn absorb_drops_restored_cells_but_keeps_failures_pending() {
        let mut x = programmed_xbar();
        let mut store = OffChipStore::attach(&mut x);
        store.clear_pending();

        // A campaign-style round trip: nudge then restore.
        x.nudge(0, 1, 1).unwrap();
        x.write_level(0, 1, store.stored_level(0, 1)).unwrap();
        // A cell that wears out mid-campaign and cannot be restored.
        x.nudge(2, 2, 1).unwrap();
        let mut map = FaultMap::healthy(4, 4);
        map.set(2, 2, Some(FaultKind::StuckAt1));
        x.apply_fault_map(&map);

        store.absorb_campaign_writes(&mut x).unwrap();
        assert!(!store.pending_mask()[1], "restored cell is not re-marked");
        assert!(store.pending_mask()[2 * 4 + 2], "stuck cell stays pending");
        assert_eq!(store.stored_level(2, 2), x.read_level(2, 2).unwrap());
        assert!(x.dirty_cells().is_empty());
        assert_eq!(store.pending_count(), 1);
    }
}

//! **P1 — panic policy.**
//!
//! Library code in the crates listed under `[checks.P1] lib_crates` may
//! only panic deliberately: every `.unwrap()` / `.expect(...)` /
//! `panic!` / `unreachable!` / `todo!` / `unimplemented!` on a
//! caller-reachable path, and every panic-related `#[allow(clippy::…)]`
//! escape hatch, must carry a `// PANIC-OK: <reason>` comment (same line
//! or within the lookback window above). Test code (`#[cfg(test)]`
//! items, `tests/`, `benches/`, `examples/`, `src/bin`) is exempt —
//! matching the `just clippy-unwrap` gate, which builds `--lib` without
//! `cfg(test)`.

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::model::{FileRole, SourceFile};

use super::{lookback, path_allowed, Check};

const MARKER: &str = "PANIC-OK:";

/// Panic-policy check (see module docs).
pub struct PanicPolicy;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

impl Check for PanicPolicy {
    fn id(&self) -> &'static str {
        "P1"
    }

    fn description(&self) -> &'static str {
        "library panic sites and panic-lint allows require a // PANIC-OK: justification"
    }

    fn check_file(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        if file.role != FileRole::Lib || path_allowed(cfg, self.id(), &file.rel_path) {
            return;
        }
        let lib_crates = cfg.list("checks.P1", "lib_crates");
        let in_scope = file
            .crate_name
            .as_ref()
            .map(|c| lib_crates.iter().any(|l| l == c))
            .unwrap_or(false);
        if !in_scope {
            return;
        }
        let lb = lookback(cfg, self.id());

        // Escape hatches: every panic-related #[allow] needs a reason.
        // Convention allows the comment above the attribute *or*
        // directly after it (attr, then // PANIC-OK:, then statement).
        for (_, attr_line) in &file.panic_allow_scopes {
            if file.in_test_code(*attr_line) {
                continue;
            }
            if !reason_in_range(file, attr_line.saturating_sub(lb), attr_line + 2) {
                out.push(Finding {
                    check: self.id(),
                    file: file.rel_path.clone(),
                    line: *attr_line,
                    message: "panic-lint #[allow] without a // PANIC-OK: <reason> comment"
                        .to_string(),
                });
            }
        }

        // Panic sites outside justified allow scopes.
        let toks = &file.scan.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let site = if (tok.text == "unwrap" || tok.text == "expect")
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).map(|t| t.text == "(").unwrap_or(false)
            {
                Some(format!(".{}()", tok.text))
            } else if PANIC_MACROS.contains(&tok.text.as_str())
                && toks.get(i + 1).map(|t| t.text == "!").unwrap_or(false)
            {
                Some(format!("{}!", tok.text))
            } else {
                None
            };
            let Some(site) = site else { continue };
            if file.in_test_code(tok.line) {
                continue;
            }
            if file.in_panic_allow(tok.line) {
                // The enclosing #[allow] is the unit of justification;
                // it was validated above.
                continue;
            }
            if has_reason(file, tok.line, lb) {
                continue;
            }
            out.push(Finding {
                check: self.id(),
                file: file.rel_path.clone(),
                line: tok.line,
                message: format!("{site} in library code without a // PANIC-OK: <reason> comment"),
            });
        }
    }
}

/// Marker plus a non-empty reason, same line or within `lb` lines above.
fn has_reason(file: &SourceFile, line: usize, lb: usize) -> bool {
    reason_in_range(file, line.saturating_sub(lb), line)
}

/// `PANIC-OK:` with a non-empty reason anywhere in `[lo, hi]`.
fn reason_in_range(file: &SourceFile, lo: usize, hi: usize) -> bool {
    marker_in_range(file, lo, hi, MARKER)
}

/// Shared across P1/F1/S1: marker with a non-empty reason, same line or
/// within `lb` lines above `line`.
pub(crate) fn marker_has_text(file: &SourceFile, line: usize, lb: usize, marker: &str) -> bool {
    marker_in_range(file, line.saturating_sub(lb), line, marker)
}

/// The annotation must not be bare — something must follow `<marker>`.
fn marker_in_range(file: &SourceFile, lo: usize, hi: usize, marker: &str) -> bool {
    file.scan.comments.iter().any(|c| {
        let span = c.text.matches('\n').count();
        let covers = (lo..=hi).any(|l| l >= c.line && l <= c.line + span);
        if !covers {
            return false;
        }
        c.text
            .find(marker)
            .map(|at| !c.text[at + marker.len()..].trim().is_empty())
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::lib_file;

    fn run(src: &str) -> Vec<Finding> {
        let cfg = Config::parse("[checks.P1]\nlib_crates = [\"demo\"]\n").expect("cfg");
        let file = lib_file("crates/demo/src/lib.rs", "demo", src);
        let mut out = Vec::new();
        PanicPolicy.check_file(&file, &cfg, &mut out);
        out
    }

    #[test]
    fn flags_bare_unwrap_and_panic_macro() {
        let out = run("pub fn f(x: Option<u8>) -> u8 {\n    let v = x.unwrap();\n    if v > 9 { panic!(\"no\") }\n    v\n}\n");
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains(".unwrap()"));
        assert!(out[1].message.contains("panic!"));
    }

    #[test]
    fn passes_with_panic_ok_comment() {
        let out = run(
            "pub fn f(x: Option<u8>) -> u8 {\n    // PANIC-OK: x is checked above\n    x.unwrap()\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn bare_marker_without_reason_still_fails() {
        let out = run("pub fn f(x: Option<u8>) -> u8 {\n    // PANIC-OK:\n    x.unwrap()\n}\n");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn allow_attr_needs_reason_but_covers_its_scope() {
        let ok = run(
            "// PANIC-OK: invariant upheld by construction\n#[allow(clippy::unwrap_used)]\npub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let bad = run(
            "#[allow(clippy::unwrap_used)]\npub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
        );
        assert_eq!(bad.len(), 1, "attr without reason is one finding");
        assert!(bad[0].message.contains("#[allow]"));
    }

    #[test]
    fn attr_then_comment_convention_is_accepted() {
        // The workspace's established style: attribute first, then the
        // justification, then the statement.
        let out = run(
            "pub fn f(x: Option<u8>) -> u8 {\n    #[allow(clippy::expect_used)]\n    // PANIC-OK: documented contract — see `# Panics`.\n    x.expect(\"contract\")\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let out = run(
            "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        None::<u8>.unwrap();\n    }\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unwrap_or_variants_are_not_panic_sites() {
        let out = run(
            "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap_or(0).max(x.unwrap_or_default())\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let cfg = Config::parse("[checks.P1]\nlib_crates = [\"other\"]\n").expect("cfg");
        let file = lib_file(
            "crates/demo/src/lib.rs",
            "demo",
            "pub fn f(x: Option<u8>) { x.unwrap(); }",
        );
        let mut out = Vec::new();
        PanicPolicy.check_file(&file, &cfg, &mut out);
        assert!(out.is_empty());
    }
}

//! **Fig. 7(a) (entire-CNN case)** — fault-tolerant on-line training with
//! all VGG-11 layers mapped onto RCS and low-endurance cells.
//!
//! Paper setting: mean endurance 5×10⁶ over a 5 M-iteration run, 10 %
//! initial faults. Reported result: the original method's accuracy peaks
//! below 40 % and then drops; threshold training restores the peak to 83 %
//! (comparable to fault-free 85.2 %); detection + re-mapping cannot improve
//! further because conv layers have too little sparsity.
//!
//! ```text
//! cargo run --release -p ftt-bench --bin fig7a_entire_cnn
//! ```

use ftt_bench::{arg_or, print_curves, run_flow};
use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use nn::models::vgg11_cifar;
use nn::optimizer::LrSchedule;
use nn::synth::SyntheticDataset;
use rram::endurance::EnduranceModel;

fn main() {
    let iterations = arg_or("--iterations", 5000u64);
    let divisor = arg_or("--divisor", 8usize);
    let data = SyntheticDataset::cifar_like(512, 128, 21);
    let schedule = LrSchedule::step_decay(0.01, 0.7, iterations / 3);
    // Fault kinds are SA0-dominant, following the march-test defect
    // characterization the paper cites ([5], Chen et al.).
    let endurance =
        EnduranceModel::new(iterations as f64, 0.3 * iterations as f64).with_wearout_sa0_prob(0.8);
    let mapping = || {
        MappingConfig::new(MappingScope::EntireNetwork)
            .with_initial_fault_fraction(0.10)
            .with_initial_sa0_prob(0.8)
            .with_endurance(endurance)
            .with_seed(17)
    };
    let eval = iterations / 40;

    let runs = vec![
        run_flow(
            "ideal case (no faults)",
            vgg11_cifar(divisor, 3),
            MappingConfig::new(MappingScope::EntireNetwork).with_seed(17),
            FlowConfig::original()
                .with_lr(schedule)
                .with_eval_interval(eval),
            &data,
            iterations,
        ),
        run_flow(
            "original method",
            vgg11_cifar(divisor, 3),
            mapping(),
            FlowConfig::original()
                .with_lr(schedule)
                .with_eval_interval(eval),
            &data,
            iterations,
        ),
        run_flow(
            "fault-tolerant method with threshold training",
            vgg11_cifar(divisor, 3),
            mapping(),
            FlowConfig::threshold_only()
                .with_lr(schedule)
                .with_eval_interval(eval),
            &data,
            iterations,
        ),
        run_flow(
            "entire fault-tolerant method",
            vgg11_cifar(divisor, 3),
            mapping(),
            FlowConfig::fault_tolerant()
                .with_lr(schedule)
                .with_eval_interval(eval)
                .with_detection_interval(iterations / 6)
                .with_detection_warmup(iterations / 2),
            &data,
            iterations,
        ),
    ];
    print_curves(
        &format!(
            "Fig. 7(a): entire-CNN case (VGG-11/{divisor}, 10% initial faults, wearing cells, {iterations} iterations)"
        ),
        &runs,
        "fig7a_entire_cnn",
    );
}

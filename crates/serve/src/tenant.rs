//! Tenant specifications.
//!
//! Two tenant kinds share the service:
//!
//! - **Inference tenants** ([`InferenceSpec`]) own a seeded weight plane
//!   sharded onto one fleet chip via [`ftt_tile::TiledMapping`]; their
//!   traffic arrives through the admission queue and is served in
//!   batched MVM passes.
//! - **Training tenants** ([`TrainingSpec`]) own a complete
//!   [`ftt_core::FaultTolerantTrainer`] (which carries its *own* mapped
//!   chip — hardware faults are chip-local). They are *homed* on a fleet
//!   node purely for quota accounting and migration placement; one
//!   training iteration runs per service tick.
//!
//! Both kinds carry a `tile_quota`: the placement bound debited against
//! a node's `tile_budget` when the tenant is registered.

use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use nn::data::Dataset;
use nn::init::init_rng;
use nn::network::Network;

/// An inference tenant: a fixed weight plane served from the fleet.
#[derive(Debug, Clone)]
pub struct InferenceSpec {
    /// Unique tenant name (also the metric label value).
    pub name: String,
    /// Input width (crossbar rows) of the weight plane.
    pub rows: usize,
    /// Output width (crossbar columns) of the weight plane.
    pub cols: usize,
    /// Seed for the programmed weight targets.
    pub weight_seed: u64,
    /// Tiles the tenant may occupy on its home node.
    pub tile_quota: usize,
}

/// A training tenant: a fault-tolerant training job stepped one
/// iteration per service tick.
#[derive(Debug, Clone)]
pub struct TrainingSpec {
    /// Unique tenant name (also the metric label value).
    pub name: String,
    /// Flattened input width of the synthetic image task.
    pub inputs: usize,
    /// Hidden layer width of the MLP.
    pub hidden: usize,
    /// Class count of the synthetic task.
    pub classes: usize,
    /// Training / test split sizes.
    pub train_n: usize,
    /// Test split size.
    pub test_n: usize,
    /// Seed for weights, data, and the tenant's private chip.
    pub seed: u64,
    /// Tiles debited from the home node's placement budget.
    pub tile_quota: usize,
    /// Fabrication-fault fraction injected into the tenant's chip.
    pub fault_fraction: f64,
    /// Cold spares on the tenant's chip; when the pool exhausts the
    /// service migrates the tenant to a fresh chip.
    pub spare_tiles: usize,
    /// Predicted-fault-density threshold above which a tile is retired.
    pub retire_fault_density: f64,
    /// Trainer iterations between §4 detection campaigns.
    pub detection_interval: u64,
    /// Trainer iterations before the first campaign.
    pub detection_warmup: u64,
}

impl TrainingSpec {
    /// `inputs` as a square-ish single-channel image shape `(h, w)`;
    /// callers pick `inputs` so this divides evenly.
    fn image_shape(&self) -> (usize, usize) {
        let mut h = (self.inputs as f64).sqrt() as usize;
        while h > 1 && !self.inputs.is_multiple_of(h) {
            h -= 1;
        }
        (h, self.inputs / h)
    }

    /// The tenant's template network, freshly initialized from its seed.
    pub fn network(&self) -> Network {
        let mut rng = init_rng(self.seed);
        nn::models::mlp(self.inputs, self.hidden, self.classes, &mut rng)
    }

    /// The tenant's synthetic dataset, flattened for the MLP.
    pub fn dataset(&self) -> Dataset {
        let (h, w) = self.image_shape();
        let raw = nn::synth::SyntheticDataset::images(
            self.train_n,
            self.test_n,
            self.seed ^ 0xD474,
            1,
            h,
            w,
            self.classes,
        );
        let (train_x, train_y) = raw.train_set();
        let (test_x, test_y) = raw.test_set();
        Dataset::new(
            train_x.reshape(vec![self.train_n, self.inputs]),
            train_y,
            test_x.reshape(vec![self.test_n, self.inputs]),
            test_y,
            self.classes,
        )
    }

    /// Hardware mapping for the tenant's private chip. `salt` varies per
    /// placement, so a migrated tenant lands on a *different* chip (new
    /// tile seeds, new fault map) than the one it left.
    pub fn mapping_config(&self, tile_size: usize, salt: u64) -> MappingConfig {
        MappingConfig::new(MappingScope::EntireNetwork)
            .with_tile_size(tile_size)
            .with_seed(self.seed ^ salt)
            .with_spare_tiles(self.spare_tiles)
            .with_retire_fault_density(self.retire_fault_density)
            .with_initial_fault_fraction(self.fault_fraction)
    }

    /// Training-flow configuration: threshold training with periodic
    /// detection (no re-mapping — sparing alone handles retirement, and
    /// the remap search would dominate a serving tick).
    pub fn flow_config(&self) -> FlowConfig {
        FlowConfig::threshold_only()
            .with_detection_interval(self.detection_interval)
            .with_detection_warmup(self.detection_warmup)
            // Curve evaluations run the full test split; keep them out of
            // the per-tick budget (the service is not an accuracy bench).
            .with_eval_interval(1_000_000)
    }
}

/// Either tenant kind, as handed to [`crate::service::Service::register`].
#[derive(Debug, Clone)]
pub enum TenantSpec {
    /// A batched-inference tenant on the shared fleet.
    Inference(InferenceSpec),
    /// A training job with a private chip, homed for quota accounting.
    Training(TrainingSpec),
}

impl TenantSpec {
    /// The tenant's unique name.
    pub fn name(&self) -> &str {
        match self {
            TenantSpec::Inference(s) => &s.name,
            TenantSpec::Training(s) => &s.name,
        }
    }

    /// Tiles the tenant's quota debits from its home node.
    pub fn tile_quota(&self) -> usize {
        match self {
            TenantSpec::Inference(s) => s.tile_quota,
            TenantSpec::Training(s) => s.tile_quota,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(inputs: usize) -> TrainingSpec {
        TrainingSpec {
            name: "t".into(),
            inputs,
            hidden: 6,
            classes: 3,
            train_n: 12,
            test_n: 6,
            seed: 5,
            tile_quota: 16,
            fault_fraction: 0.1,
            spare_tiles: 1,
            retire_fault_density: 0.1,
            detection_interval: 4,
            detection_warmup: 2,
        }
    }

    #[test]
    fn image_shape_covers_inputs_exactly() {
        for inputs in [36, 48, 30, 7] {
            let (h, w) = spec(inputs).image_shape();
            assert_eq!(h * w, inputs, "inputs={inputs}");
        }
    }

    #[test]
    fn dataset_is_flat_and_sized_for_the_network() {
        let s = spec(36);
        let d = s.dataset();
        let (x, _) = d.train_set();
        assert_eq!(x.shape(), &[12, 36]);
        assert_eq!(d.classes(), 3);
    }

    #[test]
    fn mapping_salt_changes_the_chip_seed() {
        let s = spec(36);
        let a = s.mapping_config(8, 1);
        let b = s.mapping_config(8, 2);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.tile_size, 8);
    }
}

//! Wear-aware tile health scoring.
//!
//! Health combines what detection *knows* (predicted fault density from
//! the tile's last §4 campaign) with what the device layer *accumulates*
//! (endurance wear-outs and write pressure). The score
//! `(1 − fault_density) · (1 − wear_fraction)` is 1 for a pristine tile
//! and decays toward 0 as stuck cells and wear-outs accumulate;
//! retirement policy compares the *predicted density* (not the score)
//! against the configured threshold, while schedulers may rank by wear to
//! spend test cycles where faults are most likely next.

use crate::chip::TileSlot;

/// One tile's health snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileHealth {
    /// Chip-global tile id.
    pub id: usize,
    /// Tile rows.
    pub rows: usize,
    /// Tile columns.
    pub cols: usize,
    /// Whether the tile has ever completed a detection campaign.
    pub tested: bool,
    /// Predicted faulty cells from the last campaign (0 when untested).
    pub faulty_cells: u64,
    /// Predicted fault density (`faulty_cells / cells`; 0 when untested).
    pub fault_density: f64,
    /// Endurance wear-out faults the device accumulated.
    pub wear_faults: u64,
    /// Write pulses the tile absorbed.
    pub write_pulses: u64,
    /// Whether the tile is retired.
    pub retired: bool,
    /// Whether the tile is an attached spare.
    pub spare: bool,
    /// Composite health in `[0, 1]`:
    /// `(1 − fault_density) · (1 − min(wear_faults / cells, 1))`.
    pub score: f64,
}

impl TileHealth {
    /// Snapshot a slot's health.
    pub fn from_slot(slot: &TileSlot) -> Self {
        let cells = slot.cells().max(1) as f64;
        let faulty = slot
            .last_detection
            .as_ref()
            .map(|d| d.predicted.count_faulty() as u64)
            .unwrap_or(0);
        let fault_density = faulty as f64 / cells;
        let wear_faults = slot.xbar.wear_faults();
        let wear_fraction = (wear_faults as f64 / cells).min(1.0);
        TileHealth {
            id: slot.id,
            rows: slot.xbar.rows(),
            cols: slot.xbar.cols(),
            tested: slot.last_detection.is_some(),
            faulty_cells: faulty,
            fault_density,
            wear_faults,
            write_pulses: slot.xbar.write_pulses(),
            retired: slot.retired,
            spare: slot.spare_origin.is_some(),
            score: (1.0 - fault_density) * (1.0 - wear_fraction),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::chip::{ChipConfig, TiledChip};
    use faultdet::detector::{DetectorConfig, OnlineFaultDetector};
    use rram::spatial::{FaultInjection, SpatialDistribution};

    #[test]
    fn pristine_tile_scores_one() {
        let mut c = TiledChip::new(ChipConfig::new(8, 8, 1)).unwrap();
        let id = c.allocate(8, 8).unwrap();
        let report = c.health_report();
        assert_eq!(report.len(), 1);
        let h = report[0];
        assert_eq!(h.id, id);
        assert!(!h.tested);
        assert_eq!(h.score, 1.0);
    }

    #[test]
    fn faults_lower_the_score() {
        let injection = FaultInjection::new(SpatialDistribution::Uniform, 0.25).unwrap();
        let mut c = TiledChip::new(ChipConfig::new(16, 8, 3).with_injection(injection)).unwrap();
        let id = c.allocate(16, 16).unwrap();
        let det = OnlineFaultDetector::new(DetectorConfig::new(1).unwrap());
        c.run_campaigns(&det, &[id]);
        let h = c.health_report()[0];
        assert!(h.tested);
        assert!(h.faulty_cells > 0);
        assert!(h.score < 1.0);
        assert!(
            (h.score - (1.0 - h.fault_density)).abs() < 1e-12,
            "no wear yet"
        );
    }

    #[test]
    fn spare_flag_tracks_origin() {
        let mut c = TiledChip::new(ChipConfig::new(8, 8, 1).with_spare_tiles(1)).unwrap();
        let id = c.allocate(4, 4).unwrap();
        c.substitute(id).unwrap();
        let report = c.health_report();
        assert!(report[0].retired && !report[0].spare);
        assert!(!report[1].retired && report[1].spare);
    }
}

//! Seeded multi-tenant serve demo + determinism gate.
//!
//! Runs the reference scenario (two chip nodes; two training tenants,
//! one of which exhausts its spare pool and migrates; one inference
//! tenant with a burst and a lull) at thread budgets {1, 4, MAX} and
//! requires the JSONL trace, the Prometheus rendering, and every
//! fingerprint to be byte-identical across budgets. Exits non-zero on
//! any divergence or on a missing acceptance event (shed, lull
//! campaign, migration).
//!
//! Usage: `serve_demo [seed]` (default seed 42). Writes the trace to
//! `results/serve_trace.jsonl` and the scrape body to
//! `results/serve_metrics.prom`, then prints a short summary.

use std::fs;
use std::process::ExitCode;

use ftt_serve::scenario::{run_reference_scenario, ScenarioReport};

const BUDGETS: [usize; 3] = [1, 4, par::MAX_THREADS];

fn run_at(budget: usize, seed: u64) -> Result<ScenarioReport, String> {
    par::set_thread_count(budget);
    let report = run_reference_scenario(seed);
    par::set_thread_count(0);
    report.map_err(|e| format!("scenario failed at {budget} threads: {e}"))
}

fn check(report: &ScenarioReport) -> Result<(), String> {
    if report.sheds == 0 {
        return Err("expected >= 1 shed/backpressure event".into());
    }
    if report.lull_campaigns == 0 {
        return Err("expected >= 1 lull-scheduled detection campaign".into());
    }
    if report.migrations == 0 {
        return Err("expected >= 1 snapshot-backed tenant migration".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(42);

    let reference = match run_at(BUDGETS[0], seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve_demo: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = check(&reference) {
        eprintln!("serve_demo: {e}");
        return ExitCode::FAILURE;
    }
    for &budget in &BUDGETS[1..] {
        let other = match run_at(budget, seed) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("serve_demo: {e}");
                return ExitCode::FAILURE;
            }
        };
        if other != reference {
            eprintln!(
                "serve_demo: thread budget {budget} diverged from budget 1 \
                 (trace {} vs {} bytes, output fp {:#018x} vs {:#018x})",
                other.trace.len(),
                reference.trace.len(),
                other.output_fingerprint,
                reference.output_fingerprint
            );
            return ExitCode::FAILURE;
        }
    }

    if let Err(e) = fs::create_dir_all("results")
        .and_then(|()| fs::write("results/serve_trace.jsonl", &reference.trace))
        .and_then(|()| fs::write("results/serve_metrics.prom", &reference.prometheus))
    {
        eprintln!("serve_demo: writing results/: {e}");
        return ExitCode::FAILURE;
    }

    println!("serve_demo seed={seed}: byte-identical at thread budgets {BUDGETS:?}");
    println!(
        "  ticks={} sheds={} lull_campaigns={} migrations={}",
        reference.ticks, reference.sheds, reference.lull_campaigns, reference.migrations
    );
    println!("  inference output fp {:#018x}", reference.output_fingerprint);
    for (tenant, fp) in &reference.param_fingerprints {
        println!("  {tenant} params fp {fp:#018x}");
    }
    println!(
        "  trace: results/serve_trace.jsonl ({} lines)",
        reference.trace.lines().count()
    );
    println!(
        "  scrape: results/serve_metrics.prom ({} series lines)",
        reference
            .prometheus
            .lines()
            .filter(|l| !l.starts_with('#'))
            .count()
    );
    ExitCode::SUCCESS
}

//! Kill/restore chaos (DESIGN.md §12): snapshot the full run state at
//! adversarial iteration boundaries, "crash" (drop the trainer), resume
//! from bytes in a fresh recorder, and require the continuation to be
//! indistinguishable from never having crashed — byte-identical stitched
//! JSONL traces and field-identical `FlowStats`, at any worker budget,
//! with and without incremental detection.
//!
//! The adversarial boundaries target the state most likely to desynchronize
//! on restore: right after a detection + sparing + remap iteration (warm
//! `OffChipStore`s, refreshed spare stores, re-pointed shards), between
//! campaigns (open skip bursts, dirty journals mid-fill), and the first
//! boundary after warmup (ledgers barely populated).

use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use ftt_core::flow::FaultTolerantTrainer;
use nn::data::Dataset;
use nn::init::init_rng;
use nn::network::Network;
use nn::optimizer::LrSchedule;
use nn::synth::SyntheticDataset;
use obs::{JsonlSink, JsonlView, Recorder};

use crate::{ensure, FamilyReport};

fn net(seed: u64) -> Network {
    let mut rng = init_rng(seed);
    let mut n = Network::new();
    n.push(nn::layers::Dense::new(784, 12, &mut rng));
    n.push(nn::layers::Relu::new());
    n.push(nn::layers::Dense::new(12, 10, &mut rng));
    n
}

/// A mapping dense enough in faults and endurance wear that the 12-
/// iteration window crosses detection campaigns, wear faults, sparing,
/// and remaps — the state a snapshot must carry faithfully.
fn mapping(seed: u64) -> MappingConfig {
    let mut m = MappingConfig::new(MappingScope::EntireNetwork)
        .with_initial_fault_fraction(0.2)
        .with_endurance(rram::endurance::EnduranceModel::new(40.0, 10.0))
        .with_seed(seed)
        .with_spare_tiles(4)
        .with_retire_fault_density(0.1);
    m.tile_size = 64;
    m
}

fn flow(incremental: bool) -> FlowConfig {
    let f = FlowConfig::fault_tolerant()
        .with_lr(LrSchedule::constant(0.1))
        .with_detection_interval(5)
        .with_detection_warmup(0)
        .with_eval_interval(5);
    if incremental {
        f.with_incremental_detection()
    } else {
        f
    }
}

fn traced(seed: u64, incremental: bool) -> Result<(FaultTolerantTrainer, JsonlView), String> {
    let recorder = Recorder::deterministic();
    let sink = JsonlSink::new();
    let view = sink.view();
    recorder.add_sink(Box::new(sink));
    let trainer =
        FaultTolerantTrainer::with_recorder(net(seed), mapping(seed), flow(incremental), recorder)
            .map_err(|e| format!("new trainer: {e}"))?;
    Ok((trainer, view))
}

/// Runs `total` iterations uninterrupted, then again killed at `kill_at`
/// and resumed from serialized bytes, and compares traces and stats.
fn kill_restore_case(
    seed: u64,
    data: &Dataset,
    total: u64,
    kill_at: u64,
    incremental: bool,
) -> Result<(), String> {
    let (mut full, full_view) = traced(seed, incremental)?;
    full.train(data, total)
        .map_err(|e| format!("uninterrupted: {e}"))?;

    let (mut head, head_view) = traced(seed, incremental)?;
    head.train(data, kill_at).map_err(|e| format!("head: {e}"))?;
    let bytes = ftt_snapshot::snapshot(&mut head);
    drop(head); // the crash: nothing survives but the bytes

    let recorder = Recorder::deterministic();
    let sink = JsonlSink::new();
    let tail_view = sink.view();
    recorder.add_sink(Box::new(sink));
    let mut resumed =
        ftt_snapshot::resume(&bytes, net(seed), mapping(seed), flow(incremental), recorder)
            .map_err(|e| format!("resume @{kill_at}: {e}"))?;
    resumed
        .train(data, total - kill_at)
        .map_err(|e| format!("tail: {e}"))?;

    let stitched = format!("{}{}", head_view.contents(), tail_view.contents());
    ensure(
        stitched == full_view.contents(),
        format!("kill@{kill_at}/{total}: stitched trace diverges from uninterrupted run"),
    )?;
    ensure(
        resumed.stats() == full.stats(),
        format!(
            "kill@{kill_at}/{total}: stats diverge: {:?} vs {:?}",
            resumed.stats(),
            full.stats()
        ),
    )
}

/// Kill/restore scenario family.
pub fn restore(seed: u64) -> FamilyReport {
    let mut fam = FamilyReport::new("restore");
    let data = SyntheticDataset::mnist_like(40, 10, seed);

    // The adversarial boundaries, full-sweep detection: after the first
    // post-warmup boundary (1), right after a detection + sparing + remap
    // iteration (5), and between campaigns with open bursts/journals (8).
    fam.case("kill_at_adversarial_boundaries_full_sweep", || {
        for kill_at in [1u64, 5, 8] {
            kill_restore_case(seed, &data, 12, kill_at, false)?;
        }
        Ok(())
    });

    // The same boundaries with incremental detection: snapshots now carry
    // warm `OffChipStore`s (stored planes, pending masks, counts) and the
    // spare-store handover from `apply_sparing`.
    fam.case("kill_at_adversarial_boundaries_incremental", || {
        for kill_at in [1u64, 5, 8] {
            kill_restore_case(seed, &data, 12, kill_at, true)?;
        }
        Ok(())
    });

    // The restore invariant must hold at every worker budget — and the
    // budget at snapshot time need not match the budget at resume time
    // (the harness pins one budget per whole comparison; cross-budget
    // equality follows from each budget matching its own uninterrupted
    // run, which the obs_stream family proves identical across budgets).
    fam.case("kill_restore_identical_at_thread_budgets_1_4_max", || {
        for budget in [1usize, 4, par::MAX_THREADS] {
            par::set_thread_count(budget);
            let outcome = kill_restore_case(seed ^ 0x31, &data, 10, 5, true);
            par::set_thread_count(0);
            outcome.map_err(|e| format!("budget {budget}: {e}"))?;
        }
        Ok(())
    });

    // Snapshot bytes are canonical: decode∘encode is the identity on the
    // wire, and a second snapshot of the resumed trainer equals a second
    // snapshot of the uninterrupted one (deep state equality, not just
    // observable equality).
    fam.case("snapshot_bytes_are_canonical_and_deep_equal", || {
        let (mut full, _fv) = traced(seed ^ 0x47, true)?;
        full.train(&data, 9).map_err(|e| e.to_string())?;
        let bytes = ftt_snapshot::snapshot(&mut full);
        let state = ftt_snapshot::decode(&bytes).map_err(|e| e.to_string())?;
        ensure(
            ftt_snapshot::encode(&state) == bytes,
            "decode∘encode must be the identity on snapshot bytes",
        )?;
        let recorder = Recorder::deterministic();
        let mut resumed = ftt_snapshot::resume(
            &bytes,
            net(seed ^ 0x47),
            mapping(seed ^ 0x47),
            flow(true),
            recorder,
        )
        .map_err(|e| e.to_string())?;
        ensure(
            ftt_snapshot::snapshot(&mut resumed) == bytes,
            "snapshot(resume(bytes)) must reproduce the exact bytes",
        )
    });

    // Corruption is rejected with typed errors, never a panic and never a
    // silently-wrong trainer: bit flips trip the digest, truncations trip
    // the reader, and structurally-valid-but-incoherent states trip the
    // domain validators.
    fam.case("corrupt_snapshots_rejected_never_panic", || {
        use ftt_snapshot::SnapshotError;
        let (mut t, _v) = traced(seed ^ 0x53, true)?;
        t.train(&data, 6).map_err(|e| e.to_string())?;
        let good = ftt_snapshot::snapshot(&mut t);

        ensure(
            matches!(
                ftt_snapshot::decode(&[]),
                Err(SnapshotError::Truncated { .. })
            ),
            "empty input must be Truncated",
        )?;
        // Flip every 997th byte (header and payload alike): each single
        // flip must yield a typed error, not a panic or a success.
        let mut pos = 0usize;
        while pos < good.len() {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            ensure(
                ftt_snapshot::decode(&bad).is_err(),
                format!("bit flip at byte {pos} must not decode"),
            )?;
            pos += 997;
        }
        for cut in [10, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad.truncate(cut);
            ensure(
                ftt_snapshot::decode(&bad).is_err(),
                format!("truncation to {cut} bytes must not decode"),
            )?;
        }
        // Incoherent pending count survives structural decode and is
        // caught by domain validation on resume.
        let mut state = ftt_snapshot::decode(&good).map_err(|e| e.to_string())?;
        let mut tampered = false;
        for slot in &mut state.mapped.chip.slots {
            if let Some(store) = &mut slot.store {
                store.pending_count = store.pending_count.wrapping_add(1);
                tampered = true;
                break;
            }
        }
        ensure(tampered, "incremental run must have a warm store")?;
        let bytes = ftt_snapshot::encode(&state);
        ensure(
            matches!(
                ftt_snapshot::resume(
                    &bytes,
                    net(seed ^ 0x53),
                    mapping(seed ^ 0x53),
                    flow(true),
                    Recorder::deterministic(),
                ),
                Err(SnapshotError::Invalid(_))
            ),
            "incoherent pending count must be rejected by domain validation",
        )
    });

    fam
}

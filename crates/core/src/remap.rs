//! Fault-tolerant re-mapping by neuron re-ordering (§5.2 of the paper).
//!
//! After a detection phase there are two networks: the *pruned network*
//! `P` (`p(n)_{i,j} = 0` where the weight can be fixed to zero, `∞`
//! otherwise) and the *fault-distribution network* `F` (`f(n)_{i,j} ∈ {0,1}`
//! for SA0/SA1 faults, `∞` for healthy cells). The **ErrorSet** is
//!
//! > `E = { (i, j, n) : p(n)_{i,j} ≠ 0  ∧  f(n)_{i,j} ≠ ∞ }`
//!
//! — the unpruned weights sitting on faulty cells — and
//! `Dist(P, F) = |E|` is the cost to minimize by re-ordering neurons.
//! Re-ordering neuron `i` and `j` of layer `n` exchanges *columns* `i, j`
//! of `W(n)` **and** *rows* `i, j` of `W(n+1)`, keeping the network
//! isomorphic (no routing hardware needed). The problem maps to coupled
//! knapsack instances and is NP-hard, so the paper uses a stochastic
//! neuron-swap search, optimizing layer by layer; a genetic algorithm and
//! two baselines are also provided for the ablation benches.
//!
//! # Parallel cost evaluation
//!
//! `Dist(P, F)` decomposes per layer, so [`RemapProblem::cost`] fans the
//! per-layer recounts across the [`par`] worker budget and sums the
//! partials in layer order (identical to the sequential count).
//! [`RemapAlgorithm::GreedySwapBatch`] goes further: each round draws a
//! *batch* of candidate swaps up front, scores every candidate's
//! incremental delta against the frozen permutations in parallel
//! (read-only [`RemapProblem::neuron_cost`] probes), then applies the
//! improving, non-conflicting candidates sequentially in draw order. Both
//! the candidate stream (drawn before the fan-out) and the application
//! policy are deterministic, so the search trajectory is identical at any
//! thread count.

use nn::network::Network;
use nn::permute::{permute_columns, permute_hidden_neurons, permute_row_blocks, Permutation};
use nn::pruning::PruneMask;
use rand::Rng;
use rram::fault::FaultKind;
use rram::rng::sim_rng;

use crate::config::RemapConfig;
use crate::error::FttError;
use crate::mapping::{LayerDetection, MappedNetwork};

/// The re-mapping search algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemapAlgorithm {
    /// Keep the current order (baseline).
    Identity,
    /// A single uniformly random re-order per group (baseline).
    RandomShuffle,
    /// The paper's method: repeatedly exchange two random neurons and keep
    /// the exchange when the cost does not increase.
    SwapHillClimb,
    /// Batched variant of the paper's method built for wide arrays: each
    /// round draws `batch` candidate swaps, scores all their incremental
    /// deltas in parallel against the frozen permutations, then applies the
    /// strictly improving, non-conflicting candidates in draw order.
    /// Deterministic at any thread count.
    GreedySwapBatch {
        /// Candidate swaps scored per round.
        batch: usize,
    },
    /// A genetic algorithm optimizing each neuron group in turn
    /// ("layer by layer" per the paper), with order crossover and swap
    /// mutation. The search runs as `islands` independent populations with
    /// per-island sub-RNGs (derived from the search seed) evolved in
    /// parallel on the [`par`] worker budget; every
    /// [`MIGRATION_INTERVAL`] generations the best individual of each
    /// island replaces the worst of its ring successor. Island evolution
    /// is pure (each consumes only its own snapshotted state), migration
    /// and the final seeded tie-break are sequential, so the winning
    /// permutation is identical at any thread count.
    Genetic {
        /// Population size per island.
        population: usize,
        /// Independent island populations (clamped to at least 1).
        islands: usize,
    },
}

/// How mapping errors are counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModel {
    /// The paper's `Dist(P, F)`: an error wherever an *unpruned* weight
    /// lands on *any* faulty cell.
    PaperDist,
    /// Physically stricter: an SA1 cell is an error regardless of pruning
    /// (a pruned zero on a stuck-at-max cell still reads full scale), while
    /// SA0 errors require an unpruned weight.
    Extended,
}

impl CostModel {
    #[inline]
    fn is_error(&self, pruned: bool, fault: Option<FaultKind>) -> bool {
        match (self, fault) {
            (_, None) => false,
            (CostModel::PaperDist, Some(_)) => !pruned,
            (CostModel::Extended, Some(FaultKind::StuckAt0)) => !pruned,
            (CostModel::Extended, Some(FaultKind::StuckAt1)) => true,
        }
    }
}

/// One layer of the re-mapping problem, in logical weight coordinates.
#[derive(Debug, Clone)]
struct RemapLayer {
    rows: usize,
    cols: usize,
    /// `true` = prunable (a zero the hardware can park on a fault).
    pruned: Vec<bool>,
    /// Detected fault at each cell.
    fault: Vec<Option<FaultKind>>,
}

/// A permutable neuron group: the output neurons of mapped layer `layer`,
/// whose re-order also gathers the row *blocks* of mapped layer `layer + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NeuronGroup {
    /// Position (index into the problem's layers) whose columns permute.
    layer: usize,
    /// Number of neurons (columns of `layer`).
    neurons: usize,
    /// Rows of `layer + 1` moved per neuron.
    block: usize,
}

/// The assembled re-mapping problem.
#[derive(Debug, Clone)]
pub struct RemapProblem {
    layers: Vec<RemapLayer>,
    groups: Vec<NeuronGroup>,
    cost_model: CostModel,
}

/// The chosen permutation per neuron group.
#[derive(Debug, Clone)]
pub struct RemapPlan {
    /// `(weight_layer_of_group, permutation)` pairs: the permutation
    /// re-orders the output neurons of that weight layer.
    perms: Vec<(usize, Permutation)>,
    /// Cost before the search.
    pub initial_cost: u64,
    /// Cost achieved by the search.
    pub final_cost: u64,
}

impl RemapPlan {
    /// The group permutations as `(weight_layer, permutation)`.
    pub fn perms(&self) -> &[(usize, Permutation)] {
        &self.perms
    }

    /// Whether the plan changes anything.
    pub fn is_identity(&self) -> bool {
        self.perms.iter().all(|(_, p)| p.is_identity())
    }

    /// Applies the plan to the software network (an isomorphism: the
    /// network's function is unchanged) and to the pruning mask so it stays
    /// aligned with the permuted weights.
    ///
    /// # Errors
    ///
    /// Returns an error if a permutation no longer matches the network
    /// geometry (which would indicate the network changed since planning).
    pub fn apply(&self, net: &mut Network, mask: &mut PruneMask) -> Result<(), FttError> {
        for (weight_layer, perm) in &self.perms {
            if perm.is_identity() {
                continue;
            }
            permute_hidden_neurons(net, *weight_layer, perm)?;
            permute_mask(mask, *weight_layer, perm)?;
        }
        Ok(())
    }
}

/// Permutes a [`PruneMask`] alongside the network: columns of weight layer
/// `k`, row blocks of weight layer `k + 1`.
fn permute_mask(mask: &mut PruneMask, k: usize, perm: &Permutation) -> Result<(), FttError> {
    let layers = mask.layers().to_vec();
    if k + 1 >= layers.len() {
        return Err(FttError::InvalidConfig(format!(
            "mask has no layer after weight layer {k}"
        )));
    }
    // Rebuild via the public API: masks are cheap.
    let mut rebuilt = layers;
    {
        let lm = &mut rebuilt[k];
        let (rows, cols) = lm.shape;
        if cols != perm.len() {
            return Err(FttError::InvalidConfig(format!(
                "mask layer {k} has {cols} cols, permutation covers {}",
                perm.len()
            )));
        }
        permute_columns(&mut lm.pruned, rows, cols, perm);
    }
    {
        let lm = &mut rebuilt[k + 1];
        let (rows, cols) = lm.shape;
        if rows % perm.len() != 0 {
            return Err(FttError::InvalidConfig(format!(
                "mask layer {} has {rows} rows, not divisible by {} neurons",
                k + 1,
                perm.len()
            )));
        }
        let block = rows / perm.len();
        permute_row_blocks(&mut lm.pruned, rows, cols, block, perm);
    }
    *mask = PruneMask::from_layers(rebuilt);
    Ok(())
}

impl RemapProblem {
    /// Assembles the problem from the mapped network, the pruning mask
    /// (over *all* weight layers, as produced by `nn::pruning`), and the
    /// per-layer fault detections.
    ///
    /// Only consecutive mapped weight layers with compatible geometry form
    /// permutable neuron groups; the paper's FC-only and entire-CNN cases
    /// both satisfy this.
    ///
    /// # Errors
    ///
    /// Returns [`FttError::InvalidConfig`] if the detections do not match
    /// the mapping.
    pub fn new(
        mapped: &MappedNetwork,
        mask: &PruneMask,
        detections: &[LayerDetection],
        cost_model: CostModel,
    ) -> Result<Self, FttError> {
        if detections.len() != mapped.layers().len() {
            return Err(FttError::InvalidConfig(format!(
                "{} detections for {} mapped layers",
                detections.len(),
                mapped.layers().len()
            )));
        }
        let mut layers = Vec::with_capacity(mapped.layers().len());
        for (ml, det) in mapped.layers().iter().zip(detections) {
            if det.weight_layer != ml.weight_layer {
                return Err(FttError::InvalidConfig(
                    "detections out of order with mapping".into(),
                ));
            }
            let lm = mask
                .layers()
                .iter()
                .find(|l| l.layer_index == ml.layer_index && l.shape == (ml.rows, ml.cols))
                .ok_or_else(|| {
                    FttError::InvalidConfig(format!(
                        "pruning mask missing weight layer {} ({}x{})",
                        ml.weight_layer, ml.rows, ml.cols
                    ))
                })?;
            let mut fault = vec![None; ml.rows * ml.cols];
            for (r, c, kind) in det.predicted.iter_faulty() {
                fault[r * ml.cols + c] = Some(kind);
            }
            layers.push(RemapLayer {
                rows: ml.rows,
                cols: ml.cols,
                pruned: lm.pruned.clone(),
                fault,
            });
        }
        // Neuron groups between consecutive mapped layers that are also
        // consecutive weight layers with divisible geometry.
        let mut groups = Vec::new();
        for i in 0..layers.len().saturating_sub(1) {
            let consecutive =
                mapped.layers()[i + 1].weight_layer == mapped.layers()[i].weight_layer + 1;
            let neurons = layers[i].cols;
            if consecutive && neurons > 1 && layers[i + 1].rows % neurons == 0 {
                groups.push(NeuronGroup {
                    layer: i,
                    neurons,
                    block: layers[i + 1].rows / neurons,
                });
            }
        }
        Ok(Self {
            layers,
            groups,
            cost_model,
        })
    }

    /// Builds the problem from ground-truth fault maps instead of detector
    /// output (the oracle upper bound for the ablation benches).
    pub fn with_ground_truth(
        mapped: &MappedNetwork,
        mask: &PruneMask,
        cost_model: CostModel,
    ) -> Result<Self, FttError> {
        let detections: Vec<LayerDetection> = mapped
            .layers()
            .iter()
            .zip(mapped.ground_truth())
            .map(|(ml, truth)| LayerDetection {
                weight_layer: ml.weight_layer,
                predicted: truth,
                cycles: 0,
                write_pulses: 0,
                untested_groups: 0,
            })
            .collect();
        Self::new(mapped, mask, &detections, cost_model)
    }

    /// Number of permutable neuron groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The total cost `Dist(P, F)` under identity permutations.
    pub fn baseline_cost(&self) -> u64 {
        let perms: Vec<Permutation> = self
            .groups
            .iter()
            .map(|g| Permutation::identity(g.neurons))
            .collect();
        self.cost(&perms)
    }

    /// Evaluates `Dist(P, F)` for a full assignment of group permutations.
    ///
    /// The count decomposes per layer, so the per-layer recounts run on the
    /// [`par`] worker budget (gated on total cell count) and the partials
    /// are summed in layer order — identical to the sequential count.
    ///
    /// # Panics
    ///
    /// Panics if the permutation count or sizes mismatch the groups.
    pub fn cost(&self, perms: &[Permutation]) -> u64 {
        assert_eq!(perms.len(), self.groups.len(), "one permutation per group");
        let est = self
            .layers
            .iter()
            .map(|l| l.rows * l.cols)
            .max()
            .unwrap_or(0);
        par::map_indices_hinted(self.layers.len(), est, |li| self.layer_cost(perms, li))
            .into_iter()
            .sum()
    }

    /// [`Self::cost`] without the fan-out: the same per-layer counts summed
    /// in layer order on the calling thread. Used inside parallel island
    /// evolution, where each worker must stay self-contained.
    fn cost_sequential(&self, perms: &[Permutation]) -> u64 {
        assert_eq!(perms.len(), self.groups.len(), "one permutation per group");
        (0..self.layers.len())
            .map(|li| self.layer_cost(perms, li))
            .sum()
    }

    /// The `Dist(P, F)` contribution of one layer under the permutations.
    fn layer_cost(&self, perms: &[Permutation], li: usize) -> u64 {
        let layer = &self.layers[li];
        let mut total = 0u64;
        // The permutation acting on this layer's columns (output side)
        // and on its row blocks (input side).
        let out_perm = self
            .groups
            .iter()
            .position(|g| g.layer == li)
            .map(|gi| &perms[gi]);
        let in_group = self.groups.iter().position(|g| g.layer + 1 == li);
        let in_perm = in_group.map(|gi| (&perms[gi], self.groups[gi].block));
        for i in 0..layer.rows {
            // Logical row i of the hardware receives software row src_i.
            let src_i = match in_perm {
                Some((p, block)) => p.as_slice()[i / block] * block + i % block,
                None => i,
            };
            for j in 0..layer.cols {
                let src_j = match out_perm {
                    Some(p) => p.as_slice()[j],
                    None => j,
                };
                let pruned = layer.pruned[src_i * layer.cols + src_j];
                let fault = layer.fault[i * layer.cols + j];
                if self.cost_model.is_error(pruned, fault) {
                    total += 1;
                }
            }
        }
        total
    }

    /// Cost contribution of one neuron position within a group: the slice
    /// of `layer`'s column `j` plus `layer + 1`'s row block `j`, under the
    /// given permutations. Used for O(rows + block·cols) swap deltas.
    fn neuron_cost(&self, perms: &[Permutation], group_idx: usize, j: usize) -> u64 {
        self.neuron_cost_as(perms, group_idx, j, perms[group_idx].as_slice()[j])
    }

    /// [`neuron_cost`] with the source neuron at position `j` overridden to
    /// `src` instead of `perms[group_idx][j]`. This scores a *hypothetical*
    /// swap without mutating any permutation: after swapping positions
    /// `a, b` the cost at `a` is `neuron_cost_as(…, a, perms[g][b])` and
    /// vice versa, because within a group the cost at one position never
    /// depends on the group's assignment at other positions (the in/out
    /// environment comes from *adjacent* groups). Read-only, so candidate
    /// swaps can be scored in parallel against frozen permutations.
    ///
    /// [`neuron_cost`]: Self::neuron_cost
    fn neuron_cost_as(&self, perms: &[Permutation], group_idx: usize, j: usize, src: usize) -> u64 {
        let group = self.groups[group_idx];
        let li = group.layer;
        let mut total = 0u64;
        // Column j of layer li.
        {
            let layer = &self.layers[li];
            let src_j = src;
            let in_perm = self
                .groups
                .iter()
                .position(|g| g.layer + 1 == li)
                .map(|gi| (&perms[gi], self.groups[gi].block));
            for i in 0..layer.rows {
                let src_i = match in_perm {
                    Some((p, block)) => p.as_slice()[i / block] * block + i % block,
                    None => i,
                };
                let pruned = layer.pruned[src_i * layer.cols + src_j];
                let fault = layer.fault[i * layer.cols + j];
                if self.cost_model.is_error(pruned, fault) {
                    total += 1;
                }
            }
        }
        // Row block j of layer li + 1.
        {
            let layer = &self.layers[li + 1];
            let out_perm = self
                .groups
                .iter()
                .position(|g| g.layer == li + 1)
                .map(|gi| &perms[gi]);
            let src_block = src;
            for b in 0..group.block {
                let i = j * group.block + b;
                let src_i = src_block * group.block + b;
                for c in 0..layer.cols {
                    let src_c = match out_perm {
                        Some(p) => p.as_slice()[c],
                        None => c,
                    };
                    let pruned = layer.pruned[src_i * layer.cols + src_c];
                    let fault = layer.fault[i * layer.cols + c];
                    if self.cost_model.is_error(pruned, fault) {
                        total += 1;
                    }
                }
            }
        }
        total
    }

    /// Runs the configured search and returns the plan (with the group
    /// permutations keyed by weight layer, ready for
    /// [`RemapPlan::apply`]).
    pub fn solve(&self, mapped: &MappedNetwork, config: &RemapConfig) -> RemapPlan {
        let mut rng = sim_rng(config.seed);
        let mut perms: Vec<Permutation> = self
            .groups
            .iter()
            .map(|g| Permutation::identity(g.neurons))
            .collect();
        let initial_cost = self.cost(&perms);
        match config.algorithm {
            RemapAlgorithm::Identity => {}
            RemapAlgorithm::RandomShuffle => {
                for (gi, group) in self.groups.iter().enumerate() {
                    perms[gi] = Permutation::random(group.neurons, &mut rng);
                }
            }
            RemapAlgorithm::SwapHillClimb => {
                if !self.groups.is_empty() {
                    for _ in 0..config.iterations {
                        let gi = rng.gen_range(0..self.groups.len());
                        let n = self.groups[gi].neurons;
                        let a = rng.gen_range(0..n);
                        let b = rng.gen_range(0..n);
                        if a == b {
                            continue;
                        }
                        let before =
                            self.neuron_cost(&perms, gi, a) + self.neuron_cost(&perms, gi, b);
                        perms[gi].swap(a, b);
                        let after =
                            self.neuron_cost(&perms, gi, a) + self.neuron_cost(&perms, gi, b);
                        if after > before {
                            perms[gi].swap(a, b); // revert
                        }
                    }
                }
            }
            RemapAlgorithm::GreedySwapBatch { batch } => {
                if !self.groups.is_empty() {
                    self.greedy_swap_batch(&mut perms, batch.max(1), config.iterations, &mut rng);
                }
            }
            RemapAlgorithm::Genetic {
                population,
                islands,
            } => {
                let population = population.max(4);
                let islands = islands.max(1);
                // Same total search budget regardless of the island count.
                let generations = (config.iterations / population / islands).max(1);
                // Layer by layer, as in the paper.
                for gi in 0..self.groups.len() {
                    perms[gi] = self.genetic_group(
                        &perms,
                        gi,
                        population,
                        islands,
                        generations,
                        config.seed,
                    );
                }
            }
        }
        let final_cost = self.cost(&perms);
        let plan_perms = self
            .groups
            .iter()
            .zip(perms)
            .map(|(g, p)| (mapped.layers()[g.layer].weight_layer, p))
            .collect();
        RemapPlan {
            perms: plan_perms,
            initial_cost,
            final_cost,
        }
    }

    /// The batched greedy swap search. Per round:
    ///
    /// 1. draw `batch` candidate `(group, a, b)` swaps from the (sequential,
    ///    deterministic) RNG stream;
    /// 2. score every candidate's delta in parallel with read-only
    ///    [`Self::neuron_cost_as`] probes against the frozen permutations;
    /// 3. apply strictly improving candidates in draw order, skipping any
    ///    whose delta may have gone stale — a position already swapped this
    ///    round, or a group whose in/out environment (an adjacent group)
    ///    was already modified this round.
    ///
    /// The parallel step is pure, so the trajectory is identical at any
    /// thread count.
    fn greedy_swap_batch(
        &self,
        perms: &mut [Permutation],
        batch: usize,
        iterations: usize,
        rng: &mut rand::rngs::StdRng,
    ) {
        // groups adjacent to gi: those feeding its layer or fed by it.
        let adjacent: Vec<Vec<usize>> = self
            .groups
            .iter()
            .map(|g| {
                self.groups
                    .iter()
                    .enumerate()
                    .filter(|(_, h)| h.layer + 1 == g.layer || g.layer + 1 == h.layer)
                    .map(|(hi, _)| hi)
                    .collect()
            })
            .collect();
        // Four neuron_cost probes per candidate, each O(rows + block·cols).
        let probe_ops = self
            .groups
            .iter()
            .map(|g| 4 * (self.layers[g.layer].rows + g.block * self.layers[g.layer + 1].cols))
            .max()
            .unwrap_or(0);
        let rounds = (iterations / batch).max(1);
        for _ in 0..rounds {
            let candidates: Vec<(usize, usize, usize)> = (0..batch)
                .filter_map(|_| {
                    let gi = rng.gen_range(0..self.groups.len());
                    let n = self.groups[gi].neurons;
                    let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
                    (a != b).then(|| (gi, a.min(b), a.max(b)))
                })
                .collect();
            let frozen: &[Permutation] = perms;
            let deltas = par::map_indices_hinted(candidates.len(), probe_ops, |k| {
                let (gi, a, b) = candidates[k];
                let (pa, pb) = (frozen[gi].as_slice()[a], frozen[gi].as_slice()[b]);
                let before =
                    self.neuron_cost_as(frozen, gi, a, pa) + self.neuron_cost_as(frozen, gi, b, pb);
                let after =
                    self.neuron_cost_as(frozen, gi, a, pb) + self.neuron_cost_as(frozen, gi, b, pa);
                after as i64 - before as i64
            });
            let mut touched: Vec<Vec<bool>> =
                self.groups.iter().map(|g| vec![false; g.neurons]).collect();
            let mut group_modified = vec![false; self.groups.len()];
            for (&(gi, a, b), &delta) in candidates.iter().zip(&deltas) {
                if delta >= 0
                    || touched[gi][a]
                    || touched[gi][b]
                    || adjacent[gi].iter().any(|&hi| group_modified[hi])
                {
                    continue;
                }
                perms[gi].swap(a, b);
                touched[gi][a] = true;
                touched[gi][b] = true;
                group_modified[gi] = true;
            }
        }
    }

    /// Island-parallel GA over one neuron group with the other groups
    /// fixed.
    ///
    /// Each island holds its own population and its own sub-RNG derived
    /// from the search seed, so a round of evolution is a pure function of
    /// the island's snapshot — the rounds fan out over
    /// [`par::map_indices_hinted`] without perturbing the trajectory. After
    /// each round the best individual of island `i` replaces the worst of
    /// island `(i + 1) % islands` (computed from the pre-migration
    /// snapshot, applied in island order). The final winner is the
    /// minimum-cost individual across islands, ties broken by a seeded
    /// per-island key so the choice never depends on island evaluation
    /// order.
    fn genetic_group(
        &self,
        perms: &[Permutation],
        gi: usize,
        population: usize,
        islands: usize,
        generations: usize,
        seed: u64,
    ) -> Permutation {
        let n = self.groups[gi].neurons;
        let mut states: Vec<Island> = (0..islands)
            .map(|island| {
                // Golden-ratio seed spreading: distinct sub-streams per
                // (group, island) that never collide with the solver's own
                // `sim_rng(seed)` stream (the +1 skips the multiplier-zero
                // case).
                let salt =
                    0x9E37_79B9_7F4A_7C15u64.wrapping_mul((gi * islands + island + 1) as u64);
                let mut rng = sim_rng(seed.wrapping_add(salt));
                let pop: Vec<Permutation> = (0..population)
                    .map(|i| {
                        if i == 0 {
                            perms[gi].clone()
                        } else {
                            Permutation::random(n, &mut rng)
                        }
                    })
                    .collect();
                let scores = pop
                    .iter()
                    .map(|p| self.group_fitness(perms, gi, p))
                    .collect();
                Island { pop, scores, rng }
            })
            .collect();

        // One fitness evaluation walks every layer once.
        let cells: usize = self.layers.iter().map(|l| l.rows * l.cols).sum();
        let mut remaining = generations;
        while remaining > 0 {
            let round = remaining.min(MIGRATION_INTERVAL);
            remaining -= round;
            let frozen: &[Island] = &states;
            states = par::map_indices_hinted(islands, round * cells, |i| {
                let mut island = frozen[i].clone();
                self.evolve_island(&mut island, perms, gi, n, round);
                island
            });
            if islands > 1 && remaining > 0 {
                // Ring migration from the post-evolution snapshot.
                let emigrants: Vec<(Permutation, u64)> = states
                    .iter()
                    .map(|isl| {
                        let b = isl.best_index();
                        (isl.pop[b].clone(), isl.scores[b])
                    })
                    .collect();
                for (i, (immigrant, score)) in emigrants.iter().enumerate() {
                    let dst = &mut states[(i + 1) % islands];
                    let w = dst.worst_index();
                    if *score < dst.scores[w] {
                        dst.pop[w] = immigrant.clone();
                        dst.scores[w] = *score;
                    }
                }
            }
        }

        // Seeded tie-break: equal-cost winners from different islands are
        // ranked by a per-island key derived from the seed, not by island
        // position, so changing the island count reshuffles ties fairly.
        let mut best: Option<(u64, u64, usize, usize)> = None;
        for (i, isl) in states.iter().enumerate() {
            let b = isl.best_index();
            let tie = (seed ^ (i as u64).wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let key = (isl.scores[b], tie, i, b);
            let improves = match best {
                Some(k) => key < k,
                None => true,
            };
            if improves {
                best = Some(key);
            }
        }
        match best {
            Some((_, _, i, b)) => states[i].pop.swap_remove(b),
            // Unreachable (islands >= 1), but degrade to "no change" rather
            // than panicking mid-search.
            None => perms[gi].clone(),
        }
    }

    /// Fitness of one candidate permutation for group `gi`: `Dist(P, F)`
    /// with the other groups frozen.
    fn group_fitness(&self, perms: &[Permutation], gi: usize, p: &Permutation) -> u64 {
        let mut scratch = perms.to_vec();
        scratch[gi] = p.clone();
        self.cost_sequential(&scratch)
    }

    /// Evolves one island for `rounds` generations (tournament selection,
    /// order crossover, swap mutation, replace-worst). Pure with respect to
    /// everything but the island itself, so islands evolve in parallel.
    fn evolve_island(
        &self,
        island: &mut Island,
        perms: &[Permutation],
        gi: usize,
        n: usize,
        rounds: usize,
    ) {
        for _ in 0..rounds {
            // Tournament selection of two parents.
            let pick = |rng: &mut rand::rngs::StdRng| -> usize {
                let a = rng.gen_range(0..island.scores.len());
                let b = rng.gen_range(0..island.scores.len());
                if island.scores[a] <= island.scores[b] {
                    a
                } else {
                    b
                }
            };
            let pa = pick(&mut island.rng);
            let pb = pick(&mut island.rng);
            let mut child = order_crossover(&island.pop[pa], &island.pop[pb], &mut island.rng);
            // Swap mutation.
            if n >= 2 && island.rng.gen_bool(0.8) {
                let (x, y) = (island.rng.gen_range(0..n), island.rng.gen_range(0..n));
                child.swap(x, y);
            }
            let child_score = self.group_fitness(perms, gi, &child);
            // Replace the worst member if the child improves on it.
            let w = island.worst_index();
            if child_score < island.scores[w] {
                island.pop[w] = child;
                island.scores[w] = child_score;
            }
        }
    }
}

/// Generations an island evolves between ring migrations.
const MIGRATION_INTERVAL: usize = 8;

/// One independent GA population with its own deterministic sub-stream.
#[derive(Debug, Clone)]
struct Island {
    pop: Vec<Permutation>,
    scores: Vec<u64>,
    rng: rand::rngs::StdRng,
}

impl Island {
    /// Index of the best (lowest-score) member; first wins ties.
    fn best_index(&self) -> usize {
        let mut best = 0;
        for (i, &s) in self.scores.iter().enumerate() {
            if s < self.scores[best] {
                best = i;
            }
        }
        best
    }

    /// Index of the worst (highest-score) member; first wins ties.
    fn worst_index(&self) -> usize {
        let mut worst = 0;
        for (i, &s) in self.scores.iter().enumerate() {
            if s > self.scores[worst] {
                worst = i;
            }
        }
        worst
    }
}

/// Order crossover (OX) for permutations.
fn order_crossover(a: &Permutation, b: &Permutation, rng: &mut rand::rngs::StdRng) -> Permutation {
    let n = a.len();
    if n < 2 {
        return a.clone();
    }
    let (mut lo, mut hi) = (rng.gen_range(0..n), rng.gen_range(0..n));
    if lo > hi {
        std::mem::swap(&mut lo, &mut hi);
    }
    let mut child = vec![usize::MAX; n];
    let mut used = vec![false; n];
    for i in lo..=hi {
        child[i] = a.as_slice()[i];
        used[child[i]] = true;
    }
    let mut fill = (hi + 1) % n;
    for k in 0..n {
        let candidate = b.as_slice()[(hi + 1 + k) % n];
        if !used[candidate] {
            child[fill] = candidate;
            used[candidate] = true;
            fill = (fill + 1) % n;
        }
    }
    // OX produces a valid permutation by construction; if that invariant
    // were ever violated, degrade to a clone of parent `a` (a valid
    // individual) rather than panicking mid-search.
    Permutation::from_vec(child).unwrap_or_else(|_| a.clone())
}

/// Convenience entry point: assemble the problem, search, and report.
///
/// # Errors
///
/// Propagates problem-assembly errors; see [`RemapProblem::new`].
pub fn plan_remap(
    mapped: &MappedNetwork,
    mask: &PruneMask,
    detections: &[LayerDetection],
    config: &RemapConfig,
) -> Result<RemapPlan, FttError> {
    let problem = RemapProblem::new(mapped, mask, detections, config.cost)?;
    Ok(problem.solve(mapped, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MappingConfig, MappingScope};
    use nn::init::init_rng;
    use nn::layers::{Dense, Relu};
    use nn::pruning::magnitude_prune;
    use nn::tensor::Tensor;

    fn mlp(seed: u64) -> Network {
        let mut rng = init_rng(seed);
        let mut net = Network::new();
        net.push(Dense::new(8, 12, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(12, 4, &mut rng));
        net
    }

    fn mapped_with_faults(net: &mut Network, fraction: f64, seed: u64) -> MappedNetwork {
        MappedNetwork::from_network(
            net,
            MappingConfig::new(MappingScope::EntireNetwork)
                .with_initial_fault_fraction(fraction)
                .with_seed(seed),
        )
        .unwrap()
    }

    #[test]
    fn cost_is_zero_when_fault_free() {
        let mut net = mlp(1);
        let mapped = mapped_with_faults(&mut net, 0.0, 1);
        let mask = magnitude_prune(&mut net, 0.5);
        let problem =
            RemapProblem::with_ground_truth(&mapped, &mask, CostModel::PaperDist).unwrap();
        assert_eq!(problem.baseline_cost(), 0);
        assert_eq!(problem.group_count(), 1);
    }

    #[test]
    fn cost_counts_unpruned_weights_on_faults() {
        let mut net = mlp(2);
        let mapped = mapped_with_faults(&mut net, 0.2, 2);
        // With nothing pruned, every fault is an error under PaperDist.
        let mask = magnitude_prune(&mut net, 0.0);
        let problem =
            RemapProblem::with_ground_truth(&mapped, &mask, CostModel::PaperDist).unwrap();
        let total_faults: usize = mapped.ground_truth().iter().map(|m| m.count_faulty()).sum();
        assert_eq!(problem.baseline_cost(), total_faults as u64);
        // With everything pruned, no fault is an error under PaperDist.
        let mask = magnitude_prune(&mut net, 1.0);
        let problem =
            RemapProblem::with_ground_truth(&mapped, &mask, CostModel::PaperDist).unwrap();
        assert_eq!(problem.baseline_cost(), 0);
    }

    #[test]
    fn extended_cost_always_counts_sa1() {
        let mut net = mlp(3);
        let mapped = mapped_with_faults(&mut net, 0.2, 3);
        let mask = magnitude_prune(&mut net, 1.0);
        let problem = RemapProblem::with_ground_truth(&mapped, &mask, CostModel::Extended).unwrap();
        let sa1: usize = mapped
            .ground_truth()
            .iter()
            .map(|m| m.count_kind(FaultKind::StuckAt1))
            .sum();
        assert_eq!(problem.baseline_cost(), sa1 as u64);
    }

    #[test]
    fn hill_climb_reduces_cost() {
        let mut net = mlp(4);
        let mapped = mapped_with_faults(&mut net, 0.15, 4);
        let mask = magnitude_prune(&mut net, 0.6);
        let problem =
            RemapProblem::with_ground_truth(&mapped, &mask, CostModel::PaperDist).unwrap();
        let config = RemapConfig {
            algorithm: RemapAlgorithm::SwapHillClimb,
            iterations: 3000,
            ..RemapConfig::default()
        };
        let plan = problem.solve(&mapped, &config);
        assert!(plan.final_cost < plan.initial_cost, "{plan:?}");
    }

    #[test]
    fn greedy_batch_reduces_cost() {
        let mut net = mlp(4);
        let mapped = mapped_with_faults(&mut net, 0.15, 4);
        let mask = magnitude_prune(&mut net, 0.6);
        let problem =
            RemapProblem::with_ground_truth(&mapped, &mask, CostModel::PaperDist).unwrap();
        let config = RemapConfig {
            algorithm: RemapAlgorithm::GreedySwapBatch { batch: 32 },
            iterations: 3000,
            ..RemapConfig::default()
        };
        let plan = problem.solve(&mapped, &config);
        assert!(plan.final_cost < plan.initial_cost, "{plan:?}");
    }

    #[test]
    fn greedy_batch_is_thread_count_invariant() {
        // Candidates are drawn before the fan-out and applied with a
        // deterministic policy, so the search trajectory must not depend on
        // how many workers scored the deltas.
        let mut net = mlp(10);
        let mapped = mapped_with_faults(&mut net, 0.2, 10);
        let mask = magnitude_prune(&mut net, 0.5);
        let problem =
            RemapProblem::with_ground_truth(&mapped, &mask, CostModel::PaperDist).unwrap();
        let config = RemapConfig {
            algorithm: RemapAlgorithm::GreedySwapBatch { batch: 16 },
            iterations: 1000,
            ..RemapConfig::default()
        };
        let run_with = |threads: usize| {
            par::set_thread_count(threads);
            let plan = problem.solve(&mapped, &config);
            par::set_thread_count(0);
            plan
        };
        let seq = run_with(1);
        let par4 = run_with(4);
        assert_eq!(seq.final_cost, par4.final_cost);
        assert_eq!(seq.perms(), par4.perms(), "identical trajectory required");
    }

    #[test]
    fn genetic_reduces_cost() {
        let mut net = mlp(5);
        let mapped = mapped_with_faults(&mut net, 0.15, 5);
        let mask = magnitude_prune(&mut net, 0.6);
        let problem =
            RemapProblem::with_ground_truth(&mapped, &mask, CostModel::PaperDist).unwrap();
        let config = RemapConfig {
            algorithm: RemapAlgorithm::Genetic {
                population: 8,
                islands: 2,
            },
            iterations: 4000,
            ..RemapConfig::default()
        };
        let plan = problem.solve(&mapped, &config);
        assert!(plan.final_cost < plan.initial_cost);
    }

    #[test]
    fn genetic_islands_are_thread_count_invariant() {
        // Island evolution is pure over snapshotted island state and
        // migration is sequential, so the winning permutations must not
        // depend on how many workers evolved the islands.
        let mut net = mlp(11);
        let mapped = mapped_with_faults(&mut net, 0.2, 11);
        let mask = magnitude_prune(&mut net, 0.5);
        let problem =
            RemapProblem::with_ground_truth(&mapped, &mask, CostModel::PaperDist).unwrap();
        let config = RemapConfig {
            algorithm: RemapAlgorithm::Genetic {
                population: 6,
                islands: 4,
            },
            iterations: 2000,
            ..RemapConfig::default()
        };
        let run_with = |threads: usize| {
            par::set_thread_count(threads);
            let plan = problem.solve(&mapped, &config);
            par::set_thread_count(0);
            plan
        };
        let seq = run_with(1);
        let par4 = run_with(4);
        assert_eq!(seq.final_cost, par4.final_cost);
        assert_eq!(seq.perms(), par4.perms(), "identical trajectory required");
    }

    #[test]
    fn more_islands_never_lose_to_one_on_average_seeds() {
        // Not a statistical claim — just that the island machinery (ring
        // migration, seeded tie-break) still converges on this instance.
        let mut net = mlp(12);
        let mapped = mapped_with_faults(&mut net, 0.15, 12);
        let mask = magnitude_prune(&mut net, 0.6);
        let problem =
            RemapProblem::with_ground_truth(&mapped, &mask, CostModel::PaperDist).unwrap();
        for islands in [1, 3] {
            let config = RemapConfig {
                algorithm: RemapAlgorithm::Genetic {
                    population: 6,
                    islands,
                },
                iterations: 3600,
                ..RemapConfig::default()
            };
            let plan = problem.solve(&mapped, &config);
            assert!(
                plan.final_cost < plan.initial_cost,
                "islands={islands}: {} !< {}",
                plan.final_cost,
                plan.initial_cost
            );
        }
    }

    #[test]
    fn swap_delta_matches_full_recount() {
        // The incremental neuron_cost must be consistent with cost(): do a
        // few random swaps and compare deltas.
        let mut net = mlp(6);
        let mapped = mapped_with_faults(&mut net, 0.2, 6);
        let mask = magnitude_prune(&mut net, 0.5);
        let problem =
            RemapProblem::with_ground_truth(&mapped, &mask, CostModel::PaperDist).unwrap();
        let mut rng = sim_rng(7);
        let mut perms: Vec<Permutation> = vec![Permutation::identity(12)];
        for _ in 0..20 {
            let a = rng.gen_range(0..12);
            let b = rng.gen_range(0..12);
            if a == b {
                continue;
            }
            let full_before = problem.cost(&perms);
            let local_before =
                problem.neuron_cost(&perms, 0, a) + problem.neuron_cost(&perms, 0, b);
            perms[0].swap(a, b);
            let full_after = problem.cost(&perms);
            let local_after = problem.neuron_cost(&perms, 0, a) + problem.neuron_cost(&perms, 0, b);
            assert_eq!(
                full_after as i64 - full_before as i64,
                local_after as i64 - local_before as i64,
                "incremental delta must match full recount"
            );
        }
    }

    #[test]
    fn plan_apply_preserves_function_and_mask_alignment() {
        let mut net = mlp(7);
        let mapped = mapped_with_faults(&mut net, 0.15, 7);
        let mut mask = magnitude_prune(&mut net, 0.5);
        let problem =
            RemapProblem::with_ground_truth(&mapped, &mask, CostModel::PaperDist).unwrap();
        let config = RemapConfig {
            algorithm: RemapAlgorithm::SwapHillClimb,
            iterations: 1500,
            ..RemapConfig::default()
        };
        let plan = problem.solve(&mapped, &config);
        let x = Tensor::from_vec(
            vec![2, 8],
            (0..16).map(|i| (i as f32 * 0.2).sin()).collect(),
        );
        let before = net.forward(&x);
        plan.apply(&mut net, &mut mask).unwrap();
        let after = net.forward(&x);
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!(
                (a - b).abs() < 1e-4,
                "isomorphism must preserve the function"
            );
        }
        // The mask still marks exactly the zero... well, the *same set* of
        // weights, just re-ordered: sparsity unchanged, and the pruned
        // weights are still the smallest in magnitude.
        assert!((mask.total_sparsity() - 0.5).abs() < 0.01);
        let params = net.layer_params_mut(0).unwrap();
        let lm = &mask.layers()[0];
        let pruned_max = params
            .weights
            .iter()
            .zip(&lm.pruned)
            .filter(|(_, &p)| p)
            .map(|(w, _)| w.abs())
            .fold(0.0f32, f32::max);
        let kept_min = params
            .weights
            .iter()
            .zip(&lm.pruned)
            .filter(|(_, &p)| !p)
            .map(|(w, _)| w.abs())
            .fold(f32::INFINITY, f32::min);
        assert!(
            pruned_max <= kept_min,
            "mask must track its weights through the permutation"
        );
    }

    #[test]
    fn baselines_behave() {
        let mut net = mlp(8);
        let mapped = mapped_with_faults(&mut net, 0.15, 8);
        let mask = magnitude_prune(&mut net, 0.5);
        let problem =
            RemapProblem::with_ground_truth(&mapped, &mask, CostModel::PaperDist).unwrap();
        let id_plan = problem.solve(
            &mapped,
            &RemapConfig {
                algorithm: RemapAlgorithm::Identity,
                ..RemapConfig::default()
            },
        );
        assert!(id_plan.is_identity());
        assert_eq!(id_plan.initial_cost, id_plan.final_cost);
        let hc_plan = problem.solve(
            &mapped,
            &RemapConfig {
                algorithm: RemapAlgorithm::SwapHillClimb,
                iterations: 2000,
                ..RemapConfig::default()
            },
        );
        assert!(hc_plan.final_cost <= id_plan.final_cost);
    }

    #[test]
    fn detection_mismatch_is_rejected() {
        let mut net = mlp(9);
        let mapped = mapped_with_faults(&mut net, 0.1, 9);
        let mask = magnitude_prune(&mut net, 0.5);
        let problem = RemapProblem::new(&mapped, &mask, &[], CostModel::PaperDist);
        assert!(problem.is_err());
    }
}

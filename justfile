# rram-ftt task runner. Every recipe is plain cargo underneath, so
# `just <name>` and the expanded command are interchangeable.

# Default: list recipes.
default:
    @just --list

# Tier-1 gate: release build + root-package tests (what CI enforces).
check:
    cargo build --release
    cargo test -q

# Full workspace test sweep (all crates, all suites).
test-all:
    cargo test --workspace -q

# Criterion benches for the simulator substrates.
bench:
    cargo bench -p ftt-bench

# Standalone kernel benchmark report -> BENCH_kernels.json (name, size,
# ns/iter, threads). Honors RRAM_FTT_THREADS and BENCH_REPORT_PATH.
bench-report:
    cargo run --release -p ftt-bench --bin bench_report

# Reduced-size bench_report smoke run (the CI gate): still executes every
# bit-identity oracle, but with millisecond sample windows and small
# sizes so it finishes in seconds. Timings in the output are meaningless.
bench-quick:
    BENCH_QUICK=1 BENCH_REPORT_PATH=/tmp/bench_quick.json cargo run --release -p ftt-bench --bin bench_report

# Lints at the workspace's warning bar.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Adversarial-configuration harness (DESIGN.md §8.4): seeded, deterministic,
# < 60 s. Part of tier-1 via tests/chaos_harness.rs.
chaos:
    cargo test -q --test chaos_harness
    cargo test -q -p chaos

# Panic-policy gate (DESIGN.md §8.1): library crates may not unwrap/expect
# on caller-reachable paths; justified internal invariants carry a
# `// PANIC-OK:` comment plus a targeted #[allow]. Test code is exempt
# (--lib builds without cfg(test)). Includes ftt-lint so the linter
# obeys its own panic policy.
clippy-unwrap:
    cargo clippy -p obs -p par -p rram -p nn -p faultdet -p ftt-tile -p ftt-core -p ftt-snapshot -p ftt-strategy -p ftt-arena -p ftt-serve -p chaos -p ftt-lint --lib -- \
        -D warnings -D clippy::unwrap_used -D clippy::expect_used

# Snapshot/restore gate (DESIGN.md §12): kill a seeded run at an iteration
# boundary, serialize, resume in a fresh recorder, and require the stitched
# JSONL trace and final stats to match the uninterrupted run exactly —
# in both detection modes (full-sweep and incremental).
snapshot-check:
    cargo run --release -p ftt-snapshot --bin snapshot_check

# Static-analysis gate (DESIGN.md §10): the full ftt-lint catalog —
# per-file checks (P1 panic policy, D1 determinism, F1 float soundness,
# S1 unsafe audit, O1 obs naming, W1 workspace consistency) plus the
# cross-crate semantic checks (C1 par-capture determinism, O2 obs
# schema, R1 resume panic freedom, E2 cycle accounting) — over the
# whole workspace. Exits non-zero on any unallowlisted finding.
lint:
    cargo run --release -p ftt-lint

# Same gate, machine-readable: deterministic sorted JSON on stdout
# (byte-identical across runs and RRAM_FTT_THREADS settings).
lint-json:
    cargo run --release -p ftt-lint -- --json

# Regenerates the checked-in baseline snapshot consumed by
# `ftt-lint --baseline` (CI's ratchet: only *new* findings fail the
# diff). Re-run after any intentional change to findings or checks.
lint-baseline:
    cargo run --release -p ftt-lint -- --json > lint-baseline.json

# Determinism-sanitizer sweep (DESIGN.md §10.6): the full chaos harness
# with the par schedule sanitizer armed, at thread budgets {1, 4, MAX}.
sanitize-chaos:
    RRAM_FTT_SANITIZE=1 RRAM_FTT_THREADS=1 cargo test -q --test chaos_harness
    RRAM_FTT_SANITIZE=1 RRAM_FTT_THREADS=4 cargo test -q --test chaos_harness
    RRAM_FTT_SANITIZE=1 RRAM_FTT_THREADS=1024 cargo test -q --test chaos_harness

# Tiled-chip walkthrough (DESIGN.md §11): maps an MNIST-sized MLP whose
# layers span many tiles, trains through the tiled chip with sparing
# enabled, and prints the per-tile health report + chip event counts.
tile-demo:
    cargo run --release --example tiled_mnist

# Telemetry walkthrough (DESIGN.md §9): runs the closed-loop flow with all
# sinks attached, verifies the JSONL trace is byte-identical across thread
# budgets and contains every core event kind, then writes
# results/telemetry_trace.jsonl and prints the summary + Prometheus rendering.
obs-demo:
    cargo run --release --example telemetry_trace

# Strategy-arena walkthrough (DESIGN.md §14): races every registered
# fault-tolerance strategy (detect_remap, noop, drop_connect,
# redundant_column) from bit-identical snapshot-cloned chips over the
# reduced density sweep, byte-compares the league table and event trace
# at thread budgets {1, 4, MAX}, then writes results/arena_league.json
# and prints the league table. Drop ARENA_QUICK for the full reference
# sweep.
arena-demo:
    ARENA_QUICK=1 cargo run --release -p ftt-arena --bin arena

# Multi-tenant service walkthrough (DESIGN.md §13): runs the seeded
# reference scenario (2 training tenants + 1 inference tenant over a
# 2-chip fleet, with a burst, a lull, and a spare-pool exhaustion) at
# thread budgets {1, 4, MAX}, requires the JSONL trace / Prometheus
# rendering / fingerprints byte-identical and the scripted shed, lull
# campaign and migration all present, then writes
# results/serve_trace.jsonl and results/serve_metrics.prom.
serve-demo:
    cargo run --release -p ftt-serve --bin serve_demo

//! 2×2 stride-2 max pooling.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Max pooling with a 2×2 window and stride 2 (the VGG down-sampler).
///
/// Odd trailing rows/columns are dropped, as in most frameworks' default.
#[derive(Debug, Clone, Default)]
pub struct MaxPool2 {
    /// For each output element, the flat input index of its argmax.
    argmax: Option<Vec<usize>>,
    in_shape: Vec<usize>,
}

impl MaxPool2 {
    /// Creates a 2×2/2 max-pooling layer.
    pub fn new() -> Self {
        Self {
            argmax: None,
            in_shape: Vec::new(),
        }
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 4, "maxpool expects [B, C, H, W], got {s:?}");
        let (batch, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert!(
            h >= 2 && w >= 2,
            "maxpool needs at least 2x2 input, got {h}x{w}"
        );
        let (oh, ow) = (h / 2, w / 2);
        let mut out = vec![0.0f32; batch * c * oh * ow];
        let mut argmax = vec![0usize; out.len()];
        let data = input.data();
        for bc in 0..batch * c {
            let plane = bc * h * w;
            let oplane = bc * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let idx = plane + (oy * 2 + dy) * w + (ox * 2 + dx);
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out[oplane + oy * ow + ox] = best;
                    argmax[oplane + oy * ow + ox] = best_idx;
                }
            }
        }
        if train {
            self.argmax = Some(argmax);
            self.in_shape = s.to_vec();
        }
        Tensor::from_vec(vec![batch, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        #[allow(clippy::expect_used)]
        // PANIC-OK: documented `Layer::backward` contract — a training-mode
        // forward must precede backward (see the trait's `# Panics` section).
        let argmax = self
            .argmax
            .take()
            .expect("backward called without a training-mode forward");
        assert_eq!(
            grad_out.len(),
            argmax.len(),
            "gradient shape changed since forward"
        );
        let mut dx = Tensor::zeros(self.in_shape.clone());
        let dx_data = dx.data_mut();
        for (&g, &idx) in grad_out.data().iter().zip(&argmax) {
            dx_data[idx] += g;
        }
        dx
    }

    fn kind(&self) -> &'static str {
        "maxpool2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_takes_window_max() {
        let mut pool = MaxPool2::new();
        #[rustfmt::skip]
        let x = Tensor::from_vec(vec![1, 1, 4, 4], vec![
            1., 2., 5., 6.,
            3., 4., 7., 8.,
            9., 10., 13., 14.,
            11., 12., 15., 16.,
        ]);
        let y = pool.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2::new();
        #[rustfmt::skip]
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![
            1., 9.,
            3., 4.,
        ]);
        let _ = pool.forward(&x, true);
        let g = Tensor::from_vec(vec![1, 1, 1, 1], vec![5.0]);
        let dx = pool.backward(&g);
        assert_eq!(dx.data(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn odd_dimensions_are_truncated() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(vec![1, 1, 3, 3], (1..=9).map(|i| i as f32).collect());
        let y = pool.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[5.0]); // max of the top-left 2x2 block
    }

    #[test]
    fn multi_channel_batches_pool_independently() {
        let mut pool = MaxPool2::new();
        let mut data = vec![0.0f32; 2 * 2 * 2 * 2];
        data[0] = 1.0; // b0 c0
        data[4] = 2.0; // b0 c1
        data[8] = 3.0; // b1 c0
        data[12] = 4.0; // b1 c1
        let x = Tensor::from_vec(vec![2, 2, 2, 2], data);
        let y = pool.forward(&x, false);
        assert_eq!(y.data(), &[1., 2., 3., 4.]);
    }

    #[test]
    #[should_panic(expected = "without a training-mode forward")]
    fn backward_requires_forward() {
        let mut pool = MaxPool2::new();
        let g = Tensor::zeros(vec![1, 1, 1, 1]);
        let _ = pool.backward(&g);
    }
}

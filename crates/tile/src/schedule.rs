//! Per-tile detection scheduling.
//!
//! On a tiled chip, test time is a per-array budget: running the §4
//! quiescent-voltage campaign on every tile every interval wastes cycles
//! on healthy tiles while a wearing tile waits its turn. The scheduler
//! decides *which* tiles get this interval's campaigns; the chip runs
//! them tile-locally (comparison groups never span tile edges). All
//! policies are deterministic functions of the chip state and the
//! scheduler's own cursor — no randomness, no wall time.
//!
//! # Traffic lulls
//!
//! A chip that also serves live traffic cannot test a tile while requests
//! are flowing through it: a campaign overwrites cells with test patterns
//! and restores them, so it must run in a *lull*. The scheduler accepts an
//! idle-pressure input ([`DetectionScheduler::note_traffic`]): callers
//! report, per logical tick, whether each tile carried traffic. With a
//! [`LullConfig`] installed, [`DetectionScheduler::select`] keeps a tile
//! only once it has been idle for `idle_threshold` consecutive ticks —
//! **or** once the lull filter has deferred it `max_defer` times, the
//! anti-starvation escape hatch that guarantees a saturated tile still
//! gets tested at a bounded (if reduced) cadence. Tiles never reported on
//! are treated as idle, so a scheduler without traffic input behaves
//! exactly as before.

use std::collections::BTreeMap;

use faultdet::detector::OnlineFaultDetector;

use crate::chip::{CampaignStats, TiledChip};
use crate::error::TileError;

/// Which tiles to test each interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Test every active tile every interval (the monolithic behaviour,
    /// sharded).
    Exhaustive,
    /// Rotate a fixed-size window over the active tiles so every tile is
    /// tested once per full rotation.
    RoundRobin {
        /// Tiles tested per campaign interval (≥ 1).
        tiles_per_campaign: usize,
    },
    /// Spend the budget on the tiles most likely to have developed new
    /// faults: rank by endurance wear-outs, then write pressure, then id.
    WearRanked {
        /// Tiles tested per campaign interval (≥ 1).
        tiles_per_campaign: usize,
    },
}

/// Lull-scheduling thresholds (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LullConfig {
    /// Consecutive idle ticks before a tile counts as in a lull.
    pub idle_threshold: u32,
    /// Deferred selections after which a busy tile is tested anyway
    /// (anti-starvation bound; `0` disables the lull filter entirely).
    pub max_defer: u32,
}

/// Per-tile idle-pressure state the lull filter accumulates.
#[derive(Debug, Clone, Copy, Default)]
struct TilePressure {
    /// Consecutive ticks without reported traffic.
    idle_ticks: u32,
    /// Policy selections the lull filter has vetoed since the tile's
    /// last campaign.
    deferred: u32,
}

/// Stateful per-tile campaign scheduler.
#[derive(Debug, Clone)]
pub struct DetectionScheduler {
    policy: SchedulePolicy,
    cursor: usize,
    lull: Option<LullConfig>,
    /// Idle pressure per tile id (`BTreeMap`: deterministic iteration).
    pressure: BTreeMap<usize, TilePressure>,
}

impl DetectionScheduler {
    /// Builds a scheduler.
    ///
    /// # Errors
    ///
    /// Rejects a zero `tiles_per_campaign` (a schedule that never tests
    /// anything is a misconfiguration, not a policy).
    pub fn new(policy: SchedulePolicy) -> Result<Self, TileError> {
        match policy {
            SchedulePolicy::RoundRobin { tiles_per_campaign }
            | SchedulePolicy::WearRanked { tiles_per_campaign }
                if tiles_per_campaign == 0 =>
            {
                Err(TileError::InvalidConfig(
                    "tiles_per_campaign must be >= 1".into(),
                ))
            }
            _ => Ok(DetectionScheduler {
                policy,
                cursor: 0,
                lull: None,
                pressure: BTreeMap::new(),
            }),
        }
    }

    /// Installs the lull filter: policy selections are additionally gated
    /// on per-tile idle pressure reported through
    /// [`DetectionScheduler::note_traffic`].
    pub fn with_lull(mut self, lull: LullConfig) -> Self {
        self.lull = Some(lull);
        self
    }

    /// The configured policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// The installed lull filter, if any.
    pub fn lull(&self) -> Option<LullConfig> {
        self.lull
    }

    /// Reports one logical tick of traffic state for `tile`: `busy`
    /// resets its idle streak, idle extends it. Call once per tile per
    /// tick; tiles never reported on are treated as always idle.
    pub fn note_traffic(&mut self, tile: usize, busy: bool) {
        let p = self.pressure.entry(tile).or_default();
        if busy {
            p.idle_ticks = 0;
        } else {
            p.idle_ticks = p.idle_ticks.saturating_add(1);
        }
    }

    /// Whether the lull filter keeps `tile` this selection. Mutates the
    /// tile's deferred counter: a veto increments it, a pass resets both
    /// counters (the campaign occupies the tile, ending its lull).
    fn lull_keeps(&mut self, tile: usize) -> bool {
        let Some(lull) = self.lull else {
            return true;
        };
        if lull.max_defer == 0 {
            return true;
        }
        // A tile with no traffic reports has no known load: eligible (the
        // pre-lull behaviour, so schedulers without traffic input are
        // unchanged).
        let Some(p) = self.pressure.get_mut(&tile) else {
            return true;
        };
        if p.idle_ticks >= lull.idle_threshold || p.deferred >= lull.max_defer {
            p.idle_ticks = 0;
            p.deferred = 0;
            true
        } else {
            p.deferred = p.deferred.saturating_add(1);
            false
        }
    }

    /// Picks this interval's tiles from the chip's active set, applying
    /// the lull filter when one is installed. Pure with respect to the
    /// chip; advances only the scheduler's own cursor and idle-pressure
    /// state.
    pub fn select(&mut self, chip: &TiledChip) -> Vec<usize> {
        let picked = self.select_by_policy(chip);
        if self.lull.is_none() {
            return picked;
        }
        picked.into_iter().filter(|&id| self.lull_keeps(id)).collect()
    }

    /// The raw policy selection, before the lull filter.
    fn select_by_policy(&mut self, chip: &TiledChip) -> Vec<usize> {
        let active = chip.active_ids();
        if active.is_empty() {
            return Vec::new();
        }
        match self.policy {
            SchedulePolicy::Exhaustive => active,
            SchedulePolicy::RoundRobin { tiles_per_campaign } => {
                let take = tiles_per_campaign.min(active.len());
                let start = self.cursor % active.len();
                self.cursor = (start + take) % active.len().max(1);
                (0..take)
                    .map(|i| active[(start + i) % active.len()])
                    .collect()
            }
            SchedulePolicy::WearRanked { tiles_per_campaign } => {
                let mut ranked: Vec<(u64, u64, usize)> = active
                    .iter()
                    .map(|&id| {
                        // PANIC-OK: ids come from active_ids on this chip.
                        #[allow(clippy::expect_used)]
                        let x = chip.tile(id).expect("active id exists");
                        (x.wear_faults(), x.write_pulses(), id)
                    })
                    .collect();
                ranked.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
                ranked
                    .into_iter()
                    .take(tiles_per_campaign)
                    .map(|(_, _, id)| id)
                    .collect()
            }
        }
    }

    /// Selects tiles and runs their campaigns on the chip.
    pub fn run(&mut self, chip: &mut TiledChip, detector: &OnlineFaultDetector) -> CampaignStats {
        let ids = self.select(chip);
        chip.run_campaigns(detector, &ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipConfig;
    use faultdet::detector::DetectorConfig;

    fn chip_with(n: usize) -> TiledChip {
        let mut c = TiledChip::new(ChipConfig::new(8, 8, 11).with_spare_tiles(1)).unwrap();
        for _ in 0..n {
            c.allocate(8, 8).unwrap();
        }
        c
    }

    #[test]
    fn zero_window_rejected() {
        assert!(DetectionScheduler::new(SchedulePolicy::RoundRobin {
            tiles_per_campaign: 0
        })
        .is_err());
        assert!(DetectionScheduler::new(SchedulePolicy::WearRanked {
            tiles_per_campaign: 0
        })
        .is_err());
        assert!(DetectionScheduler::new(SchedulePolicy::Exhaustive).is_ok());
    }

    #[test]
    fn exhaustive_selects_all_active() {
        let mut c = chip_with(3);
        let mut s = DetectionScheduler::new(SchedulePolicy::Exhaustive).unwrap();
        assert_eq!(s.select(&c), vec![0, 1, 2]);
        c.substitute(1).unwrap();
        assert_eq!(s.select(&c), vec![0, 2, 3]);
    }

    #[test]
    fn round_robin_rotates_and_wraps() {
        let c = chip_with(5);
        let mut s = DetectionScheduler::new(SchedulePolicy::RoundRobin {
            tiles_per_campaign: 2,
        })
        .unwrap();
        assert_eq!(s.select(&c), vec![0, 1]);
        assert_eq!(s.select(&c), vec![2, 3]);
        assert_eq!(s.select(&c), vec![4, 0]);
        assert_eq!(s.select(&c), vec![1, 2]);
    }

    #[test]
    fn wear_ranked_prefers_worn_then_busy_tiles() {
        let mut c = chip_with(3);
        // Give tile 2 write pressure (no wear-outs: unlimited endurance).
        for _ in 0..4 {
            c.tile_mut(2).unwrap().write_analog(0, 0, 0.5).unwrap();
        }
        let mut s = DetectionScheduler::new(SchedulePolicy::WearRanked {
            tiles_per_campaign: 2,
        })
        .unwrap();
        assert_eq!(s.select(&c), vec![2, 0]);
    }

    #[test]
    fn lull_gates_on_idle_streaks() {
        let c = chip_with(2);
        let mut s = DetectionScheduler::new(SchedulePolicy::Exhaustive)
            .unwrap()
            .with_lull(LullConfig {
                idle_threshold: 2,
                max_defer: 10,
            });
        // One idle tick is not a lull yet; two are.
        s.note_traffic(0, false);
        s.note_traffic(1, false);
        assert_eq!(s.select(&c), Vec::<usize>::new());
        s.note_traffic(0, false);
        s.note_traffic(1, true); // tile 1's streak resets
        assert_eq!(s.select(&c), vec![0]);
        // A selection consumes the lull: tile 0 must idle again.
        s.note_traffic(0, false);
        assert_eq!(s.select(&c), Vec::<usize>::new());
    }

    #[test]
    fn unreported_tiles_stay_eligible() {
        let c = chip_with(2);
        let mut s = DetectionScheduler::new(SchedulePolicy::Exhaustive)
            .unwrap()
            .with_lull(LullConfig {
                idle_threshold: 5,
                max_defer: 3,
            });
        // No note_traffic calls at all: lull filter is a no-op, matching
        // the pre-lull scheduler exactly.
        assert_eq!(s.select(&c), vec![0, 1]);
        assert_eq!(s.select(&c), vec![0, 1]);
    }

    #[test]
    fn saturated_tile_defers_but_never_starves() {
        // The regression this feature exists for: a tile under constant
        // traffic must be deferred (campaigns need a lull) but still be
        // tested after a bounded number of vetoes.
        let c = chip_with(2);
        let max_defer = 3u32;
        let mut s = DetectionScheduler::new(SchedulePolicy::Exhaustive)
            .unwrap()
            .with_lull(LullConfig {
                idle_threshold: 2,
                max_defer,
            });
        let mut tile0_selected = Vec::new();
        for round in 0..8 {
            // Tile 0 is saturated every tick; tile 1 is always idle.
            s.note_traffic(0, true);
            s.note_traffic(1, false);
            s.note_traffic(0, true);
            s.note_traffic(1, false);
            let picked = s.select(&c);
            assert!(picked.contains(&1), "idle tile tested every round");
            if picked.contains(&0) {
                tile0_selected.push(round);
            }
        }
        // Deferred exactly `max_defer` times, then forced in — and the
        // cycle repeats, so the saturated tile runs at 1-in-(max_defer+1)
        // cadence instead of never.
        assert_eq!(tile0_selected, vec![3, 7]);
    }

    #[test]
    fn zero_max_defer_disables_the_filter() {
        let c = chip_with(1);
        let mut s = DetectionScheduler::new(SchedulePolicy::Exhaustive)
            .unwrap()
            .with_lull(LullConfig {
                idle_threshold: 9,
                max_defer: 0,
            });
        s.note_traffic(0, true);
        assert_eq!(s.select(&c), vec![0]);
    }

    #[test]
    fn run_feeds_selection_into_campaigns() {
        let mut c = chip_with(4);
        let det = OnlineFaultDetector::new(DetectorConfig::new(2).unwrap());
        let mut s = DetectionScheduler::new(SchedulePolicy::RoundRobin {
            tiles_per_campaign: 3,
        })
        .unwrap();
        let stats = s.run(&mut c, &det);
        assert_eq!(stats.campaigns_run, 3);
    }
}

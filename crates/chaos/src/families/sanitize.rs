//! Determinism-sanitizer chaos: the `par` runtime sanitizer
//! (DESIGN.md §10.6) cross-checks every fan-out's chunk schedule and
//! composition order against the single-thread reference. This family
//! proves both directions: a planted out-of-order reduction *is*
//! caught, and the real workloads — the fork-join helpers themselves
//! and a full detection campaign — run schedule-clean at every thread
//! budget.
//!
//! The sanitizer state is process-global; every case drains it on entry
//! and restores the enablement override and thread budget on exit, so
//! the family composes with the rest of the harness.

use faultdet::detector::{DetectorConfig, OnlineFaultDetector};
use par::sanitizer;
use rand::Rng;
use rram::rng::sim_rng;

use crate::families::uniform_crossbar;
use crate::{ensure, FamilyReport};

/// The thread budgets the clean-workload cases sweep: sequential, a
/// small fan-out, and the hard cap.
const BUDGETS: [usize; 3] = [1, 4, par::MAX_THREADS];

/// Runs a case with the sanitizer forced on and a drained slate, then
/// restores the env-driven default and the ambient thread budget even
/// when the case fails.
fn with_sanitizer(f: impl FnOnce() -> Result<(), String>) -> Result<(), String> {
    sanitizer::set_enabled(Some(true));
    let _ = sanitizer::take_report();
    let result = f();
    let _ = sanitizer::take_report();
    sanitizer::set_enabled(None);
    par::set_thread_count(0);
    result
}

/// Planted divergences plus clean sweeps of every fork-join helper and a
/// detection campaign, at budgets {1, 4, MAX}.
pub fn sanitize(seed: u64) -> FamilyReport {
    let mut fam = FamilyReport::new("sanitize");

    fam.case("planted_out_of_order_reduction_is_caught", || {
        with_sanitizer(|| {
            // Chunks tile 0..32 exactly, but the partials were combined
            // in reversed order — the schedule a racy reduction yields.
            sanitizer::record_schedule("chaos_plant", 32, &[(0, 16), (16, 16)], &[1, 0]);
            // And a coverage hole: chunk two starts past its boundary.
            sanitizer::record_schedule("chaos_plant", 32, &[(0, 16), (17, 15)], &[0, 1]);
            let rep = sanitizer::take_report();
            ensure(
                rep.calls_checked == 2,
                format!("checked {} calls, planted 2", rep.calls_checked),
            )?;
            ensure(
                rep.violations.len() == 2,
                format!("planted 2 violations, caught {:?}", rep.violations),
            )?;
            ensure(
                rep.violations
                    .iter()
                    .any(|v| v.detail.contains("composition order")),
                format!("no composition-order violation in {:?}", rep.violations),
            )?;
            ensure(
                rep.violations.iter().any(|v| v.detail.contains("tile")),
                format!("no coverage violation in {:?}", rep.violations),
            )
        })
    });

    fam.case("fork_join_helpers_run_schedule_clean", || {
        with_sanitizer(|| {
            let mut rng = sim_rng(seed);
            let n = 40_000 + rng.gen_range(0..1000);
            for &budget in &BUDGETS {
                par::set_thread_count(budget);
                let _ = sanitizer::take_report();

                // Every fork-join entry point, sized to actually fan out.
                let mapped = par::map_indices(n, |i| (i as u64).wrapping_mul(0x9E37));
                let sum = par::join_reduce(
                    n,
                    || 0u64,
                    |acc, i| acc.wrapping_add(mapped[i]),
                    u64::wrapping_add,
                );
                let mut buf: Vec<u64> = (0..n as u64).collect();
                par::for_each_chunk_mut(&mut buf, 64, |start, chunk| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = v.wrapping_add((start + k) as u64);
                    }
                });
                let row = 64;
                let mut grid: Vec<u64> = vec![1; (n / row) * row];
                par::for_each_row_block_mut(&mut grid, row, |first_row, block| {
                    for v in block.iter_mut() {
                        *v += first_row as u64;
                    }
                });
                ensure(sum != 0, "degenerate reduce")?;

                let rep = sanitizer::take_report();
                par::set_thread_count(0);
                ensure(
                    rep.is_clean(),
                    format!("threads {budget}: violations {:?}", rep.violations),
                )?;
                // Sequential fallbacks *are* the reference schedule and
                // record nothing; every multi-thread budget must have
                // actually exercised the checker.
                if budget > 1 {
                    ensure(
                        rep.calls_checked >= 4,
                        format!(
                            "threads {budget}: only {} schedules checked",
                            rep.calls_checked
                        ),
                    )?;
                }
            }
            Ok(())
        })
    });

    fam.case("detection_campaign_runs_schedule_clean", || {
        with_sanitizer(|| {
            let detector = OnlineFaultDetector::new(
                DetectorConfig::new(4).map_err(|e| format!("config: {e}"))?,
            );
            let mut reference: Option<faultdet::detector::DetectionOutcome> = None;
            for &budget in &BUDGETS {
                par::set_thread_count(budget);
                let _ = sanitizer::take_report();
                let mut xbar = uniform_crossbar(33, 33, 2)?;
                let outcome = detector
                    .run(&mut xbar)
                    .map_err(|e| format!("threads {budget}: run: {e}"))?;
                let rep = sanitizer::take_report();
                par::set_thread_count(0);
                ensure(
                    rep.is_clean(),
                    format!("threads {budget}: violations {:?}", rep.violations),
                )?;
                match &reference {
                    None => reference = Some(outcome),
                    Some(want) => ensure(
                        &outcome == want,
                        format!("detection outcome diverged at {budget} threads"),
                    )?,
                }
            }
            Ok(())
        })
    });

    fam
}

//! Dense `f32` tensors and the matrix kernels the layers build on.
//!
//! Shapes follow the usual deep-learning conventions: activations are
//! `[batch, features]` or `[batch, channels, height, width]`; dense weights
//! are `[in_features, out_features]` so that a crossbar mapping puts inputs
//! on rows and output neurons on columns, matching the paper's `w(n)_{i,j}`
//! indexing.
//!
//! The three GEMM kernels share one inner microkernel (`saxpy_row_kernel`)
//! operating on contiguous rows: `matmul` uses it directly, `matmul_tn`
//! packs `selfᵀ` first so the inner loop never strides, and `matmul_nt`
//! runs contiguous dot products. Output rows are independent, so all three
//! fan out across [`par`] worker threads above a FLOP-count gate — each
//! worker owns a block of whole output rows, which keeps every output
//! element's accumulation order identical to the sequential kernel
//! (bit-identical results at any thread count).

// Kernel module: keep the hot loops in iterator/slice style so the
// optimizer sees contiguous accesses (regressions to index loops are
// rejected at compile time).
#![deny(clippy::needless_range_loop)]

use std::fmt;

/// A dense tensor of `f32` values with an explicit shape.
///
/// # Example
///
/// ```
/// use nn::tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
/// let b = Tensor::from_vec(vec![3, 2], vec![1., 0., 0., 1., 1., 1.]);
/// let c = a.matmul(&b);
/// assert_eq!(c.shape(), &[2, 2]);
/// assert_eq!(c.data(), &[4., 5., 10., 11.]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} values]", self.data.len())
        }
    }
}

impl Tensor {
    /// Creates a zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = checked_len(&shape);
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let len = checked_len(&shape);
        assert_eq!(
            data.len(),
            len,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true for valid shapes).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        let len = checked_len(&shape);
        assert_eq!(
            self.data.len(),
            len,
            "cannot reshape {:?} to {:?}",
            self.shape,
            shape
        );
        self.shape = shape;
        self
    }

    /// Number of rows of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() requires a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Element access for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the indices are out of range.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element access for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the indices are out of range.
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        &mut self.data[r * self.shape[1] + c]
    }

    /// Matrix product `self · other` for 2-D tensors (`[m,k] · [k,n] → [m,n]`).
    ///
    /// Output rows are computed independently (row-blocked across worker
    /// threads above a FLOP gate); results are identical to the sequential
    /// kernel at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree or either tensor is not 2-D.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul inner dimensions: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        let a = &self.data;
        let b = &other.data;
        run_row_blocked(&mut out, n, m * k * n, |i0, block| {
            for (bi, c_row) in block.chunks_mut(n).enumerate() {
                let i = i0 + bi;
                saxpy_row_kernel(&a[i * k..(i + 1) * k], b, c_row);
            }
        });
        Tensor::from_vec(vec![m, n], out)
    }

    /// Matrix product `selfᵀ · other` (`[k,m]ᵀ · [k,n] → [m,n]`), used for
    /// weight gradients (`dW = Xᵀ · dY`).
    ///
    /// `selfᵀ` is packed into a contiguous `[m,k]` buffer first, so the hot
    /// loop is the same contiguous SAXPY microkernel as [`Tensor::matmul`]
    /// instead of the former `p`-outer sweep that re-touched the entire
    /// output matrix once per shared-dimension step. Per output element the
    /// accumulation still runs in ascending `p` order, so results match the
    /// old kernel exactly.
    ///
    /// # Panics
    ///
    /// Panics if the leading dimensions disagree or either tensor is not 2-D.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul_tn leading dimensions: {k} vs {k2}");
        // Pack Aᵀ row-major: at[i*k + p] = a[p*m + i].
        let mut at = vec![0.0f32; k * m];
        for (p, a_row) in self.data.chunks_exact(m).enumerate() {
            for (i, &v) in a_row.iter().enumerate() {
                at[i * k + p] = v;
            }
        }
        let mut out = vec![0.0f32; m * n];
        let b = &other.data;
        run_row_blocked(&mut out, n, m * k * n, |i0, block| {
            for (bi, c_row) in block.chunks_mut(n).enumerate() {
                let i = i0 + bi;
                saxpy_row_kernel(&at[i * k..(i + 1) * k], b, c_row);
            }
        });
        Tensor::from_vec(vec![m, n], out)
    }

    /// Matrix product `self · otherᵀ` (`[m,k] · [n,k]ᵀ → [m,n]`), used for
    /// input gradients (`dX = dY · Wᵀ`). Both operands are walked
    /// contiguously (dot products), row-blocked across workers.
    ///
    /// # Panics
    ///
    /// Panics if the trailing dimensions disagree or either tensor is not 2-D.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul_nt trailing dimensions: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        let a = &self.data;
        let b = &other.data;
        run_row_blocked(&mut out, n, m * k * n, |i0, block| {
            for (bi, c_row) in block.chunks_mut(n).enumerate() {
                let a_row = &a[(i0 + bi) * k..(i0 + bi + 1) * k];
                for (c, b_row) in c_row.iter_mut().zip(b.chunks_exact(k)) {
                    let mut acc = 0.0f32;
                    for (&av, &bv) in a_row.iter().zip(b_row) {
                        acc += av * bv;
                    }
                    *c = acc;
                }
            }
        });
        Tensor::from_vec(vec![m, n], out)
    }

    /// Adds a row vector to every row of a 2-D tensor (bias addition).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len()` does not equal the column count.
    pub fn add_row_vector(&mut self, bias: &[f32]) {
        let n = self.cols();
        assert_eq!(bias.len(), n, "bias length must equal columns");
        for row in self.data.chunks_mut(n) {
            for (x, &b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Element-wise map producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }
}

/// MAC-count gate below which the GEMM kernels stay on the calling thread
/// (a thread spawn costs ~10 µs ≈ tens of thousands of MACs).
const PAR_MIN_FLOPS: usize = 1 << 16;

/// Runs `f(first_row, row_block)` over `out` split into whole-row blocks,
/// in parallel when `flops` clears the gate, sequentially otherwise.
fn run_row_blocked<F>(out: &mut [f32], row_len: usize, flops: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if flops >= PAR_MIN_FLOPS && par::thread_count() > 1 {
        par::for_each_row_block_mut(out, row_len, f);
    } else {
        f(0, out);
    }
}

/// The shared GEMM microkernel: `c_row += Σ_p a_row[p] · b[p-th row]`, all
/// slices contiguous. The zero-skip branch is gated on measured sparsity
/// ([`par::SPARSITY_SKIP_THRESHOLD`]): skipping a zero `a` saves an
/// `n`-length SAXPY but costs a branch per `p`, which only wins on
/// mostly-zero operands — e.g. activations after §5.2 magnitude pruning
/// has parked >50 % of the weights at zero, or ReLU-sparse features.
/// Skipping never changes the result: each skipped contribution is
/// `±0.0 · b` with finite `b`, which leaves an IEEE-754 accumulator on the
/// value it would otherwise hold.
#[inline]
fn saxpy_row_kernel(a_row: &[f32], b: &[f32], c_row: &mut [f32]) {
    let n = c_row.len();
    let zeros = a_row.iter().filter(|&&a| a == 0.0).count();
    let skip_zeros = zeros as f32 > par::SPARSITY_SKIP_THRESHOLD * a_row.len() as f32;
    for (p, &a) in a_row.iter().enumerate() {
        if skip_zeros && a == 0.0 {
            continue;
        }
        let b_row = &b[p * n..(p + 1) * n];
        for (c, &bv) in c_row.iter_mut().zip(b_row) {
            *c += a * bv;
        }
    }
}

fn checked_len(shape: &[usize]) -> usize {
    assert!(!shape.is_empty(), "tensor shape cannot be empty");
    assert!(
        shape.iter().all(|&d| d > 0),
        "tensor dimensions must be non-zero: {shape:?}"
    );
    shape.iter().product()
}

/// Unfolds image patches into a matrix for convolution-as-GEMM (im2col).
///
/// `input` is one sample `[channels, height, width]` flattened row-major.
/// Returns a `[out_h * out_w, channels * k * k]` tensor whose row `p` holds
/// the receptive field of output position `p`.
///
/// # Panics
///
/// Panics if the kernel/stride/padding combination does not produce at least
/// one output position.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    input: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    let (out_h, out_w) = conv_output_size(height, width, k, stride, pad);
    let mut out = vec![0.0f32; out_h * out_w * channels * k * k];
    let row_len = channels * k * k;
    for oy in 0..out_h {
        for ox in 0..out_w {
            let patch = &mut out[(oy * out_w + ox) * row_len..(oy * out_w + ox + 1) * row_len];
            let mut idx = 0;
            for c in 0..channels {
                let plane = &input[c * height * width..(c + 1) * height * width];
                for ky in 0..k {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    for kx in 0..k {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        patch[idx] = if iy >= 0
                            && ix >= 0
                            && (iy as usize) < height
                            && (ix as usize) < width
                        {
                            plane[iy as usize * width + ix as usize]
                        } else {
                            0.0
                        };
                        idx += 1;
                    }
                }
            }
        }
    }
    Tensor::from_vec(vec![out_h * out_w, row_len], out)
}

/// Folds a patch-gradient matrix back into an image (col2im), accumulating
/// overlapping contributions. Inverse-adjoint of [`im2col`].
///
/// `cols` must be `[out_h * out_w, channels * k * k]`.
///
/// # Panics
///
/// Panics if `cols` has the wrong shape for the given geometry.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols: &Tensor,
    channels: usize,
    height: usize,
    width: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> Vec<f32> {
    let (out_h, out_w) = conv_output_size(height, width, k, stride, pad);
    assert_eq!(
        cols.shape(),
        &[out_h * out_w, channels * k * k],
        "col2im shape mismatch"
    );
    let mut out = vec![0.0f32; channels * height * width];
    let row_len = channels * k * k;
    for oy in 0..out_h {
        for ox in 0..out_w {
            let patch = &cols.data()[(oy * out_w + ox) * row_len..(oy * out_w + ox + 1) * row_len];
            let mut idx = 0;
            for c in 0..channels {
                for ky in 0..k {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    for kx in 0..k {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if iy >= 0 && ix >= 0 && (iy as usize) < height && (ix as usize) < width {
                            out[c * height * width + iy as usize * width + ix as usize] +=
                                patch[idx];
                        }
                        idx += 1;
                    }
                }
            }
        }
    }
    out
}

/// Output spatial size of a convolution.
///
/// # Panics
///
/// Panics if the configuration yields no output positions.
pub fn conv_output_size(
    height: usize,
    width: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> (usize, usize) {
    assert!(stride > 0, "stride must be positive");
    assert!(
        height + 2 * pad >= k && width + 2 * pad >= k,
        "kernel {k} larger than padded input {height}x{width}+{pad}"
    );
    (
        (height + 2 * pad - k) / stride + 1,
        (width + 2 * pad - k) / stride + 1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_from_vec() {
        let t = Tensor::zeros(vec![2, 3]);
        assert_eq!(t.len(), 6);
        assert!(t.data().iter().all(|&x| x == 0.0));
        assert!(!t.is_empty());
        let t = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        assert_eq!(t.at2(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_checks_len() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0; 5]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], vec![0., 1., 2., 3., 4., 5.]).reshape(vec![3, 2]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at2(2, 1), 5.0);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        let i = Tensor::from_vec(vec![2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::from_vec(vec![3, 2], vec![1., 4., 2., 5., 3., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        // aᵀ = [[1,2,3],[4,5,6]]
        let at = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.matmul_tn(&b), at.matmul(&b));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![2, 3], vec![7., 9., 11., 8., 10., 12.]);
        let bt = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&bt));
    }

    #[test]
    fn matmul_family_is_thread_count_invariant() {
        // Large enough to clear PAR_MIN_FLOPS so the parallel path runs.
        let (m, k, n) = (37, 65, 41);
        let fill =
            |len: usize, f: f32| -> Vec<f32> { (0..len).map(|i| ((i as f32) * f).sin()).collect() };
        let a = Tensor::from_vec(vec![m, k], fill(m * k, 0.37));
        let b = Tensor::from_vec(vec![k, n], fill(k * n, 0.53));
        let a_t = Tensor::from_vec(vec![k, m], fill(k * m, 0.37));
        let b_t = Tensor::from_vec(vec![n, k], fill(n * k, 0.53));
        par::set_thread_count(1);
        let seq = (a.matmul(&b), a_t.matmul_tn(&b), a.matmul_nt(&b_t));
        par::set_thread_count(4);
        let parl = (a.matmul(&b), a_t.matmul_tn(&b), a.matmul_nt(&b_t));
        par::set_thread_count(0);
        assert_eq!(seq.0.data(), parl.0.data(), "matmul must be bit-identical");
        assert_eq!(
            seq.1.data(),
            parl.1.data(),
            "matmul_tn must be bit-identical"
        );
        assert_eq!(
            seq.2.data(),
            parl.2.data(),
            "matmul_nt must be bit-identical"
        );
    }

    #[test]
    fn matmul_tn_packed_matches_naive_on_sparse_input() {
        // Mostly-zero operand: exercises the sparsity-gated zero-skip.
        let (k, m, n) = (50, 30, 46); // 69k MACs clears the parallel gate too
        let mut a = vec![0.0f32; k * m];
        for (i, v) in a.iter_mut().enumerate() {
            if i % 5 == 0 {
                *v = (i as f32 * 0.11).cos();
            }
        }
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.29).sin()).collect();
        let a_t = Tensor::from_vec(vec![k, m], a.clone());
        let b_t = Tensor::from_vec(vec![k, n], b.clone());
        // Naive reference: explicit transpose then matmul.
        let mut at = vec![0.0f32; m * k];
        for (p, row) in a.chunks_exact(m).enumerate() {
            for (i, &v) in row.iter().enumerate() {
                at[i * k + p] = v;
            }
        }
        let reference = Tensor::from_vec(vec![m, k], at).matmul(&b_t);
        assert_eq!(a_t.matmul_tn(&b_t).data(), reference.data());
    }

    #[test]
    fn bias_addition() {
        let mut t = Tensor::zeros(vec![2, 3]);
        t.add_row_vector(&[1., 2., 3.]);
        assert_eq!(t.data(), &[1., 2., 3., 1., 2., 3.]);
    }

    #[test]
    fn map_applies_elementwise() {
        let t = Tensor::from_vec(vec![1, 3], vec![-1., 0., 2.]);
        let r = t.map(|x| x.max(0.0));
        assert_eq!(r.data(), &[0., 0., 2.]);
    }

    #[test]
    fn conv_output_size_formula() {
        assert_eq!(conv_output_size(32, 32, 3, 1, 1), (32, 32));
        assert_eq!(conv_output_size(32, 32, 2, 2, 0), (16, 16));
        assert_eq!(conv_output_size(5, 5, 3, 1, 0), (3, 3));
    }

    #[test]
    fn im2col_simple_3x3_kernel2() {
        // One channel, 3x3 image, 2x2 kernel, stride 1, no padding.
        #[rustfmt::skip]
        let img = vec![
            0., 1., 2.,
            3., 4., 5.,
            6., 7., 8.,
        ];
        let cols = im2col(&img, 1, 3, 3, 2, 1, 0);
        assert_eq!(cols.shape(), &[4, 4]);
        assert_eq!(&cols.data()[0..4], &[0., 1., 3., 4.]);
        assert_eq!(&cols.data()[12..16], &[4., 5., 7., 8.]);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let img = vec![1.0; 4]; // 2x2
        let cols = im2col(&img, 1, 2, 2, 3, 1, 1);
        assert_eq!(cols.shape(), &[4, 9]);
        // Top-left patch covers padding on top and left: corners are zero.
        let first = &cols.data()[0..9];
        assert_eq!(first[0], 0.0);
        assert_eq!(first[4], 1.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let (c, h, w, k, s, p) = (2, 4, 4, 3, 1, 1);
        let x: Vec<f32> = (0..c * h * w).map(|i| (i as f32 * 0.37).sin()).collect();
        let cols = im2col(&x, c, h, w, k, s, p);
        let y: Vec<f32> = (0..cols.len()).map(|i| (i as f32 * 0.13).cos()).collect();
        let y_t = Tensor::from_vec(cols.shape().to_vec(), y.clone());
        let lhs: f32 = cols.data().iter().zip(&y).map(|(a, b)| a * b).sum();
        let folded = col2im(&y_t, c, h, w, k, s, p);
        let rhs: f32 = x.iter().zip(&folded).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn conv_output_size_rejects_big_kernel() {
        let _ = conv_output_size(2, 2, 5, 1, 0);
    }
}

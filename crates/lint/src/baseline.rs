//! Baseline diff mode (`--baseline lint-baseline.json`).
//!
//! Large refactors sometimes need to land before every pre-existing
//! finding is fixed. Baseline mode makes the gate *ratchet-shaped*: the
//! run exits non-zero only on findings **not** present in the recorded
//! baseline (a previous `--json` report), so existing debt is tolerated
//! while new debt is rejected.
//!
//! Matching is by `(check, file, message)` *multiset* — line numbers
//! are deliberately excluded so unrelated edits that shift a suppressed
//! finding by a few lines do not resurrect it. A baseline entry
//! suppresses at most as many findings as its multiplicity.
//!
//! The parser reads only the report grammar [`crate::diag::Report`]
//! emits (objects with `"check"` / `"file"` / `"line"` / `"message"`
//! string/number fields inside a `"findings"` array) — it is not a
//! general JSON parser, and rejects anything it does not recognize so a
//! corrupted baseline fails loudly instead of masking findings.

use std::collections::BTreeMap;

use crate::diag::{Finding, Report};

/// One baseline entry key: check id, file, message.
type Key = (String, String, String);

/// A parsed baseline: finding keys with multiplicities.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeMap<Key, usize>,
}

impl Baseline {
    /// Parse a baseline from a previously written `--json` report.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let findings = parse_findings_array(text)?;
        let mut entries: BTreeMap<Key, usize> = BTreeMap::new();
        for f in findings {
            *entries.entry(f).or_insert(0) += 1;
        }
        Ok(Baseline { entries })
    }

    /// Total recorded findings (sum of multiplicities).
    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    /// Whether the baseline records nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Split a report's findings into (new, suppressed-count): findings
    /// covered by the baseline multiset are suppressed, the rest are
    /// new. Deterministic: findings arrive sorted from [`Report`].
    pub fn diff<'a>(&self, report: &'a Report) -> (Vec<&'a Finding>, usize) {
        let mut budget = self.entries.clone();
        let mut fresh = Vec::new();
        let mut suppressed = 0usize;
        for f in &report.findings {
            let key = (f.check.to_string(), f.file.clone(), f.message.clone());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    suppressed += 1;
                }
                _ => fresh.push(f),
            }
        }
        (fresh, suppressed)
    }
}

/// Extract `(check, file, message)` triples from the report's
/// `"findings": [...]` array.
fn parse_findings_array(text: &str) -> Result<Vec<Key>, String> {
    let start = text
        .find("\"findings\":")
        .ok_or_else(|| "baseline has no \"findings\" array".to_string())?;
    let rest = &text[start..];
    let open = rest
        .find('[')
        .ok_or_else(|| "malformed \"findings\" array".to_string())?;
    let mut out = Vec::new();
    let mut i = open + 1;
    let bytes = rest.as_bytes();
    while i < rest.len() {
        match bytes[i] {
            b']' => return Ok(out),
            b'{' => {
                let (obj_end, key) = parse_object(rest, i)?;
                out.push(key);
                i = obj_end;
            }
            _ => i += 1,
        }
    }
    Err("unterminated \"findings\" array".to_string())
}

/// Parse one finding object starting at the `{` at `at`; returns the
/// index just past its `}` and the extracted key.
fn parse_object(text: &str, at: usize) -> Result<(usize, Key), String> {
    let mut fields: BTreeMap<String, String> = BTreeMap::new();
    let bytes = text.as_bytes();
    let mut i = at + 1;
    loop {
        if i >= text.len() {
            return Err("unterminated finding object".to_string());
        }
        match bytes[i] {
            b'}' => break,
            b'"' => {
                let (ni, name) = parse_string(text, i)?;
                let colon = text[ni..]
                    .find(':')
                    .ok_or_else(|| format!("missing value for field {name:?}"))?;
                let mut vi = ni + colon + 1;
                while vi < text.len() && bytes[vi].is_ascii_whitespace() {
                    vi += 1;
                }
                if vi < text.len() && bytes[vi] == b'"' {
                    let (end, value) = parse_string(text, vi)?;
                    fields.insert(name, value);
                    i = end;
                } else {
                    // Numeric field (`"line"`): skip the digits.
                    while vi < text.len() && bytes[vi].is_ascii_digit() {
                        vi += 1;
                    }
                    i = vi;
                }
            }
            _ => i += 1,
        }
    }
    let take = |k: &str| {
        fields
            .get(k)
            .cloned()
            .ok_or_else(|| format!("finding object lacks {k:?}"))
    };
    Ok((i + 1, (take("check")?, take("file")?, take("message")?)))
}

/// Parse the JSON string starting at the `"` at `at`; returns the index
/// just past the closing quote and the unescaped value.
fn parse_string(text: &str, at: usize) -> Result<(usize, String), String> {
    let mut out = String::new();
    let chars: Vec<char> = text[at + 1..].chars().collect();
    let mut consumed = at + 1;
    let mut k = 0;
    while k < chars.len() {
        let c = chars[k];
        consumed += c.len_utf8();
        match c {
            '"' => return Ok((consumed, out)),
            '\\' => {
                let Some(&esc) = chars.get(k + 1) else {
                    return Err("dangling escape in string".to_string());
                };
                consumed += esc.len_utf8();
                k += 2;
                match esc {
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        // `\uXXXX` — the report only emits these for
                        // control chars; decode the 4 hex digits.
                        let hex: String = chars.iter().skip(k).take(4).collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad unicode escape \\u{hex}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        consumed += hex.len();
                        k += 4;
                    }
                    other => out.push(other),
                }
                continue;
            }
            other => out.push(other),
        }
        k += 1;
    }
    Err("unterminated string in baseline".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(check: &'static str, file: &str, line: usize, msg: &str) -> Finding {
        Finding {
            check,
            file: file.into(),
            line,
            message: msg.into(),
        }
    }

    #[test]
    fn round_trips_the_reports_own_json() {
        let report = Report::new(
            vec![
                f("P1", "a.rs", 3, "bare .unwrap()"),
                f("D1", "b.rs", 7, "reads \"the\nclock\""),
            ],
            2,
            vec!["P1", "D1"],
        );
        let base = Baseline::parse(&report.to_json()).expect("parses");
        assert_eq!(base.len(), 2);
        let (fresh, suppressed) = base.diff(&report);
        assert!(fresh.is_empty(), "{fresh:?}");
        assert_eq!(suppressed, 2);
    }

    #[test]
    fn line_drift_does_not_resurrect_findings() {
        let old = Report::new(vec![f("P1", "a.rs", 3, "bare .unwrap()")], 1, vec!["P1"]);
        let base = Baseline::parse(&old.to_json()).expect("parses");
        let new = Report::new(vec![f("P1", "a.rs", 30, "bare .unwrap()")], 1, vec!["P1"]);
        let (fresh, suppressed) = base.diff(&new);
        assert!(fresh.is_empty());
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn new_findings_and_multiplicity_are_respected() {
        let old = Report::new(vec![f("P1", "a.rs", 3, "bare .unwrap()")], 1, vec!["P1"]);
        let base = Baseline::parse(&old.to_json()).expect("parses");
        // Two identical findings now, baseline covers one.
        let new = Report::new(
            vec![
                f("P1", "a.rs", 3, "bare .unwrap()"),
                f("P1", "a.rs", 90, "bare .unwrap()"),
                f("F1", "c.rs", 1, "float eq"),
            ],
            2,
            vec!["P1", "F1"],
        );
        let (fresh, suppressed) = base.diff(&new);
        assert_eq!(suppressed, 1);
        assert_eq!(fresh.len(), 2, "{fresh:?}");
    }

    #[test]
    fn garbage_baselines_fail_loudly() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"findings\": [{\"check\": \"P1\"}]}").is_err());
        let empty = Baseline::parse("{\"findings\": []}\n").expect("parses");
        assert!(empty.is_empty());
    }
}

//! Offline, API-compatible subset of the crates.io `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `criterion` 0.5 its benches actually use:
//!
//! * [`Criterion::benchmark_group`] / [`BenchmarkGroup`] with
//!   [`sample_size`](BenchmarkGroup::sample_size),
//!   [`bench_function`](BenchmarkGroup::bench_function),
//!   [`bench_with_input`](BenchmarkGroup::bench_with_input) and
//!   [`finish`](BenchmarkGroup::finish),
//! * [`Bencher::iter`] and [`Bencher::iter_batched`] (with [`BatchSize`]),
//! * [`BenchmarkId`], [`black_box`], [`criterion_group!`],
//!   [`criterion_main!`].
//!
//! Unlike upstream there is no statistical engine, HTML report, or saved
//! baseline: each benchmark is calibrated so one sample takes a few
//! milliseconds, a fixed number of samples is collected, and the median
//! ns/iter is printed on stdout as
//! `bench: <group>/<id> ... <median> ns/iter (n samples)`.
//!
//! Knobs:
//! * `CRITERION_SAMPLE_COUNT` — overrides every group's sample count
//!   (handy to smoke-test benches quickly in CI).
//! * `CRITERION_JSON_LINES` — when set to a path, each finished benchmark
//!   also appends one JSON object per line (`{"group":…,"id":…,
//!   "median_ns":…,"samples":…}`) so scripts can scrape results without
//!   parsing human output.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim times each routine
/// call individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs (upstream batches many per sample).
    SmallInput,
    /// Large per-iteration inputs (upstream batches few per sample).
    LargeInput,
    /// One input per routine call.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form (the common case in this workspace).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<f64>,
    sample_count: u32,
}

impl Bencher {
    fn new(sample_count: u32) -> Self {
        Self {
            samples: Vec::with_capacity(sample_count as usize),
            sample_count,
        }
    }

    /// Times `routine`, called in a calibrated loop so each sample lasts
    /// a few milliseconds even for nanosecond-scale routines.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes >= 2 ms (or we hit a generous cap for very slow routines).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let elapsed = start.elapsed();
            black_box(out);
            self.samples.push(elapsed.as_nanos() as f64);
        }
    }

    fn median_ns(&mut self) -> f64 {
        assert!(
            !self.samples.is_empty(),
            "benchmark routine collected no samples"
        );
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
        self.samples[self.samples.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in this group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1) as u32;
        self
    }

    /// Accepted for API compatibility; the shim's calibration ignores it.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    fn effective_samples(&self) -> u32 {
        std::env::var("CRITERION_SAMPLE_COUNT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.sample_count)
            .max(1)
    }

    /// Runs one benchmark identified by a plain label.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.effective_samples());
        routine(&mut bencher);
        self.report(&id, bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        I: ?Sized,
        R: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.effective_samples());
        routine(&mut bencher, input);
        self.report(&id, bencher);
        self
    }

    /// Ends the group (upstream flushes its report here; the shim prints
    /// eagerly, so this only consumes the group).
    pub fn finish(self) {}

    fn report(&mut self, id: &BenchmarkId, mut bencher: Bencher) {
        let median = bencher.median_ns();
        let n = bencher.samples.len();
        println!(
            "bench: {}/{} ... {:.0} ns/iter ({} samples)",
            self.name, id.id, median, n
        );
        self.criterion.record(&self.name, &id.id, median, n);
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    json_lines: Option<std::path::PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            json_lines: std::env::var_os("CRITERION_JSON_LINES").map(Into::into),
        }
    }
}

impl Criterion {
    /// Upstream parses CLI filters here; the shim runs everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_count: 20,
        }
    }

    /// Single-benchmark convenience (no group).
    pub fn bench_function<R>(&mut self, label: &str, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(label, routine);
        group.finish();
        self
    }

    /// Upstream prints the end-of-run summary; the shim prints eagerly.
    pub fn final_summary(&mut self) {}

    fn record(&mut self, group: &str, id: &str, median_ns: f64, samples: usize) {
        let Some(path) = &self.json_lines else {
            return;
        };
        let line = format!(
            "{{\"group\":\"{}\",\"id\":\"{}\",\"median_ns\":{:.1},\"samples\":{}}}\n",
            group.escape_default(),
            id.escape_default(),
            median_ns,
            samples
        );
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = written {
            eprintln!("criterion shim: cannot append to {}: {e}", path.display());
        }
    }
}

/// Expands to a runner fn invoking each benchmark fn with a shared
/// [`Criterion`] instance (mirrors upstream's expansion shape).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($bench(&mut criterion);)+
        }
    };
}

/// Expands to `main()` running each [`criterion_group!`] runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_requested_samples() {
        let mut c = Criterion { json_lines: None };
        let mut group = c.benchmark_group("shim");
        group.sample_size(4);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls >= 4, "routine ran {calls} times");
    }

    #[test]
    fn iter_batched_times_each_input() {
        let mut c = Criterion { json_lines: None };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut setups = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![x; 8]
                },
                |v| v.iter().sum::<u32>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
        assert_eq!(setups, 3);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::from_parameter(128).id, "128");
        assert_eq!(BenchmarkId::new("mvm", 128).id, "mvm/128");
    }

    criterion_group!(example_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("noop");
        group.sample_size(1);
        group.bench_function("nothing", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn group_macro_expands_to_runner() {
        example_group();
    }
}

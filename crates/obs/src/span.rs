//! Lightweight hierarchical spans.
//!
//! [`Recorder::span`] returns a [`SpanGuard`]; dropping the guard records
//! the elapsed time (per the recorder's [`Clock`]) into a histogram named
//! `span_<path>_ns`, where `<path>` is the `.`-joined chain of active
//! span names *on the current thread*. Nesting is tracked with a
//! thread-local stack, so
//!
//! ```text
//! flow.train            -> span_flow.train_ns
//! flow.train > forward  -> span_flow.train.forward_ns
//! ```
//!
//! Span durations live only in histograms — never in the event stream —
//! so wall-clock jitter cannot break trace determinism. Tests that want
//! reproducible histograms use [`Recorder::deterministic`], which times
//! spans on a [`crate::clock::LogicalClock`].
//!
//! [`Recorder::span`]: crate::recorder::Recorder::span
//! [`Clock`]: crate::clock::Clock

use std::cell::RefCell;

use crate::recorder::Recorder;

thread_local! {
    /// The active span names on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one timed span. Records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    recorder: Recorder,
    start_ns: u64,
    /// Full dotted path, precomputed at entry so drop is cheap.
    path: String,
}

impl SpanGuard {
    pub(crate) fn enter(recorder: Recorder, name: &str) -> Self {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if let Some(parent) = stack.last() {
                format!("{parent}.{name}")
            } else {
                name.to_string()
            };
            stack.push(path.clone());
            path
        });
        let start_ns = recorder.clock_now_ns();
        Self {
            recorder,
            start_ns,
            path,
        }
    }

    /// The span's full dotted path (e.g. `flow.train.forward`).
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.recorder.clock_now_ns().saturating_sub(self.start_ns);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop our own frame. Guards are dropped in reverse entry
            // order on a thread, so this is the top — but be tolerant of
            // exotic drop orders and remove by identity instead.
            if let Some(pos) = stack.iter().rposition(|p| p == &self.path) {
                stack.remove(pos);
            }
        });
        let name = format!("span_{}_ns", self.path);
        self.recorder.registry().histogram(&name).observe(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_build_dotted_paths() {
        let rec = Recorder::deterministic();
        {
            let outer = rec.span("train");
            assert_eq!(outer.path(), "train");
            {
                let inner = rec.span("forward");
                assert_eq!(inner.path(), "train.forward");
            }
            let sibling = rec.span("backward");
            assert_eq!(sibling.path(), "train.backward");
        }
        let reg = rec.registry();
        for name in [
            "span_train_ns",
            "span_train.forward_ns",
            "span_train.backward_ns",
        ] {
            let h = reg.histogram_handle(name);
            assert!(h.is_some(), "missing histogram {name}");
            assert_eq!(h.map(|h| h.count()), Some(1), "{name}");
        }
    }

    #[test]
    fn logical_clock_makes_durations_deterministic() {
        // LogicalClock(step=1): each now_ns() reading advances by 1, and a
        // span takes exactly two readings, so every span lasts "1 ns".
        let rec = Recorder::deterministic();
        for _ in 0..5 {
            let _g = rec.span("tick");
        }
        let h = rec.registry().histogram_handle("span_tick_ns");
        assert_eq!(h.as_ref().map(|h| h.count()), Some(5));
        assert_eq!(h.map(|h| h.sum()), Some(5));
    }

    #[test]
    fn stack_is_clean_after_drops() {
        let rec = Recorder::deterministic();
        {
            let _a = rec.span("a");
            let _b = rec.span("b");
        }
        let fresh = rec.span("fresh");
        assert_eq!(fresh.path(), "fresh");
    }
}

//! Criterion benches for the simulator substrates: crossbar MVM scaling,
//! detection campaign cost, re-mapping search throughput, and the
//! threshold-training iteration overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faultdet::detector::{DetectorConfig, OnlineFaultDetector};
use ftt_core::config::{FlowConfig, MappingConfig, MappingScope, RemapConfig};
use ftt_core::flow::FaultTolerantTrainer;
use ftt_core::remap::{CostModel, RemapAlgorithm, RemapProblem};
use nn::models::mlp_784_100_10;
use nn::optimizer::LrSchedule;
use nn::pruning::magnitude_prune;
use nn::synth::SyntheticDataset;
use rand::Rng;
use rram::crossbar::{Crossbar, CrossbarBuilder};
use rram::spatial::SpatialDistribution;
use std::hint::black_box;

fn programmed(size: usize, seed: u64) -> Crossbar {
    let mut xbar = CrossbarBuilder::new(size, size)
        .initial_faults(SpatialDistribution::Uniform, 0.1)
        .seed(seed)
        .build()
        .expect("valid crossbar");
    let mut rng = rram::rng::sim_rng(seed);
    for r in 0..size {
        for c in 0..size {
            let _ = xbar
                .write_level(r, c, rng.gen_range(0..8))
                .expect("in range");
        }
    }
    xbar
}

fn bench_mvm(c: &mut Criterion) {
    // Plane-backed dense SAXPY kernel, 64² through 1024².
    let mut group = c.benchmark_group("crossbar_mvm");
    for size in [64usize, 128, 256, 512, 1024] {
        let xbar = programmed(size, 1);
        let input = vec![0.5f32; size];
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(xbar.mvm(black_box(&input)).expect("mvm")));
        });
    }
    group.finish();

    // The retained scalar cell-walking kernel, for the speedup ratio.
    let mut group = c.benchmark_group("crossbar_mvm_reference");
    for size in [64usize, 256, 512, 1024] {
        let xbar = programmed(size, 1);
        let input = vec![0.5f32; size];
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(xbar.mvm_reference(black_box(&input)).expect("mvm")));
        });
    }
    group.finish();
}

fn bench_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection_campaign");
    group.sample_size(10);
    // (array size, test size Tr = Tc); Tr = 16 at 512² is the paper-scale
    // campaign the parallel group sweep is sized for.
    for (size, t) in [(64usize, 8usize), (128, 8), (256, 8), (256, 16), (512, 16)] {
        group.bench_with_input(
            BenchmarkId::new(format!("t{t}"), size),
            &size,
            |b, &size| {
                b.iter_batched(
                    || programmed(size, 2),
                    |mut xbar| {
                        let detector =
                            OnlineFaultDetector::new(DetectorConfig::new(t).expect("size"));
                        black_box(detector.run(&mut xbar).expect("campaign"));
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_group_sums(c: &mut Criterion) {
    // The detection campaign's hot comparison kernel: every output line's
    // quiescent sum for a Tr = 16 group sweep over a 512² array — batched
    // plane64 sweep vs per-line scalar walks.
    let mut group = c.benchmark_group("detection_group_sums");
    group.sample_size(20);
    let size = 512usize;
    let t = 16usize;
    let xbar = programmed(size, 7);
    group.bench_function("batched", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for g in 0..size / t {
                let sums = xbar.column_group_sums(g * t..(g + 1) * t).expect("sums");
                acc += sums.iter().sum::<f64>();
            }
            black_box(acc)
        });
    });
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for g in 0..size / t {
                for col in 0..size {
                    acc += xbar.column_group_sum(g * t..(g + 1) * t, col).expect("sum");
                }
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_remap(c: &mut Criterion) {
    let mut group = c.benchmark_group("remap_search");
    group.sample_size(10);
    let mut net = mlp_784_100_10(1);
    let mapped = ftt_core::mapping::MappedNetwork::from_network(
        &mut net,
        MappingConfig::new(MappingScope::EntireNetwork)
            .with_initial_fault_fraction(0.3)
            .with_seed(5),
    )
    .expect("mapping");
    let mask = magnitude_prune(&mut net, 0.5);
    let problem =
        RemapProblem::with_ground_truth(&mapped, &mask, CostModel::PaperDist).expect("problem");
    for budget in [1000usize, 10_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    black_box(problem.solve(
                        &mapped,
                        &RemapConfig {
                            algorithm: RemapAlgorithm::SwapHillClimb,
                            cost: CostModel::PaperDist,
                            iterations: budget,
                            seed: 3,
                        },
                    ))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("greedy_batch", budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    black_box(problem.solve(
                        &mapped,
                        &RemapConfig {
                            algorithm: RemapAlgorithm::GreedySwapBatch { batch: 64 },
                            cost: CostModel::PaperDist,
                            iterations: budget,
                            seed: 3,
                        },
                    ))
                });
            },
        );
    }
    // The incremental-delta machinery keeps each hill-climb step at
    // O(rows + block·cols); the full recount is the term it avoids.
    let perms = vec![nn::permute::Permutation::identity(100)];
    group.bench_function("full_cost_recount", |b| {
        b.iter(|| black_box(problem.cost(black_box(&perms))));
    });
    group.finish();
}

fn bench_training_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_iteration");
    group.sample_size(10);
    let data = SyntheticDataset::mnist_like(128, 32, 3);
    for (label, flow) in [
        (
            "original",
            FlowConfig::original().with_lr(LrSchedule::constant(0.1)),
        ),
        (
            "threshold",
            FlowConfig::threshold_only().with_lr(LrSchedule::constant(0.1)),
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    FaultTolerantTrainer::new(
                        mlp_784_100_10(1),
                        MappingConfig::new(MappingScope::EntireNetwork).with_seed(1),
                        flow.clone(),
                    )
                    .expect("trainer")
                },
                |mut trainer| {
                    trainer.train(&data, 10).expect("train");
                    black_box(trainer.iteration());
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mvm,
    bench_detection,
    bench_group_sums,
    bench_remap,
    bench_training_iteration
);
criterion_main!(benches);

//! Fully-connected (dense) layer.

use crate::init::he_uniform;
use crate::layer::{Layer, LayerParams};
use crate::tensor::Tensor;
use rand::Rng;

/// A fully-connected layer `y = x · W + b` with `W: [in, out]`.
///
/// The weight orientation matches the paper's crossbar mapping: inputs on
/// rows (word lines), output neurons on columns (bit lines).
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    w: Tensor,
    b: Vec<f32>,
    dw: Tensor,
    db: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-uniform weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "dense dimensions must be non-zero"
        );
        let w = Tensor::from_vec(
            vec![in_features, out_features],
            he_uniform(in_features, in_features * out_features, rng),
        );
        Self {
            in_features,
            out_features,
            w,
            b: vec![0.0; out_features],
            dw: Tensor::zeros(vec![in_features, out_features]),
            db: vec![0.0; out_features],
            cached_input: None,
        }
    }

    /// Input feature count (crossbar rows).
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output neuron count (crossbar columns).
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable view of the weight matrix.
    pub fn weights(&self) -> &Tensor {
        &self.w
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(
            input.cols(),
            self.in_features,
            "dense expects [B, {}] input",
            self.in_features
        );
        if train {
            self.cached_input = Some(input.clone());
        }
        let mut y = input.matmul(&self.w);
        y.add_row_vector(&self.b);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        #[allow(clippy::expect_used)]
        // PANIC-OK: documented `Layer::backward` contract — a training-mode
        // forward must precede backward (see the trait's `# Panics` section).
        let x = self
            .cached_input
            .take()
            .expect("backward called without a training-mode forward");
        assert_eq!(grad_out.cols(), self.out_features);
        self.dw = x.matmul_tn(grad_out);
        let n = self.out_features;
        self.db = vec![0.0; n];
        for row in grad_out.data().chunks(n) {
            for (d, &g) in self.db.iter_mut().zip(row) {
                *d += g;
            }
        }
        grad_out.matmul_nt(&self.w)
    }

    fn params(&mut self) -> Option<LayerParams<'_>> {
        Some(LayerParams {
            weights: self.w.data_mut(),
            weight_grad: self.dw.data(),
            weight_shape: (self.in_features, self.out_features),
            bias: Some(&mut self.b),
            bias_grad: Some(&self.db),
        })
    }

    fn kind(&self) -> &'static str {
        "dense"
    }

    fn weight_count(&self) -> usize {
        self.in_features * self.out_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::init_rng;

    #[test]
    fn forward_matches_manual_math() {
        let mut rng = init_rng(1);
        let mut layer = Dense::new(3, 2, &mut rng);
        // Overwrite with known weights.
        layer.w = Tensor::from_vec(vec![3, 2], vec![1., 0., 0., 1., 1., 1.]);
        layer.b = vec![0.5, -0.5];
        let x = Tensor::from_vec(vec![1, 3], vec![1., 2., 3.]);
        let y = layer.forward(&x, false);
        assert_eq!(y.data(), &[1. + 3. + 0.5, 2. + 3. - 0.5]);
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut rng = init_rng(2);
        let mut layer = Dense::new(4, 3, &mut rng);
        let x = Tensor::from_vec(vec![2, 4], (0..8).map(|i| i as f32 * 0.1 - 0.3).collect());
        // Loss = sum(y); then dL/dy = ones.
        let y = layer.forward(&x, true);
        let ones = Tensor::from_vec(y.shape().to_vec(), vec![1.0; y.len()]);
        let dx = layer.backward(&ones);

        // Finite-difference check on one weight and one input element.
        let eps = 1e-3;
        let sum_y =
            |layer: &mut Dense, x: &Tensor| -> f32 { layer.forward(x, false).data().iter().sum() };
        let base = sum_y(&mut layer, &x);

        let w_idx = 5;
        layer.w.data_mut()[w_idx] += eps;
        let plus = sum_y(&mut layer, &x);
        layer.w.data_mut()[w_idx] -= eps;
        let fd = (plus - base) / eps;
        let analytic = layer.dw.data()[w_idx];
        assert!((fd - analytic).abs() < 1e-2, "dW: fd {fd} vs {analytic}");

        let mut x2 = x.clone();
        x2.data_mut()[3] += eps;
        let plus = sum_y(&mut layer, &x2);
        let fd = (plus - base) / eps;
        assert!(
            (fd - dx.data()[3]).abs() < 1e-2,
            "dX: fd {fd} vs {}",
            dx.data()[3]
        );
    }

    #[test]
    fn bias_gradient_sums_over_batch() {
        let mut rng = init_rng(3);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Tensor::from_vec(vec![3, 2], vec![1.; 6]);
        let _ = layer.forward(&x, true);
        let g = Tensor::from_vec(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let _ = layer.backward(&g);
        assert_eq!(layer.db, vec![9.0, 12.0]);
    }

    #[test]
    fn params_expose_crossbar_orientation() {
        let mut rng = init_rng(4);
        let mut layer = Dense::new(5, 7, &mut rng);
        let p = layer.params().unwrap();
        assert_eq!(p.weight_shape, (5, 7));
        assert_eq!(p.weights.len(), 35);
        assert!(p.bias.is_some());
        assert_eq!(layer.weight_count(), 35);
        assert_eq!(layer.kind(), "dense");
    }

    #[test]
    #[should_panic(expected = "without a training-mode forward")]
    fn backward_without_forward_panics() {
        let mut rng = init_rng(5);
        let mut layer = Dense::new(2, 2, &mut rng);
        let g = Tensor::zeros(vec![1, 2]);
        let _ = layer.backward(&g);
    }
}

//! **Weight-coding ablation** — unipolar (the paper's logical granularity)
//! versus differential-pair (`w ∝ g⁺ − g⁻`) coding.
//!
//! Differential coding is the physical scheme most RCS designs use. It
//! doubles the cell count and — with one-sided programming — doubles the
//! write wear per update, so under limited endurance it trades fault
//! robustness against lifetime. This ablation quantifies both sides.
//!
//! ```text
//! cargo run --release -p ftt-bench --bin ablation_coding
//! ```

use ftt_bench::{arg_or, write_csv};
use ftt_core::config::{FlowConfig, MappingConfig, MappingScope, WeightCoding};
use ftt_core::flow::FaultTolerantTrainer;
use nn::models::mlp_784_100_10;
use nn::optimizer::LrSchedule;
use nn::synth::SyntheticDataset;
use rram::endurance::EnduranceModel;

fn main() {
    let iterations = arg_or("--iterations", 3000u64);
    let data = SyntheticDataset::mnist_like(512, 128, 21);
    let schedule = LrSchedule::step_decay(0.1, 0.7, 1000);

    println!("# weight coding ablation (784x100x10 MLP, {iterations} iterations)");
    println!("coding, scenario, peak_accuracy, final_accuracy, write_pulses, faulty_at_end");
    let mut csv =
        String::from("coding,scenario,peak_accuracy,final_accuracy,write_pulses,faulty_at_end\n");
    for (coding_name, coding) in [
        ("unipolar", WeightCoding::Unipolar),
        ("differential", WeightCoding::Differential),
    ] {
        for (scenario, fraction, endurance) in [
            ("clean", 0.0, EnduranceModel::unlimited()),
            ("20%_faults", 0.2, EnduranceModel::unlimited()),
            (
                "wearing",
                0.0,
                EnduranceModel::new(iterations as f64, 0.3 * iterations as f64),
            ),
        ] {
            let mapping = MappingConfig::new(MappingScope::EntireNetwork)
                .with_coding(coding)
                .with_initial_fault_fraction(fraction)
                .with_initial_sa0_prob(0.8)
                .with_endurance(endurance)
                .with_seed(17);
            let mut trainer = FaultTolerantTrainer::new(
                mlp_784_100_10(3),
                mapping,
                FlowConfig::threshold_only().with_lr(schedule),
            )
            .expect("valid config");
            trainer.train(&data, iterations).expect("training");
            let peak = trainer.curve().peak_accuracy();
            let final_acc = trainer.curve().final_accuracy();
            let pulses = trainer.mapped().total_write_pulses();
            let faulty = trainer.mapped().fraction_faulty();
            println!("{coding_name}, {scenario}, {peak:.3}, {final_acc:.3}, {pulses}, {faulty:.3}");
            csv.push_str(&format!(
                "{coding_name},{scenario},{peak:.4},{final_acc:.4},{pulses},{faulty:.4}\n"
            ));
        }
    }
    write_csv("ablation_coding", &csv);
}

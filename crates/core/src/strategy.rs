//! The pluggable fault-tolerance strategy layer (DESIGN.md §14).
//!
//! The paper's detect-then-remap closed loop used to be hard-wired into
//! [`FaultTolerantTrainer`](crate::flow::FaultTolerantTrainer); this module
//! makes "what to do about faults" a first-class trait so competing schemes
//! from the literature can run as peers under identical fault processes.
//! The trait and its two built-in implementations live here (the trainer
//! needs to name them); the external contenders — drop-connect training and
//! zero-space redundant-column correction — live in the `ftt-strategy`
//! crate, which re-exports everything in this module.
//!
//! # Lifecycle contract
//!
//! The trainer invokes the hooks at fixed points of each iteration, always
//! from the sequential flow spine (never from worker threads), so anything
//! a hook emits or counts is deterministic and thread-budget-invariant:
//!
//! 1. [`FaultStrategy::on_map`] — once, right after the network is mapped
//!    onto the chip (iteration 0).
//! 2. [`FaultStrategy::on_pre_iteration`] — after the iteration counter
//!    advances, before the forward pass. This is the campaign trigger slot:
//!    [`DetectRemap`] runs the paper's periodic detection + re-mapping
//!    phase here, exactly where the pre-refactor trainer did.
//! 3. [`FaultStrategy::on_gradient`] — after back-propagation, before the
//!    threshold trainer applies updates. Strategies may install or adjust
//!    the per-iteration mask here.
//! 4. [`FaultStrategy::on_fault_event`] — after the update, only on
//!    iterations where new wear faults appeared.
//! 5. [`FaultStrategy::on_post_iteration`] — after the iteration's events
//!    are emitted, before the evaluation checkpoint.
//!
//! # Cost accounting contract
//!
//! Work a strategy performs must be charged into the flow's telemetry the
//! same way detection is today: campaign reads into
//! `flow_detection_cycles_total`, campaign/verify pulses into
//! `flow_detection_writes_total`, and any strategy-private overhead (e.g.
//! drop-connect mask generation) into `flow_strategy_cycles_total`, which
//! [`FlowStats::energy`](crate::report::FlowStats::energy) prices as cell
//! reads. [`FaultStrategy::cost`] returns the strategy's own ledger of what
//! it charged, so a harness can cross-check accounting parity.

use nn::pruning::{LayerMask, PruneMask};
use nn::network::Network;
use obs::{Confusion, Event, WritePhase};

use faultdet::detector::OnlineFaultDetector;
use faultdet::metrics::DetectionReport;

use crate::config::FlowConfig;
use crate::error::FttError;
use crate::mapping::{LayerDetection, MappedNetwork};
use crate::remap::plan_remap;
use crate::telemetry::FlowMetrics;
use nn::pruning::{try_apply_mask, try_magnitude_prune_per_layer};

/// Conductance tolerance below which a reprogramming write is skipped.
pub(crate) const REPROGRAM_EPSILON: f64 = 1e-4;

/// Stable identifiers of every strategy the workspace knows. Snapshot
/// restore rejects captures whose strategy id is not in this list.
pub const KNOWN_STRATEGY_IDS: [&str; 4] =
    ["detect_remap", "noop", "drop_connect", "redundant_column"];

/// Whether `id` names a strategy this build knows about.
pub fn is_known_strategy_id(id: &str) -> bool {
    KNOWN_STRATEGY_IDS.contains(&id)
}

/// Declarative strategy selection carried by
/// [`FlowConfig`](crate::config::FlowConfig).
///
/// `DetectRemap` and `NoOp` are built into this crate; the trainer
/// constructs them directly. `DropConnect` and `RedundantColumn` are
/// implemented in the `ftt-strategy` crate — selecting one of them requires
/// constructing the trainer through
/// [`FaultTolerantTrainer::with_strategy`](crate::flow::FaultTolerantTrainer::with_strategy)
/// with a boxed implementation whose [`FaultStrategy::id`] matches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategySelect {
    /// The paper's detect → prune → re-map closed loop (the default).
    DetectRemap,
    /// No fault handling at all: the unprotected baseline.
    NoOp,
    /// Stochastic connection masking during training (arXiv 2404.15498).
    DropConnect {
        /// Fraction of mapped connections dropped each iteration.
        rate: f64,
        /// Base seed for the per-iteration masks (salted by the logical
        /// iteration clock).
        seed: u64,
    },
    /// Zero-space redundant-column correction (arXiv 2401.11664), mapped
    /// onto the chip's spare-tile machinery.
    RedundantColumn {
        /// Predicted fault density at which a column group (tile) is
        /// retired and a redundant spare attached.
        retire_density: f64,
        /// Iterations between correction campaigns (0 disables periodic
        /// campaigns; fault events can still trigger one).
        interval: u64,
    },
}

impl StrategySelect {
    /// The selection's stable strategy id.
    pub fn id(&self) -> &'static str {
        match self {
            StrategySelect::DetectRemap => "detect_remap",
            StrategySelect::NoOp => "noop",
            StrategySelect::DropConnect { .. } => "drop_connect",
            StrategySelect::RedundantColumn { .. } => "redundant_column",
        }
    }
}

/// Cumulative cycles/pulses a strategy charged into the flow telemetry on
/// its own behalf — the strategy-side ledger of the accounting contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrategyCost {
    /// Read/test cycles charged (detection campaigns, verify reads, mask
    /// generation — everything priced as a cell read).
    pub cycles: u64,
    /// Write pulses charged (campaign writes, verify writes, reprogram
    /// pulses issued by the strategy).
    pub write_pulses: u64,
}

impl StrategyCost {
    /// Adds `other` into this ledger.
    pub fn absorb(&mut self, other: StrategyCost) {
        self.cycles += other.cycles;
        self.write_pulses += other.write_pulses;
    }
}

/// Everything a strategy hook may touch, borrowed from the trainer for the
/// duration of one hook call.
///
/// All fields are the trainer's own — mutating them *is* mutating the run.
/// Hooks run on the sequential spine, so event emission through
/// `metrics.recorder()` is safe and deterministic.
#[derive(Debug)]
pub struct StrategyCtx<'a> {
    /// The mapped hardware.
    pub mapped: &'a mut MappedNetwork,
    /// The software network view.
    pub net: &'a mut Network,
    /// The flow configuration (immutable — configs are code, not state).
    pub flow: &'a FlowConfig,
    /// The flow's metric handles (counters/gauges are interior-mutable).
    pub metrics: &'a FlowMetrics,
    /// The current training iteration (already advanced for this step).
    pub iteration: u64,
    /// The persistent pruning mask installed by a re-mapping phase, if any.
    /// Entries marked pruned are frozen at zero by the threshold trainer.
    pub active_mask: &'a mut Option<PruneMask>,
    /// A per-iteration mask cleared by the trainer at the top of every
    /// iteration. When set, the trainer zeroes the masked weights in the
    /// software view before the forward pass and skips their updates —
    /// the drop-connect mechanism.
    pub iteration_mask: &'a mut Option<PruneMask>,
}

/// A pluggable fault-tolerance strategy. See the module docs for the
/// lifecycle and cost-accounting contracts.
///
/// Every hook has a no-op default so minimal strategies (like [`NoOp`])
/// implement only [`FaultStrategy::id`].
pub trait FaultStrategy: std::fmt::Debug {
    /// The strategy's stable identifier (snapshot captures record it; see
    /// [`KNOWN_STRATEGY_IDS`]).
    fn id(&self) -> &'static str;

    /// Called once after the network is mapped onto the chip.
    ///
    /// # Errors
    ///
    /// Configuration errors abort trainer construction.
    fn on_map(&mut self, _ctx: &mut StrategyCtx<'_>) -> Result<(), FttError> {
        Ok(())
    }

    /// Called at the top of every iteration (the campaign trigger slot).
    ///
    /// # Errors
    ///
    /// Hardware/configuration errors abort the training call.
    fn on_pre_iteration(&mut self, _ctx: &mut StrategyCtx<'_>) -> Result<(), FttError> {
        Ok(())
    }

    /// Called after back-propagation, before the threshold update.
    ///
    /// # Errors
    ///
    /// Hardware/configuration errors abort the training call.
    fn on_gradient(&mut self, _ctx: &mut StrategyCtx<'_>) -> Result<(), FttError> {
        Ok(())
    }

    /// Called after the update on iterations that produced new wear faults.
    ///
    /// # Errors
    ///
    /// Hardware/configuration errors abort the training call.
    fn on_fault_event(
        &mut self,
        _ctx: &mut StrategyCtx<'_>,
        _new_faults: u64,
    ) -> Result<(), FttError> {
        Ok(())
    }

    /// Called at the end of every iteration, before the eval checkpoint.
    ///
    /// # Errors
    ///
    /// Hardware/configuration errors abort the training call.
    fn on_post_iteration(&mut self, _ctx: &mut StrategyCtx<'_>) -> Result<(), FttError> {
        Ok(())
    }

    /// The strategy's cumulative self-charged cost ledger.
    fn cost(&self) -> StrategyCost {
        StrategyCost::default()
    }
}

/// The unprotected baseline: no detection, no masking, no correction.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOp;

impl FaultStrategy for NoOp {
    fn id(&self) -> &'static str {
        "noop"
    }
}

/// The paper's closed loop as a strategy: periodic quiescent-voltage
/// detection, tile sparing, magnitude pruning, and the `Dist(P, F)`
/// re-mapping search — extracted verbatim from the pre-refactor trainer,
/// so a seeded run's event trace is byte-identical to what the hard-wired
/// flow emitted.
///
/// The campaign cadence comes from the flow config
/// (`detection_interval` / `detection_warmup`), exactly as before.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectRemap {
    cost: StrategyCost,
}

impl DetectRemap {
    /// Creates the default closed-loop strategy.
    pub fn new() -> Self {
        Self::default()
    }

    /// The Fig. 2 periodic phase: on-line detection, pruning, re-mapping.
    fn detection_phase(&mut self, ctx: &mut StrategyCtx<'_>) -> Result<(), FttError> {
        let recorder = ctx.metrics.recorder().clone();
        let _phase_span = recorder.span("detection_phase");
        ctx.metrics.detection_campaigns.inc();
        let campaign = ctx.metrics.detection_campaigns.get();
        recorder.emit(Event::DetectionCampaignStart { campaign });

        let detector = OnlineFaultDetector::new(ctx.flow.detector).with_recorder(&recorder);
        let mut detections = {
            let _detect_span = recorder.span("detect");
            if ctx.flow.incremental_detection {
                ctx.mapped.detect_incremental(&detector)?
            } else {
                ctx.mapped.detect(&detector)?
            }
        };
        let (cycles, writes, untested, flagged) = sum_detections(&detections);
        ctx.metrics.detection_cycles.add(cycles);
        ctx.metrics.detection_writes.add(writes);
        ctx.metrics.detection_untested_groups.add(untested);
        self.cost.absorb(StrategyCost {
            cycles,
            write_pulses: writes,
        });
        recorder.set_write_pulses(ctx.mapped.total_write_pulses());

        // The simulator knows the ground-truth fault maps, so every
        // campaign is scored with a full confusion matrix (summed over all
        // mapped layers) — the paper's detection-accuracy experiments fall
        // out of the event stream for free.
        let confusion = score_against_ground_truth(ctx.mapped, &detections);
        recorder.emit(Event::DetectionCampaignEnd {
            campaign,
            flagged_cells: flagged,
            cycles,
            write_pulses: writes,
            untested_groups: untested,
            confusion: Some(confusion),
        });
        if writes > 0 {
            recorder.emit(Event::WritePulseBatch {
                pulses: writes,
                phase: WritePhase::Detection,
            });
        }

        // Tile sparing: retire tiles whose predicted fault density crossed
        // the configured threshold and swap in screened spares, before the
        // re-mapping search reasons about the (now partially healed) fault
        // state. No-op unless `retire_fault_density` is configured.
        if ctx.mapped.config().retire_fault_density.is_some() {
            let sparing = {
                let _sparing_span = recorder.span("tile_sparing");
                ctx.mapped.apply_sparing(&detector, &mut detections)?
            };
            ctx.metrics.tiles_retired.add(sparing.tiles_retired);
            ctx.metrics.spares_attached.add(sparing.spares_attached);
            ctx.metrics.detection_cycles.add(sparing.verify_cycles);
            ctx.metrics
                .detection_writes
                .add(sparing.verify_write_pulses);
            self.cost.absorb(StrategyCost {
                cycles: sparing.verify_cycles,
                write_pulses: sparing.verify_write_pulses + sparing.reprogram_pulses,
            });
            recorder.set_write_pulses(ctx.mapped.total_write_pulses());
            if sparing.verify_write_pulses > 0 {
                recorder.emit(Event::WritePulseBatch {
                    pulses: sparing.verify_write_pulses,
                    phase: WritePhase::Detection,
                });
            }
            if sparing.reprogram_pulses > 0 {
                recorder.emit(Event::WritePulseBatch {
                    pulses: sparing.reprogram_pulses,
                    phase: WritePhase::Reprogram,
                });
            }
        }

        let Some(remap_cfg) = ctx.flow.remap else {
            return Ok(());
        };

        // Generate the pruning distribution from the current *software*
        // weights (the paper's "Generate Pruning" box works on the trained
        // network, not on the fault-corrupted hardware view — otherwise
        // magnitude pruning would trivially select the stuck-at-zero cells
        // and the re-ordering search would have nothing left to align).
        ctx.mapped.load_target_weights(ctx.net)?;
        let weight_layers = ctx.net.weight_layer_indices();
        let fractions: Vec<f64> = weight_layers
            .iter()
            .map(|&li| match ctx.net.try_layer_kind(li) {
                Some("dense") => ctx.flow.prune_fraction_dense,
                _ => ctx.flow.prune_fraction_conv,
            })
            .collect();
        let mut mask = try_magnitude_prune_per_layer(ctx.net, &fractions)?;

        // Search for a neuron re-ordering minimizing Dist(P, F).
        let mut cfg = remap_cfg;
        cfg.seed ^= ctx.iteration; // fresh search each phase
        let plan = {
            let _search_span = recorder.span("remap_search");
            plan_remap(ctx.mapped, &mask, &detections, &cfg)?
        };
        ctx.metrics
            .last_remap_initial_cost
            .set(plan.initial_cost as f64);
        ctx.metrics
            .last_remap_final_cost
            .set(plan.final_cost as f64);
        if plan.final_cost < plan.initial_cost && !plan.is_identity() {
            plan.apply(ctx.net, &mut mask)?;
            ctx.metrics.remaps_applied.inc();
            recorder.emit(Event::RemapApplied {
                initial_cost: plan.initial_cost,
                final_cost: plan.final_cost,
            });
        }

        // Park the pruned zeros and reprogram the array with the permuted
        // weights (writes only where the target moved).
        try_apply_mask(ctx.net, &mask)?;
        let reprog_writes = ctx.mapped.reprogram_from(ctx.net, REPROGRAM_EPSILON)?;
        self.cost.absorb(StrategyCost {
            cycles: 0,
            write_pulses: reprog_writes,
        });
        recorder.set_write_pulses(ctx.mapped.total_write_pulses());
        if reprog_writes > 0 {
            recorder.emit(Event::WritePulseBatch {
                pulses: reprog_writes,
                phase: WritePhase::Reprogram,
            });
        }
        *ctx.active_mask = Some(mask);
        Ok(())
    }
}

impl FaultStrategy for DetectRemap {
    fn id(&self) -> &'static str {
        "detect_remap"
    }

    fn on_pre_iteration(&mut self, ctx: &mut StrategyCtx<'_>) -> Result<(), FttError> {
        // Periodic detection + re-mapping phase (after warm-up).
        if let Some(interval) = ctx.flow.detection_interval {
            if interval > 0
                && ctx.iteration >= ctx.flow.detection_warmup
                && ctx.iteration.is_multiple_of(interval)
            {
                self.detection_phase(ctx)?;
            }
        }
        Ok(())
    }

    fn cost(&self) -> StrategyCost {
        self.cost
    }
}

/// Sums `(cycles, write_pulses, untested_groups, flagged_cells)` over a
/// campaign's per-layer detections — the totals every campaign-running
/// strategy reports and charges.
pub fn sum_detections(detections: &[LayerDetection]) -> (u64, u64, u64, u64) {
    let (mut cycles, mut writes, mut untested, mut flagged) = (0u64, 0u64, 0u64, 0u64);
    for d in detections {
        cycles += d.cycles;
        writes += d.write_pulses;
        untested += d.untested_groups;
        flagged += d.predicted.count_faulty() as u64;
    }
    (cycles, writes, untested, flagged)
}

/// Scores a campaign's predictions against simulator ground truth, summed
/// over all mapped layers.
pub fn score_against_ground_truth(
    mapped: &MappedNetwork,
    detections: &[LayerDetection],
) -> Confusion {
    let truth = mapped.ground_truth();
    let mut confusion = Confusion::default();
    for (t, d) in truth.iter().zip(detections) {
        let r = DetectionReport::evaluate(t, &d.predicted);
        confusion.true_pos += r.tp;
        confusion.false_pos += r.fp;
        confusion.false_neg += r.fn_;
        confusion.true_neg += r.tn;
    }
    confusion
}

/// Merges two prune masks over the same layer geometry (`pruned` is the
/// element-wise OR). Used by the trainer to combine the persistent
/// re-mapping mask with a strategy's per-iteration mask.
///
/// # Errors
///
/// Returns [`FttError::InvalidConfig`] when the masks cover different
/// layers or shapes.
pub fn union_masks(a: &PruneMask, b: &PruneMask) -> Result<PruneMask, FttError> {
    if a.len() != b.len() {
        return Err(FttError::InvalidConfig(format!(
            "mask union over {} vs {} layers",
            a.len(),
            b.len()
        )));
    }
    let mut layers = Vec::with_capacity(a.len());
    for (la, lb) in a.layers().iter().zip(b.layers()) {
        if la.layer_index != lb.layer_index || la.shape != lb.shape {
            return Err(FttError::InvalidConfig(format!(
                "mask union shape mismatch at layer {}",
                la.layer_index
            )));
        }
        let pruned = la
            .pruned
            .iter()
            .zip(&lb.pruned)
            .map(|(&x, &y)| x || y)
            .collect();
        layers.push(LayerMask {
            layer_index: la.layer_index,
            shape: la.shape,
            pruned,
        });
    }
    Ok(PruneMask::from_layers(layers))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_ids_are_the_known_ids() {
        let selects = [
            StrategySelect::DetectRemap,
            StrategySelect::NoOp,
            StrategySelect::DropConnect { rate: 0.1, seed: 1 },
            StrategySelect::RedundantColumn {
                retire_density: 0.2,
                interval: 50,
            },
        ];
        for (s, id) in selects.iter().zip(KNOWN_STRATEGY_IDS) {
            assert_eq!(s.id(), id);
            assert!(is_known_strategy_id(s.id()));
        }
        assert!(!is_known_strategy_id("time_travel"));
    }

    #[test]
    fn union_masks_ors_elementwise() {
        let la = LayerMask {
            layer_index: 0,
            shape: (1, 3),
            pruned: vec![true, false, false],
        };
        let lb = LayerMask {
            layer_index: 0,
            shape: (1, 3),
            pruned: vec![false, true, false],
        };
        let u = union_masks(
            &PruneMask::from_layers(vec![la.clone()]),
            &PruneMask::from_layers(vec![lb]),
        )
        .unwrap();
        assert_eq!(u.layer(0).pruned, vec![true, true, false]);
        // Shape mismatch is rejected.
        let wrong = LayerMask {
            layer_index: 0,
            shape: (3, 1),
            pruned: vec![false; 3],
        };
        assert!(union_masks(
            &PruneMask::from_layers(vec![la]),
            &PruneMask::from_layers(vec![wrong])
        )
        .is_err());
    }

    #[test]
    fn noop_has_zero_cost_and_default_hooks() {
        let s = NoOp;
        assert_eq!(s.id(), "noop");
        assert_eq!(s.cost(), StrategyCost::default());
    }
}

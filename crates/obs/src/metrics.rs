//! Metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! around atomics, so hot loops cache a handle once and update it with a
//! single relaxed atomic op — no name lookup, no lock. The [`Registry`]
//! owns the name → metric map (a `BTreeMap`, so every rendering is in
//! deterministic sorted order) and renders the whole set in Prometheus
//! text exposition format.
//!
//! Gauges store `f64` bits in an `AtomicU64`; counters are plain `u64`.
//! Histograms use fixed bucket upper bounds chosen at creation, matching
//! Prometheus cumulative-bucket semantics (`+Inf` is implicit via
//! `_count`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` gauge (bits stored in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Self(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared histogram state: cumulative-style fixed buckets plus sum/count.
#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds (inclusive), strictly increasing. Values above the
    /// last bound land only in the implicit `+Inf` bucket (`count`).
    bounds: Vec<u64>,
    /// Per-bucket observation counts (NOT cumulative; cumulated at render).
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations (typically nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn with_bounds(bounds: &[u64]) -> Self {
        let buckets = (0..bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let inner = &self.0;
        if let Some(idx) = inner.bounds.iter().position(|&b| value <= b) {
            inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        }
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }
}

/// Default span-duration bucket bounds in nanoseconds: 1 µs … 10 s in
/// half-decade steps. Wide enough for a full detection campaign, fine
/// enough to distinguish a fast MVM from a slow sweep.
pub const DURATION_BOUNDS_NS: [u64; 15] = [
    1_000,
    3_000,
    10_000,
    30_000,
    100_000,
    300_000,
    1_000_000,
    3_000_000,
    10_000_000,
    30_000_000,
    100_000_000,
    300_000_000,
    1_000_000_000,
    3_000_000_000,
    10_000_000_000,
];

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind_str(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One metric family: every labeled series registered under one name.
/// The series key is the rendered label block (`""` for the unlabeled
/// series, else `{k="v",…}` with keys sorted), so the `BTreeMap` keeps
/// series in deterministic render order with the unlabeled series first.
#[derive(Debug, Default)]
struct Family {
    series: BTreeMap<String, Metric>,
}

impl Family {
    /// Whether a new series of `kind` may join this family (all series
    /// under one name must share a kind).
    fn accepts(&self, kind: &str) -> bool {
        self.series.values().next().is_none_or(|m| m.kind_str() == kind)
    }
}

/// Renders a label set as a deterministic Prometheus label block:
/// `{k="v",k2="v2"}` with keys sorted, `""` when empty. Label *names*
/// are expected to follow the registry grammar (enforced at call sites
/// by the O1 lint); label *values* are escaped per the exposition
/// format (`\` → `\\`, `"` → `\"`, newline → `\n`).
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted = labels.to_vec();
    sorted.sort();
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// A name-keyed registry of metric families with deterministic (sorted)
/// rendering.
///
/// `counter()` / `gauge()` / `histogram()` are get-or-create: the first
/// call under a name defines the family's kind, later calls return
/// handles to the same storage. The `*_labeled` variants address one
/// labeled series inside a family (e.g. a per-tenant counter); the
/// unlabeled constructors are the `labels = []` special case, and a
/// registry that never uses labels renders byte-identically to one that
/// predates them. Mixing kinds under one name is a programming error and
/// returns a *fresh, unregistered* handle so callers never panic — the
/// mismatch shows up as missing data rather than a crash.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Family>> {
        // Poisoning only propagates a panic that already happened
        // elsewhere; the map itself is always structurally valid.
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Gets or creates the counter registered under `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_labeled(name, &[])
    }

    /// Gets or creates the counter series registered under `name` with
    /// the given labels (order-insensitive; keys are sorted).
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = label_key(labels);
        let mut map = self.lock();
        let family = map.entry(name.to_string()).or_default();
        if !family.accepts("counter") {
            return Counter::default();
        }
        match family
            .series
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::default(),
        }
    }

    /// Gets or creates the gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_labeled(name, &[])
    }

    /// Gets or creates the gauge series registered under `name` with the
    /// given labels (order-insensitive; keys are sorted).
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = label_key(labels);
        let mut map = self.lock();
        let family = map.entry(name.to_string()).or_default();
        if !family.accepts("gauge") {
            return Gauge::default();
        }
        match family
            .series
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::default(),
        }
    }

    /// Gets or creates the histogram registered under `name` with the
    /// default duration bounds ([`DURATION_BOUNDS_NS`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_bounds(name, &DURATION_BOUNDS_NS)
    }

    /// Gets or creates the histogram registered under `name`. The bounds
    /// apply only on first creation. Histograms are always unlabeled
    /// (their `le` label is reserved by the exposition format).
    pub fn histogram_with_bounds(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.lock();
        let family = map.entry(name.to_string()).or_default();
        if !family.accepts("histogram") {
            return Histogram::with_bounds(bounds);
        }
        match family
            .series
            .entry(String::new())
            .or_insert_with(|| Metric::Histogram(Histogram::with_bounds(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::with_bounds(bounds),
        }
    }

    /// Value of a registered (unlabeled) counter, if any.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counter_value_labeled(name, &[])
    }

    /// Value of a registered labeled counter series, if any.
    pub fn counter_value_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.lock().get(name)?.series.get(&label_key(labels)) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Value of a registered (unlabeled) gauge, if any.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauge_value_labeled(name, &[])
    }

    /// Value of a registered labeled gauge series, if any.
    pub fn gauge_value_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.lock().get(name)?.series.get(&label_key(labels)) {
            Some(Metric::Gauge(g)) => Some(g.get()),
            _ => None,
        }
    }

    /// Handle to a registered histogram, if any.
    pub fn histogram_handle(&self, name: &str) -> Option<Histogram> {
        match self.lock().get(name)?.series.get("") {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Renders every metric in Prometheus text exposition format, sorted
    /// by family name with one `# TYPE` line per family; labeled series
    /// render in sorted label order after the unlabeled series.
    /// Histograms render cumulative `_bucket{le=...}` series plus `_sum`
    /// and `_count`.
    pub fn render_prometheus(&self) -> String {
        let map = self.lock();
        let mut out = String::new();
        for (name, family) in map.iter() {
            let Some(kind) = family.series.values().next().map(Metric::kind_str) else {
                continue;
            };
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, metric) in family.series.iter() {
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{name}{labels} {}", g.get());
                    }
                    Metric::Histogram(h) => {
                        let inner = &h.0;
                        let mut cumulative = 0u64;
                        for (bound, bucket) in inner.bounds.iter().zip(inner.buckets.iter()) {
                            cumulative += bucket.load(Ordering::Relaxed);
                            let _ =
                                writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                        }
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                        let _ = writeln!(out, "{name}_sum {}", h.sum());
                        let _ = writeln!(out, "{name}_count {}", h.count());
                    }
                }
            }
        }
        out
    }

    /// Names of all registered metric families, sorted.
    pub fn names(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_storage() {
        let reg = Registry::new();
        let a = reg.counter("hits_total");
        let b = reg.counter("hits_total");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter_value("hits_total"), Some(4));
    }

    #[test]
    fn gauges_hold_last_value() {
        let reg = Registry::new();
        let g = reg.gauge("loss");
        g.set(0.25);
        g.set(-1.5);
        assert_eq!(reg.gauge_value("loss"), Some(-1.5));
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let reg = Registry::new();
        let h = reg.histogram_with_bounds("lat_ns", &[10, 100, 1000]);
        for v in [5, 50, 500, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5555);
        assert!((h.mean() - 1388.75).abs() < 1e-9);
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_cumulative() {
        let reg = Registry::new();
        reg.counter("z_total").add(2);
        reg.gauge("a_gauge").set(1.5);
        let h = reg.histogram_with_bounds("m_hist", &[10, 100]);
        h.observe(7);
        h.observe(70);
        h.observe(700);
        let text = reg.render_prometheus();
        let a = text.find("a_gauge").unwrap_or(usize::MAX);
        let m = text.find("m_hist").unwrap_or(usize::MAX);
        let z = text.find("z_total").unwrap_or(usize::MAX);
        assert!(a < m && m < z, "sorted order:\n{text}");
        assert!(text.contains("m_hist_bucket{le=\"10\"} 1"));
        assert!(text.contains("m_hist_bucket{le=\"100\"} 2"));
        assert!(text.contains("m_hist_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("m_hist_count 3"));
    }

    #[test]
    fn kind_mismatch_returns_detached_handle() {
        let reg = Registry::new();
        reg.counter("x").add(1);
        // Asking for a gauge under a counter name must not panic and must
        // not clobber the counter.
        let g = reg.gauge("x");
        g.set(9.0);
        assert_eq!(reg.counter_value("x"), Some(1));
    }

    #[test]
    fn labeled_series_share_a_family_but_not_storage() {
        let reg = Registry::new();
        reg.counter_labeled("serve_requests_total", &[("tenant", "a")])
            .add(2);
        reg.counter_labeled("serve_requests_total", &[("tenant", "b")])
            .inc();
        assert_eq!(
            reg.counter_value_labeled("serve_requests_total", &[("tenant", "a")]),
            Some(2)
        );
        assert_eq!(
            reg.counter_value_labeled("serve_requests_total", &[("tenant", "b")]),
            Some(1)
        );
        // The unlabeled series is distinct and not implicitly created.
        assert_eq!(reg.counter_value("serve_requests_total"), None);
        assert_eq!(reg.names(), vec!["serve_requests_total".to_string()]);
    }

    #[test]
    fn labeled_rendering_groups_one_type_line_per_family() {
        let reg = Registry::new();
        reg.counter_labeled("req_total", &[("tenant", "b")]).add(3);
        // Label order at the call site must not matter.
        reg.counter_labeled("req_total", &[("chip", "0"), ("tenant", "a")])
            .add(1);
        reg.counter_labeled("req_total", &[("tenant", "a"), ("chip", "0")])
            .add(1);
        reg.gauge_labeled("depth", &[("tenant", "a")]).set(2.0);
        let text = reg.render_prometheus();
        let expected = "# TYPE depth gauge\n\
                        depth{tenant=\"a\"} 2\n\
                        # TYPE req_total counter\n\
                        req_total{chip=\"0\",tenant=\"a\"} 2\n\
                        req_total{tenant=\"b\"} 3\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.gauge_labeled("g", &[("k", "a\"b\\c\nd")]).set(1.0);
        let text = reg.render_prometheus();
        assert!(text.contains("g{k=\"a\\\"b\\\\c\\nd\"} 1"), "{text}");
    }

    #[test]
    fn labeled_kind_mismatch_is_detached_per_family() {
        let reg = Registry::new();
        reg.counter_labeled("m", &[("tenant", "a")]).add(5);
        let g = reg.gauge_labeled("m", &[("tenant", "b")]);
        g.set(3.0);
        assert_eq!(reg.gauge_value_labeled("m", &[("tenant", "b")]), None);
        assert_eq!(reg.counter_value_labeled("m", &[("tenant", "a")]), Some(5));
    }

    #[test]
    fn unlabeled_series_renders_exactly_as_before_labels_existed() {
        let reg = Registry::new();
        reg.counter("hits_total").add(4);
        reg.gauge("loss").set(0.5);
        let text = reg.render_prometheus();
        assert_eq!(
            text,
            "# TYPE hits_total counter\nhits_total 4\n# TYPE loss gauge\nloss 0.5\n"
        );
    }
}

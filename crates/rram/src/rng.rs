//! Seeded randomness helpers used across the simulator.
//!
//! The workspace restricts runtime dependencies to `rand`, so the Gaussian
//! sampling needed by the endurance and variation models is implemented here
//! with the Marsaglia polar method rather than pulling in `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Gaussian (normal) distribution with the given mean and standard
/// deviation, sampled with the Marsaglia polar method.
///
/// # Example
///
/// ```
/// use rram::rng::{sim_rng, Normal};
///
/// let mut rng = sim_rng(7);
/// let endurance = Normal::new(5.0e6, 1.5e6).sample(&mut rng);
/// assert!(endurance.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(
            mean.is_finite() && std.is_finite(),
            "parameters must be finite"
        );
        assert!(std >= 0.0, "standard deviation must be non-negative");
        Self { mean, std }
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.std == 0.0 {
            return self.mean;
        }
        // Marsaglia polar method; discard the second variate for simplicity.
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std * u * factor;
            }
        }
    }
}

/// Creates the deterministic RNG used throughout the simulator.
///
/// All stochastic components of the workspace accept a seed and derive their
/// randomness from an [`StdRng`], so every experiment in `EXPERIMENTS.md` is
/// exactly reproducible.
pub fn sim_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_matches_moments() {
        let mut rng = sim_rng(123);
        let dist = Normal::new(10.0, 2.0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean was {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std was {}", var.sqrt());
    }

    #[test]
    fn zero_std_is_constant() {
        let mut rng = sim_rng(5);
        let dist = Normal::new(3.5, 0.0);
        for _ in 0..10 {
            assert_eq!(dist.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = sim_rng(9);
        let mut b = sim_rng(9);
        let dist = Normal::new(0.0, 1.0);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut a), dist.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_std_panics() {
        let _ = Normal::new(0.0, -1.0);
    }
}

//! Chip lifecycle: repeatedly re-training one RCS for new applications
//! (§1 / §6.4 of the paper) until its cells wear out.
//!
//! Each campaign programs a fresh network for a fresh task onto the *same*
//! simulated chip; hard faults accumulate across campaigns, and the run
//! reports the accuracy trajectory with and without threshold training.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example chip_lifecycle
//! ```

use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use ftt_core::flow::FaultTolerantTrainer;
use ftt_core::threshold::ThresholdPolicy;
use nn::init::init_rng;
use nn::layers::{Dense, Relu};
use nn::network::Network;
use nn::optimizer::LrSchedule;
use nn::synth::SyntheticDataset;
use rram::endurance::EnduranceModel;

fn fresh_net(seed: u64) -> Network {
    let mut rng = init_rng(seed);
    let mut net = Network::new();
    net.push(Dense::new(784, 32, &mut rng));
    net.push(Relu::new());
    net.push(Dense::new(32, 10, &mut rng));
    net
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let per_campaign = 1000u64;
    let campaigns = 8u64;
    // The chip survives ~4 campaigns of unconditional writes.
    let endurance = EnduranceModel::new(4.0 * per_campaign as f64, per_campaign as f64);

    for (name, policy) in [
        ("original method", ThresholdPolicy::None),
        ("threshold training", ThresholdPolicy::paper_default()),
    ] {
        println!("== {name} ==");
        println!("campaign, final_accuracy, faulty_cells");
        let mapping = MappingConfig::new(MappingScope::EntireNetwork)
            .with_endurance(endurance)
            .with_seed(12);
        let mut flow = FlowConfig::original().with_lr(LrSchedule::constant(0.05));
        flow.threshold = policy;
        flow.eval_interval = per_campaign;
        let mut trainer = FaultTolerantTrainer::new(fresh_net(0), mapping, flow)?;
        for campaign in 0..campaigns {
            if campaign > 0 {
                trainer.reprogram_network(fresh_net(campaign))?;
            }
            let data = SyntheticDataset::mnist_like(400, 100, 500 + campaign);
            trainer.train(&data, per_campaign)?;
            println!(
                "{campaign}, {:.3}, {:.1}%",
                trainer.curve().final_accuracy(),
                100.0 * trainer.mapped().fraction_faulty()
            );
        }
        println!();
    }
    println!("the original method exhausts the chip within a few applications;");
    println!("threshold training keeps it serviceable across all of them.");
    Ok(())
}

//! The complete fault-tolerant on-line training flow (Fig. 2 of the paper).
//!
//! Every iteration runs forward propagation *through the simulated RRAM
//! hardware* (effective weights include stuck cells, write variation, and
//! clamping), back-propagates, and applies the weight updates through the
//! threshold trainer. Every `detection_interval` iterations the flow runs
//! the quiescent-voltage detection campaign, regenerates the pruning
//! distribution, searches for a neuron re-ordering that minimizes
//! `Dist(P, F)`, applies it (an isomorphism), parks the pruned zeros on the
//! faulty cells, and reprograms the array.

use nn::data::{BatchStreamState, Dataset};
use nn::loss::softmax_cross_entropy;
use nn::metrics::accuracy;
use nn::network::Network;
use nn::pruning::{try_apply_mask, LayerMask, PruneMask};
use obs::{Event, Recorder, WritePhase};

use crate::config::{FlowConfig, MappingConfig};
use crate::error::FttError;
use crate::mapping::{MappedNetwork, MappedState};
use crate::report::{CurvePoint, FlowStats, TrainingCurve};
use crate::strategy::{
    is_known_strategy_id, union_masks, DetectRemap, FaultStrategy, NoOp, StrategyCtx,
    StrategySelect,
};
use crate::telemetry::FlowMetrics;
use crate::threshold::ThresholdTrainer;

/// Builds the strategy hook context over the trainer's fields. A macro
/// rather than a method so the disjoint field borrows (`strategy` mutably
/// alongside everything else) stay visible to the borrow checker.
macro_rules! strategy_ctx {
    ($self:ident) => {
        StrategyCtx {
            mapped: &mut $self.mapped,
            net: &mut $self.net,
            flow: &$self.flow,
            metrics: &$self.metrics,
            iteration: $self.iteration,
            active_mask: &mut $self.active_mask,
            iteration_mask: &mut $self.iteration_mask,
        }
    };
}

/// Orchestrates fault-tolerant on-line training of one network on one
/// simulated RCS.
///
/// # Telemetry
///
/// Every trainer carries an [`obs::Recorder`] (pass your own via
/// [`FaultTolerantTrainer::with_recorder`] to attach sinks). The
/// *sequential* flow spine emits the typed event stream —
/// [`Event::TrainingIteration`], [`Event::ThresholdSkipBurst`],
/// [`Event::DetectionCampaignStart`]/[`Event::DetectionCampaignEnd`] (with
/// confusion-matrix scoring against simulator ground truth),
/// [`Event::RemapApplied`], [`Event::WearFault`], and
/// [`Event::WritePulseBatch`] — stamped on the iteration/write-pulse
/// logical clock, so a seeded run's trace is byte-identical at any
/// `RRAM_FTT_THREADS`. Aggregate statistics live in the recorder's
/// registry (see [`FlowMetrics`]); [`FaultTolerantTrainer::stats`] is a
/// snapshot view over it.
#[derive(Debug)]
pub struct FaultTolerantTrainer {
    net: Network,
    mapped: MappedNetwork,
    flow: FlowConfig,
    trainer: ThresholdTrainer,
    iteration: u64,
    curve: TrainingCurve,
    metrics: FlowMetrics,
    strategy: Box<dyn FaultStrategy>,
    active_mask: Option<PruneMask>,
    /// Mask installed by the strategy for the current iteration only
    /// (drop-connect); cleared at the top of every iteration.
    iteration_mask: Option<PruneMask>,
    /// First iteration of the currently open all-skip burst, if any.
    burst_start: Option<u64>,
    /// Updates suppressed across the open burst.
    burst_skipped: u64,
    /// Mini-batch stream position carried across [`train`] calls, so a
    /// continued (or checkpoint-restored) run consumes exactly the batches
    /// an uninterrupted one would.
    ///
    /// [`train`]: FaultTolerantTrainer::train
    batch_stream: Option<BatchStreamState>,
}

impl FaultTolerantTrainer {
    /// Maps the network onto simulated hardware and prepares the flow,
    /// with a fresh wall-clock [`Recorder`] (no sinks attached).
    ///
    /// # Errors
    ///
    /// Returns mapping/configuration errors; see
    /// [`MappedNetwork::from_network`].
    pub fn new(net: Network, mapping: MappingConfig, flow: FlowConfig) -> Result<Self, FttError> {
        Self::with_recorder(net, mapping, flow, Recorder::new())
    }

    /// Like [`FaultTolerantTrainer::new`], but records telemetry on the
    /// given recorder — attach sinks to it before or after construction to
    /// capture the event stream.
    ///
    /// # Errors
    ///
    /// Returns mapping/configuration errors; see
    /// [`MappedNetwork::from_network`].
    pub fn with_recorder(
        net: Network,
        mapping: MappingConfig,
        flow: FlowConfig,
        recorder: Recorder,
    ) -> Result<Self, FttError> {
        let strategy = builtin_strategy(&flow.strategy)?;
        Self::with_strategy(net, mapping, flow, recorder, strategy)
    }

    /// Like [`FaultTolerantTrainer::with_recorder`], but drives the run
    /// with an explicit [`FaultStrategy`] implementation — the entry point
    /// for strategies living outside this crate (the `ftt-strategy`
    /// contenders). The strategy's [`FaultStrategy::id`] must match the
    /// flow config's [`StrategySelect::id`], so snapshots restore against
    /// the right implementation.
    ///
    /// # Errors
    ///
    /// Returns mapping/configuration errors (including a strategy/config id
    /// mismatch); see [`MappedNetwork::from_network`].
    pub fn with_strategy(
        mut net: Network,
        mapping: MappingConfig,
        flow: FlowConfig,
        recorder: Recorder,
        strategy: Box<dyn FaultStrategy>,
    ) -> Result<Self, FttError> {
        if strategy.id() != flow.strategy.id() {
            return Err(FttError::InvalidConfig(format!(
                "strategy `{}` does not match the flow config selection `{}`",
                strategy.id(),
                flow.strategy.id()
            )));
        }
        let mut mapped = MappedNetwork::from_network(&mut net, mapping)?;
        mapped.attach_recorder(&recorder);
        let trainer = ThresholdTrainer::new(flow.threshold, &mapped);
        let mut this = Self {
            net,
            mapped,
            flow,
            trainer,
            iteration: 0,
            curve: TrainingCurve::new(),
            metrics: FlowMetrics::new(recorder),
            strategy,
            active_mask: None,
            iteration_mask: None,
            burst_start: None,
            burst_skipped: 0,
            batch_stream: None,
        };
        this.strategy.on_map(&mut strategy_ctx!(this))?;
        Ok(this)
    }

    /// The strategy driving the run.
    pub fn strategy(&self) -> &dyn FaultStrategy {
        self.strategy.as_ref()
    }

    /// The training curve recorded so far.
    pub fn curve(&self) -> &TrainingCurve {
        &self.curve
    }

    /// Aggregate flow statistics — a snapshot derived from the telemetry
    /// registry (the counters are the single source of truth).
    pub fn stats(&self) -> FlowStats {
        self.metrics.snapshot()
    }

    /// The trainer's telemetry recorder.
    pub fn recorder(&self) -> &Recorder {
        self.metrics.recorder()
    }

    /// The simulated hardware.
    pub fn mapped(&self) -> &MappedNetwork {
        &self.mapped
    }

    /// The iteration counter.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Re-programs the RCS for a *new application*: replaces the software
    /// network with `fresh` (same topology) and writes its weights to the
    /// crossbars. Hardware wear and faults persist — this is the scenario
    /// of §1/§6.4 where repeated re-training exhausts cell endurance.
    ///
    /// # Errors
    ///
    /// Returns [`FttError::InvalidConfig`] if the topology differs, or any
    /// crossbar write error.
    pub fn reprogram_network(&mut self, mut fresh: Network) -> Result<(), FttError> {
        if fresh.weight_layer_indices() != self.net.weight_layer_indices() {
            return Err(FttError::InvalidConfig(
                "replacement network has a different topology".into(),
            ));
        }
        for layer in self.mapped.layers() {
            let fresh_shape = fresh
                .layer_params_mut(layer.layer_index)
                .map(|p| p.weight_shape);
            if fresh_shape != Some((layer.rows, layer.cols)) {
                return Err(FttError::InvalidConfig(format!(
                    "weight layer {} shape mismatch",
                    layer.weight_layer
                )));
            }
        }
        self.net = fresh;
        self.mapped.reprogram_from(&mut self.net, 0.0)?;
        self.active_mask = None;
        Ok(())
    }

    /// Measures test accuracy through the current (faulty) hardware.
    ///
    /// # Errors
    ///
    /// Returns [`FttError::InvalidConfig`] if the mapped layout no longer
    /// matches the software network (a different network was substituted).
    pub fn evaluate(&mut self, data: &Dataset) -> Result<f64, FttError> {
        self.mapped.load_effective_weights(&mut self.net)?;
        let (tx, ty) = data.test_set();
        let logits = self.net.forward(&tx);
        Ok(accuracy(&logits, &ty))
    }

    /// Trains for `iterations` mini-batches, recording the accuracy curve.
    /// Can be called repeatedly to continue training (e.g. to model
    /// re-training the RCS for a subsequent application).
    ///
    /// # Errors
    ///
    /// Propagates hardware and configuration errors.
    pub fn train(&mut self, data: &Dataset, iterations: u64) -> Result<&TrainingCurve, FttError> {
        let mut data = data.clone();
        // Resume the batch stream where the previous `train` call left it
        // (the stream position is part of the checkpoint state), falling
        // back to a fresh iteration-salted shuffle when the geometry
        // changed — a different dataset or batch size starts over.
        let resume = self.batch_stream.take().filter(|st| {
            st.batch == self.flow.batch && st.train_len == data.train_len()
        });
        let mut batches = match &resume {
            Some(st) => data.try_resume_train_batches(st)?,
            None => {
                data.set_shuffle_seed(self.flow.data_seed ^ self.iteration);
                data.try_train_batches(self.flow.batch)?
            }
        };
        let eval_interval = self.flow.eval_interval.max(1);
        let recorder = self.metrics.recorder().clone();
        for step in 0..iterations {
            self.iteration += 1;
            recorder.set_iteration(self.iteration);
            let _iter_span = recorder.span("flow_iteration");

            // Strategy campaign-trigger slot (DetectRemap runs the
            // periodic detection + re-mapping phase here, after warm-up;
            // DropConnect installs its per-iteration mask).
            self.iteration_mask = None;
            self.strategy.on_pre_iteration(&mut strategy_ctx!(self))?;

            // Forward propagation on the RCS: sync the software view with
            // the hardware's effective weights first, then punch out any
            // per-iteration strategy mask (drop-connect) so the dropped
            // connections are absent from this forward/backward pass.
            self.mapped.load_effective_weights(&mut self.net)?;
            if let Some(mask) = &self.iteration_mask {
                try_apply_mask(&mut self.net, mask)?;
            }
            let (x, y) = batches.next().ok_or(FttError::DataExhausted)?;
            let logits = self.net.forward_train(&x);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            self.net.backward(&grad);
            self.strategy.on_gradient(&mut strategy_ctx!(self))?;

            // Threshold-trained weight update through the hardware. Entries
            // frozen by the persistent re-mapping mask and/or the strategy's
            // per-iteration mask receive no update.
            let lr = self.flow.lr.lr(self.iteration);
            let wear_before = self.mapped.wear_faults();
            let merged_mask;
            let frozen: Option<&PruneMask> = match (&self.active_mask, &self.iteration_mask) {
                (Some(a), None) => Some(a),
                (None, Some(m)) => Some(m),
                (Some(a), Some(m)) => {
                    merged_mask = union_masks(a, m)?;
                    Some(&merged_mask)
                }
                (None, None) => None,
            };
            let report =
                self.trainer
                    .apply_with_mask(&mut self.mapped, &mut self.net, lr, frozen)?;
            self.metrics.writes_issued.add(report.writes_issued);
            self.metrics.writes_skipped.add(report.writes_skipped);
            self.metrics
                .nan_updates_skipped
                .add(report.nan_updates_skipped);
            let new_wear = self.mapped.wear_faults() - wear_before;
            self.metrics.wear_faults_during_training.add(new_wear);
            if new_wear > 0 {
                self.strategy
                    .on_fault_event(&mut strategy_ctx!(self), new_wear)?;
            }
            // Analog MVM work this iteration: forward plus the two backward
            // products (dX and dW) touch every mapped cell once each, per
            // sample in the batch.
            let cells_per_pass: u64 = self
                .mapped
                .layers()
                .iter()
                .map(|l| (l.rows * l.cols) as u64)
                .sum();
            self.metrics
                .mvm_cell_ops
                .add(3 * cells_per_pass * self.flow.batch as u64);

            // Event stream (sequential spine only — see the struct docs).
            recorder.set_write_pulses(self.mapped.total_write_pulses());
            if new_wear > 0 {
                recorder.emit(Event::WearFault {
                    new_faults: new_wear,
                    total_faults: self.mapped.wear_faults(),
                });
            }
            if report.writes_issued > 0 {
                recorder.emit(Event::WritePulseBatch {
                    pulses: report.writes_issued,
                    phase: WritePhase::Training,
                });
            }
            if report.writes_issued == 0 && report.writes_skipped > 0 {
                // Extend (or open) the all-skip burst.
                if self.burst_start.is_none() {
                    self.burst_start = Some(self.iteration);
                }
                self.burst_skipped += report.writes_skipped;
            } else {
                self.flush_skip_burst(self.iteration.saturating_sub(1));
            }
            recorder.emit(Event::TrainingIteration {
                writes_issued: report.writes_issued,
                writes_skipped: report.writes_skipped,
                nan_updates_skipped: report.nan_updates_skipped,
                new_wear_faults: new_wear,
                max_abs_dw: report.max_abs_dw,
            });
            self.strategy.on_post_iteration(&mut strategy_ctx!(self))?;

            // Evaluation checkpoint.
            if self.iteration.is_multiple_of(eval_interval) || step + 1 == iterations {
                let acc = self.evaluate(&data)?;
                self.curve.push(CurvePoint {
                    iteration: self.iteration,
                    test_accuracy: acc,
                    faulty_fraction: self.mapped.fraction_faulty(),
                    write_pulses: self.mapped.total_write_pulses(),
                });
            }
        }
        // The skip burst stays open across `train` calls (it flushes once
        // a later iteration issues writes): emitting it here would make
        // the event stream depend on where the caller happened to split
        // the iteration sequence, breaking checkpoint/restore trace
        // equality.
        self.batch_stream = Some(batches.export_state());
        Ok(&self.curve)
    }

    /// Emits the [`Event::ThresholdSkipBurst`] for the currently open
    /// all-skip run (if any), closing it at `end_iteration`.
    fn flush_skip_burst(&mut self, end_iteration: u64) {
        if let Some(start) = self.burst_start.take() {
            let skipped = std::mem::take(&mut self.burst_skipped);
            self.metrics.recorder().emit(Event::ThresholdSkipBurst {
                start_iteration: start,
                end_iteration,
                writes_skipped: skipped,
            });
        }
    }

    /// Captures the complete trainer state for checkpointing: hardware
    /// (via [`MappedNetwork::export_state`]), software parameters, the
    /// threshold ledgers, the batch stream, the burst accumulator, the
    /// training curve, every registry counter and gauge, and the logical
    /// clock tail. Together with the run's configs (which are code, not
    /// state) this is everything [`FaultTolerantTrainer::restore_state`]
    /// needs to continue bit-identically.
    /// (Takes `&mut self` only because network parameters are exposed
    /// through mutable views; nothing is modified.)
    pub fn export_state(&mut self) -> TrainerState {
        let params = self
            .net
            .param_layers_mut()
            .map(|(layer_index, p)| NetParamState {
                layer_index,
                weights: p.weights.to_vec(),
                bias: p.bias.map(|b| b.to_vec()),
            })
            .collect();
        let registry = self.metrics.recorder().registry();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        for name in registry.names() {
            if let Some(v) = registry.counter_value(&name) {
                counters.push((name, v));
            } else if let Some(v) = registry.gauge_value(&name) {
                gauges.push((name, v));
            }
        }
        TrainerState {
            iteration: self.iteration,
            strategy_id: self.strategy.id().to_string(),
            mapped: self.mapped.export_state(),
            params,
            ledgers: self.trainer.export_ledgers(),
            curve: self.curve.points().to_vec(),
            active_mask: self.active_mask.as_ref().map(|m| m.layers().to_vec()),
            burst_start: self.burst_start,
            burst_skipped: self.burst_skipped,
            batch_stream: self.batch_stream.clone(),
            counters,
            gauges,
            clock: self.metrics.recorder().export_clock_state(),
        }
    }

    /// Rebuilds a trainer from a [`TrainerState`] capture, a *template*
    /// network of the same topology the run was built from, the original
    /// configs, and a **fresh** recorder (its counters must start at zero —
    /// the captured totals are added back in; attach sinks before or after
    /// to capture the continuation's event stream, which picks up the
    /// logical clock exactly where the exporting run left it).
    ///
    /// # Errors
    ///
    /// Returns [`FttError::InvalidConfig`] when the capture is incoherent
    /// or does not fit the template network; propagates restore failures
    /// from the hardware layers.
    pub fn restore_state(
        net: Network,
        mapping: MappingConfig,
        flow: FlowConfig,
        recorder: Recorder,
        state: &TrainerState,
    ) -> Result<Self, FttError> {
        let strategy = builtin_strategy(&flow.strategy)?;
        Self::restore_state_with(net, mapping, flow, recorder, state, strategy)
    }

    /// Like [`FaultTolerantTrainer::restore_state`], but restores against
    /// an explicit [`FaultStrategy`] implementation (required for the
    /// `ftt-strategy` contenders, which this crate cannot construct).
    ///
    /// The capture's recorded strategy id must be known to this build and
    /// must match both the flow config's selection and the given
    /// implementation — a capture taken under one strategy cannot silently
    /// continue under another.
    ///
    /// # Errors
    ///
    /// Returns [`FttError::InvalidConfig`] when the capture is incoherent,
    /// does not fit the template network, or carries an unknown/mismatched
    /// strategy id; propagates restore failures from the hardware layers.
    pub fn restore_state_with(
        net: Network,
        mapping: MappingConfig,
        flow: FlowConfig,
        recorder: Recorder,
        state: &TrainerState,
        strategy: Box<dyn FaultStrategy>,
    ) -> Result<Self, FttError> {
        if !is_known_strategy_id(&state.strategy_id) {
            return Err(FttError::InvalidConfig(format!(
                "snapshot records unknown strategy `{}`",
                state.strategy_id
            )));
        }
        if state.strategy_id != strategy.id() || strategy.id() != flow.strategy.id() {
            return Err(FttError::InvalidConfig(format!(
                "snapshot was taken under strategy `{}` but restore was \
                 handed `{}` (config selects `{}`)",
                state.strategy_id,
                strategy.id(),
                flow.strategy.id()
            )));
        }
        let mut net = net;
        let mut mapped = MappedNetwork::restore_state(mapping, &state.mapped)?;
        // Software parameters: the template must have exactly the captured
        // parameter layers.
        let captured: Vec<usize> = state.params.iter().map(|p| p.layer_index).collect();
        let template: Vec<usize> = net.param_layers_mut().map(|(li, _)| li).collect();
        if captured != template {
            return Err(FttError::InvalidConfig(format!(
                "snapshot carries parameter layers {captured:?} but the template \
                 network has {template:?}"
            )));
        }
        for p in &state.params {
            let mut params = net
                .layer_params_mut(p.layer_index)
                .ok_or_else(|| foreign_snapshot_error(p.layer_index))?;
            if params.weights.len() != p.weights.len() {
                return Err(foreign_snapshot_error(p.layer_index));
            }
            params.weights.copy_from_slice(&p.weights);
            match (&mut params.bias, &p.bias) {
                (Some(dst), Some(src)) if dst.len() == src.len() => dst.copy_from_slice(src),
                (None, None) => {}
                _ => return Err(foreign_snapshot_error(p.layer_index)),
            }
        }
        mapped.attach_recorder(&recorder);
        let mut trainer = ThresholdTrainer::new(flow.threshold, &mapped);
        trainer.restore_ledgers(state.ledgers.clone(), &mapped)?;
        let mut curve = TrainingCurve::new();
        for point in &state.curve {
            curve.push(*point);
        }
        let active_mask = state
            .active_mask
            .as_ref()
            .map(|layers| PruneMask::from_layers(layers.clone()));
        // Telemetry: re-register the flow metrics on the fresh recorder,
        // add the captured totals back, then restore the clock tail last
        // so the metric writes above don't disturb it (counter adds don't
        // touch the clock, but ordering keeps the invariant obvious).
        let metrics = FlowMetrics::new(recorder);
        let recorder = metrics.recorder();
        for (name, v) in &state.counters {
            recorder.counter(name).add(*v);
        }
        for (name, v) in &state.gauges {
            recorder.gauge(name).set(*v);
        }
        recorder
            .restore_clock_state(&state.clock)
            .map_err(FttError::InvalidConfig)?;
        Ok(Self {
            net,
            mapped,
            flow,
            trainer,
            iteration: state.iteration,
            curve,
            metrics,
            strategy,
            active_mask,
            iteration_mask: None,
            burst_start: state.burst_start,
            burst_skipped: state.burst_skipped,
            batch_stream: state.batch_stream.clone(),
        })
    }
}

/// Constructs the built-in strategy a [`StrategySelect`] names, erroring on
/// the selections implemented outside this crate.
fn builtin_strategy(select: &StrategySelect) -> Result<Box<dyn FaultStrategy>, FttError> {
    match select {
        StrategySelect::DetectRemap => Ok(Box::new(DetectRemap::new())),
        StrategySelect::NoOp => Ok(Box::new(NoOp)),
        other => Err(FttError::InvalidConfig(format!(
            "strategy `{}` lives in the ftt-strategy crate; construct the \
             trainer through FaultTolerantTrainer::with_strategy",
            other.id()
        ))),
    }
}

/// The error raised when a [`TrainerState`] does not fit the template
/// network handed to [`FaultTolerantTrainer::restore_state`].
fn foreign_snapshot_error(layer_index: usize) -> FttError {
    FttError::InvalidConfig(format!(
        "snapshot parameter layer {layer_index} does not fit the template network"
    ))
}

/// Captured software parameters of one network layer.
#[derive(Debug, Clone, PartialEq)]
pub struct NetParamState {
    /// Raw layer index inside the network.
    pub layer_index: usize,
    /// Weight values, row-major.
    pub weights: Vec<f32>,
    /// Bias values, if the layer has any.
    pub bias: Option<Vec<f32>>,
}

/// Complete plain-data capture of a [`FaultTolerantTrainer`] at an
/// iteration boundary. Configs ([`MappingConfig`], [`FlowConfig`]) are
/// *not* captured — restore is handed the same configs the run was built
/// with. Span-duration histograms and wall-clock times are deliberately
/// not part of the state (they are diagnostics, not behavior).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerState {
    /// The iteration counter.
    pub iteration: u64,
    /// Stable id of the strategy that drove the captured run (see
    /// [`crate::strategy::KNOWN_STRATEGY_IDS`]). Restore refuses captures
    /// whose id is unknown or differs from the restoring configuration.
    pub strategy_id: String,
    /// The mapped hardware (chip, layers, software weight targets).
    pub mapped: MappedState,
    /// Software network parameters, in layer order.
    pub params: Vec<NetParamState>,
    /// Threshold trainer write-amount ledgers, per mapped layer.
    pub ledgers: Vec<Vec<u32>>,
    /// Recorded training curve points.
    pub curve: Vec<CurvePoint>,
    /// The active pruning mask, if a re-mapping phase installed one.
    pub active_mask: Option<Vec<LayerMask>>,
    /// First iteration of the open all-skip burst, if any.
    pub burst_start: Option<u64>,
    /// Updates suppressed across the open burst.
    pub burst_skipped: u64,
    /// Mini-batch stream position.
    pub batch_stream: Option<BatchStreamState>,
    /// Registry counters, `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Registry gauges, `(name, value)`.
    pub gauges: Vec<(String, f64)>,
    /// Logical clock tail (iteration, write pulses, seq, per-kind counts).
    pub clock: obs::ClockState,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MappingScope;
    use nn::init::init_rng;
    use nn::optimizer::LrSchedule;
    use nn::synth::SyntheticDataset;
    use rram::endurance::EnduranceModel;

    fn small_data() -> Dataset {
        SyntheticDataset::mnist_like(240, 60, 5)
    }

    /// A small MLP for the sparse synthetic MNIST task.
    fn small_net(seed: u64) -> Network {
        let mut rng = init_rng(seed);
        let mut net = Network::new();
        net.push(nn::layers::Dense::new(784, 32, &mut rng));
        net.push(nn::layers::Relu::new());
        net.push(nn::layers::Dense::new(32, 10, &mut rng));
        net
    }

    #[test]
    fn fault_free_flow_learns() {
        let data = small_data();
        let net = small_net(1);
        let mapping = MappingConfig::new(MappingScope::EntireNetwork).with_seed(1);
        let flow = FlowConfig::original()
            .with_lr(LrSchedule::constant(0.1))
            .with_eval_interval(50);
        let mut trainer = FaultTolerantTrainer::new(net, mapping, flow).unwrap();
        let curve = trainer.train(&data, 800).unwrap();
        // Judge the best checkpoint, not the last one: with quantized
        // hardware writes and a constant learning rate the tail of the
        // curve oscillates by a few points, so `final_accuracy()` is noise-
        // sensitive to the exact RNG stream (the vendored offline `rand`
        // shim draws a different stream than the registry crate).
        let best = curve
            .points()
            .iter()
            .map(|p| p.test_accuracy)
            .fold(0.0f64, f64::max);
        assert!(
            best > 0.70,
            "fault-free mapped training should learn: best {best}, final {}",
            curve.final_accuracy()
        );
        assert!(
            curve.final_accuracy() > 0.5,
            "training must not collapse: {}",
            curve.final_accuracy()
        );
    }

    #[test]
    fn wear_during_training_hurts_original_method() {
        // The paper's central degradation mechanism (Fig. 1): cells wear
        // out *during* training, so the original method's final accuracy
        // collapses while fault-free training holds.
        let data = small_data();
        let mapping_clean = MappingConfig::new(MappingScope::EntireNetwork).with_seed(2);
        let mapping_wearing = MappingConfig::new(MappingScope::EntireNetwork)
            .with_initial_fault_fraction(0.1)
            .with_endurance(EnduranceModel::new(500.0, 150.0))
            .with_seed(2);
        let flow = FlowConfig::original().with_lr(LrSchedule::constant(0.1));
        let mut clean =
            FaultTolerantTrainer::new(small_net(2), mapping_clean, flow.clone()).unwrap();
        let mut wearing = FaultTolerantTrainer::new(small_net(2), mapping_wearing, flow).unwrap();
        let clean_acc = clean.train(&data, 800).unwrap().final_accuracy();
        let worn_acc = wearing.train(&data, 800).unwrap().final_accuracy();
        assert!(
            wearing.mapped().fraction_faulty() > 0.5,
            "most cells should be dead by iteration 800"
        );
        assert!(
            worn_acc < clean_acc - 0.15,
            "wear must hurt: worn {worn_acc} vs clean {clean_acc}"
        );
    }

    #[test]
    fn threshold_reduces_writes() {
        let data = small_data();
        let mapping = MappingConfig::new(MappingScope::EntireNetwork).with_seed(3);
        let mut orig = FaultTolerantTrainer::new(
            small_net(3),
            mapping.clone(),
            FlowConfig::original().with_lr(LrSchedule::constant(0.1)),
        )
        .unwrap();
        let mut thr = FaultTolerantTrainer::new(
            small_net(3),
            mapping,
            FlowConfig::threshold_only().with_lr(LrSchedule::constant(0.1)),
        )
        .unwrap();
        orig.train(&data, 100).unwrap();
        thr.train(&data, 100).unwrap();
        assert!(
            thr.stats().writes_issued < orig.stats().writes_issued / 2,
            "threshold {} vs original {}",
            thr.stats().writes_issued,
            orig.stats().writes_issued
        );
        assert!(thr.stats().skipped_fraction() > 0.5);
    }

    #[test]
    fn detection_phase_runs_and_remaps() {
        let data = small_data();
        let mapping = MappingConfig::new(MappingScope::EntireNetwork)
            .with_initial_fault_fraction(0.2)
            .with_seed(4);
        let flow = FlowConfig::fault_tolerant()
            .with_lr(LrSchedule::constant(0.1))
            .with_detection_interval(60);
        let mut trainer = FaultTolerantTrainer::new(small_net(4), mapping, flow).unwrap();
        trainer.train(&data, 200).unwrap();
        assert!(trainer.stats().detection_campaigns >= 3);
        assert!(trainer.stats().detection_cycles > 0);
        assert!(trainer.stats().last_remap_final_cost <= trainer.stats().last_remap_initial_cost);
    }

    #[test]
    fn incremental_detection_flags_like_full_but_spends_fewer_cycles() {
        let data = small_data();
        let mapping = MappingConfig::new(MappingScope::EntireNetwork)
            .with_initial_fault_fraction(0.2)
            .with_seed(4);
        let flow = FlowConfig::fault_tolerant()
            .with_lr(LrSchedule::constant(0.1))
            .with_detection_interval(60);
        let mut full =
            FaultTolerantTrainer::new(small_net(4), mapping.clone(), flow.clone()).unwrap();
        full.train(&data, 200).unwrap();
        let mut inc =
            FaultTolerantTrainer::new(small_net(4), mapping, flow.with_incremental_detection())
                .unwrap();
        inc.train(&data, 200).unwrap();
        assert_eq!(
            inc.stats().detection_campaigns,
            full.stats().detection_campaigns
        );
        assert!(inc.stats().detection_campaigns >= 3);
        // Warm stores + threshold-suppressed writes leave most cells
        // untouched between campaigns, so the incremental sweeps are
        // narrower than the full ones.
        assert!(
            inc.stats().detection_cycles < full.stats().detection_cycles,
            "incremental {} vs full {}",
            inc.stats().detection_cycles,
            full.stats().detection_cycles
        );
    }

    #[test]
    fn sparing_retires_tiles_in_the_closed_loop() {
        let data = small_data();
        let mut mapping = MappingConfig::new(MappingScope::EntireNetwork)
            .with_initial_fault_fraction(0.2)
            .with_seed(9)
            .with_spare_tiles(8)
            .with_retire_fault_density(0.1);
        mapping.tile_size = 64;
        let flow = FlowConfig::fault_tolerant()
            .with_lr(LrSchedule::constant(0.1))
            .with_detection_interval(60);
        let mut trainer = FaultTolerantTrainer::new(small_net(9), mapping, flow).unwrap();
        trainer.train(&data, 100).unwrap();
        let stats = trainer.stats();
        assert!(
            stats.tiles_retired > 0,
            "dense-fault tiles must retire: {stats:?}"
        );
        assert_eq!(stats.tiles_retired, stats.spares_attached);
        // The chip events reached the flow's recorder.
        let retired = trainer
            .recorder()
            .events_of_kind(obs::EventKind::TileRetired);
        let attached = trainer
            .recorder()
            .events_of_kind(obs::EventKind::SpareAttached);
        assert_eq!(retired, stats.tiles_retired);
        assert_eq!(attached, stats.spares_attached);
        // Screened spares replaced the densest tiles, so the in-service
        // fault fraction sits below the injected 0.2 (wear adds some back).
        assert!(trainer.mapped().fraction_faulty() < 0.2);
    }

    #[test]
    fn endurance_wear_appears_in_stats() {
        let data = small_data();
        let mapping = MappingConfig::new(MappingScope::EntireNetwork)
            .with_endurance(EnduranceModel::new(60.0, 10.0))
            .with_seed(5);
        let flow = FlowConfig::original().with_lr(LrSchedule::constant(0.1));
        let mut trainer = FaultTolerantTrainer::new(small_net(5), mapping, flow).unwrap();
        trainer.train(&data, 150).unwrap();
        assert!(
            trainer.stats().wear_faults_during_training > 0,
            "60-write budgets must exhaust within 150 iterations"
        );
        assert!(trainer.mapped().fraction_faulty() > 0.0);
        // The curve records the growing fault fraction.
        let curve = trainer.curve();
        let first = curve.points().first().unwrap().faulty_fraction;
        let last = curve.points().last().unwrap().faulty_fraction;
        assert!(last >= first);
    }

    /// A traced fault-tolerant flow on a deterministic recorder with a
    /// JSONL sink attached; returns the trainer and the sink view.
    fn traced_trainer(seed: u64) -> (FaultTolerantTrainer, obs::JsonlView) {
        let mapping = MappingConfig::new(MappingScope::EntireNetwork)
            .with_initial_fault_fraction(0.15)
            .with_endurance(EnduranceModel::new(40.0, 10.0))
            .with_seed(seed);
        let flow = FlowConfig::fault_tolerant()
            .with_lr(LrSchedule::constant(0.1))
            .with_detection_interval(5)
            .with_detection_warmup(0)
            .with_eval_interval(5);
        let recorder = Recorder::deterministic();
        let sink = obs::JsonlSink::new();
        let view = sink.view();
        recorder.add_sink(Box::new(sink));
        let trainer =
            FaultTolerantTrainer::with_recorder(small_net(seed), mapping, flow, recorder).unwrap();
        (trainer, view)
    }

    #[test]
    fn restored_run_continues_byte_identically() {
        let data = SyntheticDataset::mnist_like(40, 10, 7);
        // Uninterrupted reference: 24 iterations in one call.
        let (mut full, full_view) = traced_trainer(7);
        full.train(&data, 24).unwrap();

        // Interrupted run: 11 iterations, export, restore into a fresh
        // trainer (template network, same configs, fresh recorder), 13
        // more. The split is deliberately not aligned with the detection
        // or eval interval.
        let (mut head, head_view) = traced_trainer(7);
        head.train(&data, 11).unwrap();
        let state = head.export_state();

        let mapping = MappingConfig::new(MappingScope::EntireNetwork)
            .with_initial_fault_fraction(0.15)
            .with_endurance(EnduranceModel::new(40.0, 10.0))
            .with_seed(7);
        let flow = FlowConfig::fault_tolerant()
            .with_lr(LrSchedule::constant(0.1))
            .with_detection_interval(5)
            .with_detection_warmup(0)
            .with_eval_interval(5);
        let recorder = Recorder::deterministic();
        let sink = obs::JsonlSink::new();
        let tail_view = sink.view();
        recorder.add_sink(Box::new(sink));
        let mut resumed =
            FaultTolerantTrainer::restore_state(small_net(7), mapping, flow, recorder, &state)
                .unwrap();
        // Double roundtrip: the restored trainer exports the same state.
        assert_eq!(resumed.export_state(), state);
        resumed.train(&data, 13).unwrap();

        // The resumed suffix trace appended to the head trace equals the
        // uninterrupted trace byte-for-byte.
        let stitched = format!("{}{}", head_view.contents(), tail_view.contents());
        assert_eq!(stitched, full_view.contents());

        // And the aggregate statistics agree field-for-field.
        assert_eq!(resumed.stats(), full.stats());
        assert_eq!(resumed.iteration(), full.iteration());
        // Weights agree exactly too.
        let state_a = resumed.export_state();
        let state_b = full.export_state();
        assert_eq!(state_a.params, state_b.params);
        assert_eq!(state_a.mapped, state_b.mapped);
    }

    #[test]
    fn restore_state_rejects_a_foreign_template() {
        let data = SyntheticDataset::mnist_like(40, 10, 7);
        let (mut trainer, _view) = traced_trainer(7);
        trainer.train(&data, 6).unwrap();
        let state = trainer.export_state();
        let mapping = MappingConfig::new(MappingScope::EntireNetwork)
            .with_initial_fault_fraction(0.15)
            .with_endurance(EnduranceModel::new(40.0, 10.0))
            .with_seed(7);
        let flow = FlowConfig::fault_tolerant().with_lr(LrSchedule::constant(0.1));
        // Wrong topology: hidden width 16 instead of 32.
        let mut rng = init_rng(7);
        let mut wrong = Network::new();
        wrong.push(nn::layers::Dense::new(784, 16, &mut rng));
        wrong.push(nn::layers::Relu::new());
        wrong.push(nn::layers::Dense::new(16, 10, &mut rng));
        assert!(FaultTolerantTrainer::restore_state(
            wrong,
            mapping,
            flow,
            Recorder::deterministic(),
            &state
        )
        .is_err());
    }

    #[test]
    fn training_can_continue_across_calls() {
        let data = small_data();
        let mapping = MappingConfig::new(MappingScope::EntireNetwork).with_seed(6);
        let flow = FlowConfig::original().with_lr(LrSchedule::constant(0.1));
        let mut trainer = FaultTolerantTrainer::new(small_net(6), mapping, flow).unwrap();
        trainer.train(&data, 50).unwrap();
        assert_eq!(trainer.iteration(), 50);
        trainer.train(&data, 50).unwrap();
        assert_eq!(trainer.iteration(), 100);
        assert!(trainer.curve().points().len() >= 2);
    }
}

//! Sharded placement of one logical matrix onto chip tiles, plus the
//! batched tiled MVM executor.
//!
//! # Bit-identity with the monolithic kernel
//!
//! [`rram::Crossbar::mvm`] accumulates each output column over rows in
//! ascending global row order (`out[k] += g[r][k]·v[r]`). f32 addition is
//! not associative, so a tiled executor that summed per-band partials
//! would drift from the monolithic result in the last ulps. Instead, the
//! executor here keeps **one accumulator per output column** and walks
//! row-shard bands in ascending order, rows within a band in ascending
//! order — the exact global row order — touching each band's conductance
//! plane in place. Column shards merely partition which plane a segment
//! comes from, which cannot reorder any single column's accumulation, and
//! the parallel fan-out partitions *columns* (disjoint accumulators), so
//! the result is bit-identical to the monolithic kernel at any
//! `RRAM_FTT_THREADS` — asserted by in-crate tests and the chaos `tiling`
//! family.
//!
//! The zero-skip gate and the parallel gate replicate the monolithic
//! kernel's: skipping a zero input row adds `±0.0 · g` (finite `g`), which
//! cannot move an IEEE-754 accumulator, and the same sparsity threshold is
//! used so both kernels take the same branch.

use rram::fault::FaultMap;
use rram::RramError;

use crate::chip::TiledChip;
use crate::error::TileError;
use crate::geometry::{Shard, ShardGrid};

/// Minimum cells before the tiled MVM fans out to worker threads —
/// mirrors the monolithic kernel's gate so both engage together.
const PAR_MIN_CELLS: usize = 1 << 15;

/// Whether `input` is sparse enough for the zero-skip branch to win;
/// mirrors the monolithic kernel's predicate exactly.
#[inline]
fn sparse_enough(input: &[f32]) -> bool {
    let zeros = input.iter().filter(|&&v| v == 0.0).count();
    // CAST-OK: ratio test on counts; exact in f32 for realistic dims.
    zeros as f32 > par::SPARSITY_SKIP_THRESHOLD * input.len() as f32
}

/// One logical matrix sharded across chip tiles.
///
/// The mapping stores tile *ids* in row-major shard order; the arrays
/// live in the [`TiledChip`], so spare substitution re-points one id.
#[derive(Debug, Clone)]
pub struct TiledMapping {
    grid: ShardGrid,
    tiles: Vec<usize>,
}

impl TiledMapping {
    /// Shards a `rows × cols` matrix onto freshly allocated chip tiles
    /// (row-major shard order — the chip's canonical allocation order).
    ///
    /// # Errors
    ///
    /// Rejects zero dimensions; propagates allocation failures.
    pub fn allocate(chip: &mut TiledChip, rows: usize, cols: usize) -> Result<Self, TileError> {
        let ts = chip.config().tile_size;
        let grid = ShardGrid::new(rows, cols, ts, ts)
            .ok_or_else(|| TileError::InvalidConfig("matrix dims must be non-zero".into()))?;
        let mut tiles = Vec::with_capacity(grid.shard_count());
        for shard in grid.iter() {
            tiles.push(chip.allocate(shard.rows, shard.cols)?);
        }
        Ok(TiledMapping { grid, tiles })
    }

    /// The shard geometry.
    pub fn grid(&self) -> &ShardGrid {
        &self.grid
    }

    /// Tile ids in row-major shard order.
    pub fn tile_ids(&self) -> &[usize] {
        &self.tiles
    }

    /// Logical rows.
    pub fn rows(&self) -> usize {
        self.grid.rows
    }

    /// Logical columns.
    pub fn cols(&self) -> usize {
        self.grid.cols
    }

    /// The shard (geometry) currently backed by tile `id`, if any.
    pub fn shard_of_tile(&self, id: usize) -> Option<Shard> {
        let i = self.tiles.iter().position(|&t| t == id)?;
        self.grid
            .shard(i / self.grid.col_shards(), i % self.grid.col_shards())
    }

    /// Re-points every shard backed by `old_id` at `new_id` (spare
    /// substitution). Returns how many shards were re-pointed (0 or 1 —
    /// a tile backs at most one shard).
    pub fn repoint(&mut self, old_id: usize, new_id: usize) -> usize {
        let mut n = 0;
        for t in &mut self.tiles {
            if *t == old_id {
                *t = new_id;
                n += 1;
            }
        }
        n
    }

    /// Extracts the shard-local slice of a logical row-major buffer.
    fn shard_local<T: Copy>(&self, shard: &Shard, logical: &[T]) -> Vec<T> {
        let mut local = Vec::with_capacity(shard.cells());
        for r in 0..shard.rows {
            let base = (shard.row0 + r) * self.grid.cols + shard.col0;
            local.extend_from_slice(&logical[base..base + shard.cols]);
        }
        local
    }

    /// Programs the whole matrix from a row-major conductance plane in
    /// `[0, 1]` (shard by shard, shard-locally row-major — the same
    /// per-tile write order the monolithic mapper uses). Returns the
    /// number of cells whose value changed.
    ///
    /// # Errors
    ///
    /// Rejects a buffer whose length is not `rows × cols`; propagates
    /// device errors (cells already programmed stay programmed).
    pub fn program(&self, chip: &mut TiledChip, targets: &[f64]) -> Result<u64, TileError> {
        if targets.len() != self.grid.rows * self.grid.cols {
            return Err(TileError::Rram(RramError::DimensionMismatch {
                expected: self.grid.rows * self.grid.cols,
                actual: targets.len(),
            }));
        }
        let mut changed = 0;
        for (shard, &id) in self.grid.iter().zip(&self.tiles) {
            let local = self.shard_local(&shard, targets);
            changed += chip.tile_mut(id)?.program_conductances(&local)?;
        }
        Ok(changed)
    }

    /// Writes one logical cell (training-style analog write on the
    /// owning shard's tile).
    ///
    /// # Errors
    ///
    /// Out-of-range coordinates and device errors propagate.
    pub fn write_analog(
        &self,
        chip: &mut TiledChip,
        row: usize,
        col: usize,
        target: f64,
    ) -> Result<(), TileError> {
        let oob = || {
            TileError::Rram(RramError::OutOfBounds {
                row,
                col,
                rows: self.grid.rows,
                cols: self.grid.cols,
            })
        };
        let (sr, sc) = self.grid.shard_of_cell(row, col).ok_or_else(oob)?;
        let shard = self.grid.shard(sr, sc).ok_or_else(oob)?;
        let id = self.tiles[self.grid.shard_index(sr, sc)];
        chip.tile_mut(id)?
            .write_analog(row - shard.row0, col - shard.col0, target)?;
        Ok(())
    }

    /// Composes the logical fault map from the shard tiles' maps.
    ///
    /// # Errors
    ///
    /// Unknown tile ids propagate.
    pub fn fault_map(&self, chip: &TiledChip) -> Result<FaultMap, TileError> {
        let mut map = FaultMap::healthy(self.grid.rows, self.grid.cols);
        for (shard, &id) in self.grid.iter().zip(&self.tiles) {
            let sub = chip.tile(id)?.fault_map();
            for (r, c, kind) in sub.iter_faulty() {
                map.set(shard.row0 + r, shard.col0 + c, Some(kind));
            }
        }
        Ok(map)
    }

    /// Splits a logical fault map per shard and applies each piece to its
    /// tile (equivalence-test helper: lets a tiled chip mirror the exact
    /// fault pattern of a monolithic array).
    ///
    /// # Errors
    ///
    /// Rejects a map whose dimensions don't match; unknown ids propagate.
    pub fn apply_fault_map(&self, chip: &mut TiledChip, map: &FaultMap) -> Result<(), TileError> {
        if map.rows() != self.grid.rows || map.cols() != self.grid.cols {
            return Err(TileError::Rram(RramError::DimensionMismatch {
                expected: self.grid.rows * self.grid.cols,
                actual: map.rows() * map.cols(),
            }));
        }
        for (shard, &id) in self.grid.iter().zip(&self.tiles) {
            let mut local = FaultMap::healthy(shard.rows, shard.cols);
            for r in 0..shard.rows {
                for c in 0..shard.cols {
                    local.set(r, c, map.get(shard.row0 + r, shard.col0 + c));
                }
            }
            chip.tile_mut(id)?.apply_fault_map(&local);
        }
        Ok(())
    }

    /// Gathers the shard tiles' f32 conductance planes in row-major shard
    /// order, validating every id first.
    fn planes<'a>(&self, chip: &'a TiledChip) -> Result<Vec<&'a [f32]>, TileError> {
        self.tiles
            .iter()
            .map(|&id| chip.tile(id).map(|x| x.conductance_plane()))
            .collect()
    }

    /// Tiled analog matrix–vector product: `out[k] = Σ_r g[r][k]·input[r]`
    /// with the accumulation order of the monolithic kernel (see module
    /// docs) — bit-identical to [`rram::Crossbar::mvm`] on an array
    /// holding the same conductances, at any thread budget.
    ///
    /// # Errors
    ///
    /// Returns a dimension mismatch for a wrong-length input; unknown
    /// tile ids propagate.
    pub fn mvm(&self, chip: &TiledChip, input: &[f32]) -> Result<Vec<f32>, TileError> {
        if input.len() != self.grid.rows {
            return Err(TileError::Rram(RramError::DimensionMismatch {
                expected: self.grid.rows,
                actual: input.len(),
            }));
        }
        let planes = self.planes(chip)?;
        let mut out = vec![0.0f32; self.grid.cols];
        let skip_zeros = sparse_enough(input);
        if self.grid.rows * self.grid.cols >= PAR_MIN_CELLS && par::thread_count() > 1 {
            par::for_each_chunk_mut(&mut out, 64, |c0, chunk| {
                self.mvm_into(&planes, input, skip_zeros, c0, chunk);
            });
        } else {
            self.mvm_into(&planes, input, skip_zeros, 0, &mut out);
        }
        Ok(out)
    }

    /// Batched tiled MVM: `inputs` is `batch × rows` row-major, the result
    /// is `batch × cols` row-major. Samples fan out across the thread
    /// budget (each sample's product runs the sequential kernel
    /// full-width), so every output row is bit-identical to
    /// [`TiledMapping::mvm`] on that sample — and hence to the monolithic
    /// kernel — at any thread budget.
    ///
    /// # Errors
    ///
    /// Returns a dimension mismatch when `inputs.len() != batch × rows`.
    pub fn mvm_batch(
        &self,
        chip: &TiledChip,
        inputs: &[f32],
        batch: usize,
    ) -> Result<Vec<f32>, TileError> {
        if inputs.len() != batch * self.grid.rows {
            return Err(TileError::Rram(RramError::DimensionMismatch {
                expected: batch * self.grid.rows,
                actual: inputs.len(),
            }));
        }
        let planes = self.planes(chip)?;
        let rows = self.grid.rows;
        let mut out = vec![0.0f32; batch * self.grid.cols];
        par::for_each_row_block_mut(&mut out, self.grid.cols, |b0, block| {
            for (i, out_row) in block.chunks_mut(self.grid.cols).enumerate() {
                let sample = &inputs[(b0 + i) * rows..(b0 + i + 1) * rows];
                let skip_zeros = sparse_enough(sample);
                self.mvm_into(&planes, sample, skip_zeros, 0, out_row);
            }
        });
        Ok(out)
    }

    /// The shared inner kernel: accumulates the output columns
    /// `[c0, c0 + chunk.len())` over all rows in ascending global row
    /// order, reading each row segment from the covering shard's plane.
    fn mvm_into(
        &self,
        planes: &[&[f32]],
        input: &[f32],
        skip_zeros: bool,
        c0: usize,
        chunk: &mut [f32],
    ) {
        if chunk.is_empty() {
            return;
        }
        let col_shards = self.grid.col_shards();
        // Column shards overlapping [c0, c0 + len).
        let sc0 = c0 / self.grid.tile_cols;
        let sc1 = ((c0 + chunk.len() - 1) / self.grid.tile_cols + 1).min(col_shards);
        for sr in 0..self.grid.row_shards() {
            let row0 = sr * self.grid.tile_rows;
            let band_rows = self.grid.tile_rows.min(self.grid.rows - row0);
            for lr in 0..band_rows {
                let v = input[row0 + lr];
                if skip_zeros && v == 0.0 {
                    continue;
                }
                for sc in sc0..sc1 {
                    let scol0 = sc * self.grid.tile_cols;
                    let scols = self.grid.tile_cols.min(self.grid.cols - scol0);
                    let lo = c0.max(scol0);
                    let hi = (c0 + chunk.len()).min(scol0 + scols);
                    if lo >= hi {
                        continue;
                    }
                    let plane = planes[self.grid.shard_index(sr, sc)];
                    let seg = &plane[lr * scols + (lo - scol0)..lr * scols + (hi - scol0)];
                    let out_seg = &mut chunk[lo - c0..hi - c0];
                    for (o, &g) in out_seg.iter_mut().zip(seg) {
                        *o += g * v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipConfig;
    use rram::crossbar::CrossbarBuilder;
    use rram::fault::FaultKind;

    /// Deterministic pseudo-random conductances/inputs without pulling in
    /// an RNG: a splitmix-style integer hash mapped to [0, 1).
    fn lcg01(i: u64) -> f64 {
        let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn build_pair(
        rows: usize,
        cols: usize,
        tile: usize,
    ) -> (TiledChip, TiledMapping, rram::Crossbar) {
        let mut chip = TiledChip::new(ChipConfig::new(tile, 8, 5)).unwrap();
        let mapping = TiledMapping::allocate(&mut chip, rows, cols).unwrap();
        let targets: Vec<f64> = (0..rows * cols).map(|i| lcg01(i as u64)).collect();
        mapping.program(&mut chip, &targets).unwrap();
        let mut mono = CrossbarBuilder::new(rows, cols).seed(977).build().unwrap();
        mono.program_conductances(&targets).unwrap();
        (chip, mapping, mono)
    }

    fn dense_input(rows: usize, salt: u64) -> Vec<f32> {
        (0..rows)
            .map(|i| (lcg01(i as u64 ^ salt) * 2.0 - 1.0) as f32)
            .collect()
    }

    fn sparse_input(rows: usize, salt: u64) -> Vec<f32> {
        (0..rows)
            .map(|i| {
                if lcg01(i as u64 ^ salt) < 0.8 {
                    0.0
                } else {
                    (lcg01(i as u64 ^ salt ^ 0xFF) * 2.0 - 1.0) as f32
                }
            })
            .collect()
    }

    fn assert_bit_identical(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "col {i}: {x} vs {y}");
        }
    }

    #[test]
    fn tiled_mvm_matches_monolithic_with_remainders() {
        // 300×200 on 128² tiles: remainder bands on both axes, and large
        // enough (60k cells) to engage the parallel gate when threads > 1.
        let (chip, mapping, mono) = build_pair(300, 200, 128);
        for salt in [1u64, 2, 3] {
            let dense = dense_input(300, salt);
            assert_bit_identical(
                &mapping.mvm(&chip, &dense).unwrap(),
                &mono.mvm(&dense).unwrap(),
            );
            let sparse = sparse_input(300, salt);
            assert_bit_identical(
                &mapping.mvm(&chip, &sparse).unwrap(),
                &mono.mvm(&sparse).unwrap(),
            );
        }
    }

    #[test]
    fn tiled_mvm_matches_monolithic_with_faults() {
        let (mut chip, mapping, mut mono) = build_pair(150, 140, 64);
        // Mirror an adversarial fault pattern across both, including
        // cells on shard edges.
        let mut map = FaultMap::healthy(150, 140);
        for i in 0..150usize {
            let (r, c) = (i, (i * 7) % 140);
            let kind = if i % 2 == 0 {
                FaultKind::StuckAt0
            } else {
                FaultKind::StuckAt1
            };
            map.set(r, c, Some(kind));
        }
        map.set(63, 63, Some(FaultKind::StuckAt1));
        map.set(64, 64, Some(FaultKind::StuckAt0));
        mapping.apply_fault_map(&mut chip, &map).unwrap();
        mono.apply_fault_map(&map);
        assert_eq!(
            mapping.fault_map(&chip).unwrap().count_faulty(),
            map.count_faulty()
        );
        let input = dense_input(150, 9);
        assert_bit_identical(
            &mapping.mvm(&chip, &input).unwrap(),
            &mono.mvm(&input).unwrap(),
        );
    }

    #[test]
    fn single_tile_degenerates_to_monolithic() {
        let (chip, mapping, mono) = build_pair(60, 50, 128);
        assert_eq!(mapping.tile_ids().len(), 1);
        let input = dense_input(60, 4);
        assert_bit_identical(
            &mapping.mvm(&chip, &input).unwrap(),
            &mono.mvm(&input).unwrap(),
        );
    }

    #[test]
    fn batch_rows_match_single_mvm() {
        let (chip, mapping, _) = build_pair(130, 70, 64);
        let batch = 5;
        let mut inputs = Vec::new();
        for b in 0..batch {
            inputs.extend(dense_input(130, 100 + b as u64));
        }
        let out = mapping.mvm_batch(&chip, &inputs, batch).unwrap();
        for b in 0..batch {
            let single = mapping.mvm(&chip, &inputs[b * 130..(b + 1) * 130]).unwrap();
            assert_bit_identical(&out[b * 70..(b + 1) * 70], &single);
        }
    }

    #[test]
    fn dimension_errors() {
        let (mut chip, mapping, _) = build_pair(40, 30, 16);
        assert!(mapping.mvm(&chip, &[0.0; 39]).is_err());
        assert!(mapping.mvm_batch(&chip, &[0.0; 41], 1).is_err());
        assert!(mapping.program(&mut chip, &[0.5; 7]).is_err());
        assert!(mapping.write_analog(&mut chip, 40, 0, 0.5).is_err());
    }

    #[test]
    fn repoint_and_write_route_to_shards() {
        let mut chip = TiledChip::new(ChipConfig::new(16, 8, 3).with_spare_tiles(1)).unwrap();
        let mut mapping = TiledMapping::allocate(&mut chip, 20, 20).unwrap();
        // Cell (17, 3) lives in shard (1, 0) — the bottom remainder band.
        mapping.write_analog(&mut chip, 17, 3, 1.0).unwrap();
        let id = mapping.tile_ids()[2];
        assert_eq!(chip.tile(id).unwrap().conductance(1, 3).unwrap(), 1.0);
        // Substitute that tile and re-point the shard.
        let new_id = match chip.substitute(id).unwrap() {
            crate::chip::SpareOutcome::Attached { new_id } => new_id,
            crate::chip::SpareOutcome::Exhausted => panic!("have a spare"),
        };
        assert_eq!(mapping.repoint(id, new_id), 1);
        assert_eq!(mapping.shard_of_tile(new_id).unwrap().row0, 16);
        // Writes now land on the spare.
        mapping.write_analog(&mut chip, 17, 3, 0.5).unwrap();
        assert_eq!(chip.tile(new_id).unwrap().conductance(1, 3).unwrap(), 0.5);
    }
}

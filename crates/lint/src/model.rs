//! Workspace discovery and per-file analysis context.
//!
//! The walker reads the root `Cargo.toml` for the member list (expanding
//! `dir/*` globs), then collects every `.rs` file under the workspace in
//! sorted order, classifying each by role (library source vs. tests /
//! examples / benches / binaries). Each file is scanned once
//! ([`crate::lexer`]) and annotated with *scopes*: the line ranges of
//! `#[cfg(test)]` items and of items carrying panic-related
//! `#[allow(...)]` attributes. Checks consume this shared context.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Scan, TokenKind};

/// Role of a source file within its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library source (`<crate>/src/**`, excluding `src/bin`).
    Lib,
    /// Integration tests, benches, examples, `src/bin`, or `build.rs`.
    Support,
}

/// The clippy lint names whose `#[allow(...)]` requires a `PANIC-OK:`
/// justification (the panic policy's escape hatches).
pub const PANIC_ALLOW_LINTS: [&str; 5] = [
    "clippy::unwrap_used",
    "clippy::expect_used",
    "clippy::panic",
    "clippy::indexing_slicing",
    "clippy::unreachable",
];

/// A line range `[start, end]` (1-based, inclusive) attached to an item.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    /// First line (the attribute's line).
    pub start: usize,
    /// Last line of the item body.
    pub end: usize,
}

impl Scope {
    /// Whether `line` falls inside this scope.
    pub fn contains(&self, line: usize) -> bool {
        line >= self.start && line <= self.end
    }
}

/// One analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Name of the owning workspace member (package name), if any.
    pub crate_name: Option<String>,
    /// Role (library vs. support code).
    pub role: FileRole,
    /// Token + comment scan.
    pub scan: Scan,
    /// Line ranges under `#[cfg(test)]` (plus `#[test]` functions).
    pub test_scopes: Vec<Scope>,
    /// Line ranges of items carrying a panic-related `#[allow]`, along
    /// with the attribute's own line (for justification lookup).
    pub panic_allow_scopes: Vec<(Scope, usize)>,
}

impl SourceFile {
    /// Whether `line` is inside test-only code.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_scopes.iter().any(|s| s.contains(line))
    }

    /// Whether `line` is covered by a panic-related `#[allow]` item.
    pub fn in_panic_allow(&self, line: usize) -> bool {
        self.panic_allow_scopes
            .iter()
            .any(|(s, _)| s.contains(line))
    }
}

/// One workspace member package.
#[derive(Debug, Clone)]
pub struct Member {
    /// Package name from its manifest.
    pub name: String,
    /// Directory relative to the workspace root, `/`-separated.
    pub dir: String,
    /// Raw manifest text.
    pub manifest: String,
}

/// The analyzed workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute root directory.
    pub root: PathBuf,
    /// Raw root manifest text.
    pub root_manifest: String,
    /// Member packages, sorted by directory.
    pub members: Vec<Member>,
    /// All scanned `.rs` files, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// Prose docs (`README.md`, `DESIGN.md`) for mention checks.
    pub docs: BTreeMap<String, String>,
}

/// A fatal error while loading the workspace.
#[derive(Debug)]
pub struct LoadError(pub String);

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn read(path: &Path) -> Result<String, LoadError> {
    std::fs::read_to_string(path)
        .map_err(|e| LoadError(format!("cannot read {}: {e}", path.display())))
}

/// Normalize a path relative to `root` into `/`-separated form.
fn rel(root: &Path, path: &Path) -> String {
    let r = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for comp in r.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    out
}

/// Extract `members = [...]` entries from a workspace manifest.
fn manifest_members(manifest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_workspace = false;
    let mut in_members = false;
    let mut buf = String::new();
    for raw in manifest.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_workspace = line == "[workspace]";
            in_members = false;
            continue;
        }
        if in_workspace && line.starts_with("members") {
            in_members = true;
            buf.clear();
        }
        if in_members {
            buf.push_str(line);
            buf.push(' ');
            if line.contains(']') {
                in_members = false;
                for piece in buf.split('"').skip(1).step_by(2) {
                    out.push(piece.to_string());
                }
            }
        }
    }
    out
}

/// Extract `name = "..."` from a `[package]` section.
fn manifest_package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for raw in manifest.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return rest.trim().trim_matches('"').to_string().into();
                }
            }
        }
    }
    None
}

/// Recursively collect `.rs` files under `dir`, sorted, skipping
/// excluded prefixes and `target`/`.git`.
fn collect_rs(
    root: &Path,
    dir: &Path,
    exclude: &[String],
    out: &mut Vec<PathBuf>,
) -> Result<(), LoadError> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| LoadError(format!("cannot list {}: {e}", dir.display())))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let r = rel(root, &path);
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if name == "target" || name == ".git" {
            continue;
        }
        if exclude
            .iter()
            .any(|p| r == *p || r.starts_with(&format!("{p}/")))
        {
            continue;
        }
        if path.is_dir() {
            collect_rs(root, &path, exclude, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Classify a file's role from its workspace-relative path.
fn role_of(rel_path: &str) -> FileRole {
    let segs: Vec<&str> = rel_path.split('/').collect();
    let support_dirs = ["tests", "benches", "examples", "bin"];
    if segs.iter().any(|s| support_dirs.contains(s)) {
        return FileRole::Support;
    }
    if segs.last() == Some(&"build.rs") {
        return FileRole::Support;
    }
    FileRole::Lib
}

/// Compute the end line of the item following a token index: scan
/// forward; if a `;` appears before any `{`, the item ends there;
/// otherwise it ends at the `}` matching the first `{`.
fn item_end_line(scan: &Scan, from: usize) -> usize {
    let mut depth = 0usize;
    let mut entered = false;
    for tok in &scan.tokens[from..] {
        if tok.kind != TokenKind::Punct {
            continue;
        }
        match tok.text.as_str() {
            ";" if !entered => return tok.line,
            "{" => {
                depth += 1;
                entered = true;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                if entered && depth == 0 {
                    return tok.line;
                }
            }
            _ => {}
        }
    }
    scan.tokens.last().map(|t| t.line).unwrap_or(1)
}

/// Derive test scopes and panic-allow scopes from a scan.
fn analyze_scopes(scan: &Scan) -> (Vec<Scope>, Vec<(Scope, usize)>) {
    let mut tests = Vec::new();
    let mut allows = Vec::new();
    for (i, tok) in scan.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Attr {
            continue;
        }
        let flat: String = tok.text.chars().filter(|c| !c.is_whitespace()).collect();
        let is_test = flat.contains("cfg(test)")
            || flat == "#[test]"
            || flat.contains("#[test]")
            || flat.contains("cfg(all(test");
        if is_test {
            tests.push(Scope {
                start: tok.line,
                end: item_end_line(scan, i + 1),
            });
        }
        if (flat.contains("allow(") || flat.contains("expect("))
            && PANIC_ALLOW_LINTS.iter().any(|l| flat.contains(l))
        {
            let scope = if flat.starts_with("#![") {
                // Inner attribute: covers the rest of the file.
                Scope {
                    start: tok.line,
                    end: scan.tokens.last().map(|t| t.line).unwrap_or(tok.line),
                }
            } else {
                Scope {
                    start: tok.line,
                    end: item_end_line(scan, i + 1),
                }
            };
            allows.push((scope, tok.line));
        }
    }
    (tests, allows)
}

/// Test seam: expose scope analysis to the check unit tests.
#[cfg(test)]
pub(crate) fn analyze_scopes_for_tests(scan: &Scan) -> (Vec<Scope>, Vec<(Scope, usize)>) {
    analyze_scopes(scan)
}

impl Workspace {
    /// Load and analyze the workspace rooted at `root`. `exclude` holds
    /// workspace-relative path prefixes that are never scanned.
    pub fn load(root: &Path, exclude: &[String]) -> Result<Self, LoadError> {
        let root = root
            .canonicalize()
            .map_err(|e| LoadError(format!("bad root {}: {e}", root.display())))?;
        let root_manifest = read(&root.join("Cargo.toml"))?;

        // Expand members (supporting one trailing `/*` glob level).
        let mut members = Vec::new();
        for entry in manifest_members(&root_manifest) {
            if let Some(prefix) = entry.strip_suffix("/*") {
                let dir = root.join(prefix);
                let mut subdirs: Vec<PathBuf> = std::fs::read_dir(&dir)
                    .map_err(|e| LoadError(format!("cannot expand member glob {entry:?}: {e}")))?
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.is_dir())
                    .collect();
                subdirs.sort();
                for sub in subdirs {
                    if sub.join("Cargo.toml").is_file() {
                        members.push(rel(&root, &sub));
                    }
                }
            } else {
                members.push(entry);
            }
        }
        // The root package itself (workspace + package manifest).
        let mut member_list = Vec::new();
        if manifest_package_name(&root_manifest).is_some() {
            members.push(String::new());
        }
        members.sort();
        members.dedup();
        for dir in members {
            let manifest_path = if dir.is_empty() {
                root.join("Cargo.toml")
            } else {
                root.join(&dir).join("Cargo.toml")
            };
            if !manifest_path.is_file() {
                // W1 reports this; record a placeholder member.
                member_list.push(Member {
                    name: dir.clone(),
                    dir,
                    manifest: String::new(),
                });
                continue;
            }
            let manifest = read(&manifest_path)?;
            let name = manifest_package_name(&manifest).unwrap_or_else(|| dir.clone());
            member_list.push(Member {
                name,
                dir,
                manifest,
            });
        }

        // Collect and scan sources.
        let mut paths = Vec::new();
        collect_rs(&root, &root, exclude, &mut paths)?;
        let mut files = Vec::new();
        for path in paths {
            let rel_path = rel(&root, &path);
            let text = read(&path)?;
            let scan = lexer::scan(&text);
            let (test_scopes, panic_allow_scopes) = analyze_scopes(&scan);
            // Owning member: longest dir prefix match.
            let crate_name = member_list
                .iter()
                .filter(|m| {
                    if m.dir.is_empty() {
                        // Root package owns only `src/` at the top level.
                        rel_path.starts_with("src/")
                    } else {
                        rel_path.starts_with(&format!("{}/", m.dir))
                    }
                })
                .max_by_key(|m| m.dir.len())
                .map(|m| m.name.clone());
            files.push(SourceFile {
                rel_path,
                crate_name,
                role: role_of(&rel(&root, &path)),
                scan,
                test_scopes,
                panic_allow_scopes,
            });
        }
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));

        let mut docs = BTreeMap::new();
        for doc in ["README.md", "DESIGN.md"] {
            if let Ok(text) = std::fs::read_to_string(root.join(doc)) {
                docs.insert(doc.to_string(), text);
            }
        }

        Ok(Workspace {
            root,
            root_manifest,
            members: member_list,
            files,
            docs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_globs_and_names_parse() {
        let manifest = r#"
[workspace]
members = [
    "crates/a",
    "crates/shims/*",
]

[package]
name = "rootpkg"
"#;
        assert_eq!(
            manifest_members(manifest),
            vec!["crates/a", "crates/shims/*"]
        );
        assert_eq!(manifest_package_name(manifest).as_deref(), Some("rootpkg"));
    }

    #[test]
    fn cfg_test_scopes_cover_module_bodies() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        x.unwrap();\n    }\n}\n";
        let scan = lexer::scan(src);
        let (tests, _) = analyze_scopes(&scan);
        assert!(!tests.is_empty());
        assert!(tests[0].contains(6), "unwrap line inside cfg(test) mod");
        assert!(!tests.iter().any(|s| s.contains(1)), "lib fn not test code");
    }

    #[test]
    fn allow_scopes_end_at_matching_brace_or_semicolon() {
        let src = "#[allow(clippy::unwrap_used)]\nfn f() {\n    a.unwrap();\n}\nfn g() {\n    b.unwrap();\n}\n";
        let scan = lexer::scan(src);
        let (_, allows) = analyze_scopes(&scan);
        assert_eq!(allows.len(), 1);
        assert!(allows[0].0.contains(3));
        assert!(!allows[0].0.contains(6));
    }

    #[test]
    fn roles_split_lib_from_support() {
        assert_eq!(role_of("crates/nn/src/tensor.rs"), FileRole::Lib);
        assert_eq!(role_of("crates/nn/tests/training.rs"), FileRole::Support);
        assert_eq!(role_of("examples/quickstart.rs"), FileRole::Support);
        assert_eq!(
            role_of("crates/bench/benches/substrates.rs"),
            FileRole::Support
        );
        assert_eq!(role_of("crates/core/src/bin/tool.rs"), FileRole::Support);
        assert_eq!(role_of("build.rs"), FileRole::Support);
    }
}

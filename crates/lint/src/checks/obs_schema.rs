//! **O2 — obs schema consistency.**
//!
//! Cross-crate companion to the per-site O1 grammar check:
//!
//! * **Event coverage** — every variant of the `obs` event enum
//!   (`event_crate` / `event_enum`, defaults `obs::Event`) must have at
//!   least one emitter outside the defining crate: a `Event::Variant`
//!   token sequence on a non-test line. A variant nobody emits is a
//!   schema entry consumers will wait on forever.
//! * **Metric-family consistency** — a metric *name* (string literal
//!   passed to a registry constructor) must always be registered under
//!   one family (counter / gauge / histogram, labeled and value
//!   variants included). The same name registered as a counter in one
//!   crate and a gauge in another silently splits the Prometheus
//!   export. Span names live in their own namespace and are excluded.
//!
//! Mentions in pattern position (`match e { Event::X(..) => .. }`)
//! count as emitters — a name-based model cannot tell construction from
//! matching, and the lenient direction is the safe one. Test-scoped
//! sites are ignored for both halves (tests deliberately mix kinds).

use std::collections::BTreeMap;

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::model::Workspace;
use crate::model2::SemanticModel;

use super::{path_allowed, Check};

/// Obs schema-consistency check (see module docs).
pub struct ObsSchema;

/// Registry constructors grouped by metric family. Spans are excluded:
/// their names are a separate namespace.
const FAMILIES: [(&str, &[&str]); 3] = [
    (
        "counter",
        &[
            "counter",
            "counter_labeled",
            "counter_value",
            "counter_value_labeled",
        ],
    ),
    (
        "gauge",
        &["gauge", "gauge_labeled", "gauge_value", "gauge_value_labeled"],
    ),
    (
        "histogram",
        &["histogram", "histogram_with_bounds", "histogram_handle"],
    ),
];

fn family_of(fn_name: &str) -> Option<&'static str> {
    FAMILIES
        .iter()
        .find(|(_, fns)| fns.contains(&fn_name))
        .map(|(fam, _)| *fam)
}

fn strip_quotes(raw: &str) -> &str {
    raw.trim_start_matches(['r', 'b', '#']).trim_matches(['"', '#'])
}

impl Check for ObsSchema {
    fn id(&self) -> &'static str {
        "O2"
    }

    fn description(&self) -> &'static str {
        "every event kind has an emitter; metric names keep a single family across crates"
    }

    fn check_semantic(
        &self,
        ws: &Workspace,
        _model: &SemanticModel,
        cfg: &Config,
        out: &mut Vec<Finding>,
    ) {
        let event_crate = cfg
            .str("checks.O2", "event_crate")
            .unwrap_or_else(|| "obs".to_string());
        let event_enum = cfg
            .str("checks.O2", "event_enum")
            .unwrap_or_else(|| "Event".to_string());

        // --- Event coverage -------------------------------------------
        // Variants: idents at brace-depth 1 of `enum <event_enum> {`,
        // skipping payload parens/braces, in files of the event crate.
        let mut variants: Vec<(String, String, usize)> = Vec::new(); // (name, file, line)
        for file in &ws.files {
            if file.crate_name.as_deref() != Some(event_crate.as_str()) {
                continue;
            }
            let toks = &file.scan.tokens;
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokenKind::Ident || t.text != "enum" {
                    continue;
                }
                let named = toks
                    .get(i + 1)
                    .map(|n| n.kind == TokenKind::Ident && n.text == event_enum)
                    .unwrap_or(false);
                let opened = toks.get(i + 2).map(|o| o.text == "{").unwrap_or(false);
                if !named || !opened {
                    continue;
                }
                let mut depth = 1i64; // brace depth relative to the enum body
                let mut paren = 0i64;
                let mut j = i + 3;
                let mut expect_variant = true;
                while j < toks.len() && depth > 0 {
                    let v = &toks[j];
                    match (v.kind, v.text.as_str()) {
                        (TokenKind::Punct, "{") => depth += 1,
                        (TokenKind::Punct, "}") => depth -= 1,
                        (TokenKind::Punct, "(") => paren += 1,
                        (TokenKind::Punct, ")") => paren -= 1,
                        (TokenKind::Punct, ",") if depth == 1 && paren == 0 => {
                            expect_variant = true;
                        }
                        (TokenKind::Ident, name) if depth == 1 && paren == 0 && expect_variant => {
                            variants.push((name.to_string(), file.rel_path.clone(), v.line));
                            expect_variant = false;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }

        // Emitters: `<event_enum> :: Variant` outside the event crate,
        // on non-test lines.
        let mut emitted: BTreeMap<&str, bool> = BTreeMap::new();
        for (name, _, _) in &variants {
            emitted.insert(name.as_str(), false);
        }
        for file in &ws.files {
            if file.crate_name.as_deref() == Some(event_crate.as_str()) {
                continue;
            }
            let toks = &file.scan.tokens;
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokenKind::Ident || t.text != event_enum {
                    continue;
                }
                let sep = toks.get(i + 1).map(|s| s.text == "::").unwrap_or(false);
                let Some(var) = toks.get(i + 2) else { continue };
                if !sep || var.kind != TokenKind::Ident || file.in_test_code(var.line) {
                    continue;
                }
                if let Some(e) = emitted.get_mut(var.text.as_str()) {
                    *e = true;
                }
            }
        }
        for (name, rel_path, line) in &variants {
            if emitted.get(name.as_str()).copied().unwrap_or(true) {
                continue;
            }
            if path_allowed(cfg, self.id(), rel_path) {
                continue;
            }
            out.push(Finding {
                check: self.id(),
                file: rel_path.clone(),
                line: *line,
                message: format!(
                    "event kind `{event_enum}::{name}` has no emitter outside `{event_crate}` \
                     (schema entry is dead)"
                ),
            });
        }

        // --- Metric-family consistency --------------------------------
        // name -> family -> first (file, line) registration site.
        let mut sites: BTreeMap<String, BTreeMap<&'static str, (String, usize)>> = BTreeMap::new();
        for file in &ws.files {
            if path_allowed(cfg, self.id(), &file.rel_path) {
                continue;
            }
            let toks = &file.scan.tokens;
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let Some(fam) = family_of(&t.text) else { continue };
                // Skip the definitions themselves (`fn counter(..)`).
                if i > 0 && toks[i - 1].text == "fn" {
                    continue;
                }
                let Some(open) = toks.get(i + 1) else { continue };
                let Some(arg) = toks.get(i + 2) else { continue };
                if open.text != "(" || arg.kind != TokenKind::Str || file.in_test_code(arg.line) {
                    continue;
                }
                let name = strip_quotes(&arg.text).to_string();
                sites
                    .entry(name)
                    .or_default()
                    .entry(fam)
                    .or_insert_with(|| (file.rel_path.clone(), arg.line));
            }
        }
        for (name, fams) in &sites {
            if fams.len() <= 1 {
                continue;
            }
            let mut parts: Vec<String> = fams
                .iter()
                .map(|(fam, (f, l))| format!("{fam} at {f}:{l}"))
                .collect();
            parts.sort();
            out.push(Finding {
                check: self.id(),
                file: String::new(),
                line: 0,
                message: format!(
                    "metric name {name:?} is registered under {} families: {}",
                    fams.len(),
                    parts.join(", ")
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Member, Workspace};

    fn ws_of(files: Vec<(&str, &str, &str)>) -> Workspace {
        let members = files
            .iter()
            .map(|(_, krate, _)| Member {
                name: krate.to_string(),
                dir: format!("crates/{krate}"),
                manifest: String::new(),
            })
            .collect();
        let files = files
            .into_iter()
            .map(|(path, krate, src)| crate::testsupport::lib_file(path, krate, src))
            .collect();
        Workspace {
            root: std::path::PathBuf::from("."),
            root_manifest: String::new(),
            members,
            files,
            docs: Default::default(),
        }
    }

    fn run(ws: &Workspace) -> Vec<Finding> {
        let cfg = Config::parse("[checks.O2]\n").expect("cfg");
        let model = SemanticModel::build(ws);
        let mut out = Vec::new();
        ObsSchema.check_semantic(ws, &model, &cfg, &mut out);
        out
    }

    #[test]
    fn unemitted_variant_is_flagged() {
        let ws = ws_of(vec![
            (
                "crates/obs/src/lib.rs",
                "obs",
                "pub enum Event {\n    Used(u64),\n    NeverEmitted { id: u32 },\n}\n",
            ),
            (
                "crates/app/src/lib.rs",
                "app",
                "fn go(r: &Recorder) {\n    r.emit(Event::Used(1));\n}\n",
            ),
        ]);
        let out = run(&ws);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("NeverEmitted"));
    }

    #[test]
    fn pattern_mentions_count_as_emitters() {
        let ws = ws_of(vec![
            (
                "crates/obs/src/lib.rs",
                "obs",
                "pub enum Event {\n    Tick,\n}\n",
            ),
            (
                "crates/app/src/lib.rs",
                "app",
                "fn go(e: &Event) {\n    match e {\n        Event::Tick => {}\n    }\n}\n",
            ),
        ]);
        assert!(run(&ws).is_empty());
    }

    #[test]
    fn test_only_emitters_do_not_count() {
        let ws = ws_of(vec![
            (
                "crates/obs/src/lib.rs",
                "obs",
                "pub enum Event {\n    Lonely,\n}\n",
            ),
            (
                "crates/app/src/lib.rs",
                "app",
                "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        emit(Event::Lonely);\n    }\n}\n",
            ),
        ]);
        let out = run(&ws);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn cross_family_registration_is_flagged() {
        let ws = ws_of(vec![
            (
                "crates/a/src/lib.rs",
                "a",
                "fn f(r: &Recorder) {\n    r.counter(\"hits_total\").inc();\n}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "b",
                "fn g(r: &Recorder) {\n    r.gauge(\"hits_total\").set(1.0);\n}\n",
            ),
        ]);
        let out = run(&ws);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("hits_total"));
        assert!(out[0].message.contains("2 families"));
    }

    #[test]
    fn same_family_and_span_names_are_fine() {
        let ws = ws_of(vec![
            (
                "crates/a/src/lib.rs",
                "a",
                "fn f(r: &Recorder) {\n    r.counter(\"hits_total\").inc();\n    r.span(\"hits_total\");\n}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "b",
                "fn g(r: &Recorder) {\n    r.counter_labeled(\"hits_total\", &[(\"k\", \"v\")]).inc();\n}\n",
            ),
        ]);
        assert!(run(&ws).is_empty());
    }
}

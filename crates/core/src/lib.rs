//! Fault-tolerant on-line training for RRAM-based neural computing systems.
//!
//! This crate implements the primary contribution of *Xia et al., "Fault-
//! Tolerant Training with On-Line Fault Detection for RRAM-Based Neural
//! Computing Systems" (DAC 2017)*: a training flow (Fig. 2 of the paper)
//! that alternates between a fault-detection phase and a fault-tolerant
//! training phase so that a network trained *through* faulty RRAM crossbars
//! recovers the accuracy of fault-free training.
//!
//! The three techniques, and where they live:
//!
//! * **Threshold training** (§5.1, Algorithm 1) — [`threshold`]. Weight
//!   updates below `0.01 · max|δw|` are suppressed, eliminating ~90 % of the
//!   write operations and extending cell lifetime ~15× at a ~1.2× iteration
//!   cost.
//! * **On-line fault detection** — provided by the [`faultdet`] crate and
//!   orchestrated per crossbar tile by [`mapping::MappedNetwork`].
//! * **Fault-tolerant re-mapping** (§5.2) — [`remap`]. Neurons are
//!   re-ordered (an isomorphism, so the network computes the same function)
//!   to minimize `Dist(P, F)`: the number of unpruned weights that land on
//!   faulty cells. The search is the paper's stochastic neuron-swap descent,
//!   plus a genetic algorithm and baselines for comparison.
//!
//! [`flow::FaultTolerantTrainer`] ties everything together over the
//! [`rram`] crossbar simulator and the [`nn`] training substrate.
//!
//! # Example
//!
//! Train the paper's 784×100×10 MLP through faulty crossbars with the full
//! fault-tolerant flow:
//!
//! ```
//! use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
//! use ftt_core::flow::FaultTolerantTrainer;
//! use nn::models::mlp_784_100_10;
//! use nn::synth::SyntheticDataset;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SyntheticDataset::mnist_like(128, 64, 1);
//! let net = mlp_784_100_10(1);
//! let mapping = MappingConfig::new(MappingScope::EntireNetwork)
//!     .with_initial_fault_fraction(0.10)
//!     .with_seed(7);
//! let flow = FlowConfig::fault_tolerant();
//! let mut trainer = FaultTolerantTrainer::new(net, mapping, flow)?;
//! let curve = trainer.train(&data, 40)?;
//! assert_eq!(curve.points().last().unwrap().iteration, 40);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod error;
pub mod flow;
pub mod mapping;
pub mod remap;
pub mod report;
pub mod strategy;
pub mod telemetry;
pub mod threshold;

pub use config::{FlowConfig, MappingConfig, MappingScope};
pub use flow::{FaultTolerantTrainer, NetParamState, TrainerState};
pub use mapping::{MappedLayerState, MappedNetwork, MappedState};
pub use strategy::{FaultStrategy, StrategyCost, StrategyCtx, StrategySelect};

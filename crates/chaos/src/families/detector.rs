//! Detector-focused families: remainder groups, ADC aliasing, and
//! all-faulty arrays.

use faultdet::detector::{DetectorConfig, OnlineFaultDetector};
use rram::fault::{FaultKind, FaultMap};

use super::{check_plane_coherence, uniform_crossbar};
use crate::{ensure, FamilyReport};

fn all_cells_detector(test_size: usize) -> Result<OnlineFaultDetector, String> {
    DetectorConfig::new(test_size)
        .map(OnlineFaultDetector::new)
        .map_err(|e| format!("detector config: {e}"))
}

/// `Tr` values that do not divide the array dimensions: the remainder
/// group must be swept, not dropped, and faults parked in it must still
/// be found.
pub fn detector_group_remainders(_seed: u64) -> FamilyReport {
    let mut fam = FamilyReport::new("detector_group_remainders");
    // (rows, cols, test_size): none of these test sizes divide the
    // corresponding dimension, so every campaign has remainder groups.
    let shapes = [
        (10usize, 7usize, 3usize),
        (9, 5, 4),
        (13, 13, 7),
        (5, 9, 16), // Tr larger than both dimensions: one partial group each
        (7, 7, 5),
    ];
    for (rows, cols, t) in shapes {
        fam.case(&format!("{rows}x{cols}_t{t}"), || {
            let mut xbar = uniform_crossbar(rows, cols, 3)?;
            // One fault in the very first cell and one in the remainder
            // corner — the cell a dropped remainder group would miss.
            let mut injected = FaultMap::healthy(rows, cols);
            injected.set(0, 0, Some(FaultKind::StuckAt0));
            injected.set(rows - 1, cols - 1, Some(FaultKind::StuckAt1));
            xbar.apply_fault_map(&injected);

            let detector = all_cells_detector(t)?;
            let outcome = detector.run(&mut xbar).map_err(|e| format!("run: {e}"))?;
            ensure(
                outcome.untested_groups == 0,
                "clean campaign must test every group",
            )?;
            // Both passes sweep ceil(rows/t) + ceil(cols/t) groups.
            let expected_cycles = (rows.div_ceil(t) + cols.div_ceil(t)) as u64;
            ensure(
                outcome.sa0_cycles == expected_cycles && outcome.sa1_cycles == expected_cycles,
                format!(
                    "cycles {}+{} != 2x{expected_cycles}: a remainder group was dropped",
                    outcome.sa0_cycles, outcome.sa1_cycles
                ),
            )?;
            for (r, c, kind) in injected.iter_faulty() {
                ensure(
                    outcome.predicted.get(r, c) == Some(kind),
                    format!("injected {kind:?} at ({r},{c}) escaped detection"),
                )?;
            }
            check_plane_coherence(&xbar, "after campaign")
        });
    }
    fam
}

/// The §4.2 aliasing escape: when the failed increments in a tested group
/// sum to 0 mod 16 the comparison cannot see them. This family *pins* the
/// documented false negative (it must stay, bit-for-bit, until the ADC
/// design changes) and shows the same faults are caught at mod 32.
pub fn mod16_aliasing(_seed: u64) -> FamilyReport {
    let mut fam = FamilyReport::new("mod16_aliasing");
    let build = |divisor: u32| -> Result<_, String> {
        let rows = 16usize;
        let cols = 16usize;
        let mut xbar = uniform_crossbar(rows, cols, 3)?;
        // A full column of 16 SA0 cells inside the single 16-row group:
        // the SA0 pass loses 16·δ = 16 levels on that column sum, which
        // aliases to 0 mod 16.
        let mut injected = FaultMap::healthy(rows, cols);
        for r in 0..rows {
            injected.set(r, 5, Some(FaultKind::StuckAt0));
        }
        xbar.apply_fault_map(&injected);
        let config = DetectorConfig::new(16)
            .map_err(|e| e.to_string())?
            .with_modulo_divisor(divisor);
        let outcome = OnlineFaultDetector::new(config)
            .run(&mut xbar)
            .map_err(|e| format!("run: {e}"))?;
        Ok(outcome)
    };

    fam.case("full_column_escapes_mod16", || {
        let outcome = build(16)?;
        ensure(
            outcome.predicted.count_faulty() == 0,
            format!(
                "expected the documented mod-16 false negative, but {} cells were flagged",
                outcome.predicted.count_faulty()
            ),
        )
    });
    fam.case("same_column_caught_mod32", || {
        let outcome = build(32)?;
        ensure(
            outcome.predicted.count_faulty() == 16,
            format!(
                "mod-32 should catch all 16, got {}",
                outcome.predicted.count_faulty()
            ),
        )?;
        for r in 0..16 {
            ensure(
                outcome.predicted.get(r, 5) == Some(FaultKind::StuckAt0),
                format!("({r},5) missing from mod-32 prediction"),
            )?;
        }
        Ok(())
    });
    fam.case("partial_alias_in_remainder_group", || {
        // 20 rows with Tr = 16: the remainder group holds 4 rows. 16
        // faults in the *first* group alias; the 4 in the remainder group
        // deviate by 4 mod 16 and must be flagged.
        let rows = 20usize;
        let cols = 8usize;
        let mut xbar = uniform_crossbar(rows, cols, 3)?;
        let mut injected = FaultMap::healthy(rows, cols);
        for r in 0..rows {
            injected.set(r, 2, Some(FaultKind::StuckAt0));
        }
        xbar.apply_fault_map(&injected);
        let detector = all_cells_detector(16)?;
        let outcome = detector.run(&mut xbar).map_err(|e| format!("run: {e}"))?;
        for r in 16..rows {
            ensure(
                outcome.predicted.get(r, 2).is_some(),
                format!("remainder-group fault ({r},2) escaped"),
            )?;
        }
        for r in 0..16 {
            ensure(
                outcome.predicted.get(r, 2).is_none(),
                format!("aliased group fault ({r},2) unexpectedly flagged"),
            )?;
        }
        Ok(())
    });
    fam
}

/// Arrays where *every* cell (or every cell of a row/column) is stuck:
/// detection and the full closed loop must complete without panicking.
pub fn all_faulty_extremes(seed: u64) -> FamilyReport {
    let mut fam = FamilyReport::new("all_faulty_extremes");
    for (name, kind) in [
        ("all_sa0", FaultKind::StuckAt0),
        ("all_sa1", FaultKind::StuckAt1),
    ] {
        fam.case(name, || {
            let rows = 8usize;
            let cols = 8usize;
            let mut xbar = uniform_crossbar(rows, cols, 3)?;
            let mut injected = FaultMap::healthy(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    injected.set(r, c, Some(kind));
                }
            }
            xbar.apply_fault_map(&injected);
            let detector = all_cells_detector(8)?;
            let outcome = detector.run(&mut xbar).map_err(|e| format!("run: {e}"))?;
            ensure(
                outcome.untested_groups == 0,
                "all-faulty campaign must still sweep",
            )?;
            // 8 failed increments per line: 8 mod 16 ≠ 0, so nothing hides.
            ensure(
                outcome.predicted.count_faulty() == rows * cols,
                format!(
                    "predicted {} of {}",
                    outcome.predicted.count_faulty(),
                    rows * cols
                ),
            )?;
            check_plane_coherence(&xbar, "after all-faulty campaign")
        });
    }
    fam.case("full_flow_on_100pct_faulty_hardware", || {
        use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
        use ftt_core::flow::FaultTolerantTrainer;
        use nn::init::init_rng;
        use nn::network::Network;
        use nn::optimizer::LrSchedule;
        use nn::synth::SyntheticDataset;

        let data = SyntheticDataset::mnist_like(40, 10, seed);
        let mut rng = init_rng(seed);
        let mut net = Network::new();
        net.push(nn::layers::Dense::new(784, 8, &mut rng));
        net.push(nn::layers::Relu::new());
        net.push(nn::layers::Dense::new(8, 10, &mut rng));
        let mapping = MappingConfig::new(MappingScope::EntireNetwork)
            .with_initial_fault_fraction(1.0)
            .with_seed(seed);
        let flow = FlowConfig::fault_tolerant()
            .with_lr(LrSchedule::constant(0.1))
            .with_detection_interval(4)
            .with_detection_warmup(0)
            .with_eval_interval(4);
        let mut trainer =
            FaultTolerantTrainer::new(net, mapping, flow).map_err(|e| format!("new: {e}"))?;
        let curve = trainer
            .train(&data, 12)
            .map_err(|e| format!("train: {e}"))?;
        ensure(
            curve.points().iter().all(|p| p.test_accuracy.is_finite()),
            "accuracy must stay finite even on dead hardware",
        )?;
        ensure(
            (trainer.mapped().fraction_faulty() - 1.0).abs() < 1e-12,
            "hardware should be fully faulty",
        )?;
        ensure(
            trainer.stats().detection_campaigns > 0,
            "detection must have run",
        )
    });
    fam
}

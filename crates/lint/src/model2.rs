//! Phase-1 **workspace semantic model** (DESIGN.md §10).
//!
//! Built on top of the per-file token scans from [`crate::model`], this
//! layer recovers just enough structure for cross-crate policy checks —
//! no type checking, no name resolution beyond workspace package names:
//!
//! * **Items & fn boundaries** — every `fn` with a body, its token
//!   range, enclosing `impl` type (when any), return-type idents, and
//!   whether it lives in test code.
//! * **`use` graph** — the flattened `use` paths per file (group
//!   imports expanded one path at a time).
//! * **Approximate call graph** — call sites are `ident(`-shaped token
//!   sequences (plus `ident::<…>(` turbofish); resolution is by *name*,
//!   restricted to the caller's crate and its direct intra-workspace
//!   dependencies (parsed from member manifests). Method calls match
//!   any fn of that name in the candidate crates. This over-approximates
//!   reachability — the right direction for policy checks like R1.
//! * **`par` boundary crossings** — calls to the `par` fork-join
//!   helpers with their literal closure arguments parsed out (params +
//!   body token range) for the C1 capture check.
//!
//! Known blind spots (also documented in DESIGN.md §10): macro-generated
//! code is invisible; function pointers / closures passed by name are
//! not traversed; trait dispatch resolves to every same-named method in
//! scope; `const` generic braces in signatures can confuse body
//! detection. All approximations err toward *more* edges, never fewer.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};
use crate::model::{FileRole, SourceFile, Workspace};

/// The `par` fork-join entry points whose closure arguments cross a
/// determinism boundary (C1).
pub const PAR_HELPERS: [&str; 6] = [
    "for_each_chunk_mut",
    "for_each_chunk_mut_hinted",
    "for_each_row_block_mut",
    "map_indices",
    "map_indices_hinted",
    "join_reduce",
];

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallRef {
    /// Callee name (the ident before `(`).
    pub callee: String,
    /// Path qualifier directly before the name (`par` in `par::f(..)`,
    /// `Self`, a type name, …), if any.
    pub qualifier: Option<String>,
    /// Whether the call is `.callee(..)` (method syntax).
    pub is_method: bool,
    /// 1-based source line.
    pub line: usize,
}

/// One panic site inside a fn body (same shapes P1 recognizes).
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Rendered site (`".unwrap()"`, `"panic!"`, …).
    pub what: String,
    /// 1-based source line.
    pub line: usize,
}

/// One function definition with a body.
#[derive(Debug)]
pub struct FnInfo {
    /// Index into `Workspace::files`.
    pub file: usize,
    /// Owning workspace package name (empty when unowned).
    pub crate_name: String,
    /// Fn name.
    pub name: String,
    /// Enclosing `impl` target type (last path segment), if any. Trait
    /// default methods record the trait name.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index range of the body, inclusive of both braces.
    pub body: (usize, usize),
    /// Idents appearing in the return type (between `->` and the body).
    pub ret_idents: Vec<String>,
    /// Whether the definition sits in `#[cfg(test)]`-scoped code.
    pub is_test: bool,
    /// Role of the containing file.
    pub role: FileRole,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallRef>,
    /// Panic sites in the body, in source order.
    pub panic_sites: Vec<PanicSite>,
}

/// A literal closure argument at a `par` helper call site.
#[derive(Debug, Clone)]
pub struct ClosureArg {
    /// Parameter idents (pattern idents included, types too — used only
    /// as an accept-list, so over-collection is harmless).
    pub params: Vec<String>,
    /// Token index range of the closure body (exclusive of a wrapping
    /// `{`/`}` pair when present).
    pub body: (usize, usize),
    /// 1-based line of the closure's opening `|`.
    pub line: usize,
}

/// One call to a `par` fork-join helper.
#[derive(Debug)]
pub struct ParCall {
    /// Index into `Workspace::files`.
    pub file: usize,
    /// Helper name (one of [`PAR_HELPERS`]).
    pub helper: String,
    /// 1-based line of the call.
    pub line: usize,
    /// Whether the call sits in test-scoped code.
    pub is_test: bool,
    /// Literal closures among the arguments.
    pub closures: Vec<ClosureArg>,
}

/// The phase-1 semantic model.
#[derive(Debug)]
pub struct SemanticModel {
    /// Every fn definition found, ordered by (file, token position).
    pub fns: Vec<FnInfo>,
    /// Name → indices into `fns` (deterministic: names sorted, indices
    /// ascending).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Crate → direct intra-workspace dependencies (self included).
    pub deps: BTreeMap<String, BTreeSet<String>>,
    /// File index → flattened `use` paths.
    pub uses: BTreeMap<usize, Vec<String>>,
    /// `par` helper call sites.
    pub par_calls: Vec<ParCall>,
}

const KEYWORDS: [&str; 35] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "else", "unsafe",
    "where", "use", "pub", "mod", "break", "continue", "ref", "mut", "dyn", "await", "yield",
    "struct", "enum", "union", "trait", "type", "static", "const", "crate", "super", "box",
    "let", "fn", "impl",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Map every `{` token index to its matching `}` index.
fn brace_matches(toks: &[Token]) -> BTreeMap<usize, usize> {
    let mut map = BTreeMap::new();
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => stack.push(i),
            "}" => {
                if let Some(open) = stack.pop() {
                    map.insert(open, i);
                }
            }
            _ => {}
        }
    }
    map
}

/// `impl` block spans: (type name, body open idx, body close idx).
fn impl_ranges(toks: &[Token], braces: &BTreeMap<usize, usize>) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "impl" {
            continue;
        }
        // Type-position `impl Trait` (in signatures) follows `->`, `:`,
        // `(`, `,`, `<`, `=`, or `+`; block-position impl follows item
        // boundaries, attributes, or `unsafe`.
        let block_position = match i.checked_sub(1).map(|p| &toks[p]) {
            None => true,
            Some(prev) => {
                prev.kind == TokenKind::Attr
                    || matches!(prev.text.as_str(), ";" | "{" | "}")
                    || prev.text == "unsafe"
            }
        };
        if !block_position {
            continue;
        }
        // Header: idents at angle-depth 0 until `{` / `where`; the impl
        // target is the last path segment (after `for`, when present).
        let mut angle: i64 = 0;
        let mut ty: Option<String> = None;
        let mut open: Option<usize> = None;
        for (j, h) in toks.iter().enumerate().skip(i + 1) {
            match (h.kind, h.text.as_str()) {
                (TokenKind::Punct, "<") => angle += 1,
                (TokenKind::Punct, ">") => angle -= 1,
                (TokenKind::Punct, "{") if angle <= 0 => {
                    open = Some(j);
                    break;
                }
                (TokenKind::Ident, "where") if angle <= 0 => {
                    // Type is fixed by now; keep scanning for `{`.
                }
                (TokenKind::Ident, "for") if angle <= 0 => {
                    // `impl Trait for Type` — restart: the target is the
                    // last path segment after `for`.
                    ty = None;
                }
                (TokenKind::Ident, name) if angle <= 0 => {
                    ty = Some(name.to_string());
                }
                _ => {}
            }
            if j > i + 64 {
                break; // runaway header — not an impl block we model
            }
        }
        if let (Some(open), Some(ty)) = (open, ty) {
            if let Some(&close) = braces.get(&open) {
                out.push((ty, open, close));
            }
        }
    }
    out
}

/// Innermost impl range containing token index `idx`.
fn enclosing_impl(ranges: &[(String, usize, usize)], idx: usize) -> Option<String> {
    ranges
        .iter()
        .filter(|(_, o, c)| idx > *o && idx < *c)
        .min_by_key(|(_, o, c)| c - o)
        .map(|(ty, _, _)| ty.clone())
}

/// Expand a `use` path token run (`a::b::{c, d::e}`) into flat paths.
fn expand_use(toks: &[Token], prefix: &str, out: &mut Vec<String>) {
    let mut i = 0;
    let mut path = String::from(prefix);
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, name) => {
                if !path.is_empty() {
                    path.push_str("::");
                }
                path.push_str(name);
                i += 1;
            }
            (TokenKind::Punct, "::") => {
                i += 1;
            }
            (TokenKind::Punct, "{") => {
                // Group: split top-level commas, recurse on each.
                let mut depth = 1usize;
                let start = i + 1;
                let mut seg_start = start;
                let mut j = start;
                while j < toks.len() && depth > 0 {
                    match toks[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                if seg_start < j {
                                    expand_use(&toks[seg_start..j], &path, out);
                                }
                                break;
                            }
                        }
                        "," if depth == 1 => {
                            if seg_start < j {
                                expand_use(&toks[seg_start..j], &path, out);
                            }
                            seg_start = j + 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return;
            }
            (TokenKind::Punct, "*") => {
                if !path.is_empty() {
                    path.push_str("::");
                }
                path.push('*');
                i += 1;
            }
            _ => {
                i += 1; // `as` aliases, commas, etc. — keep the base path
            }
        }
    }
    if !path.is_empty() && path != prefix {
        out.push(path);
    }
}

/// Collect the flattened `use` paths of a file.
fn collect_uses(toks: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "use" {
            continue;
        }
        let item_position = match i.checked_sub(1).map(|p| &toks[p]) {
            None => true,
            Some(prev) => {
                prev.kind == TokenKind::Attr
                    || matches!(prev.text.as_str(), ";" | "{" | "}" | "pub")
            }
        };
        if !item_position {
            continue;
        }
        let end = toks[i + 1..]
            .iter()
            .position(|t| t.text == ";")
            .map(|p| i + 1 + p)
            .unwrap_or(toks.len());
        expand_use(&toks[i + 1..end], "", &mut out);
    }
    out
}

/// Parse `[dependencies]` / `[dev-dependencies]` keys from a manifest,
/// filtered to workspace package names.
fn manifest_deps(manifest: &str, member_names: &BTreeSet<String>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_deps = false;
    for raw in manifest.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_deps = matches!(line, "[dependencies]" | "[dev-dependencies]" | "[build-dependencies]");
            continue;
        }
        if !in_deps {
            continue;
        }
        if let Some((key, _)) = line.split_once('=') {
            // `ftt-core = { .. }`, `ftt-core.workspace = true`, and
            // quoted keys all reduce to the first dotted segment.
            let key = key
                .trim()
                .split('.')
                .next()
                .unwrap_or("")
                .trim_matches('"')
                .to_string();
            if member_names.contains(&key) {
                out.insert(key);
            }
        }
    }
    out
}

/// Find the body `{` of a fn whose name sits at token `name_idx`;
/// returns `(open_idx, ret_idents)` or `None` for body-less decls.
fn fn_body_open(toks: &[Token], name_idx: usize) -> Option<(usize, Vec<String>)> {
    let mut paren: i64 = 0;
    let mut ret_idents = Vec::new();
    let mut in_ret = false;
    for (j, t) in toks.iter().enumerate().skip(name_idx + 1) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" if paren <= 0 => return Some((j, ret_idents)),
                ";" if paren <= 0 => return None,
                "->" if paren <= 0 => in_ret = true,
                _ => {}
            }
        } else if t.kind == TokenKind::Ident {
            if t.text == "where" && paren <= 0 {
                in_ret = false;
            } else if in_ret && paren <= 0 {
                ret_idents.push(t.text.clone());
            }
        }
        if j > name_idx + 512 {
            break; // runaway signature — bail out conservatively
        }
    }
    None
}

/// Find the `)` matching the `(` at `open` (token indices).
fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth: i64 = 0;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parse the literal closures among a call's argument tokens
/// (`open`/`close` are the call's paren token indices).
fn parse_closures(
    toks: &[Token],
    braces: &BTreeMap<usize, usize>,
    open: usize,
    close: usize,
) -> Vec<ClosureArg> {
    let mut out = Vec::new();
    let mut k = open + 1;
    while k < close {
        let t = &toks[k];
        let starter = k == open + 1
            || matches!(toks[k - 1].text.as_str(), "(" | "," | "move");
        if t.kind == TokenKind::Punct && (t.text == "|" || t.text == "||") && starter {
            let line = t.line;
            let mut params = Vec::new();
            let body_start = if t.text == "||" {
                k + 1
            } else {
                // Params until the closing `|`.
                let mut j = k + 1;
                while j < close && toks[j].text != "|" {
                    if toks[j].kind == TokenKind::Ident {
                        params.push(toks[j].text.clone());
                    }
                    j += 1;
                }
                j + 1
            };
            if body_start >= close {
                break;
            }
            // Body: a brace block, or an expression up to `,`/`)` at
            // relative depth 0.
            let (b0, b1, resume) = if toks[body_start].text == "{" {
                match braces.get(&body_start) {
                    Some(&end) => (body_start + 1, end, end + 1),
                    None => (body_start, close, close),
                }
            } else {
                let mut depth: i64 = 0;
                let mut end = close;
                for (j, bt) in toks.iter().enumerate().take(close).skip(body_start) {
                    if bt.kind != TokenKind::Punct {
                        continue;
                    }
                    match bt.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => {
                            end = j;
                            break;
                        }
                        _ => {}
                    }
                }
                (body_start, end, end)
            };
            out.push(ClosureArg {
                params,
                body: (b0, b1),
                line,
            });
            k = resume;
        } else {
            k += 1;
        }
    }
    out
}

impl SemanticModel {
    /// Build the semantic model for an analyzed workspace.
    pub fn build(ws: &Workspace) -> SemanticModel {
        let member_names: BTreeSet<String> =
            ws.members.iter().map(|m| m.name.clone()).collect();
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for m in &ws.members {
            let mut d = manifest_deps(&m.manifest, &member_names);
            d.insert(m.name.clone());
            deps.insert(m.name.clone(), d);
        }

        let mut fns: Vec<FnInfo> = Vec::new();
        let mut uses: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        let mut par_calls: Vec<ParCall> = Vec::new();

        for (fi, file) in ws.files.iter().enumerate() {
            let toks = &file.scan.tokens;
            let braces = brace_matches(toks);
            let impls = impl_ranges(toks, &braces);
            let u = collect_uses(toks);
            if !u.is_empty() {
                uses.insert(fi, u);
            }

            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokenKind::Ident || t.text != "fn" {
                    continue;
                }
                let Some(name_tok) = toks.get(i + 1) else { continue };
                if name_tok.kind != TokenKind::Ident {
                    continue; // `fn(..)` pointer type
                }
                let Some((open, ret_idents)) = fn_body_open(toks, i + 1) else {
                    continue;
                };
                let Some(&bclose) = braces.get(&open) else { continue };
                let mut info = FnInfo {
                    file: fi,
                    crate_name: file.crate_name.clone().unwrap_or_default(),
                    name: name_tok.text.clone(),
                    impl_type: enclosing_impl(&impls, i),
                    line: t.line,
                    body: (open, bclose),
                    ret_idents,
                    is_test: file.in_test_code(t.line),
                    role: file.role,
                    calls: Vec::new(),
                    panic_sites: Vec::new(),
                };
                scan_body(file, toks, &braces, open, bclose, &mut info, fi, &mut par_calls);
                fns.push(info);
            }
        }

        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }

        SemanticModel {
            fns,
            by_name,
            deps,
            uses,
            par_calls,
        }
    }

    /// Candidate callee fns for a call from `caller_crate`: same-named
    /// fns in that crate or its direct workspace dependencies; a path
    /// qualifier naming a crate or impl type narrows the set.
    pub fn resolve(&self, caller_crate: &str, call: &CallRef) -> Vec<usize> {
        let Some(ids) = self.by_name.get(&call.callee) else {
            return Vec::new();
        };
        let empty = BTreeSet::new();
        let dep_set = self.deps.get(caller_crate).unwrap_or(&empty);
        ids.iter()
            .copied()
            .filter(|&id| {
                let f = &self.fns[id];
                if f.is_test {
                    return false;
                }
                if !dep_set.contains(&f.crate_name) && f.crate_name != caller_crate {
                    return false;
                }
                match &call.qualifier {
                    // `par::f(..)` — qualifier naming a workspace crate
                    // pins the crate; a type qualifier pins the impl.
                    Some(q) if self.deps.contains_key(q.as_str()) => f.crate_name == *q,
                    Some(q) if q != "Self" && q != "self" => {
                        f.impl_type.as_deref() == Some(q.as_str())
                    }
                    _ => true,
                }
            })
            .collect()
    }
}

/// Scan one fn body for calls, panic sites, and `par` helper crossings.
#[allow(clippy::too_many_arguments)]
fn scan_body(
    file: &SourceFile,
    toks: &[Token],
    braces: &BTreeMap<usize, usize>,
    open: usize,
    close: usize,
    info: &mut FnInfo,
    fi: usize,
    par_calls: &mut Vec<ParCall>,
) {
    const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = t.text.as_str();

        // Panic sites (the same shapes P1 recognizes).
        if (name == "unwrap" || name == "expect")
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|n| n.text == "(").unwrap_or(false)
        {
            info.panic_sites.push(PanicSite {
                what: format!(".{name}()"),
                line: t.line,
            });
        } else if PANIC_MACROS.contains(&name)
            && toks.get(i + 1).map(|n| n.text == "!").unwrap_or(false)
        {
            info.panic_sites.push(PanicSite {
                what: format!("{name}!"),
                line: t.line,
            });
        }

        // Calls: `ident(` or `ident::<..>(`.
        if is_keyword(name) {
            i += 1;
            continue;
        }
        let mut open_paren: Option<usize> = None;
        if let Some(next) = toks.get(i + 1) {
            if next.text == "(" {
                open_paren = Some(i + 1);
            } else if next.text == "::" && toks.get(i + 2).map(|t| t.text == "<").unwrap_or(false)
            {
                // Turbofish: skip to the matching `>` then require `(`.
                let mut angle: i64 = 0;
                for (j, a) in toks.iter().enumerate().take(close).skip(i + 2) {
                    match a.text.as_str() {
                        "<" => angle += 1,
                        ">" => {
                            angle -= 1;
                            if angle == 0 {
                                if toks.get(j + 1).map(|t| t.text == "(").unwrap_or(false) {
                                    open_paren = Some(j + 1);
                                }
                                break;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        let Some(op) = open_paren else {
            i += 1;
            continue;
        };
        let is_method = i > 0 && toks[i - 1].text == ".";
        let qualifier = if i >= 2 && toks[i - 1].text == "::" && toks[i - 2].kind == TokenKind::Ident
        {
            Some(toks[i - 2].text.clone())
        } else {
            None
        };
        info.calls.push(CallRef {
            callee: name.to_string(),
            qualifier,
            is_method,
            line: t.line,
        });

        if PAR_HELPERS.contains(&name) {
            if let Some(cp) = matching_paren(toks, op) {
                let closures = parse_closures(toks, braces, op, cp);
                par_calls.push(ParCall {
                    file: fi,
                    helper: name.to_string(),
                    line: t.line,
                    is_test: file.in_test_code(t.line),
                    closures,
                });
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workspace;

    fn model_of(src: &str) -> (SemanticModel, Vec<String>) {
        let file = crate::testsupport::lib_file("crates/demo/src/lib.rs", "demo", src);
        let ws = Workspace {
            root: std::path::PathBuf::from("."),
            root_manifest: String::new(),
            members: vec![crate::model::Member {
                name: "demo".into(),
                dir: "crates/demo".into(),
                manifest: String::new(),
            }],
            files: vec![file],
            docs: Default::default(),
        };
        let m = SemanticModel::build(&ws);
        let names = m.fns.iter().map(|f| f.name.clone()).collect();
        (m, names)
    }

    #[test]
    fn fn_boundaries_and_impl_context() {
        let (m, names) = model_of(
            "pub struct T;\nimpl T {\n    pub fn a(&self) -> usize { self.b() }\n    fn b(&self) -> usize { 1 }\n}\nfn free() {}\n",
        );
        assert_eq!(names, vec!["a", "b", "free"]);
        assert_eq!(m.fns[0].impl_type.as_deref(), Some("T"));
        assert_eq!(m.fns[2].impl_type, None);
        assert_eq!(m.fns[0].ret_idents, vec!["usize"]);
        assert!(m.fns[0].calls.iter().any(|c| c.callee == "b" && c.is_method));
    }

    #[test]
    fn trait_decls_without_bodies_are_skipped() {
        let (_, names) = model_of("trait X {\n    fn no_body(&self);\n    fn with_body(&self) -> u8 { 0 }\n}\n");
        assert_eq!(names, vec!["with_body"]);
    }

    #[test]
    fn calls_resolve_within_crate() {
        let (m, _) = model_of("fn a() { b(); }\nfn b() {}\n");
        let call = &m.fns[0].calls[0];
        let ids = m.resolve("demo", call);
        assert_eq!(ids.len(), 1);
        assert_eq!(m.fns[ids[0]].name, "b");
    }

    #[test]
    fn par_call_closures_are_parsed() {
        let (m, _) = model_of(
            "fn k(n: usize) -> Vec<usize> {\n    par::map_indices(n, |i| i * 2)\n}\n",
        );
        assert_eq!(m.par_calls.len(), 1);
        assert_eq!(m.par_calls[0].helper, "map_indices");
        assert_eq!(m.par_calls[0].closures.len(), 1);
        assert_eq!(m.par_calls[0].closures[0].params, vec!["i"]);
    }

    #[test]
    fn empty_param_closures_and_multiple_args() {
        let (m, _) = model_of(
            "fn k(n: usize) -> u64 {\n    join_reduce(n, || 0u64, |acc, i| acc + i as u64, |a, b| a + b)\n}\n",
        );
        assert_eq!(m.par_calls.len(), 1);
        assert_eq!(m.par_calls[0].closures.len(), 3);
        assert!(m.par_calls[0].closures[0].params.is_empty());
        assert_eq!(m.par_calls[0].closures[1].params, vec!["acc", "i"]);
    }

    #[test]
    fn use_paths_are_flattened() {
        let (m, _) = model_of("use par::{map_indices, sanitizer::take_report};\nfn f() {}\n");
        let u = m.uses.get(&0).cloned().unwrap_or_default();
        assert!(u.contains(&"par::map_indices".to_string()), "{u:?}");
        assert!(u.contains(&"par::sanitizer::take_report".to_string()), "{u:?}");
    }

    #[test]
    fn panic_sites_are_collected_per_fn() {
        let (m, _) = model_of("fn a(x: Option<u8>) -> u8 { x.unwrap() }\nfn b() { panic!(\"no\") }\nfn c() {}\n");
        assert_eq!(m.fns[0].panic_sites.len(), 1);
        assert_eq!(m.fns[1].panic_sites.len(), 1);
        assert!(m.fns[2].panic_sites.is_empty());
    }
}

//! The clean crate: one *negative* (passing) case per check.
//!
//! P1: justified panic sites. D1: ordered collections, scoped threads.
//! F1: exact-zero compares, epsilon helpers, annotated casts.
//! S1: justified unsafe. O1: snake_case registry names.
//! W1: inherits workspace version/license and is mentioned in README.md.

use std::collections::BTreeMap;

/// P1 negative: a panic site with a justification, plus the
/// attr-then-comment convention.
pub fn head(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty(), "contract: xs non-empty");
    #[allow(clippy::unwrap_used)]
    // PANIC-OK: emptiness is rejected by the assert above.
    *xs.first().unwrap()
}

/// D1 negative: deterministic collections and scoped threads only.
pub fn ordered(pairs: &[(usize, usize)]) -> BTreeMap<usize, usize> {
    let map: BTreeMap<usize, usize> = pairs.iter().copied().collect();
    std::thread::scope(|s| {
        s.spawn(|| map.len());
    });
    map
}

/// F1 negative: exact-zero compares are exempt; other comparisons go
/// through an epsilon; the narrowing cast carries its note.
pub fn sparsity(xs: &[f64]) -> f32 {
    let zeros = xs.iter().filter(|&&x| x == 0.0).count();
    let ratio = zeros as f64 / xs.len().max(1) as f64;
    let saturated = (ratio - 1.0).abs() < 1e-12;
    let _ = saturated;
    // CAST-OK: reporting precision only; the f64 master value is kept.
    ratio as f32
}

/// S1 negative: unsafe with its proof obligation written down.
pub fn first_byte(p: *const u8) -> u8 {
    // SAFETY: callers guarantee `p` is valid for reads of one byte.
    unsafe { *p }
}

/// O1 negative: registry names in the snake_case grammar.
pub fn register(r: &dyn Registrar) {
    r.counter("good_events_total");
    r.span("good_phase");
}

/// Minimal registrar shape so the fixture stays self-contained.
pub trait Registrar {
    /// Register a counter.
    fn counter(&self, name: &str);
    /// Register a labeled counter.
    fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]);
    /// Open a span.
    fn span(&self, name: &str);
}

#[cfg(test)]
mod tests {
    // P1 exemption: test code may unwrap freely.
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}

/// C1 negative: the closure touches only its parameter and locals, and
/// the RNG seed mixes in the per-index salt.
pub fn deterministic_map(n: usize, seed: u64) -> Vec<u64> {
    par::map_indices(n, |i| {
        let mut acc = 0u64;
        acc += i as u64;
        let _rng = sim_rng(seed.wrapping_add(i as u64));
        acc
    })
}

/// O2 negative: emits the `Used` event kind defined in `bad`.
pub fn emit_used(sink: &mut Vec<Event>) {
    sink.push(Event::Used(1));
}

/// R1 negative root: the one panic site on the path carries its
/// justification (shared with P1's grammar).
pub fn resume() {
    restore_step();
}

fn restore_step() {
    let v: Option<u8> = Some(0);
    // PANIC-OK: seeded Some() two lines above.
    let _ = v.unwrap();
}

/// E2 negative: the producer's caller feeds the FlowStats ledger.
pub fn detect_ok() -> DetectionOutcome {
    DetectionOutcome
}

/// E2 sink-side caller.
pub fn absorb(stats: &mut FlowStats) {
    stats.record(detect_ok());
}

/// O1 negative: labeled constructor with grammatical label keys.
pub fn register_labeled(r: &dyn Registrar) {
    r.counter_labeled("good_requests_total", &[("tenant_id", "t0")]);
}

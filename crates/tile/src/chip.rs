//! The tiled chip: a pool of bounded-size crossbar tiles plus spares.
//!
//! A real RRAM computing system shards any non-trivial layer across many
//! fixed-size arrays; fault handling, wear, and test scheduling are all
//! per-array decisions. [`TiledChip`] owns every physical tile of the
//! simulated chip — the active shards of mapped layers *and* a pool of
//! cold spares — and is the single authority on tile identity, retirement,
//! and substitution. Mappings (see [`crate::mapping::TiledMapping`]) hold
//! tile *ids*, never the arrays themselves, so a spare swap is one id
//! rewrite plus a reprogram.
//!
//! Determinism: each tile is seeded
//! `seed.wrapping_mul(0x9E37_79B9).wrapping_add(counter)` with a
//! pre-incremented chip-global allocation counter, the exact stream the
//! monolithic mapper uses — so a tiled chip and a monolithic mapping built
//! from the same seed draw identical per-tile RNG streams in allocation
//! order. Detection campaigns fan out across the [`par`] budget but
//! aggregate in tile-id order, and obs events are only emitted from the
//! sequential spine (retire/substitute), keeping seeded traces
//! byte-identical at any `RRAM_FTT_THREADS`.

use faultdet::detector::{DetectionOutcome, OnlineFaultDetector};
use faultdet::reference::OffChipStore;
use rram::crossbar::{Crossbar, CrossbarBuilder};
use rram::endurance::EnduranceModel;
use rram::spatial::FaultInjection;
use rram::variation::WriteVariation;
use rram::RramError;

use std::collections::BTreeSet;

use crate::error::TileError;
use crate::health::TileHealth;

/// Chip-wide configuration: tile geometry, device models, spare pool, and
/// the retirement policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipConfig {
    /// Nominal tile edge (tiles are at most `tile_size × tile_size`).
    pub tile_size: usize,
    /// Conductance levels per cell.
    pub levels: u16,
    /// Endurance model applied to every tile.
    pub endurance: EnduranceModel,
    /// Write-variation model applied to every tile.
    pub variation: WriteVariation,
    /// Manufacturing-fault injection applied to newly built tiles
    /// (spares included — a cold spare is not magically perfect).
    pub injection: Option<FaultInjection>,
    /// Cold spare tiles available for substitution.
    pub spare_tiles: usize,
    /// Retire a tile when its *predicted* fault density crosses this
    /// threshold (`None` disables sparing).
    pub retire_fault_density: Option<f64>,
    /// Chip seed; every tile derives its own stream from it.
    pub seed: u64,
}

impl ChipConfig {
    /// A chip with the given tile edge and seed; unlimited endurance, no
    /// variation, no injected faults, no spares, sparing disabled.
    pub fn new(tile_size: usize, levels: u16, seed: u64) -> Self {
        ChipConfig {
            tile_size,
            levels,
            endurance: EnduranceModel::unlimited(),
            variation: WriteVariation::none(),
            injection: None,
            spare_tiles: 0,
            retire_fault_density: None,
            seed,
        }
    }

    /// Sets the endurance model.
    pub fn with_endurance(mut self, endurance: EnduranceModel) -> Self {
        self.endurance = endurance;
        self
    }

    /// Sets the write-variation model.
    pub fn with_variation(mut self, variation: WriteVariation) -> Self {
        self.variation = variation;
        self
    }

    /// Sets manufacturing-fault injection for newly built tiles.
    pub fn with_injection(mut self, injection: FaultInjection) -> Self {
        self.injection = Some(injection);
        self
    }

    /// Sets the cold-spare pool size.
    pub fn with_spare_tiles(mut self, spares: usize) -> Self {
        self.spare_tiles = spares;
        self
    }

    /// Enables retirement at the given predicted fault density.
    pub fn with_retire_fault_density(mut self, density: f64) -> Self {
        self.retire_fault_density = Some(density);
        self
    }

    fn validate(&self) -> Result<(), TileError> {
        if self.tile_size == 0 {
            return Err(TileError::InvalidConfig("tile_size must be >= 1".into()));
        }
        if self.levels < 2 {
            return Err(TileError::InvalidConfig(format!(
                "need at least 2 conductance levels, got {}",
                self.levels
            )));
        }
        if let Some(d) = self.retire_fault_density {
            if !d.is_finite() || d <= 0.0 || d > 1.0 {
                return Err(TileError::InvalidConfig(format!(
                    "retire_fault_density must be in (0, 1], got {d}"
                )));
            }
        }
        Ok(())
    }
}

/// One physical tile slot of the chip.
#[derive(Debug, Clone)]
pub struct TileSlot {
    /// Chip-global tile id (stable for the chip's lifetime).
    pub id: usize,
    /// The physical array.
    pub xbar: Crossbar,
    /// Whether this tile has been retired from service.
    pub retired: bool,
    /// When this tile is a spare, the id of the tile it replaced.
    pub spare_origin: Option<usize>,
    /// Outcome of the most recent detection campaign on this tile.
    pub last_detection: Option<DetectionOutcome>,
    /// Error of the most recent campaign, when it failed.
    pub last_campaign_error: Option<RramError>,
    /// Persistent off-chip reference store for incremental campaigns
    /// (`None` until the first incremental campaign attaches one).
    pub store: Option<OffChipStore>,
}

impl TileSlot {
    /// Cells in this tile.
    pub fn cells(&self) -> usize {
        self.xbar.rows() * self.xbar.cols()
    }

    /// Predicted fault density from the last campaign (`None` before the
    /// first successful campaign).
    pub fn predicted_fault_density(&self) -> Option<f64> {
        self.last_detection
            .as_ref()
            .map(|d| d.predicted.count_faulty() as f64 / self.cells() as f64)
    }
}

/// Aggregate results of one chip-level detection pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Tiles whose campaign completed.
    pub campaigns_run: u64,
    /// Tiles whose campaign failed outright (error stored on the slot).
    pub failed_tiles: u64,
    /// Total test cycles across tiles (§6.1 per-tile cycles summed).
    pub cycles: u64,
    /// Write pulses the campaigns themselves spent.
    pub write_pulses: u64,
    /// Cells flagged faulty, summed over tested tiles.
    pub flagged_cells: u64,
    /// Group sweeps skipped due to degraded coverage.
    pub untested_groups: u64,
}

/// Result of a substitution request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpareOutcome {
    /// A spare was attached; the caller should reprogram and re-point its
    /// shards at `new_id`.
    Attached {
        /// Chip-global id of the newly attached tile.
        new_id: usize,
    },
    /// The spare pool is empty; the tile was *not* retired (a degraded
    /// tile still computes better than a missing one).
    Exhausted,
}

#[derive(Debug, Clone)]
struct ChipMetrics {
    recorder: obs::Recorder,
    retired: obs::Counter,
    attached: obs::Counter,
    spares_remaining: obs::Gauge,
    campaigns: obs::Counter,
}

/// The chip: a pool of tiles, a spare budget, and the retirement policy.
#[derive(Debug, Clone)]
pub struct TiledChip {
    config: ChipConfig,
    slots: Vec<TileSlot>,
    tile_counter: u64,
    spares_remaining: usize,
    spares_attached: u64,
    metrics: Option<ChipMetrics>,
}

impl TiledChip {
    /// Builds an empty chip from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TileError::InvalidConfig`] for a zero tile size, fewer
    /// than two levels, or an out-of-range retirement density.
    pub fn new(config: ChipConfig) -> Result<Self, TileError> {
        config.validate()?;
        Ok(TiledChip {
            config,
            slots: Vec::new(),
            tile_counter: 0,
            spares_remaining: config.spare_tiles,
            spares_attached: 0,
            metrics: None,
        })
    }

    /// The chip's configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Instruments the chip (and every current tile) with telemetry:
    /// `tile_retired_total` / `tile_spares_attached_total` counters, the
    /// `tile_spares_remaining` gauge, a `tile_campaigns_total` counter,
    /// and [`obs::Event::TileRetired`] / [`obs::Event::SpareAttached`]
    /// events on retirement and substitution.
    pub fn attach_recorder(&mut self, recorder: &obs::Recorder) {
        let m = ChipMetrics {
            recorder: recorder.clone(),
            retired: recorder.counter("tile_retired_total"),
            attached: recorder.counter("tile_spares_attached_total"),
            spares_remaining: recorder.gauge("tile_spares_remaining"),
            campaigns: recorder.counter("tile_campaigns_total"),
        };
        m.spares_remaining.set(self.spares_remaining as f64);
        for slot in &mut self.slots {
            slot.xbar.attach_recorder(recorder);
        }
        self.metrics = Some(m);
    }

    /// Allocates a fresh tile of the given dimensions (clamped to the
    /// nominal tile size by callers; the chip itself allows any dims up to
    /// `tile_size` per edge) and returns its chip-global id.
    ///
    /// # Errors
    ///
    /// Returns [`TileError::InvalidConfig`] for dimensions exceeding the
    /// nominal tile, and propagates device build errors.
    pub fn allocate(&mut self, rows: usize, cols: usize) -> Result<usize, TileError> {
        if rows == 0 || cols == 0 || rows > self.config.tile_size || cols > self.config.tile_size {
            return Err(TileError::InvalidConfig(format!(
                "tile dims {rows}x{cols} outside 1..={}",
                self.config.tile_size
            )));
        }
        self.tile_counter += 1;
        let mut builder = CrossbarBuilder::new(rows, cols)
            .levels(self.config.levels)
            .endurance(self.config.endurance)
            .variation(self.config.variation)
            .seed(
                self.config
                    .seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(self.tile_counter),
            );
        if let Some(injection) = self.config.injection {
            builder = builder.initial_fault_injection(injection);
        }
        let mut xbar = builder.build().map_err(TileError::Rram)?;
        if let Some(m) = &self.metrics {
            xbar.attach_recorder(&m.recorder);
        }
        let id = self.slots.len();
        self.slots.push(TileSlot {
            id,
            xbar,
            retired: false,
            spare_origin: None,
            last_detection: None,
            last_campaign_error: None,
            store: None,
        });
        Ok(id)
    }

    /// Number of tile slots ever allocated (retired slots included).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Ids of tiles currently in service, ascending.
    pub fn active_ids(&self) -> Vec<usize> {
        self.slots
            .iter()
            .filter(|s| !s.retired)
            .map(|s| s.id)
            .collect()
    }

    /// Spares left in the pool.
    pub fn spares_remaining(&self) -> usize {
        self.spares_remaining
    }

    /// Spares attached so far.
    pub fn spares_attached(&self) -> u64 {
        self.spares_attached
    }

    /// Tiles retired so far.
    pub fn tiles_retired(&self) -> u64 {
        self.slots.iter().filter(|s| s.retired).count() as u64
    }

    /// Shared view of a tile slot.
    pub fn slot(&self, id: usize) -> Result<&TileSlot, TileError> {
        self.slots.get(id).ok_or(TileError::UnknownTile { id })
    }

    /// Shared view of a tile's array.
    pub fn tile(&self, id: usize) -> Result<&Crossbar, TileError> {
        self.slot(id).map(|s| &s.xbar)
    }

    /// Exclusive view of a tile's array.
    ///
    /// # Errors
    ///
    /// Unknown ids error; retired tiles are still accessible (their state
    /// is frozen but readable — post-mortems read retired tiles).
    pub fn tile_mut(&mut self, id: usize) -> Result<&mut Crossbar, TileError> {
        let slot = self
            .slots
            .get_mut(id)
            .ok_or(TileError::UnknownTile { id })?;
        Ok(&mut slot.xbar)
    }

    /// Ground-truth fault density of a tile (simulator-only knowledge).
    pub fn fault_density(&self, id: usize) -> Result<f64, TileError> {
        Ok(self.slot(id)?.xbar.fault_map().fraction_faulty())
    }

    /// Predicted fault density of a tile from its last campaign.
    pub fn predicted_fault_density(&self, id: usize) -> Result<Option<f64>, TileError> {
        Ok(self.slot(id)?.predicted_fault_density())
    }

    /// The last campaign outcome of a tile.
    pub fn last_detection(&self, id: usize) -> Result<Option<&DetectionOutcome>, TileError> {
        Ok(self.slot(id)?.last_detection.as_ref())
    }

    /// Takes (and clears) the last campaign error of a tile.
    pub fn take_campaign_error(&mut self, id: usize) -> Result<Option<RramError>, TileError> {
        let slot = self
            .slots
            .get_mut(id)
            .ok_or(TileError::UnknownTile { id })?;
        Ok(slot.last_campaign_error.take())
    }

    /// Runs the §4 quiescent-voltage campaign on each listed tile,
    /// tile-locally: every tile gets its own campaign, so comparison
    /// groups (Tr/Tc) never span tile edges. Campaigns fan out across the
    /// [`par`] thread budget; results are stored on the slots and
    /// aggregated in ascending id order, so the stats (and any recorder
    /// counters the detector carries) are deterministic at any thread
    /// count. Retired and unknown ids are skipped silently — schedulers
    /// may race retirement.
    pub fn run_campaigns(
        &mut self,
        detector: &OnlineFaultDetector,
        ids: &[usize],
    ) -> CampaignStats {
        self.run_campaigns_with(detector, ids, false)
    }

    /// Incremental variant of [`run_campaigns`]: each tile keeps a
    /// persistent [`OffChipStore`] (attached with a full snapshot on its
    /// first incremental campaign) and subsequent campaigns only re-read and
    /// retest the cells written since the previous one, carrying the tile's
    /// last predicted map forward for untouched cells. Fresh tiles behave
    /// exactly like a full campaign; warm tiles with sparse write traffic
    /// cost a fraction of the cycles.
    ///
    /// [`run_campaigns`]: Self::run_campaigns
    pub fn run_campaigns_incremental(
        &mut self,
        detector: &OnlineFaultDetector,
        ids: &[usize],
    ) -> CampaignStats {
        self.run_campaigns_with(detector, ids, true)
    }

    fn run_campaigns_with(
        &mut self,
        detector: &OnlineFaultDetector,
        ids: &[usize],
        incremental: bool,
    ) -> CampaignStats {
        let selected: BTreeSet<usize> = ids.iter().copied().collect();
        let hint = 8 * self.config.tile_size * self.config.tile_size;
        par::for_each_chunk_mut_hinted(&mut self.slots, hint, |_, slots| {
            for slot in slots {
                if slot.retired || !selected.contains(&slot.id) {
                    continue;
                }
                let result = if incremental {
                    let TileSlot {
                        xbar,
                        store,
                        last_detection,
                        ..
                    } = slot;
                    let store = store.get_or_insert_with(|| OffChipStore::attach(&mut *xbar));
                    let baseline = last_detection.as_ref().map(|d| &d.predicted);
                    detector.run_incremental(xbar, store, baseline)
                } else {
                    detector.run(&mut slot.xbar)
                };
                match result {
                    Ok(outcome) => {
                        slot.last_detection = Some(outcome);
                        slot.last_campaign_error = None;
                    }
                    Err(e) => {
                        slot.last_campaign_error = Some(e);
                    }
                }
            }
        });
        let mut stats = CampaignStats::default();
        for &id in &selected {
            let Some(slot) = self.slots.get(id) else {
                continue;
            };
            if slot.retired {
                continue;
            }
            if slot.last_campaign_error.is_some() {
                stats.failed_tiles += 1;
                continue;
            }
            let Some(outcome) = &slot.last_detection else {
                continue;
            };
            stats.campaigns_run += 1;
            stats.cycles += outcome.cycles();
            stats.write_pulses += outcome.write_pulses;
            stats.flagged_cells += outcome.predicted.count_faulty() as u64;
            stats.untested_groups += outcome.untested_groups;
        }
        if let Some(m) = &self.metrics {
            m.campaigns.add(stats.campaigns_run);
        }
        stats
    }

    /// Active tiles whose *predicted* fault density is at or above the
    /// threshold, ascending by id. Tiles never tested are never flagged
    /// (retirement is driven by detection, exactly like remapping).
    pub fn tiles_over_density(&self, threshold: f64) -> Vec<usize> {
        self.slots
            .iter()
            .filter(|s| !s.retired)
            .filter(|s| s.predicted_fault_density().is_some_and(|d| d >= threshold))
            .map(|s| s.id)
            .collect()
    }

    /// Retires a tile and attaches a spare of the same dimensions in its
    /// place. On success the caller owns reprogramming the new tile and
    /// re-pointing shards at `new_id`. With an empty spare pool the tile
    /// is left in service and [`SpareOutcome::Exhausted`] is returned.
    ///
    /// Spares are *factory-screened*: the manufacture-time fault injection
    /// models defects in the arrays as shipped, and the held-back spare
    /// pool only keeps tiles that passed screening — so a fresh spare
    /// starts fault-free (it still wears out under writes like any tile).
    ///
    /// Emits [`obs::Event::TileRetired`] and [`obs::Event::SpareAttached`]
    /// (sequential spine only — never called from worker threads).
    ///
    /// # Errors
    ///
    /// Unknown ids and already-retired tiles error; spare allocation
    /// failures propagate from the device layer.
    pub fn substitute(&mut self, id: usize) -> Result<SpareOutcome, TileError> {
        let slot = self.slots.get(id).ok_or(TileError::UnknownTile { id })?;
        if slot.retired {
            return Err(TileError::TileRetired { id });
        }
        if self.spares_remaining == 0 {
            return Ok(SpareOutcome::Exhausted);
        }
        let (rows, cols) = (slot.xbar.rows(), slot.xbar.cols());
        let cells = slot.cells() as u64;
        let faulty = slot
            .last_detection
            .as_ref()
            .map(|d| d.predicted.count_faulty() as u64)
            .unwrap_or(0);
        let density = if cells == 0 {
            0.0
        } else {
            faulty as f64 / cells as f64
        };

        // Screened pool: allocate the spare without manufacture-time
        // injection (restored for any later non-spare allocations).
        let saved_injection = self.config.injection.take();
        let allocated = self.allocate(rows, cols);
        self.config.injection = saved_injection;
        let new_id = allocated?;
        self.spares_remaining -= 1;
        self.spares_attached += 1;
        // PANIC-OK: `id` was validated above and allocate only appends.
        #[allow(clippy::indexing_slicing)]
        {
            self.slots[id].retired = true;
            self.slots[new_id].spare_origin = Some(id);
        }
        if let Some(m) = &self.metrics {
            m.retired.inc();
            m.attached.inc();
            m.spares_remaining.set(self.spares_remaining as f64);
            m.recorder.emit(obs::Event::TileRetired {
                tile: id as u64,
                faulty_cells: faulty,
                fault_density: density,
            });
            m.recorder.emit(obs::Event::SpareAttached {
                tile: new_id as u64,
                replaced: id as u64,
                spares_remaining: self.spares_remaining as u64,
            });
        }
        Ok(SpareOutcome::Attached { new_id })
    }

    /// Total write pulses over *all* slots, retired included (the chip's
    /// logical write-pulse clock must be monotonic across retirement).
    pub fn total_write_pulses(&self) -> u64 {
        self.slots.iter().map(|s| s.xbar.write_pulses()).sum()
    }

    /// Total endurance wear-out faults over all slots, retired included.
    pub fn wear_faults(&self) -> u64 {
        self.slots.iter().map(|s| s.xbar.wear_faults()).sum()
    }

    /// Per-tile health snapshot, ascending by id (retired slots included,
    /// marked). See [`TileHealth`] for the scoring model.
    pub fn health_report(&self) -> Vec<TileHealth> {
        self.slots.iter().map(TileHealth::from_slot).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultdet::detector::DetectorConfig;
    use rram::spatial::SpatialDistribution;

    fn chip(spares: usize) -> TiledChip {
        TiledChip::new(ChipConfig::new(8, 8, 42).with_spare_tiles(spares)).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(TiledChip::new(ChipConfig::new(0, 8, 1)).is_err());
        assert!(TiledChip::new(ChipConfig::new(8, 1, 1)).is_err());
        assert!(TiledChip::new(ChipConfig::new(8, 8, 1).with_retire_fault_density(0.0)).is_err());
        assert!(TiledChip::new(ChipConfig::new(8, 8, 1).with_retire_fault_density(1.5)).is_err());
        assert!(TiledChip::new(ChipConfig::new(8, 8, 1).with_retire_fault_density(1.0)).is_ok());
    }

    #[test]
    fn allocation_bounds_and_ids() {
        let mut c = chip(0);
        assert!(c.allocate(9, 4).is_err());
        assert!(c.allocate(0, 4).is_err());
        let a = c.allocate(8, 8).unwrap();
        let b = c.allocate(3, 5).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(c.slot_count(), 2);
        assert_eq!(c.active_ids(), vec![0, 1]);
        assert_eq!(c.tile(b).unwrap().rows(), 3);
        assert!(c.tile(7).is_err());
    }

    #[test]
    fn seed_stream_matches_monolithic_formula() {
        // Two chips with the same seed allocate identical tiles.
        let mut a = chip(0);
        let mut b = chip(0);
        let ia = a.allocate(8, 8).unwrap();
        let ib = b.allocate(8, 8).unwrap();
        a.tile_mut(ia).unwrap().write_analog(0, 0, 0.5).unwrap();
        b.tile_mut(ib).unwrap().write_analog(0, 0, 0.5).unwrap();
        assert_eq!(
            a.tile(ia).unwrap().conductance(0, 0).unwrap().to_bits(),
            b.tile(ib).unwrap().conductance(0, 0).unwrap().to_bits()
        );
    }

    #[test]
    fn substitution_retires_and_attaches() {
        let mut c = chip(2);
        let id = c.allocate(4, 4).unwrap();
        match c.substitute(id).unwrap() {
            SpareOutcome::Attached { new_id } => {
                assert_eq!(new_id, 1);
                assert!(c.slot(id).unwrap().retired);
                assert_eq!(c.slot(new_id).unwrap().spare_origin, Some(id));
                assert_eq!(c.spares_remaining(), 1);
                assert_eq!(c.tiles_retired(), 1);
                assert_eq!(c.active_ids(), vec![new_id]);
            }
            SpareOutcome::Exhausted => panic!("spares available"),
        }
        // Retired tiles refuse a second retirement.
        assert!(matches!(
            c.substitute(id),
            Err(TileError::TileRetired { .. })
        ));
    }

    #[test]
    fn exhausted_pool_degrades() {
        let mut c = chip(0);
        let id = c.allocate(4, 4).unwrap();
        assert_eq!(c.substitute(id).unwrap(), SpareOutcome::Exhausted);
        assert!(!c.slot(id).unwrap().retired, "tile stays in service");
    }

    #[test]
    fn campaigns_store_outcomes_and_skip_retired() {
        let injection = FaultInjection::new(SpatialDistribution::Uniform, 0.2).unwrap();
        let mut c = TiledChip::new(
            ChipConfig::new(8, 8, 7)
                .with_injection(injection)
                .with_spare_tiles(1),
        )
        .unwrap();
        let a = c.allocate(8, 8).unwrap();
        let b = c.allocate(8, 6).unwrap();
        let det = OnlineFaultDetector::new(DetectorConfig::new(1).unwrap());
        let stats = c.run_campaigns(&det, &[a, b, 99]);
        assert_eq!(stats.campaigns_run, 2);
        assert_eq!(stats.failed_tiles, 0);
        assert!(stats.cycles > 0);
        // test_size=1 detection is exact: predicted density == ground truth.
        for id in [a, b] {
            let predicted = c.predicted_fault_density(id).unwrap().unwrap();
            assert!((predicted - c.fault_density(id).unwrap()).abs() < 1e-12);
        }
        // Retire `a`; a rerun skips it.
        c.substitute(a).unwrap();
        let stats = c.run_campaigns(&det, &[a, b]);
        assert_eq!(stats.campaigns_run, 1);
        // Over-density query sees only active, tested tiles.
        let over = c.tiles_over_density(0.0);
        assert_eq!(over, vec![b]);
    }

    #[test]
    fn incremental_campaigns_match_full_then_get_cheaper() {
        let injection = FaultInjection::new(SpatialDistribution::Uniform, 0.1).unwrap();
        let build = || TiledChip::new(ChipConfig::new(8, 8, 13).with_injection(injection)).unwrap();
        let (mut full_chip, mut inc_chip) = (build(), build());
        let a = full_chip.allocate(8, 8).unwrap();
        assert_eq!(inc_chip.allocate(8, 8).unwrap(), a);
        let det = OnlineFaultDetector::new(DetectorConfig::new(2).unwrap());

        let full = full_chip.run_campaigns(&det, &[a]);
        let first = inc_chip.run_campaigns_incremental(&det, &[a]);
        // A fresh tile's incremental campaign is the full campaign minus the
        // snapshot re-read (attach pre-paid it).
        assert_eq!(first.flagged_cells, full.flagged_cells);
        assert_eq!(first.write_pulses, full.write_pulses);
        assert!(
            first.cycles < full.cycles,
            "{} vs {}",
            first.cycles,
            full.cycles
        );

        // With no writes since, nothing is pending: the rerun is free and
        // the previous verdicts carry over.
        let second = inc_chip.run_campaigns_incremental(&det, &[a]);
        assert_eq!(second.cycles, 0);
        assert_eq!(second.write_pulses, 0);
        assert_eq!(second.flagged_cells, full.flagged_cells);

        // A sparse write makes only its cells pending.
        inc_chip.tile_mut(a).unwrap().write_level(0, 0, 5).unwrap();
        let third = inc_chip.run_campaigns_incremental(&det, &[a]);
        assert!(third.cycles > 0);
        assert!(third.cycles < first.cycles);
    }

    #[test]
    fn aggregates_cover_retired_slots() {
        let mut c = chip(1);
        let id = c.allocate(4, 4).unwrap();
        c.tile_mut(id).unwrap().write_analog(0, 0, 0.7).unwrap();
        let before = c.total_write_pulses();
        assert!(before > 0);
        c.substitute(id).unwrap();
        assert!(
            c.total_write_pulses() >= before,
            "retired pulses stay counted"
        );
    }

    #[test]
    fn recorder_events_and_counters() {
        let rec = obs::Recorder::deterministic();
        let mut c = chip(1);
        c.attach_recorder(&rec);
        let id = c.allocate(4, 4).unwrap();
        c.substitute(id).unwrap();
        assert_eq!(rec.events_of_kind(obs::EventKind::TileRetired), 1);
        assert_eq!(rec.events_of_kind(obs::EventKind::SpareAttached), 1);
    }
}

//! **W1 — workspace consistency.**
//!
//! Every member listed in the root `Cargo.toml` must (a) actually have
//! a manifest, (b) inherit the workspace version (`version.workspace =
//! true`) or pin the exact workspace version, (c) inherit or match the
//! workspace license, and (d) be mentioned in the prose docs
//! (`README.md` or `DESIGN.md`) so the crate inventory cannot drift
//! from the documentation. Vendored shims carry upstream versions and
//! live on the `allow` list.

use crate::config::Config;
use crate::diag::Finding;
use crate::model::Workspace;

use super::{path_allowed, Check};

/// Workspace-consistency check (see module docs).
pub struct WorkspaceConsistency;

/// Extract `key = "value"` or `key.workspace = true` facts from a
/// manifest's `[package]` section; returns (explicit value, inherits).
fn package_field(manifest: &str, key: &str) -> (Option<String>, bool) {
    let mut in_package = false;
    for raw in manifest.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            let (k, v) = (k.trim(), v.trim());
            if k == format!("{key}.workspace") && v == "true" {
                return (None, true);
            }
            if k == key {
                return (Some(v.trim_matches('"').to_string()), false);
            }
        }
    }
    (None, false)
}

/// Extract a `key = "value"` from the `[workspace.package]` section.
fn workspace_field(root_manifest: &str, key: &str) -> Option<String> {
    let mut in_section = false;
    for raw in root_manifest.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_section = line == "[workspace.package]";
            continue;
        }
        if in_section {
            if let Some((k, v)) = line.split_once('=') {
                if k.trim() == key {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

impl Check for WorkspaceConsistency {
    fn id(&self) -> &'static str {
        "W1"
    }

    fn description(&self) -> &'static str {
        "workspace members share version/license and are documented in README/DESIGN"
    }

    fn check_workspace(&self, ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
        let ws_version = workspace_field(&ws.root_manifest, "version");
        let ws_license = workspace_field(&ws.root_manifest, "license");

        for member in &ws.members {
            if path_allowed(cfg, self.id(), &member.dir) {
                continue;
            }
            let manifest_path = if member.dir.is_empty() {
                "Cargo.toml".to_string()
            } else {
                format!("{}/Cargo.toml", member.dir)
            };
            if member.manifest.is_empty() {
                out.push(Finding {
                    check: self.id(),
                    file: manifest_path,
                    line: 0,
                    message: format!("workspace member `{}` has no Cargo.toml", member.dir),
                });
                continue;
            }

            let (ver, ver_inherits) = package_field(&member.manifest, "version");
            let version_ok = ver_inherits || (ver.is_some() && ver == ws_version);
            if !version_ok {
                out.push(Finding {
                    check: self.id(),
                    file: manifest_path.clone(),
                    line: 0,
                    message: format!(
                        "crate `{}` does not inherit the workspace version \
                         (want `version.workspace = true` or version {:?}, found {:?})",
                        member.name,
                        ws_version.as_deref().unwrap_or("<unset>"),
                        ver.as_deref().unwrap_or("<missing>"),
                    ),
                });
            }

            let (lic, lic_inherits) = package_field(&member.manifest, "license");
            let license_ok = lic_inherits || (lic.is_some() && lic == ws_license);
            if !license_ok {
                out.push(Finding {
                    check: self.id(),
                    file: manifest_path.clone(),
                    line: 0,
                    message: format!(
                        "crate `{}` does not inherit the workspace license \
                         (want `license.workspace = true` or license {:?}, found {:?})",
                        member.name,
                        ws_license.as_deref().unwrap_or("<unset>"),
                        lic.as_deref().unwrap_or("<missing>"),
                    ),
                });
            }

            // Documentation mention: crate name or directory in README
            // or DESIGN.
            let mentioned = ws.docs.values().any(|text| {
                text.contains(&member.name)
                    || (!member.dir.is_empty() && text.contains(&member.dir))
            });
            if !mentioned {
                out.push(Finding {
                    check: self.id(),
                    file: manifest_path,
                    line: 0,
                    message: format!(
                        "crate `{}` is not mentioned in README.md or DESIGN.md",
                        member.name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_field_reads_inherit_and_explicit() {
        let m = "[package]\nname = \"x\"\nversion.workspace = true\nlicense = \"MIT\"\n";
        assert_eq!(package_field(m, "version"), (None, true));
        assert_eq!(package_field(m, "license"), (Some("MIT".into()), false));
        assert_eq!(package_field(m, "edition"), (None, false));
    }

    #[test]
    fn workspace_field_reads_workspace_package_section() {
        let m = "[workspace]\nmembers = []\n\n[workspace.package]\nversion = \"0.1.0\"\nlicense = \"MIT OR Apache-2.0\"\n";
        assert_eq!(workspace_field(m, "version").as_deref(), Some("0.1.0"));
        assert_eq!(
            workspace_field(m, "license").as_deref(),
            Some("MIT OR Apache-2.0")
        );
    }
}

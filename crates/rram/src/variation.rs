//! Soft-fault (write variation) models.
//!
//! Soft faults leave a cell tunable but displace its programmed conductance
//! from the target value. The paper tolerates them with on-line training and
//! sets the test increment "larger than the variance" so the detector is not
//! confused by them; this module provides the Gaussian perturbation applied
//! on every write so both effects can be studied.

use rand::Rng;

use crate::rng::Normal;

/// Additive Gaussian perturbation applied to the normalized conductance
/// (range `[0, 1]`) on every write operation.
///
/// # Example
///
/// ```
/// use rram::variation::WriteVariation;
/// use rram::rng::sim_rng;
///
/// let var = WriteVariation::new(0.02);
/// let mut rng = sim_rng(11);
/// let g = var.perturb(0.5, &mut rng);
/// assert!((0.0..=1.0).contains(&g));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteVariation {
    sigma: f64,
}

impl WriteVariation {
    /// Creates a variation model with the given standard deviation of the
    /// normalized conductance.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn new(sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be non-negative"
        );
        Self { sigma }
    }

    /// No variation: writes land exactly on the target conductance.
    pub fn none() -> Self {
        Self { sigma: 0.0 }
    }

    /// A typical multi-level-cell variation: σ = 0.02 of the full range,
    /// well under one 8-level step (1/7 ≈ 0.143), matching the paper's
    /// requirement that the test increment exceed the write variance.
    pub fn typical() -> Self {
        Self { sigma: 0.02 }
    }

    /// The standard deviation of the perturbation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Returns `true` when the model adds no noise.
    pub fn is_none(&self) -> bool {
        self.sigma == 0.0
    }

    /// Perturbs a target normalized conductance, clamping to `[0, 1]`.
    pub fn perturb<R: Rng + ?Sized>(&self, target: f64, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return target.clamp(0.0, 1.0);
        }
        let noisy = Normal::new(target, self.sigma).sample(rng);
        noisy.clamp(0.0, 1.0)
    }
}

impl Default for WriteVariation {
    /// Defaults to [`WriteVariation::typical`].
    fn default() -> Self {
        Self::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::sim_rng;

    #[test]
    fn none_is_exact() {
        let mut rng = sim_rng(0);
        let v = WriteVariation::none();
        assert!(v.is_none());
        assert_eq!(v.perturb(0.3, &mut rng), 0.3);
    }

    #[test]
    fn perturb_clamps_to_unit_interval() {
        let mut rng = sim_rng(0);
        let v = WriteVariation::new(10.0);
        for _ in 0..100 {
            let g = v.perturb(0.5, &mut rng);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn typical_noise_is_small() {
        let mut rng = sim_rng(4);
        let v = WriteVariation::typical();
        let mean_abs_err: f64 = (0..2000)
            .map(|_| (v.perturb(0.5, &mut rng) - 0.5).abs())
            .sum::<f64>()
            / 2000.0;
        // E|N(0, 0.02)| = 0.02 * sqrt(2/pi) ≈ 0.016
        assert!(mean_abs_err < 0.03, "mean abs err {mean_abs_err}");
        assert!(mean_abs_err > 0.005, "mean abs err {mean_abs_err}");
    }

    #[test]
    fn none_vs_default() {
        assert_eq!(WriteVariation::default(), WriteVariation::typical());
        assert!(!WriteVariation::default().is_none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        let _ = WriteVariation::new(-0.1);
    }
}

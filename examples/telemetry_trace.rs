//! Telemetry walkthrough: run the closed-loop flow with every sink
//! attached and show what the `obs` subsystem captures.
//!
//! The demo trains a small MLP through wearing, faulty crossbars with a
//! JSONL sink and a ring buffer on the trainer's [`obs::Recorder`], runs
//! the *same seeded flow* under several `RRAM_FTT_THREADS` budgets, and
//! verifies the traces are byte-identical (the logical-clock determinism
//! contract). It then writes the trace to `results/telemetry_trace.jsonl`,
//! checks it contains every core event kind, and prints the human summary
//! plus a Prometheus rendering of the metrics registry.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example telemetry_trace
//! ```

use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use ftt_core::flow::FaultTolerantTrainer;
use nn::init::init_rng;
use nn::network::Network;
use nn::optimizer::LrSchedule;
use nn::synth::SyntheticDataset;
use obs::{EventKind, JsonlSink, Recorder, RingSink};
use rram::endurance::EnduranceModel;

const SEED: u64 = 7;
const ITERATIONS: u64 = 120;

fn small_net(seed: u64) -> Network {
    let mut rng = init_rng(seed);
    let mut net = Network::new();
    net.push(nn::layers::Dense::new(784, 24, &mut rng));
    net.push(nn::layers::Relu::new());
    net.push(nn::layers::Dense::new(24, 10, &mut rng));
    net
}

/// One seeded closed-loop run with sinks attached; returns the JSONL
/// trace, the end-of-run summary, and the Prometheus rendering.
fn traced_run() -> Result<(String, String, String), Box<dyn std::error::Error>> {
    let data = SyntheticDataset::mnist_like(240, 60, SEED);
    let mapping = MappingConfig::new(MappingScope::EntireNetwork)
        .with_initial_fault_fraction(0.15)
        .with_endurance(EnduranceModel::new(60.0, 15.0))
        .with_seed(SEED);
    let mut flow = FlowConfig::fault_tolerant()
        .with_lr(LrSchedule::constant(0.1))
        .with_detection_interval(30)
        .with_detection_warmup(0)
        .with_eval_interval(30);
    // A fine test resolution: coarse group tests flag whole row groups,
    // which makes the predicted fault map permutation-invariant and the
    // re-mapping search a no-op. Tr = 2 recovers near-cell-level precision
    // so the demo exercises the RemapApplied path.
    flow.detector = faultdet::detector::DetectorConfig::new(2)?;

    // A deterministic recorder times spans on the logical clock, so the
    // whole artifact (events *and* metrics) is reproducible bit-for-bit.
    let recorder = Recorder::deterministic();
    let jsonl = JsonlSink::new();
    let trace_view = jsonl.view();
    recorder.add_sink(Box::new(jsonl));
    let ring = RingSink::new(8);
    let ring_view = ring.view();
    recorder.add_sink(Box::new(ring));

    let mut trainer =
        FaultTolerantTrainer::with_recorder(small_net(SEED), mapping, flow, recorder)?;
    let curve = trainer.train(&data, ITERATIONS)?;
    println!(
        "trained {ITERATIONS} iterations: final accuracy {:.3}, {:.1}% cells faulty",
        curve.final_accuracy(),
        trainer.mapped().fraction_faulty() * 100.0
    );
    println!("last {} events (ring buffer):", ring_view.len());
    for event in ring_view.snapshot() {
        println!("  {}", event.to_json());
    }
    Ok((
        trace_view.contents(),
        trainer.recorder().render_summary(),
        trainer.recorder().render_prometheus(),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Determinism: the same seeded flow under three worker budgets
    //    must produce byte-identical JSONL traces.
    let mut reference: Option<String> = None;
    for threads in [1usize, 4, par::MAX_THREADS] {
        par::set_thread_count(threads);
        println!("-- run with {threads} worker thread(s) --");
        let (trace, summary, prometheus) = traced_run()?;
        par::set_thread_count(0); // back to env/auto
        match &reference {
            None => {
                // 2. The artifact: write the trace under results/ so the
                //    repo root stays free of generated files (gitignored).
                std::fs::create_dir_all("results")?;
                std::fs::write("results/telemetry_trace.jsonl", &trace)?;
                println!(
                    "wrote results/telemetry_trace.jsonl ({} events)",
                    trace.lines().count()
                );
                println!("\n{summary}");
                println!("-- prometheus rendering (excerpt) --");
                for line in prometheus.lines().filter(|l| l.starts_with("flow_")) {
                    println!("{line}");
                }
                reference = Some(trace);
            }
            Some(expected) => {
                assert_eq!(
                    *expected, trace,
                    "JSONL trace must be byte-identical at any thread count"
                );
                println!("trace is byte-identical to the single-threaded run ✓");
            }
        }
    }

    // 3. Validate the artifact: flat JSONL, every core event kind present.
    let trace = reference.unwrap_or_default();
    for (i, line) in trace.lines().enumerate() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "line {i} is not a flat JSON object"
        );
        assert!(
            obs::json::extract_str(line, "kind").is_some(),
            "line {i} lacks a kind field"
        );
    }
    for kind in [
        EventKind::TrainingIteration,
        EventKind::DetectionCampaignStart,
        EventKind::DetectionCampaignEnd,
        EventKind::RemapApplied,
        EventKind::WearFault,
        EventKind::WritePulseBatch,
    ] {
        let needle = format!("\"kind\":\"{}\"", kind.as_str());
        assert!(
            trace.contains(&needle),
            "trace must contain at least one {} event",
            kind.as_str()
        );
        println!("kind present ✓ {}", kind.as_str());
    }
    println!("\ntelemetry demo passed: deterministic, complete, machine-readable");
    Ok(())
}

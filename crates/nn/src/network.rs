//! Sequential network container.

use std::fmt;

use crate::layer::{Layer, LayerParams};
use crate::tensor::Tensor;

/// A sequential stack of layers.
///
/// # Example
///
/// ```
/// use nn::network::Network;
/// use nn::layers::{Dense, Relu};
/// use nn::init::init_rng;
/// use nn::tensor::Tensor;
///
/// let mut rng = init_rng(0);
/// let mut net = Network::new();
/// net.push(Dense::new(4, 8, &mut rng));
/// net.push(Relu::new());
/// net.push(Dense::new(8, 2, &mut rng));
///
/// let x = Tensor::zeros(vec![1, 4]);
/// let y = net.forward(&x);
/// assert_eq!(y.shape(), &[1, 2]);
/// ```
#[derive(Default)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kinds: Vec<&str> = self.layers.iter().map(|l| l.kind()).collect();
        f.debug_struct("Network").field("layers", &kinds).finish()
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers (including parameter-free ones).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Inference-mode forward pass (no caches are retained).
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        self.run_forward(input, false)
    }

    /// Training-mode forward pass: layers cache activations for `backward`.
    pub fn forward_train(&mut self, input: &Tensor) -> Tensor {
        self.run_forward(input, true)
    }

    fn run_forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Back-propagates the loss gradient through all layers, filling each
    /// parameterized layer's gradients.
    ///
    /// # Panics
    ///
    /// Panics if [`Network::forward_train`] did not precede this call.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Iterates over `(layer_index, params)` for every parameterized layer.
    pub fn param_layers_mut(&mut self) -> impl Iterator<Item = (usize, LayerParams<'_>)> {
        self.layers
            .iter_mut()
            .enumerate()
            .filter_map(|(i, l)| l.params().map(|p| (i, p)))
    }

    /// The indices of layers that carry weights, in network order.
    pub fn weight_layer_indices(&mut self) -> Vec<usize> {
        self.layers
            .iter_mut()
            .enumerate()
            .filter_map(|(i, l)| l.params().map(|_| i))
            .collect()
    }

    /// Parameters of one layer by its index, if it has any.
    pub fn layer_params_mut(&mut self, index: usize) -> Option<LayerParams<'_>> {
        self.layers.get_mut(index)?.params()
    }

    /// The kind tag of a layer by index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range; [`Network::try_layer_kind`] is
    /// the non-panicking variant.
    pub fn layer_kind(&self, index: usize) -> &'static str {
        self.layers[index].kind()
    }

    /// The kind tag of a layer by index, or `None` when out of range.
    pub fn try_layer_kind(&self, index: usize) -> Option<&'static str> {
        self.layers.get(index).map(|l| l.kind())
    }

    /// Total number of trainable weights (excluding biases).
    pub fn weight_count(&self) -> usize {
        self.layers.iter().map(|l| l.weight_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::init_rng;
    use crate::layers::{Dense, Relu};

    fn mlp() -> Network {
        let mut rng = init_rng(1);
        let mut net = Network::new();
        net.push(Dense::new(4, 6, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(6, 3, &mut rng));
        net
    }

    #[test]
    fn forward_produces_expected_shape() {
        let mut net = mlp();
        let x = Tensor::zeros(vec![5, 4]);
        assert_eq!(net.forward(&x).shape(), &[5, 3]);
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
    }

    #[test]
    fn backward_fills_all_param_grads() {
        let mut net = mlp();
        let x = Tensor::from_vec(vec![2, 4], (0..8).map(|i| i as f32 * 0.1).collect());
        let y = net.forward_train(&x);
        let g = Tensor::from_vec(y.shape().to_vec(), vec![1.0; y.len()]);
        let dx = net.backward(&g);
        assert_eq!(dx.shape(), &[2, 4]);
        let mut count = 0;
        for (_, p) in net.param_layers_mut() {
            assert!(
                p.weight_grad.iter().any(|&g| g != 0.0),
                "grads should be non-zero"
            );
            count += 1;
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn weight_layer_indices_skip_activations() {
        let mut net = mlp();
        assert_eq!(net.weight_layer_indices(), vec![0, 2]);
        assert_eq!(net.layer_kind(1), "relu");
        assert_eq!(net.weight_count(), 4 * 6 + 6 * 3);
    }

    #[test]
    fn layer_params_mut_by_index() {
        let mut net = mlp();
        assert!(net.layer_params_mut(0).is_some());
        assert!(net.layer_params_mut(1).is_none());
        assert!(net.layer_params_mut(99).is_none());
    }

    #[test]
    fn debug_lists_layer_kinds() {
        let net = mlp();
        let s = format!("{net:?}");
        assert!(s.contains("dense") && s.contains("relu"));
    }
}

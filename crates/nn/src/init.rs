//! Weight initialization schemes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for parameter initialization.
pub fn init_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// He (Kaiming) uniform initialization: `U(-b, b)` with
/// `b = sqrt(6 / fan_in)` — the right scale for ReLU networks.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn he_uniform<R: Rng + ?Sized>(fan_in: usize, count: usize, rng: &mut R) -> Vec<f32> {
    assert!(fan_in > 0, "fan_in must be non-zero");
    let bound = (6.0 / fan_in as f64).sqrt() as f32;
    (0..count).map(|_| rng.gen_range(-bound..bound)).collect()
}

/// Xavier (Glorot) uniform initialization: `U(-b, b)` with
/// `b = sqrt(6 / (fan_in + fan_out))` — for linear/sigmoid output layers.
///
/// # Panics
///
/// Panics if `fan_in + fan_out` is zero.
pub fn xavier_uniform<R: Rng + ?Sized>(
    fan_in: usize,
    fan_out: usize,
    count: usize,
    rng: &mut R,
) -> Vec<f32> {
    assert!(fan_in + fan_out > 0, "fan sum must be non-zero");
    let bound = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    (0..count).map(|_| rng.gen_range(-bound..bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_uniform_is_bounded_and_centered() {
        let mut rng = init_rng(1);
        let w = he_uniform(100, 10_000, &mut rng);
        let bound = (6.0f64 / 100.0).sqrt() as f32;
        assert!(w.iter().all(|&x| x.abs() <= bound));
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn xavier_uniform_is_bounded() {
        let mut rng = init_rng(2);
        let w = xavier_uniform(50, 50, 1000, &mut rng);
        let bound = (6.0f64 / 100.0).sqrt() as f32;
        assert!(w.iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = he_uniform(10, 100, &mut init_rng(7));
        let b = he_uniform(10, 100, &mut init_rng(7));
        assert_eq!(a, b);
        let c = he_uniform(10, 100, &mut init_rng(8));
        assert_ne!(a, c);
    }
}

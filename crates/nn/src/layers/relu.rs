//! Rectified linear activation.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Element-wise `max(0, x)` activation.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        }
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        #[allow(clippy::expect_used)]
        // PANIC-OK: documented `Layer::backward` contract — a training-mode
        // forward must precede backward (see the trait's `# Panics` section).
        let mask = self
            .mask
            .take()
            .expect("backward called without a training-mode forward");
        assert_eq!(
            mask.len(),
            grad_out.len(),
            "gradient shape changed since forward"
        );
        let data = grad_out
            .data()
            .iter()
            .zip(&mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(grad_out.shape().to_vec(), data)
    }

    fn kind(&self) -> &'static str {
        "relu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![1, 4], vec![-2., -0.5, 0., 3.]);
        let y = relu.forward(&x, false);
        assert_eq!(y.data(), &[0., 0., 0., 3.]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![1, 4], vec![-1., 2., -3., 4.]);
        let _ = relu.forward(&x, true);
        let g = Tensor::from_vec(vec![1, 4], vec![10., 20., 30., 40.]);
        let dx = relu.backward(&g);
        assert_eq!(dx.data(), &[0., 20., 0., 40.]);
    }

    #[test]
    fn zero_input_has_zero_gradient() {
        // Subgradient convention: f'(0) = 0.
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![1, 1], vec![0.0]);
        let _ = relu.forward(&x, true);
        let g = Tensor::from_vec(vec![1, 1], vec![5.0]);
        assert_eq!(relu.backward(&g).data(), &[0.0]);
    }

    #[test]
    #[should_panic(expected = "without a training-mode forward")]
    fn backward_requires_forward() {
        let mut relu = Relu::new();
        let g = Tensor::zeros(vec![1, 1]);
        let _ = relu.backward(&g);
    }
}

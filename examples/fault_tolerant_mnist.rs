//! The paper's MNIST benchmark end-to-end: a 784×100×10 network trained
//! through heavily faulted crossbars (the §6.4 FC-only scenario, where the
//! RCS has already been trained many times and ~50 % of the cells are
//! stuck), comparing the original method against the fault-tolerant flow.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fault_tolerant_mnist
//! ```

use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use ftt_core::flow::FaultTolerantTrainer;
use nn::models::mlp_784_100_10;
use nn::optimizer::LrSchedule;
use nn::synth::SyntheticDataset;
use rram::endurance::EnduranceModel;
use rram::spatial::SpatialDistribution;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SyntheticDataset::mnist_like(512, 128, 21);
    let iterations = 3000;

    // ~50% of the cells already stuck from previous training campaigns,
    // survivors with depleted remaining endurance (the Fig. 7(b) scenario).
    let worn_hardware = MappingConfig::new(MappingScope::EntireNetwork)
        .with_initial_fault_fraction(0.5)
        .with_fault_distribution(SpatialDistribution::default_clusters())
        .with_initial_sa0_prob(0.8)
        .with_endurance(
            EnduranceModel::new(0.8 * iterations as f64, 0.3 * iterations as f64)
                .with_wearout_sa0_prob(0.8),
        )
        .with_seed(17);
    let fresh_hardware = MappingConfig::new(MappingScope::EntireNetwork).with_seed(17);

    let schedule = LrSchedule::step_decay(0.1, 0.7, 1000);
    println!("training the 784x100x10 MLP for {iterations} iterations...");
    println!();
    println!("case, peak accuracy, final accuracy, remap Dist before -> after");

    // Ideal: fault-free hardware, plain training.
    let mut ideal = FaultTolerantTrainer::new(
        mlp_784_100_10(3),
        fresh_hardware,
        FlowConfig::original().with_lr(schedule),
    )?;
    ideal.train(&data, iterations)?;
    println!(
        "ideal (no faults), {:.1}%, {:.1}%, -",
        100.0 * ideal.curve().peak_accuracy(),
        100.0 * ideal.curve().final_accuracy()
    );

    // Original method on worn hardware.
    let mut original = FaultTolerantTrainer::new(
        mlp_784_100_10(3),
        worn_hardware.clone(),
        FlowConfig::original().with_lr(schedule),
    )?;
    original.train(&data, iterations)?;
    println!(
        "original with 50% faults, {:.1}%, {:.1}%, -",
        100.0 * original.curve().peak_accuracy(),
        100.0 * original.curve().final_accuracy()
    );

    // The full fault-tolerant flow on the same worn hardware.
    let mut ft = FaultTolerantTrainer::new(
        mlp_784_100_10(3),
        worn_hardware,
        FlowConfig::fault_tolerant()
            .with_lr(schedule)
            .with_detection_interval(500)
            .with_detection_warmup(1500),
    )?;
    ft.train(&data, iterations)?;
    println!(
        "fault-tolerant flow with 50% faults, {:.1}%, {:.1}%, {} -> {}",
        100.0 * ft.curve().peak_accuracy(),
        100.0 * ft.curve().final_accuracy(),
        ft.stats().last_remap_initial_cost,
        ft.stats().last_remap_final_cost
    );

    println!();
    println!(
        "detection campaigns: {}, total test cycles: {}",
        ft.stats().detection_campaigns,
        ft.stats().detection_cycles
    );
    Ok(())
}

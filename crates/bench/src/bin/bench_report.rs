//! Standalone kernel benchmark reporter.
//!
//! Times the perf-critical kernels with a self-contained harness (criterion
//! is a dev-dependency, so binaries do their own calibration) and writes a
//! machine-readable `BENCH_kernels.json` — one record per measurement:
//! `{ "name", "size", "ns_per_iter", "threads" }`.
//!
//! The interesting ratios, printed at the end:
//!
//! * `crossbar_mvm_plane` vs `crossbar_mvm_reference` — the cached
//!   structure-of-arrays conductance plane against the scalar cell walk.
//! * `detection_group_sums_batched` vs `…_scalar` — the campaign's hot
//!   comparison kernel: one dense plane sweep per group vs per-line walks.
//!
//! The worker budget is whatever [`par::thread_count`] resolves to
//! (`RRAM_FTT_THREADS` env override, else the machine's parallelism) and is
//! recorded per measurement, so single-core containers report honest
//! `threads = 1` numbers where the speedups are purely algorithmic.
//!
//! Output path: `BENCH_kernels.json` in the working directory, or the
//! `BENCH_REPORT_PATH` env var.
//!
//! **Quick mode** (`BENCH_QUICK=1`, wired as `just bench-quick`): shrinks
//! the expensive size sweeps and calibration budgets so the whole run fits
//! in CI, while still executing every kernel and the bit-identity oracle
//! checks — the smoke gate asserts *correctness* (vectorized == scalar,
//! incremental == full resync), never timings.

use std::fmt::Write as _;
use std::time::Instant;

use faultdet::detector::{DetectorConfig, OnlineFaultDetector};
use faultdet::reference::OffChipStore;
use ftt_core::config::{MappingConfig, MappingScope, RemapConfig};
use ftt_core::remap::{CostModel, RemapAlgorithm, RemapProblem};
use nn::models::mlp_784_100_10;
use nn::permute::Permutation;
use nn::pruning::magnitude_prune;
use nn::tensor::Tensor;
use rand::Rng;
use rram::crossbar::{Crossbar, CrossbarBuilder};
use rram::spatial::SpatialDistribution;
use std::hint::black_box;

#[derive(Debug, Clone)]
struct Record {
    name: &'static str,
    size: usize,
    ns_per_iter: f64,
    threads: usize,
}

/// Times `f` with calibrated repetition: doubles the iteration count until a
/// batch takes at least `min_batch_ms`, then reports the median ns/iter of
/// `samples` batches.
fn time_ns<F: FnMut()>(mut f: F, min_batch_ms: u64, samples: usize) -> f64 {
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() as u64 >= min_batch_ms || iters >= 1 << 22 {
            break;
        }
        iters *= 2;
    }
    let mut measured: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    measured.sort_by(|a, b| a.total_cmp(b));
    measured[measured.len() / 2]
}

fn programmed(size: usize, seed: u64) -> Crossbar {
    let mut xbar = CrossbarBuilder::new(size, size)
        .initial_faults(SpatialDistribution::Uniform, 0.1)
        .seed(seed)
        .build()
        .expect("valid crossbar");
    let mut rng = rram::rng::sim_rng(seed);
    for r in 0..size {
        for c in 0..size {
            let _ = xbar
                .write_level(r, c, rng.gen_range(0..8))
                .expect("in range");
        }
    }
    xbar
}

/// Bit-identity oracle checks for every kernel this report times; runs in
/// both modes, and is the entire point of the `bench-quick` CI smoke.
fn verify_bit_identity() {
    for size in [33usize, 64] {
        let xbar = programmed(size, 21);
        let input: Vec<f32> = (0..size).map(|i| (i as f32 * 0.53).cos()).collect();
        assert_eq!(
            xbar.mvm(&input).unwrap(),
            xbar.mvm_reference(&input).unwrap(),
            "vectorized mvm diverged from scalar reference at {size}"
        );
        let sums = xbar.column_group_sums(0..size).unwrap();
        let rows = xbar.row_group_sums(0..size).unwrap();
        for i in 0..size {
            assert_eq!(
                sums[i].to_bits(),
                xbar.column_group_sum(0..size, i).unwrap().to_bits(),
                "batched column sum diverged at {size}, col {i}"
            );
            assert_eq!(
                rows[i].to_bits(),
                xbar.row_group_sum(i, 0..size).unwrap().to_bits(),
                "batched row sum diverged at {size}, row {i}"
            );
        }
    }
    // Fresh-store incremental campaign == classic full campaign.
    let detector = OnlineFaultDetector::new(DetectorConfig::new(8).unwrap());
    let mut full_xbar = programmed(64, 23);
    let mut inc_xbar = programmed(64, 23);
    let full = detector.run(&mut full_xbar).unwrap();
    let mut store = OffChipStore::attach(&mut inc_xbar);
    let inc = detector
        .run_incremental(&mut inc_xbar, &mut store, None)
        .unwrap();
    assert_eq!(
        inc.predicted, full.predicted,
        "incremental detection diverged from full"
    );
    assert_eq!(
        (inc.sa0_cycles, inc.sa1_cycles, inc.write_pulses),
        (full.sa0_cycles, full.sa1_cycles, full.write_pulses),
        "incremental sweep costs diverged from full"
    );
    eprintln!("bit-identity oracles: ok (mvm, group sums, incremental detection)");
}

fn main() {
    let threads = par::thread_count();
    let quick = std::env::var("BENCH_QUICK").is_ok();
    verify_bit_identity();
    // Quick mode trades calibration depth for CI wall-clock; the identity
    // checks above are the gate, the timings are informational.
    let (batch_ms, long_ms, samples) = if quick { (1, 2, 2) } else { (10, 50, 5) };
    let mut records: Vec<Record> = Vec::new();
    let push = |records: &mut Vec<Record>, name: &'static str, size: usize, ns: f64| {
        eprintln!("{name:<34} size {size:>5}  {ns:>14.0} ns/iter  ({threads} threads)");
        records.push(Record {
            name,
            size,
            ns_per_iter: ns,
            threads,
        });
    };

    // --- Crossbar MVM: cached plane vs scalar reference -----------------
    let mvm_sizes: &[usize] = if quick {
        &[64, 129]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    for &size in mvm_sizes {
        let xbar = programmed(size, 1);
        let input: Vec<f32> = (0..size).map(|i| (i as f32 * 0.37).sin()).collect();
        let ns = time_ns(
            || drop(black_box(xbar.mvm(black_box(&input)).unwrap())),
            batch_ms,
            samples,
        );
        push(&mut records, "crossbar_mvm_plane", size, ns);
        let ns = time_ns(
            || drop(black_box(xbar.mvm_reference(black_box(&input)).unwrap())),
            batch_ms,
            samples,
        );
        push(&mut records, "crossbar_mvm_reference", size, ns);
    }

    // --- Tiled MVM vs the monolithic kernel (DESIGN.md §11) --------------
    // Same conductance state on both sides (the chip tiles are programmed
    // from the monolithic array's plane), tile size 128 with remainder-free
    // grids: 512² -> 4×4 shards, 1024² -> 8×8.
    let tiled_sizes: &[usize] = if quick { &[256] } else { &[512, 1024] };
    for &size in tiled_sizes {
        let xbar = programmed(size, 3);
        let input: Vec<f32> = (0..size).map(|i| (i as f32 * 0.37).sin()).collect();
        let chip_cfg = ftt_tile::ChipConfig::new(128, 8, 3);
        let mut chip = ftt_tile::TiledChip::new(chip_cfg).expect("valid chip");
        let tiled = ftt_tile::TiledMapping::allocate(&mut chip, size, size).expect("tiled mapping");
        tiled
            .program(&mut chip, xbar.conductance_plane_f64())
            .expect("program tiles");
        let ns = time_ns(
            || drop(black_box(xbar.mvm(black_box(&input)).unwrap())),
            batch_ms,
            samples,
        );
        push(&mut records, "mvm_monolithic", size, ns);
        let ns = time_ns(
            || drop(black_box(tiled.mvm(&chip, black_box(&input)).unwrap())),
            batch_ms,
            samples,
        );
        push(&mut records, "mvm_tiled_t128", size, ns);
    }

    // --- Detection: full campaign at the paper-scale Tr = 16 ------------
    let detect_sizes: &[usize] = if quick { &[64] } else { &[256, 512] };
    for &size in detect_sizes {
        let mut xbar = programmed(size, 2);
        let detector = OnlineFaultDetector::new(DetectorConfig::new(16).unwrap());
        let ns = time_ns(
            || drop(black_box(detector.run(&mut xbar).unwrap())),
            long_ms,
            samples,
        );
        push(&mut records, "detection_campaign_t16", size, ns);
    }

    // --- Detection: incremental campaign on a warm persistent store -----
    // The in-training regime: the store is coherent from the previous
    // campaign and only ~1000 sparse training writes dirtied the array, so
    // each campaign re-reads a fraction of a percent of the cells and
    // sweeps only the written candidates.
    for &size in detect_sizes {
        let mut xbar = programmed(size, 2);
        let detector = OnlineFaultDetector::new(DetectorConfig::new(16).unwrap());
        let mut store = OffChipStore::attach(&mut xbar);
        let mut baseline = detector
            .run_incremental(&mut xbar, &mut store, None)
            .expect("warm-up campaign")
            .predicted;
        let mut rng = rram::rng::sim_rng(11);
        let writes = if quick { 64 } else { 1000 };
        let ns = time_ns(
            || {
                for _ in 0..writes {
                    let (r, c) = (rng.gen_range(0..size), rng.gen_range(0..size));
                    let level = rng.gen_range(0..8);
                    let _ = xbar.write_level(r, c, level).expect("in range");
                }
                let out = detector
                    .run_incremental(&mut xbar, &mut store, Some(&baseline))
                    .expect("incremental campaign");
                baseline = black_box(out).predicted;
            },
            long_ms,
            samples,
        );
        push(&mut records, "detection_incremental_t16", size, ns);
    }

    // --- Detection comparison kernel: batched plane sweep vs per-line ---
    {
        let size = 512usize;
        let t = 16usize;
        let xbar = programmed(size, 7);
        let ns = time_ns(
            || {
                let mut acc = 0.0f64;
                for g in 0..size / t {
                    let sums = xbar.column_group_sums(g * t..(g + 1) * t).unwrap();
                    acc += sums.iter().sum::<f64>();
                }
                black_box(acc);
            },
            batch_ms,
            samples,
        );
        push(&mut records, "detection_group_sums_batched", size, ns);
        let ns = time_ns(
            || {
                let mut acc = 0.0f64;
                for g in 0..size / t {
                    for col in 0..size {
                        acc += xbar.column_group_sum(g * t..(g + 1) * t, col).unwrap();
                    }
                }
                black_box(acc);
            },
            batch_ms,
            samples,
        );
        push(&mut records, "detection_group_sums_scalar", size, ns);
        // Both directions of a full Tr = 16 sweep through the shared lane
        // kernel — the per-campaign comparison workload as one number.
        let ns = time_ns(
            || {
                let mut acc = 0.0f64;
                for g in 0..size / t {
                    acc += xbar
                        .column_group_sums(g * t..(g + 1) * t)
                        .unwrap()
                        .iter()
                        .sum::<f64>();
                    acc += xbar
                        .row_group_sums(g * t..(g + 1) * t)
                        .unwrap()
                        .iter()
                        .sum::<f64>();
                }
                black_box(acc);
            },
            batch_ms,
            samples,
        );
        push(&mut records, "group_sums_512", size, ns);
    }

    // --- Serve scheduler: batched vs unbatched MVM passes ----------------
    // The service's whole reason to batch: `B` queued requests through one
    // `mvm_batch` pass against the same `B` requests as single `mvm` calls
    // on the same programmed mapping. Identical math, shared plane reads.
    let serve_sizes: &[usize] = if quick { &[128] } else { &[256, 512] };
    let serve_batch = 8usize;
    for &size in serve_sizes {
        let chip_cfg = ftt_tile::ChipConfig::new(64, 8, 17);
        let mut chip = ftt_tile::TiledChip::new(chip_cfg).expect("valid chip");
        let mapping =
            ftt_tile::TiledMapping::allocate(&mut chip, size, size).expect("serve mapping");
        let mut rng = rram::rng::sim_rng(17);
        let targets: Vec<f64> = (0..size * size).map(|_| rng.gen_range(0.0..1.0)).collect();
        mapping.program(&mut chip, &targets).expect("program");
        let inputs: Vec<f32> = (0..serve_batch * size)
            .map(|i| (i as f32 * 0.43).sin())
            .collect();
        let ns = time_ns(
            || {
                drop(black_box(
                    mapping
                        .mvm_batch(&chip, black_box(&inputs), serve_batch)
                        .unwrap(),
                ))
            },
            batch_ms,
            samples,
        );
        push(&mut records, "serve_batched_mvm_b8", size, ns);
        let ns = time_ns(
            || {
                for sample in inputs.chunks(size) {
                    drop(black_box(mapping.mvm(&chip, black_box(sample)).unwrap()));
                }
            },
            batch_ms,
            samples,
        );
        push(&mut records, "serve_unbatched_mvm_b8", size, ns);
    }

    // --- Serve admission latency (logical ticks, not nanoseconds) --------
    // Drives the seeded reference deployment and reports the mean
    // admitted-to-completed wait from the service's own histogram. The
    // record reuses the `ns_per_iter` field to carry *ticks* (size = the
    // request count) — the JSON schema stays uniform and the name makes
    // the unit explicit.
    {
        let mut svc = ftt_serve::Service::new(ftt_serve::scenario::reference_config(17))
            .expect("service");
        use ftt_serve::tenant::TenantSpec;
        svc.register(TenantSpec::Inference(ftt_serve::InferenceSpec {
            name: "bench".into(),
            rows: 48,
            cols: 12,
            weight_seed: 17,
            tile_quota: 12,
        }))
        .expect("register");
        let mut wl = ftt_serve::WorkloadGen::new(
            17,
            ftt_serve::WorkloadSpec {
                base_rate: 3,
                lull_start: 10,
                lull_end: 14,
                burst_tick: Some(5),
                burst_size: 12,
            },
        );
        for tick in 0..28u64 {
            for input in wl.requests_for_tick(tick, 48) {
                let _ = svc.submit("bench", input);
            }
            svc.tick().expect("tick");
        }
        svc.drain(50).expect("drain");
        let wait = svc
            .recorder()
            .registry()
            .histogram_handle("serve_admission_wait_ticks")
            .expect("wait histogram");
        push(
            &mut records,
            "serve_admission_wait_ticks_mean",
            wait.count() as usize,
            wait.mean(),
        );
    }

    // --- Tensor matmul (forward-pass substrate) --------------------------
    let matmul_sizes: &[usize] = if quick { &[64] } else { &[128, 256] };
    for &size in matmul_sizes {
        let a = Tensor::from_vec(
            vec![size, size],
            (0..size * size)
                .map(|i| ((i % 97) as f32 - 48.0) / 48.0)
                .collect(),
        );
        let b = Tensor::from_vec(
            vec![size, size],
            (0..size * size)
                .map(|i| ((i % 89) as f32 - 44.0) / 44.0)
                .collect(),
        );
        let ns = time_ns(
            || drop(black_box(a.matmul(black_box(&b)))),
            batch_ms,
            samples,
        );
        push(&mut records, "tensor_matmul", size, ns);
    }

    // --- Re-mapping: full recount and the two searches -------------------
    {
        let mut net = mlp_784_100_10(1);
        let mapped = ftt_core::mapping::MappedNetwork::from_network(
            &mut net,
            MappingConfig::new(MappingScope::EntireNetwork)
                .with_initial_fault_fraction(0.3)
                .with_seed(5),
        )
        .expect("mapping");
        let mask = magnitude_prune(&mut net, 0.5);
        let problem =
            RemapProblem::with_ground_truth(&mapped, &mask, CostModel::PaperDist).expect("problem");
        let perms = vec![Permutation::identity(100)];
        let ns = time_ns(
            || {
                let _ = black_box(problem.cost(black_box(&perms)));
            },
            batch_ms,
            samples,
        );
        push(
            &mut records,
            "remap_full_cost_recount",
            784 * 100 + 100 * 10,
            ns,
        );
        let iterations = if quick { 200 } else { 1000 };
        for (name, algorithm) in [
            ("remap_hill_climb_1k", RemapAlgorithm::SwapHillClimb),
            (
                "remap_greedy_batch_1k",
                RemapAlgorithm::GreedySwapBatch { batch: 64 },
            ),
            (
                "remap_genetic_islands",
                RemapAlgorithm::Genetic {
                    population: 8,
                    islands: 4,
                },
            ),
        ] {
            let cfg = RemapConfig {
                algorithm,
                cost: CostModel::PaperDist,
                iterations,
                seed: 3,
            };
            let ns = time_ns(
                || drop(black_box(problem.solve(&mapped, &cfg))),
                long_ms,
                samples,
            );
            push(&mut records, name, iterations, ns);
        }
    }

    // --- Strategy arena: reduced comparison sweep ------------------------
    // Tracks the cost of one arena heat sweep (4 strategies restored from
    // snapshot-cloned chips, trained, ranked). Milliseconds in the
    // `ns_per_iter` field, unit in the name; `size` is the league-row
    // count (strategies × densities).
    {
        let mut config = ftt_arena::ArenaConfig::quick();
        if quick {
            config.iterations = 4;
            config.densities.truncate(1);
        }
        let runs = if quick { 1 } else { 3 };
        let mut ms: Vec<f64> = Vec::new();
        let mut rows = 0usize;
        for _ in 0..runs {
            let start = Instant::now();
            let report = ftt_arena::run(black_box(&config)).expect("arena sweep");
            ms.push(start.elapsed().as_secs_f64() * 1e3);
            rows = report.rows.len();
        }
        ms.sort_by(|a, b| a.total_cmp(b));
        push(&mut records, "arena_sweep_ms", rows, ms[ms.len() / 2]);
    }

    // --- Lint: full-workspace semantic analysis --------------------------
    // Tracks the two-phase analyzer's end-to-end cost (walk + lex + model
    // build + all checks + stale-suppression shadow runs). The record
    // carries *milliseconds* in the `ns_per_iter` field — same convention
    // as `serve_admission_wait_ticks_mean`, where the unit lives in the
    // name. `size` is the number of files scanned.
    {
        let ws_root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        let runs = if quick { 1 } else { 3 };
        let mut ms: Vec<f64> = Vec::new();
        let mut files = 0usize;
        for _ in 0..runs {
            let start = Instant::now();
            let report = ftt_lint::run(black_box(&ws_root), None).expect("workspace lints");
            ms.push(start.elapsed().as_secs_f64() * 1e3);
            files = report.files_scanned;
        }
        ms.sort_by(|a, b| a.total_cmp(b));
        push(
            &mut records,
            "lint_full_workspace_ms",
            files,
            ms[ms.len() / 2],
        );
    }

    // --- Speedup summary --------------------------------------------------
    let find = |name: &str, size: usize| {
        records
            .iter()
            .find(|r| r.name == name && r.size == size)
            .map(|r| r.ns_per_iter)
    };
    if let (Some(plane), Some(reference)) = (
        find("crossbar_mvm_plane", 512),
        find("crossbar_mvm_reference", 512),
    ) {
        eprintln!(
            "mvm 512²: plane kernel speedup {:.2}x over scalar reference",
            reference / plane
        );
    }
    if let (Some(mono), Some(tiled)) = (find("mvm_monolithic", 1024), find("mvm_tiled_t128", 1024))
    {
        eprintln!(
            "mvm 1024² on 128² tiles: {:.2}x the monolithic kernel (bit-identical output)",
            tiled / mono
        );
    }
    if let (Some(batched), Some(scalar)) = (
        find("detection_group_sums_batched", 512),
        find("detection_group_sums_scalar", 512),
    ) {
        eprintln!(
            "detection Tr=16 sweep 512²: batched kernel speedup {:.2}x over per-line walks",
            scalar / batched
        );
    }
    if let (Some(batched), Some(unbatched)) = (
        find("serve_batched_mvm_b8", serve_sizes[serve_sizes.len() - 1]),
        find("serve_unbatched_mvm_b8", serve_sizes[serve_sizes.len() - 1]),
    ) {
        eprintln!(
            "serve {}² batch 8: shared MVM pass {:.2}x over per-request calls",
            serve_sizes[serve_sizes.len() - 1],
            unbatched / batched
        );
    }
    if let (Some(full), Some(inc)) = (
        find("detection_campaign_t16", 512),
        find("detection_incremental_t16", 512),
    ) {
        eprintln!(
            "detection Tr=16 512²: incremental campaign (warm store, ~1000 writes) {:.2}x \
             over the full campaign",
            full / inc
        );
    }

    // --- JSON out ---------------------------------------------------------
    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(
            json,
            "  {{\"name\": \"{}\", \"size\": {}, \"ns_per_iter\": {:.1}, \"threads\": {}}}{}",
            r.name,
            r.size,
            r.ns_per_iter,
            r.threads,
            if i + 1 < records.len() { "," } else { "" }
        );
    }
    json.push_str("]\n");
    let path =
        std::env::var("BENCH_REPORT_PATH").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    if let Err(e) = std::fs::write(&path, json) {
        panic!("write {path}: {e}");
    }
    eprintln!("wrote {path}");
}

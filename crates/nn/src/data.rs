//! Dataset container and batching.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::tensor::Tensor;

/// An in-memory classification dataset with a train and a test split.
///
/// Sample tensors have a leading batch dimension (`[N, ...]`); labels are
/// class indices.
#[derive(Debug, Clone)]
pub struct Dataset {
    train_x: Tensor,
    train_y: Vec<usize>,
    test_x: Tensor,
    test_y: Vec<usize>,
    classes: usize,
    shuffle_seed: u64,
}

impl Dataset {
    /// Creates a dataset from raw splits.
    ///
    /// # Panics
    ///
    /// Panics if sample counts and label counts disagree, or any label is
    /// outside `0..classes`.
    pub fn new(
        train_x: Tensor,
        train_y: Vec<usize>,
        test_x: Tensor,
        test_y: Vec<usize>,
        classes: usize,
    ) -> Self {
        assert_eq!(
            train_x.shape()[0],
            train_y.len(),
            "train sample/label mismatch"
        );
        assert_eq!(
            test_x.shape()[0],
            test_y.len(),
            "test sample/label mismatch"
        );
        assert!(
            train_y.iter().chain(&test_y).all(|&y| y < classes),
            "label out of range"
        );
        Self {
            train_x,
            train_y,
            test_x,
            test_y,
            classes,
            shuffle_seed: 0,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_y.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_y.len()
    }

    /// Per-sample shape (without the batch dimension).
    pub fn sample_shape(&self) -> &[usize] {
        &self.train_x.shape()[1..]
    }

    /// Sets the shuffling seed used by [`Dataset::train_batches`].
    pub fn set_shuffle_seed(&mut self, seed: u64) {
        self.shuffle_seed = seed;
    }

    /// The full test split as `(inputs, labels)`.
    pub fn test_set(&self) -> (Tensor, Vec<usize>) {
        (self.test_x.clone(), self.test_y.clone())
    }

    /// The full training split as `(inputs, labels)` in storage order.
    pub fn train_set(&self) -> (Tensor, Vec<usize>) {
        (self.train_x.clone(), self.train_y.clone())
    }

    /// An infinite iterator of shuffled training mini-batches.
    ///
    /// Each epoch is an independent shuffle; the iterator never ends, so
    /// training loops `take(n)` as many iterations as they need (mirroring
    /// the paper's iteration-count x-axes).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or exceeds the training split size. Library
    /// code that must not panic should use [`Dataset::try_train_batches`].
    pub fn train_batches(&self, batch: usize) -> TrainBatches<'_> {
        // PANIC-OK: documented panicking convenience wrapper; the fallible
        // variant below is what library flows use.
        #[allow(clippy::expect_used)]
        self.try_train_batches(batch).expect("invalid batch size")
    }

    /// Fallible variant of [`Dataset::train_batches`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::NnError::InvalidConfig`] if `batch` is zero
    /// or exceeds the training split size.
    pub fn try_train_batches(
        &self,
        batch: usize,
    ) -> Result<TrainBatches<'_>, crate::error::NnError> {
        if batch == 0 {
            return Err(crate::error::NnError::InvalidConfig(
                "batch size must be non-zero".into(),
            ));
        }
        if batch > self.train_len() {
            return Err(crate::error::NnError::InvalidConfig(format!(
                "batch {batch} exceeds {} training samples",
                self.train_len()
            )));
        }
        Ok(TrainBatches {
            dataset: self,
            batch,
            order: (0..self.train_len()).collect(),
            cursor: usize::MAX, // force an initial shuffle
            rng: StdRng::seed_from_u64(self.shuffle_seed),
        })
    }

    /// Resumes a mini-batch stream from a previously captured
    /// [`BatchStreamState`]: the returned iterator continues the epoch
    /// exactly where the exported one stopped, drawing the same remaining
    /// batches and reshuffling with the same RNG stream.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::NnError::InvalidConfig`] when the state does
    /// not fit this dataset: a different training-split size, a zero or
    /// oversized batch, an `order` that is not a permutation of the sample
    /// indices, or a cursor past the end of an epoch.
    pub fn try_resume_train_batches(
        &self,
        state: &BatchStreamState,
    ) -> Result<TrainBatches<'_>, crate::error::NnError> {
        if state.train_len != self.train_len() {
            return Err(crate::error::NnError::InvalidConfig(format!(
                "batch stream was captured over {} samples, dataset has {}",
                state.train_len,
                self.train_len()
            )));
        }
        if state.batch == 0 || state.batch > self.train_len() {
            return Err(crate::error::NnError::InvalidConfig(format!(
                "batch {} invalid for {} training samples",
                state.batch,
                self.train_len()
            )));
        }
        if state.order.len() != self.train_len() {
            return Err(crate::error::NnError::InvalidConfig(format!(
                "order holds {} indices for {} samples",
                state.order.len(),
                self.train_len()
            )));
        }
        let mut seen = vec![false; self.train_len()];
        for &i in &state.order {
            if i >= self.train_len() || seen[i] {
                return Err(crate::error::NnError::InvalidConfig(
                    "order is not a permutation of the sample indices".into(),
                ));
            }
            seen[i] = true;
        }
        if state.cursor != usize::MAX && state.cursor > state.order.len() {
            return Err(crate::error::NnError::InvalidConfig(format!(
                "cursor {} past the epoch end {}",
                state.cursor,
                state.order.len()
            )));
        }
        Ok(TrainBatches {
            dataset: self,
            batch: state.batch,
            order: state.order.clone(),
            cursor: state.cursor,
            rng: StdRng::from_state(state.rng),
        })
    }

    fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let sample_len: usize = self.sample_shape().iter().product();
        let mut data = Vec::with_capacity(indices.len() * sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.train_x.data()[i * sample_len..(i + 1) * sample_len]);
            labels.push(self.train_y[i]);
        }
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(self.sample_shape());
        (Tensor::from_vec(shape, data), labels)
    }
}

/// Infinite shuffled mini-batch iterator; see [`Dataset::train_batches`].
#[derive(Debug)]
pub struct TrainBatches<'a> {
    dataset: &'a Dataset,
    batch: usize,
    order: Vec<usize>,
    cursor: usize,
    rng: StdRng,
}

impl TrainBatches<'_> {
    /// Captures the stream's position (checkpoint): the current epoch
    /// permutation, the cursor into it, and the shuffle RNG state. Feed the
    /// result to [`Dataset::try_resume_train_batches`] to continue the
    /// stream exactly where it stopped.
    pub fn export_state(&self) -> BatchStreamState {
        BatchStreamState {
            batch: self.batch,
            train_len: self.dataset.train_len(),
            order: self.order.clone(),
            cursor: self.cursor,
            rng: self.rng.state(),
        }
    }
}

/// Serializable position of a [`TrainBatches`] stream; see
/// [`TrainBatches::export_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchStreamState {
    /// Mini-batch size.
    pub batch: usize,
    /// Training-split size the stream was captured over.
    pub train_len: usize,
    /// The current epoch's sample permutation.
    pub order: Vec<usize>,
    /// Cursor into `order` (`usize::MAX` = shuffle before the next batch).
    pub cursor: usize,
    /// The shuffle RNG stream (xoshiro256++ state).
    pub rng: [u64; 4],
}

impl Iterator for TrainBatches<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == usize::MAX || self.cursor + self.batch > self.order.len() {
            self.order.shuffle(&mut self.rng);
            self.cursor = 0;
        }
        let slice = &self.order[self.cursor..self.cursor + self.batch];
        let item = self.dataset.gather(slice);
        self.cursor += self.batch;
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let train_x = Tensor::from_vec(vec![6, 2], (0..12).map(|i| i as f32).collect());
        let train_y = vec![0, 1, 0, 1, 0, 1];
        let test_x = Tensor::from_vec(vec![2, 2], vec![0.0; 4]);
        let test_y = vec![0, 1];
        Dataset::new(train_x, train_y, test_x, test_y, 2)
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.classes(), 2);
        assert_eq!(d.train_len(), 6);
        assert_eq!(d.test_len(), 2);
        assert_eq!(d.sample_shape(), &[2]);
        let (tx, ty) = d.test_set();
        assert_eq!(tx.shape(), &[2, 2]);
        assert_eq!(ty, vec![0, 1]);
    }

    #[test]
    fn batches_have_right_shape_and_matching_labels() {
        let d = tiny();
        for (x, y) in d.train_batches(2).take(10) {
            assert_eq!(x.shape(), &[2, 2]);
            assert_eq!(y.len(), 2);
            // Sample data identifies its index: value = 2*idx at feature 0.
            for (row, &label) in y.iter().enumerate() {
                let idx = (x.at2(row, 0) / 2.0) as usize;
                assert_eq!(label, idx % 2);
            }
        }
    }

    #[test]
    fn epochs_cover_all_samples() {
        let d = tiny();
        let mut seen = vec![0usize; 6];
        for (x, _) in d.train_batches(2).take(3) {
            for row in 0..2 {
                seen[(x.at2(row, 0) / 2.0) as usize] += 1;
            }
        }
        assert_eq!(seen, vec![1; 6], "one epoch visits every sample once");
    }

    #[test]
    fn shuffling_is_seed_deterministic() {
        let mut a = tiny();
        a.set_shuffle_seed(5);
        let mut b = tiny();
        b.set_shuffle_seed(5);
        let batch_a: Vec<_> = a.train_batches(2).take(5).map(|(_, y)| y).collect();
        let batch_b: Vec<_> = b.train_batches(2).take(5).map(|(_, y)| y).collect();
        assert_eq!(batch_a, batch_b);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        let x = Tensor::zeros(vec![1, 2]);
        let _ = Dataset::new(x.clone(), vec![5], x, vec![0], 2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_batch_panics() {
        let d = tiny();
        let _ = d.train_batches(7);
    }

    #[test]
    fn resumed_stream_continues_exactly() {
        let mut d = tiny();
        d.set_shuffle_seed(11);
        // Draw 2 of 7 batches, snapshot, then compare the remaining 5
        // against an uninterrupted stream (crossing an epoch boundary).
        let mut full = d.train_batches(2);
        let mut split = d.train_batches(2);
        for _ in 0..2 {
            full.next();
            split.next();
        }
        let state = split.export_state();
        drop(split);
        let mut resumed = d.try_resume_train_batches(&state).unwrap();
        for _ in 0..5 {
            let (fx, fy) = full.next().unwrap();
            let (rx, ry) = resumed.next().unwrap();
            assert_eq!(fx.data(), rx.data());
            assert_eq!(fy, ry);
        }
        // A second export at the same point is identical.
        assert_eq!(
            d.try_resume_train_batches(&state).unwrap().export_state(),
            state
        );
    }

    #[test]
    fn resume_rejects_mismatched_state() {
        let d = tiny();
        let good = d.train_batches(2).export_state();
        assert!(d.try_resume_train_batches(&good).is_ok());
        let mut bad = good.clone();
        bad.train_len = 99;
        assert!(d.try_resume_train_batches(&bad).is_err());
        let mut bad = good.clone();
        bad.batch = 0;
        assert!(d.try_resume_train_batches(&bad).is_err());
        let mut bad = good.clone();
        bad.order = vec![0; 6]; // not a permutation
        assert!(d.try_resume_train_batches(&bad).is_err());
        let mut bad = good;
        bad.cursor = 7;
        assert!(d.try_resume_train_batches(&bad).is_err());
    }

    #[test]
    fn try_train_batches_surfaces_typed_errors() {
        let d = tiny();
        assert!(d.try_train_batches(0).is_err());
        assert!(d.try_train_batches(7).is_err());
        let mut it = d.try_train_batches(2).unwrap();
        assert!(it.next().is_some());
    }
}

//! Tier-1 wiring of the adversarial harness: the seeded chaos run must
//! pass, and must be deterministic — two runs from the same seed produce
//! the same report.
//!
//! `just chaos` runs the same harness with verbose per-family output.

const SEED: u64 = 0xC0FFEE;

#[test]
fn chaos_harness_passes() {
    let report = chaos::run_all(SEED);
    assert!(
        report.all_passed(),
        "adversarial scenarios failed:\n{report}"
    );
    assert!(report.families.len() >= 8, "at least 8 scenario families");
    assert!(
        report.case_count() >= 20,
        "the families should fan out into many cases"
    );
}

#[test]
fn chaos_harness_is_deterministic() {
    let a = chaos::run_all(SEED).to_string();
    let b = chaos::run_all(SEED).to_string();
    assert_eq!(a, b, "the same seed must reproduce the same report");
}

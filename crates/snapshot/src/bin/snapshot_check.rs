//! End-to-end snapshot/resume invariant check, wired into CI as
//! `just snapshot-check`.
//!
//! For each detection mode (full-sweep and incremental) this runs the same
//! seeded training flow twice — once uninterrupted, once killed at an
//! iteration boundary, serialized, and resumed in a fresh recorder — and
//! requires the stitched event trace to be byte-identical to the
//! uninterrupted one and the final [`FlowStats`] to match field-for-field.
//!
//! Exits 0 with a `PASS` line per mode, or 1 with a description of the
//! first divergence. Never panics.

use ftt_core::config::{FlowConfig, MappingConfig, MappingScope};
use ftt_core::flow::FaultTolerantTrainer;
use nn::init::init_rng;
use nn::network::Network;
use nn::optimizer::LrSchedule;
use nn::synth::SyntheticDataset;
use obs::{JsonlSink, JsonlView, Recorder};
use rram::endurance::EnduranceModel;

const SEED: u64 = 11;
const TOTAL_ITERS: u64 = 24;
const KILL_AT: u64 = 9;

fn net() -> Network {
    let mut rng = init_rng(SEED);
    let mut n = Network::new();
    n.push(nn::layers::Dense::new(784, 12, &mut rng));
    n.push(nn::layers::Relu::new());
    n.push(nn::layers::Dense::new(12, 10, &mut rng));
    n
}

fn mapping() -> MappingConfig {
    MappingConfig::new(MappingScope::EntireNetwork)
        .with_initial_fault_fraction(0.15)
        .with_endurance(EnduranceModel::new(40.0, 10.0))
        .with_seed(SEED)
        .with_spare_tiles(4)
        .with_retire_fault_density(0.3)
}

fn flow(incremental: bool) -> FlowConfig {
    let f = FlowConfig::fault_tolerant()
        .with_lr(LrSchedule::constant(0.1))
        .with_detection_interval(5)
        .with_detection_warmup(0)
        .with_eval_interval(5);
    if incremental {
        f.with_incremental_detection()
    } else {
        f
    }
}

fn traced(incremental: bool) -> Result<(FaultTolerantTrainer, JsonlView), String> {
    let recorder = Recorder::deterministic();
    let sink = JsonlSink::new();
    let view = sink.view();
    recorder.add_sink(Box::new(sink));
    let trainer = FaultTolerantTrainer::with_recorder(net(), mapping(), flow(incremental), recorder)
        .map_err(|e| format!("building trainer: {e}"))?;
    Ok((trainer, view))
}

fn check_mode(incremental: bool) -> Result<(), String> {
    let mode = if incremental { "incremental" } else { "full-sweep" };
    let data = SyntheticDataset::mnist_like(40, 10, SEED);

    let (mut full, full_view) = traced(incremental)?;
    full.train(&data, TOTAL_ITERS)
        .map_err(|e| format!("[{mode}] uninterrupted run: {e}"))?;

    let (mut head, head_view) = traced(incremental)?;
    head.train(&data, KILL_AT)
        .map_err(|e| format!("[{mode}] head run: {e}"))?;
    let bytes = ftt_snapshot::snapshot(&mut head);
    drop(head); // the original "process" dies here; only `bytes` survives

    let recorder = Recorder::deterministic();
    let sink = JsonlSink::new();
    let tail_view = sink.view();
    recorder.add_sink(Box::new(sink));
    let mut resumed = ftt_snapshot::resume(&bytes, net(), mapping(), flow(incremental), recorder)
        .map_err(|e| format!("[{mode}] resume: {e}"))?;
    resumed
        .train(&data, TOTAL_ITERS - KILL_AT)
        .map_err(|e| format!("[{mode}] resumed run: {e}"))?;

    let stitched = format!("{}{}", head_view.contents(), tail_view.contents());
    let uninterrupted = full_view.contents();
    if stitched != uninterrupted {
        let at = stitched
            .bytes()
            .zip(uninterrupted.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| stitched.len().min(uninterrupted.len()));
        return Err(format!(
            "[{mode}] stitched trace diverges from uninterrupted trace at byte {at} \
             (stitched {} bytes, uninterrupted {} bytes)",
            stitched.len(),
            uninterrupted.len()
        ));
    }

    let (a, b) = (resumed.stats(), full.stats());
    if a != b {
        return Err(format!(
            "[{mode}] final stats diverge: resumed {a:?} vs uninterrupted {b:?}"
        ));
    }

    // The resumed trainer's own snapshot must be byte-stable through a
    // decode/encode roundtrip.
    let again = ftt_snapshot::snapshot(&mut resumed);
    let roundtrip = ftt_snapshot::decode(&again)
        .map_err(|e| format!("[{mode}] re-decoding resumed snapshot: {e}"))?;
    if ftt_snapshot::encode(&roundtrip) != again {
        return Err(format!("[{mode}] snapshot bytes not stable through roundtrip"));
    }

    println!(
        "PASS [{mode}] {TOTAL_ITERS} iters == {KILL_AT} + snapshot({} bytes) + {}",
        bytes.len(),
        TOTAL_ITERS - KILL_AT
    );
    Ok(())
}

fn main() {
    for incremental in [false, true] {
        if let Err(msg) = check_mode(incremental) {
            eprintln!("FAIL {msg}");
            std::process::exit(1);
        }
    }
    println!("snapshot-check: all modes bit-identical across kill/restore");
}

//! Deterministic adversarial-configuration harness.
//!
//! The paper's entire pitch is surviving hardware that misbehaves; this
//! crate makes sure the *software* survives configurations that misbehave.
//! [`run_all`] drives the closed-loop flow (threshold training →
//! quiescent-voltage detection → prune + re-map) through degenerate and
//! hostile setups — test sizes that do not divide the array, all-faulty
//! arrays, mod-16 ADC aliasing, NaN/zero gradient iterations, 1×N / N×1
//! geometries, 0 %/100 % pruning, and every thread budget from garbage to
//! 0 to beyond the cap — and asserts three invariants throughout:
//!
//! 1. **No panics.** Every case runs under `catch_unwind`; a panic is a
//!    harness failure, not a crash.
//! 2. **Bit-identical results across thread counts.** The parallel merges
//!    in `par` are index-ordered by construction; the harness re-runs the
//!    same seeded flow under several worker budgets and compares curves
//!    and statistics exactly.
//! 3. **Plane/scalar coherence.** The SoA conductance planes the batched
//!    kernels read must match the per-cell scalar state after every kind
//!    of mutation (writes, pulses, nudges, fault injection, detection).
//!
//! Everything is seeded: the same `seed` argument produces the same
//! [`ChaosReport`] on every run, so a failure reproduces from its name
//! alone. The harness is wired as `just chaos` and kept under the 60 s
//! budget by sizing the training flows small.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod families;

/// Outcome of one adversarial case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Unique case name (`family/case`), sufficient to reproduce the run.
    pub name: String,
    /// Whether the case held all its invariants.
    pub passed: bool,
    /// Failure detail (assertion message or panic payload); empty on pass.
    pub detail: String,
}

/// Outcome of one scenario family.
#[derive(Debug, Clone)]
pub struct FamilyReport {
    /// Family name.
    pub family: &'static str,
    /// Per-case outcomes, in deterministic execution order.
    pub cases: Vec<CaseResult>,
}

impl FamilyReport {
    /// Creates an empty report for `family`.
    pub fn new(family: &'static str) -> Self {
        Self {
            family,
            cases: Vec::new(),
        }
    }

    /// Runs one case under `catch_unwind`, recording a panic as a failure
    /// instead of crashing the harness.
    pub fn case<F>(&mut self, name: &str, f: F)
    where
        F: FnOnce() -> Result<(), String>,
    {
        let full = format!("{}/{}", self.family, name);
        let outcome = catch_unwind(AssertUnwindSafe(f));
        let (passed, detail) = match outcome {
            Ok(Ok(())) => (true, String::new()),
            Ok(Err(msg)) => (false, msg),
            Err(payload) => (false, format!("panicked: {}", panic_message(&payload))),
        };
        self.cases.push(CaseResult {
            name: full,
            passed,
            detail,
        });
    }

    /// Whether every case passed.
    pub fn all_passed(&self) -> bool {
        self.cases.iter().all(|c| c.passed)
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Outcome of a full harness run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The seed the run was driven from.
    pub seed: u64,
    /// Per-family reports, in deterministic order.
    pub families: Vec<FamilyReport>,
}

impl ChaosReport {
    /// Whether every case in every family passed.
    pub fn all_passed(&self) -> bool {
        self.families.iter().all(|f| f.all_passed())
    }

    /// Total number of cases run.
    pub fn case_count(&self) -> usize {
        self.families.iter().map(|f| f.cases.len()).sum()
    }

    /// The failing cases, if any.
    pub fn failures(&self) -> Vec<&CaseResult> {
        self.families
            .iter()
            .flat_map(|f| f.cases.iter())
            .filter(|c| !c.passed)
            .collect()
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos harness · seed {:#x} · {} families · {} cases",
            self.seed,
            self.families.len(),
            self.case_count()
        )?;
        for fam in &self.families {
            let failed = fam.cases.iter().filter(|c| !c.passed).count();
            let status = if failed == 0 { "ok" } else { "FAILED" };
            writeln!(
                f,
                "  {:<28} {:>3} cases .. {}",
                fam.family,
                fam.cases.len(),
                status
            )?;
            for c in fam.cases.iter().filter(|c| !c.passed) {
                writeln!(f, "    ✗ {}: {}", c.name, c.detail)?;
            }
        }
        Ok(())
    }
}

/// Runs every scenario family from a fixed seed.
///
/// Families run sequentially (the thread-budget family mutates the
/// process-global worker override, so the harness never interleaves
/// families), and each family derives its own sub-seed from `seed` so that
/// adding a family never perturbs the others.
pub fn run_all(seed: u64) -> ChaosReport {
    // Serialize whole-harness runs: the thread-budget family mutates the
    // process-global worker override and the harness swaps the panic hook,
    // so two concurrent `run_all`s (e.g. parallel `#[test]`s) would race.
    static RUN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Panics are expected *data* here (a failing case), not crashes: keep
    // the default hook from spraying backtraces over the report.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut families = vec![
        families::detector_group_remainders(seed ^ 0x01),
        families::mod16_aliasing(seed ^ 0x02),
        families::all_faulty_extremes(seed ^ 0x03),
        families::degenerate_gradients(seed ^ 0x04),
        families::extreme_geometry(seed ^ 0x05),
        families::prune_rate_extremes(seed ^ 0x06),
        families::config_rejection(seed ^ 0x07),
        families::plane_coherence(seed ^ 0x08),
        families::thread_budget(seed ^ 0x09),
        families::obs_stream(seed ^ 0x0a),
        families::tiling(seed ^ 0x0b),
        families::kernels(seed ^ 0x0c),
        families::restore(seed ^ 0x0d),
        families::serve(seed ^ 0x0e),
        families::arena(seed ^ 0x10),
    ];
    // With `RRAM_FTT_SANITIZE=1` the families above double as sanitizer
    // workload: every `par` fan-out they drove had its schedule
    // cross-checked. Surface that accumulated verdict as its own case
    // *before* the dedicated family, whose cases drain and re-arm the
    // global sanitizer state.
    if par::sanitizer::enabled() {
        let mut fam = FamilyReport::new("sanitize_env");
        fam.case("all_families_ran_schedule_clean", || {
            let rep = par::sanitizer::take_report();
            ensure(
                rep.is_clean(),
                format!(
                    "{} of {} checked schedules diverged: {:?}",
                    rep.violations.len(),
                    rep.calls_checked,
                    rep.violations
                ),
            )
        });
        families.push(fam);
    }
    families.push(families::sanitize(seed ^ 0x0f));
    std::panic::set_hook(prev_hook);
    ChaosReport { seed, families }
}

/// Convenience: fail with a formatted message unless `cond` holds.
pub(crate) fn ensure(cond: bool, msg: impl Into<String>) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_runner_captures_panics_and_errors() {
        let mut fam = FamilyReport::new("meta");
        fam.case("passes", || Ok(()));
        fam.case("fails", || Err("boom".into()));
        fam.case("panics", || panic!("kaput"));
        assert!(!fam.all_passed());
        assert!(fam.cases[0].passed);
        assert_eq!(fam.cases[1].detail, "boom");
        assert!(fam.cases[2].detail.contains("kaput"));
    }

    #[test]
    fn report_formats_and_counts() {
        let mut fam = FamilyReport::new("meta");
        fam.case("fails", || Err("boom".into()));
        let report = ChaosReport {
            seed: 7,
            families: vec![fam],
        };
        assert_eq!(report.case_count(), 1);
        assert_eq!(report.failures().len(), 1);
        let s = report.to_string();
        assert!(s.contains("FAILED") && s.contains("boom"));
    }
}
